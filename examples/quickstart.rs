//! Quickstart: compile a small program, let the optimizer pick the blocks to
//! move into RAM, and compare the measured energy, power and time before and
//! after the transformation.
//!
//! Run with:
//!
//! ```text
//! cargo run -p flashram-core --example quickstart
//! ```

use flashram_core::{instrumented_blocks, relocated_code_bytes, RamOptimizer};
use flashram_mcu::Board;
use flashram_minicc::{compile_program, CompileError, OptLevel, SourceUnit};

/// A small signal-processing-flavoured kernel with a hot inner loop: the
/// shape of program the paper's Figure 2 motivates.
const SOURCE: &str = "
    int samples[128];
    int coeffs[8] = {1, 3, 5, 7, 7, 5, 3, 1};

    int filter(int n) {
        int acc = 0;
        for (int i = 0; i < n - 8; i++) {
            int s = 0;
            for (int k = 0; k < 8; k++) {
                s += samples[i + k] * coeffs[k];
            }
            acc += s >> 5;
        }
        return acc;
    }

    int main() {
        for (int i = 0; i < 128; i++) {
            samples[i] = (i * 37 + 11) % 251;
        }
        int sum = 0;
        for (int rep = 0; rep < 8; rep++) {
            sum += filter(128);
        }
        return sum;
    }
";

fn main() -> Result<(), CompileError> {
    // 1. Compile the application exactly as a firmware build would.
    let program = compile_program(&[SourceUnit::application(SOURCE)], OptLevel::O2)?;

    // 2. Pick the board (STM32F100RB: 64 KB flash, 8 KB RAM, 24 MHz) and
    //    measure the unmodified program.
    let board = Board::stm32vldiscovery();
    let before = board.run(&program).expect("baseline run");

    // 3. Run the placement optimizer with its default configuration
    //    (X_limit = 1.5, spare RAM derived from the program's own layout).
    let placement = RamOptimizer::new()
        .optimize(&program, &board)
        .expect("placement");
    let after = board.run(&placement.program).expect("optimized run");

    assert_eq!(
        before.return_value, after.return_value,
        "the transformation must not change what the program computes"
    );

    println!("quickstart: flash-to-RAM basic block placement");
    println!();
    println!(
        "blocks moved to RAM: {} of {} candidates ({} bytes of code, {} instrumented terminators)",
        placement.selected.len(),
        placement.params.blocks.len(),
        relocated_code_bytes(&placement.program),
        instrumented_blocks(&placement.program).len(),
    );
    println!(
        "RAM budget used for code: {} bytes of {} spare",
        relocated_code_bytes(&placement.program),
        placement.r_spare
    );
    println!();
    println!(
        "{:<22} {:>14} {:>14} {:>10}",
        "", "before", "after", "change"
    );
    let pct = |a: f64, b: f64| 100.0 * (b - a) / a;
    println!(
        "{:<22} {:>14.4} {:>14.4} {:>+9.1}%",
        "energy (mJ)",
        before.energy_mj,
        after.energy_mj,
        pct(before.energy_mj, after.energy_mj)
    );
    println!(
        "{:<22} {:>14.2} {:>14.2} {:>+9.1}%",
        "average power (mW)",
        before.avg_power_mw,
        after.avg_power_mw,
        pct(before.avg_power_mw, after.avg_power_mw)
    );
    println!(
        "{:<22} {:>14.4} {:>14.4} {:>+9.1}%",
        "execution time (ms)",
        before.time_s * 1e3,
        after.time_s * 1e3,
        pct(before.time_s, after.time_s)
    );
    println!(
        "{:<22} {:>14} {:>14}",
        "cycles",
        before.cycles(),
        after.cycles()
    );
    println!();
    println!(
        "model prediction: energy x{:.3}, time x{:.3} (measured: x{:.3}, x{:.3})",
        placement.predicted_energy_ratio(),
        placement.predicted_time_ratio(),
        after.energy_mj / before.energy_mj,
        after.time_s / before.time_s,
    );
    Ok(())
}
