//! Pick the right part for a power budget: enumerate one kernel's exact
//! energy/RAM frontier on every entry of the device database and print the
//! merged device-dominant Pareto set — which device to choose at each RAM
//! budget, and what the optimal flash-to-RAM placement saves on it.
//!
//! The same program lands very differently across parts: a low-power part
//! wins outright on energy, while a wait-state part (flash fetch stalls
//! behind the core clock) gets the *largest relative* saving from RAM
//! placement, because relocated blocks shed the stalls too.
//!
//! Run with (benchmark name optional, default `fdct`):
//!
//! ```text
//! cargo run --release --example device_picker [-- benchmark]
//! ```

use flashram_beebs::Benchmark;
use flashram_core::{DeviceMatrix, OptimizerConfig};
use flashram_device::DEVICE_DB;
use flashram_mcu::{BatchRunner, Board};
use flashram_minicc::{CompileError, OptLevel};

fn main() -> Result<(), CompileError> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "fdct".to_string());
    let bench = Benchmark::by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown benchmark `{name}`; available:");
        for b in Benchmark::all() {
            eprintln!("  {:<16} {}", b.name, b.description);
        }
        std::process::exit(1);
    });
    let program = bench.compile(OptLevel::O2)?;

    println!("device database:");
    for desc in DEVICE_DB.all() {
        let op = &desc.operating_points[desc.default_operating_point];
        println!(
            "  {:<11} {:<34} {:>3} MHz, {} wait state(s), prefetch {}",
            desc.key,
            desc.name,
            (op.clock_hz / 1e6).round() as u64,
            op.flash.wait_states,
            if op.flash.prefetch_enabled {
                "on"
            } else {
                "off"
            },
        );
    }

    // Fan the per-device frontier enumerations over the worker pool; the
    // runner's own board only provides the threads.
    let runner = BatchRunner::new(Board::stm32vldiscovery());
    let config = OptimizerConfig::default();
    let matrix = DeviceMatrix::enumerate(&program, DEVICE_DB.all(), &config, &runner);
    for (device, err) in &matrix.skipped {
        eprintln!("skipped {device}: {err}");
    }

    println!();
    println!("per-device optimum for `{}`:", bench.name);
    for df in &matrix.frontiers {
        let baseline = df.frontier.baseline.energy * df.cycle_time_s;
        let best = df.best().expect("staircase has a zero-budget step");
        let best_mj = df.energy_mj(best);
        println!(
            "  {:<11} {:>3} frontier steps; all-in-flash {:.6} mJ -> best {:.6} mJ \
             ({:.1}% saved, {} B of RAM, {} blocks moved)",
            df.device,
            df.frontier.points.len(),
            baseline,
            best_mj,
            100.0 * (1.0 - best_mj / baseline),
            best.model_ram_used,
            best.selected.len(),
        );
    }

    println!();
    println!("device-dominant Pareto set (which part to pick at each budget):");
    for p in &matrix.pareto {
        println!(
            "  >= {:>5} B spare RAM: {:<11} {:.6} mJ",
            p.min_ram_bytes, p.device, p.energy_mj
        );
    }
    Ok(())
}
