//! Bring your own firmware: compile a user-written kernel together with a
//! statically-linked library, optimize it at every optimization level, and
//! see where the paper's library-code limitation bites.
//!
//! The application below calls into a small fixed-point math "library"
//! translation unit.  Library code is opaque to the optimizer (exactly like
//! the statically linked `libgcc` routines in the paper), so the share of
//! time spent inside it bounds the achievable saving.
//!
//! Run with:
//!
//! ```text
//! cargo run -p flashram-core --example custom_benchmark
//! ```

use flashram_core::{OptimizerConfig, RamOptimizer};
use flashram_mcu::Board;
use flashram_minicc::{compile_program, CompileError, OptLevel, SourceUnit};

/// A fixed-point math library the application links against.  It is compiled
/// as a *library* unit: the optimizer will never move these blocks to RAM.
const FIXMATH_LIBRARY: &str = "
    int fx_mul(int a, int b) {
        return (a * b) >> 8;
    }

    int fx_div(int a, int b) {
        if (b == 0) { return 0; }
        return (a << 8) / b;
    }

    int fx_sqrt(int x) {
        if (x <= 0) { return 0; }
        int guess = x;
        for (int i = 0; i < 12; i++) {
            guess = (guess + fx_div(x, guess)) >> 1;
        }
        return guess;
    }
";

/// The application: a toy range-finder pipeline that smooths a sensor trace
/// and computes a fixed-point RMS over a sliding window.
const APPLICATION: &str = "
    int trace[96];

    int smooth(int n) {
        int acc = 0;
        for (int i = 1; i < n - 1; i++) {
            trace[i] = (trace[i - 1] + 2 * trace[i] + trace[i + 1]) >> 2;
            acc += trace[i];
        }
        return acc;
    }

    int window_rms(int start, int len) {
        int sum = 0;
        for (int i = 0; i < len; i++) {
            int v = trace[start + i];
            sum += fx_mul(v << 8, v << 8) >> 8;
        }
        return fx_sqrt(fx_div(sum, len << 8));
    }

    int main() {
        for (int i = 0; i < 96; i++) {
            trace[i] = ((i * 29) % 61) + 4;
        }
        int checksum = 0;
        for (int pass = 0; pass < 6; pass++) {
            checksum += smooth(96);
            for (int w = 0; w + 16 <= 96; w += 8) {
                checksum += window_rms(w, 16);
            }
        }
        return checksum;
    }
";

fn main() -> Result<(), CompileError> {
    let board = Board::stm32vldiscovery();
    let units = [
        SourceUnit::library(FIXMATH_LIBRARY),
        SourceUnit::application(APPLICATION),
    ];

    println!("custom benchmark: sensor pipeline linked against a fixed-point library");
    println!();
    println!(
        "{:>6} {:>10} {:>12} {:>12} {:>12} {:>10} {:>8}",
        "level", "checksum", "energy %", "power %", "time %", "lib share", "blocks"
    );

    for level in OptLevel::ALL {
        let program = compile_program(&units, level)?;
        let before = board.run(&program).expect("baseline run");

        // How much of the execution happens inside library code the
        // optimizer cannot touch?
        let mut library_weight = 0u64;
        let mut total_weight = 0u64;
        for (block, count) in before.profile.iter() {
            let cycles = program.block(block).body_cycles().max(1);
            total_weight += count * cycles;
            if program.functions[block.func.index()].is_library {
                library_weight += count * cycles;
            }
        }
        let lib_share = 100.0 * library_weight as f64 / total_weight.max(1) as f64;

        let placement = RamOptimizer::with_config(OptimizerConfig::default())
            .optimize(&program, &board)
            .expect("placement");
        let after = board.run(&placement.program).expect("optimized run");
        assert_eq!(
            before.return_value, after.return_value,
            "semantics must be preserved"
        );

        let pct = |a: f64, b: f64| 100.0 * (b - a) / a;
        println!(
            "{:>6} {:>10} {:>11.1}% {:>11.1}% {:>11.1}% {:>9.1}% {:>8}",
            level.to_string(),
            before.return_value,
            pct(before.energy_mj, after.energy_mj),
            pct(before.avg_power_mw, after.avg_power_mw),
            pct(before.time_s, after.time_s),
            lib_share,
            placement.selected.len(),
        );
    }

    println!();
    println!("library blocks are pinned to flash, so a large `lib share` limits the saving —");
    println!("the same effect the paper reports for `cubic` and `float_matmult`.");
    Ok(())
}
