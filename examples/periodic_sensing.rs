//! The Section 7 case study as a runnable scenario: a sensor node wakes
//! every `T` seconds, runs an FDCT over a block of samples, and goes back to
//! sleep.  The example optimizes the active region, measures `k_e`/`k_t` in
//! the simulator, and reports the per-period energy and battery-life
//! extension over a sweep of periods.
//!
//! Run with:
//!
//! ```text
//! cargo run -p flashram-core --example periodic_sensing
//! ```

use flashram_beebs::Benchmark;
use flashram_core::{measure_case_study, period_sweep, RamOptimizer};
use flashram_mcu::{Board, PowerModel, SleepScenario};
use flashram_minicc::{CompileError, OptLevel};

fn main() -> Result<(), CompileError> {
    let board = Board::stm32vldiscovery();
    let sleep_mw = PowerModel::stm32f100().sleep_mw;

    // The paper's case study uses the FDCT kernel as the active region.
    let bench = Benchmark::by_name("fdct").expect("fdct is part of the suite");
    let program = bench.compile(OptLevel::O2)?;

    // Optimize the active region and measure both versions on the board.
    let placement = RamOptimizer::new()
        .optimize(&program, &board)
        .expect("placement");
    let measurement = measure_case_study(&board, &program, &placement.program).expect("simulation");

    println!("periodic sensing case study (active region: fdct at O2)");
    println!();
    println!(
        "  active-region energy  E0  = {:.4} mJ",
        measurement.base_energy_mj
    );
    println!(
        "  active-region time    T_A = {:.4} s",
        measurement.base_time_s
    );
    println!(
        "  optimization factors  k_e = {:.3}, k_t = {:.3}",
        measurement.k_e(),
        measurement.k_t()
    );
    println!("  sleep power           P_S = {sleep_mw:.1} mW");
    println!();
    println!("  (the paper measured E0 = 16.9 mJ, T_A = 1.18 s, k_e = 0.825, k_t = 1.33)");
    println!();

    // Sweep the wake-up period over multiples of the active time (Figure 9).
    let multiples = [1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0];
    let series = period_sweep(&measurement, &multiples, sleep_mw);

    println!(
        "  {:>12} {:>16} {:>16} {:>18}",
        "period T (s)", "energy/period", "% of baseline", "battery life gain"
    );
    for ((period, pct), multiple) in series.iter().zip(multiples.iter()) {
        let scenario = SleepScenario {
            period_s: *period,
            sleep_power_mw: sleep_mw,
        };
        let (_, after) = measurement.period_energies_mj(&scenario);
        let extension = measurement.battery_life_extension(&scenario);
        println!(
            "  {:>9.3} x{:<2.0} {:>13.4} mJ {:>15.1}% {:>17.1}%",
            period,
            multiple,
            after,
            pct,
            (extension - 1.0) * 100.0
        );
    }

    // The unintuitive headline of Section 7: even if the optimization had
    // left the active energy unchanged and only slowed the code down, the
    // period energy would still drop, because less of the period is spent
    // burning sleep power on top of an idle core.
    let same_energy = flashram_core::CaseStudyMeasurement {
        opt_energy_mj: measurement.base_energy_mj,
        ..measurement
    };
    let scenario = SleepScenario::with_period(measurement.base_time_s * 2.0);
    let saved = same_energy.energy_saved_mj(&scenario);
    println!();
    println!(
        "  Figure 8 effect: with k_e forced to 1.0 the optimization still saves {saved:.4} mJ per {:.3} s period",
        scenario.period_s
    );
    Ok(())
}
