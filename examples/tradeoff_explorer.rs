//! Explore the energy/time/RAM trade-off space the solver navigates
//! (the Figure 6 experiment, interactively parameterized).
//!
//! The example compiles one benchmark, opens a [`PlacementSession`] — the
//! frontier sweep engine: parameters extracted and the placement ILP built
//! **once**, every subsequent point re-solved in place with moved budget
//! right-hand sides and a warm-started root — and then shows how the
//! solver's choice changes as the two developer knobs move: the RAM budget
//! `R_spare` (Eq. 7) and the allowed slow-down `X_limit` (Eq. 9).  It also
//! enumerates the exact Pareto staircase (every distinct optimal placement
//! between a zero budget and the board's spare RAM) and the brute-force
//! space of the hottest blocks for comparison.
//!
//! Run with (benchmark name optional, default `int_matmult`):
//!
//! ```text
//! cargo run -p flashram-core --example tradeoff_explorer [-- benchmark]
//! ```

use flashram_beebs::Benchmark;
use flashram_core::{evaluate_placement, OptimizerConfig, PlacementSession, RamOptimizer};
use flashram_ir::BlockRef;
use flashram_mcu::Board;
use flashram_minicc::{CompileError, OptLevel};

fn main() -> Result<(), CompileError> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "int_matmult".to_string());
    let bench = Benchmark::by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown benchmark `{name}`; available:");
        for b in Benchmark::all() {
            eprintln!("  {:<16} {}", b.name, b.description);
        }
        std::process::exit(1);
    });

    let board = Board::stm32vldiscovery();
    let program = bench.compile(OptLevel::O2)?;
    let (e_flash, e_ram) = board.power.model_coefficients();

    // One session serves every sweep below: the model is built here, once.
    let mut session = PlacementSession::new(
        &program,
        &board,
        &OptimizerConfig {
            x_limit: 10.0,
            ..OptimizerConfig::default()
        },
    )
    .expect("program fits the part");
    let spare = session.spare_ram();
    let base = session.baseline();

    println!("trade-off explorer: {name} at O2");
    println!(
        "  {} candidate blocks, {} bytes of spare RAM, E_flash = {e_flash:.2} mW, E_ram = {e_ram:.2} mW",
        session.params().blocks.len(),
        spare
    );
    println!();

    // --- Sweep the RAM budget with a relaxed time bound -------------------
    println!("  sweep 1: relaxing the RAM budget (X_limit = 10)");
    println!(
        "  {:>10} {:>9} {:>14} {:>12} {:>12} {:>6}",
        "R_spare", "blocks", "energy (model)", "time ratio", "RAM bytes", "root"
    );
    for budget in [0u32, 32, 64, 128, 256, 512, 1024, 2048, spare] {
        let budget = budget.min(spare);
        let point = session.solve_point(budget, 10.0).expect("solvable");
        println!(
            "  {:>10} {:>9} {:>14.4e} {:>12.3} {:>12} {:>6}",
            budget,
            point.selected.len(),
            point.predicted.energy,
            point.predicted.cycles / base.cycles,
            point.predicted.ram_bytes,
            if point.chained { "warm" } else { "cold" }
        );
    }
    println!();

    // --- Sweep the time bound with the full RAM budget --------------------
    println!("  sweep 2: relaxing the execution-time bound (full RAM budget)");
    println!(
        "  {:>10} {:>9} {:>14} {:>12} {:>12} {:>6}",
        "X_limit", "blocks", "energy (model)", "time ratio", "RAM bytes", "root"
    );
    for x_limit in [1.0, 1.02, 1.05, 1.1, 1.2, 1.4, 1.8, 2.5] {
        let point = session.solve_point(spare, x_limit).expect("solvable");
        println!(
            "  {:>10.2} {:>9} {:>14.4e} {:>12.3} {:>12} {:>6}",
            x_limit,
            point.selected.len(),
            point.predicted.energy,
            point.predicted.cycles / base.cycles,
            point.predicted.ram_bytes,
            if point.chained { "warm" } else { "cold" }
        );
    }
    println!();

    // --- The exact Pareto staircase ---------------------------------------
    let frontier = session.enumerate_frontier(10.0, spare).expect("solvable");
    println!(
        "  exact Pareto staircase: {} distinct optimal placements between 0 and {} bytes{}",
        frontier.points.len(),
        spare,
        if frontier.exact {
            ""
        } else {
            " (not proven optimal)"
        }
    );
    println!(
        "  {:>10} {:>9} {:>14} {:>12}",
        "min RAM", "blocks", "energy (model)", "time ratio"
    );
    for point in &frontier.points {
        println!(
            "  {:>10} {:>9} {:>14.4e} {:>12.3}",
            point.model_ram_used,
            point.selected.len(),
            point.predicted.energy,
            point.predicted.cycles / base.cycles,
        );
    }
    let stats = session.stats();
    println!(
        "  solver effort: {} points, {} chained roots, {} LP pivots ({} in roots)",
        stats.points_solved, stats.chained_roots, stats.lp_pivots, stats.root_pivots
    );
    println!();

    // --- The space itself: every placement of the hottest blocks ----------
    let params = session.params();
    let mut ranked: Vec<(BlockRef, u64)> = params
        .blocks
        .iter()
        .map(|(r, p)| (*r, p.frequency * p.cycles))
        .collect();
    ranked.sort_by_key(|(_, w)| std::cmp::Reverse(*w));
    let hot: Vec<BlockRef> = ranked.iter().take(8).map(|(r, _)| *r).collect();
    let config = session.model().config.clone();
    let mut best = (f64::INFINITY, 0u64);
    let mut worst = (0.0f64, 0u64);
    for mask in 0u64..(1 << hot.len()) {
        let subset: Vec<BlockRef> = hot
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, r)| *r)
            .collect();
        let est = evaluate_placement(params, &subset, &config);
        if est.energy < best.0 {
            best = (est.energy, mask);
        }
        if est.energy > worst.0 {
            worst = (est.energy, mask);
        }
    }
    println!(
        "  exhaustive space over the 8 hottest blocks: {} placements, model energy {:.4e} (best) .. {:.4e} (worst)",
        1u64 << hot.len(),
        best.0,
        worst.0
    );

    // --- And the default configuration, measured for real -----------------
    let placement = RamOptimizer::with_config(OptimizerConfig::default())
        .optimize(&program, &board)
        .expect("placement");
    let before = board.run(&program).expect("baseline run");
    let after = board.run(&placement.program).expect("optimized run");
    println!();
    println!(
        "  default configuration, measured: energy {:+.1}%, power {:+.1}%, time {:+.1}%",
        100.0 * (after.energy_mj - before.energy_mj) / before.energy_mj,
        100.0 * (after.avg_power_mw - before.avg_power_mw) / before.avg_power_mw,
        100.0 * (after.time_s - before.time_s) / before.time_s,
    );
    Ok(())
}
