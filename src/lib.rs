//! Umbrella crate for the flash/RAM energy trade-off reproduction.
//!
//! This workspace reproduces Pallister, Eder and Hollis, *Optimizing the
//! flash-RAM energy trade-off in deeply embedded systems* (CGO 2015).  The
//! pipeline, crate by crate:
//!
//! 1. [`minicc`] compiles mini-C source (the [`beebs`] kernels or your own)
//!    at one of five optimization levels into a machine program;
//! 2. [`ir`] holds that machine program — functions of basic blocks of
//!    [`isa`] instructions — plus the CFG analyses (dominators, natural
//!    loops) behind the static execution-frequency estimate;
//! 3. [`core`] extracts per-block parameters, builds the paper's integer
//!    linear program, solves it with [`ilp`], and relocates the chosen
//!    blocks from flash to RAM, rewriting memory-crossing branches;
//! 4. [`mcu`] simulates the result on any part of the [`device`] database
//!    (an STM32VLDISCOVERY-like board by default) and reports cycles,
//!    energy and average power;
//! 5. [`mod@bench`] wraps all of it into harnesses that regenerate the
//!    paper's tables and figures, batched over [`mcu::BatchRunner`],
//!    including the cross-device placement matrix over every database
//!    entry;
//! 6. [`serve`] turns the optimizer into a long-running concurrent
//!    service: a [`serve::PlacementServer`] with a warm-session cache,
//!    request coalescing, deadlines with greedy degradation, and a
//!    deterministic stress harness (`BENCH_serve.json`).
//!
//! This crate re-exports each layer under a short name and hosts the
//! workspace-level integration tests and examples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use flashram_beebs as beebs;
pub use flashram_bench as bench;
pub use flashram_core as core;
pub use flashram_device as device;
pub use flashram_ilp as ilp;
pub use flashram_ir as ir;
pub use flashram_isa as isa;
pub use flashram_mcu as mcu;
pub use flashram_minicc as minicc;
pub use flashram_serve as serve;
