//! Integration tests for the Section 7 periodic-sensing case study, driven
//! by real measurements from the simulated board rather than the paper's
//! constants.

use flashram_beebs::Benchmark;
use flashram_core::{measure_case_study, period_sweep, CaseStudyMeasurement, RamOptimizer};
use flashram_mcu::{Board, PowerModel, SleepScenario};
use flashram_minicc::OptLevel;

fn measure(name: &str) -> CaseStudyMeasurement {
    let board = Board::stm32vldiscovery();
    let bench = Benchmark::by_name(name).unwrap();
    let program = bench.compile_cached(OptLevel::O2).unwrap();
    let placement = RamOptimizer::new().optimize(&program, &board).unwrap();
    measure_case_study(&board, &program, &placement.program).unwrap()
}

#[test]
fn measured_factors_have_the_papers_shape() {
    for name in ["fdct", "int_matmult", "2dfir"] {
        let m = measure(name);
        assert!(
            m.k_e() <= 1.0 + 1e-9,
            "{name}: the optimization should not increase active energy (k_e = {})",
            m.k_e()
        );
        assert!(
            m.k_t() >= 1.0 - 1e-9,
            "{name}: single-cycle memories mean the code cannot get faster (k_t = {})",
            m.k_t()
        );
        assert!(m.base_energy_mj > 0.0 && m.base_time_s > 0.0);
    }
}

#[test]
fn per_period_energy_always_improves_or_matches() {
    let sleep = PowerModel::stm32f100().sleep_mw;
    for name in ["fdct", "int_matmult"] {
        let m = measure(name);
        for multiple in [1.1, 2.0, 4.0, 8.0, 16.0] {
            let scenario = SleepScenario {
                period_s: m.base_time_s * multiple,
                sleep_power_mw: sleep,
            };
            let (before, after) = m.period_energies_mj(&scenario);
            assert!(
                after <= before + 1e-9,
                "{name} at T = {multiple} T_A: period energy went up ({before} -> {after})"
            );
            assert!(m.battery_life_extension(&scenario) >= 1.0 - 1e-9);
        }
    }
}

#[test]
fn savings_shrink_monotonically_as_the_period_grows() {
    let sleep = PowerModel::stm32f100().sleep_mw;
    let m = measure("fdct");
    let sweep = period_sweep(&m, &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0], sleep);
    assert_eq!(sweep.len(), 6);
    for pair in sweep.windows(2) {
        assert!(
            pair[1].1 >= pair[0].1 - 1e-9,
            "energy percentage must be non-decreasing in the period: {sweep:?}"
        );
    }
    // Every point is a saving (or at worst break-even).
    assert!(sweep.iter().all(|(_, pct)| *pct <= 100.0 + 1e-9));
}

#[test]
fn equation_12_matches_the_direct_period_accounting() {
    let sleep = PowerModel::stm32f100().sleep_mw;
    let m = measure("int_matmult");
    for multiple in [1.5, 3.0, 10.0] {
        let scenario = SleepScenario {
            period_s: m.base_time_s * multiple,
            sleep_power_mw: sleep,
        };
        // Equation 12 computes the saving from (E0, T_A, k_e, k_t); it must
        // agree with subtracting the two Equation 10/11 totals, as long as
        // the device actually sleeps in both configurations.
        let from_equation =
            scenario.energy_saved_mj(m.base_energy_mj, m.base_time_s, m.k_e(), m.k_t());
        let from_totals = m.energy_saved_mj(&scenario);
        assert!(
            (from_equation - from_totals).abs() <= 1e-9 * from_totals.abs().max(1.0),
            "Eq. 12 ({from_equation}) disagrees with the period accounting ({from_totals})"
        );
    }
}

#[test]
fn battery_life_extension_is_largest_for_duty_cycles_near_one() {
    let m = measure("fdct");
    let mut last = f64::INFINITY;
    for multiple in [1.2, 2.0, 4.0, 8.0, 20.0] {
        let ext = m.battery_life_extension(&SleepScenario::with_period(m.base_time_s * multiple));
        assert!(
            ext <= last + 1e-9,
            "extension should shrink as the device sleeps longer: {ext} after {last}"
        );
        assert!(ext >= 1.0 - 1e-9);
        last = ext;
    }
}

#[test]
fn same_energy_longer_time_still_reduces_period_energy() {
    // Force k_e to exactly 1 while keeping the measured slow-down: the
    // Figure 8 thought experiment, applied to real measured timings.
    let measured = measure("2dfir");
    let m = CaseStudyMeasurement {
        opt_energy_mj: measured.base_energy_mj,
        ..measured
    };
    assert!(
        m.k_t() > 1.0,
        "2dfir should slow down under the optimization"
    );
    let scenario = SleepScenario::with_period(m.base_time_s * 3.0);
    let (before, after) = m.period_energies_mj(&scenario);
    assert!(
        after < before,
        "with k_e = 1 and k_t > 1 the period energy must still drop ({before} -> {after})"
    );
}

#[test]
fn paper_constants_reproduce_the_reported_savings() {
    // Sanity-check the analytical model against the numbers printed in the
    // paper (Section 7, Equation 13): E_s ≈ 4.32 mJ and up to 32 % longer
    // battery life at short periods.
    let paper = CaseStudyMeasurement {
        base_energy_mj: 16.9,
        base_time_s: 1.18,
        opt_energy_mj: 16.9 * 0.825,
        opt_time_s: 1.18 * 1.33,
    };
    let scenario = SleepScenario {
        period_s: 10.0,
        sleep_power_mw: 3.5,
    };
    assert!((paper.energy_saved_mj(&scenario) - 4.32).abs() < 0.05);

    let best = paper.battery_life_extension(&SleepScenario {
        period_s: 1.18 * 1.4,
        sleep_power_mw: 3.5,
    });
    assert!(
        best > 1.2 && best < 1.45,
        "short-period extension should be near 32 %, got {best}"
    );
}
