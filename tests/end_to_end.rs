//! End-to-end integration tests: source → compiler → placement optimizer →
//! code transformation → simulated board, across crates.
//!
//! These tests exercise the same pipeline the paper's evaluation uses,
//! checking the headline *shape* of the results (power always drops, the
//! result value never changes, memory budgets hold) rather than absolute
//! numbers.

use flashram_beebs::Benchmark;
use flashram_core::{
    instrumented_blocks, relocated_code_bytes, OptimizerConfig, RamOptimizer, Solver,
};
use flashram_ir::Section;
use flashram_mcu::Board;
use flashram_minicc::OptLevel;

/// A representative subset of the suite that keeps the test quick while
/// covering the interesting cases: a big winner (`int_matmult`), the paper's
/// case-study kernel (`fdct`), a control-flow-heavy kernel (`dijkstra`) and
/// a library-bound one (`cubic`).
const SUBSET: [&str; 4] = ["int_matmult", "fdct", "dijkstra", "cubic"];

#[test]
fn optimizer_preserves_semantics_and_reduces_power_on_benchmarks() {
    let board = Board::stm32vldiscovery();
    for name in SUBSET {
        let bench = Benchmark::by_name(name).unwrap();
        let program = bench.compile_cached(OptLevel::O2).unwrap();
        let before = board.run(&program).unwrap();
        let placement = RamOptimizer::new().optimize(&program, &board).unwrap();
        let after = board.run(&placement.program).unwrap();

        assert_eq!(
            before.return_value, after.return_value,
            "{name}: the optimization changed the program's result"
        );
        assert!(
            after.avg_power_mw <= before.avg_power_mw + 1e-9,
            "{name}: average power must never increase ({} -> {})",
            before.avg_power_mw,
            after.avg_power_mw
        );
        assert!(
            after.time_s + 1e-12 >= before.time_s,
            "{name}: both memories are single-cycle, so RAM placement cannot speed the code up"
        );
    }
}

#[test]
fn transformed_programs_still_fit_the_part() {
    let board = Board::stm32vldiscovery();
    for name in SUBSET {
        let bench = Benchmark::by_name(name).unwrap();
        let program = bench.compile_cached(OptLevel::O2).unwrap();
        let placement = RamOptimizer::new().optimize(&program, &board).unwrap();
        // Loading the transformed program must succeed, i.e. relocated code +
        // data + stack reserve still fit the 8 KB of RAM.
        let run = board.run(&placement.program);
        assert!(
            run.is_ok(),
            "{name}: transformed program no longer loads: {:?}",
            run.err()
        );
        assert!(
            relocated_code_bytes(&placement.program) <= placement.r_spare,
            "{name}: relocated code exceeds the RAM budget"
        );
    }
}

#[test]
fn ram_blocks_and_instrumentation_are_consistent() {
    let board = Board::stm32vldiscovery();
    let bench = Benchmark::by_name("int_matmult").unwrap();
    let program = bench.compile_cached(OptLevel::O2).unwrap();
    let placement = RamOptimizer::new().optimize(&program, &board).unwrap();
    let out = &placement.program;

    // Every selected block is in the RAM section; every other block is not.
    for r in out.block_refs() {
        let expected = if placement.selected.contains(&r) {
            Section::Ram
        } else {
            Section::Flash
        };
        assert_eq!(
            out.block(r).section,
            expected,
            "block {r} in the wrong section"
        );
    }

    // A block is instrumented exactly when one of its successors lives in
    // the other memory (the paper's Eq. 5 membership rule for the set I).
    let instrumented = instrumented_blocks(out);
    for r in out.block_refs() {
        let my_section = out.block(r).section;
        let crossing = out
            .block(r)
            .term
            .successors()
            .iter()
            .any(|s| out.functions[r.func.index()].blocks[s.index()].section != my_section);
        assert_eq!(
            instrumented.contains(&r),
            crossing,
            "block {r}: instrumentation does not match its successor sections"
        );
    }
}

#[test]
fn every_optimization_level_survives_the_pipeline() {
    let board = Board::stm32vldiscovery();
    let bench = Benchmark::by_name("crc32").unwrap();
    for level in OptLevel::ALL {
        let program = bench.compile_cached(level).unwrap();
        let before = board.run(&program).unwrap();
        let placement = RamOptimizer::new().optimize(&program, &board).unwrap();
        let after = board.run(&placement.program).unwrap();
        assert_eq!(before.return_value, after.return_value, "crc32 at {level}");
        assert!(
            after.avg_power_mw <= before.avg_power_mw + 1e-9,
            "crc32 at {level}"
        );
    }
}

#[test]
fn profile_guided_and_static_estimates_agree_on_direction() {
    let board = Board::stm32vldiscovery();
    let bench = Benchmark::by_name("fdct").unwrap();
    let program = bench.compile_cached(OptLevel::O2).unwrap();
    let before = board.run(&program).unwrap();

    let optimizer = RamOptimizer::new();
    let static_placement = optimizer.optimize(&program, &board).unwrap();
    let profiled_placement = optimizer.optimize_with_profile(&program, &board).unwrap();

    let static_run = board.run(&static_placement.program).unwrap();
    let profiled_run = board.run(&profiled_placement.program).unwrap();

    assert_eq!(before.return_value, static_run.return_value);
    assert_eq!(before.return_value, profiled_run.return_value);
    // Figure 5's observation: the static loop-depth estimate is good enough —
    // both variants land in the same direction and the same ballpark.
    assert!(static_run.avg_power_mw < before.avg_power_mw);
    assert!(profiled_run.avg_power_mw < before.avg_power_mw);
    let static_saving = before.energy_mj - static_run.energy_mj;
    let profiled_saving = before.energy_mj - profiled_run.energy_mj;
    assert!(
        (static_saving - profiled_saving).abs() <= 0.5 * before.energy_mj,
        "static ({static_saving} mJ) and profiled ({profiled_saving} mJ) savings diverge wildly"
    );
}

#[test]
fn library_heavy_benchmarks_see_small_savings() {
    let board = Board::stm32vldiscovery();
    let winner = Benchmark::by_name("int_matmult").unwrap();
    let loser = Benchmark::by_name("cubic").unwrap();

    let gain = |bench: &Benchmark| {
        let program = bench.compile_cached(OptLevel::O2).unwrap();
        let before = board.run(&program).unwrap();
        let placement = RamOptimizer::new().optimize(&program, &board).unwrap();
        let after = board.run(&placement.program).unwrap();
        (before.energy_mj - after.energy_mj) / before.energy_mj
    };

    let winner_gain = gain(&winner);
    let loser_gain = gain(&loser);
    assert!(
        winner_gain > loser_gain,
        "int_matmult ({winner_gain:.3}) should save more energy than the library-bound cubic ({loser_gain:.3})"
    );
}

#[test]
fn solver_choice_flows_through_the_public_config() {
    let board = Board::stm32vldiscovery();
    let bench = Benchmark::by_name("sha").unwrap();
    let program = bench.compile_cached(OptLevel::Os).unwrap();
    let before = board.run(&program).unwrap();

    for solver in [Solver::Ilp, Solver::Greedy, Solver::None] {
        let placement = RamOptimizer::with_config(OptimizerConfig {
            solver,
            ..OptimizerConfig::default()
        })
        .optimize(&program, &board)
        .unwrap();
        let after = board.run(&placement.program).unwrap();
        assert_eq!(
            before.return_value, after.return_value,
            "sha with {solver:?}"
        );
        if solver == Solver::None {
            assert!(placement.selected.is_empty());
            assert_eq!(after.cycles(), before.cycles());
        }
    }
}
