//! Property-based integration tests: *any* placement — not just the one the
//! solver picks — must leave program semantics untouched, because the
//! transformation only changes where blocks live and how control transfers
//! between memories.

use flashram_beebs::Benchmark;
use flashram_core::{apply_placement, instrumented_blocks, OptimizerConfig, RamOptimizer};
use flashram_ir::{BlockRef, MachineProgram, Section};
use flashram_mcu::{Board, RunConfig};
use flashram_minicc::{compile_program, OptLevel, SourceUnit};
use proptest::prelude::*;

/// A small zoo of programs with different control-flow shapes: loops,
/// branches, function calls, recursion, global and local arrays.
const PROGRAMS: [&str; 4] = [
    // Nested loops over a global array.
    "
    int grid[36];
    int main() {
        int s = 0;
        for (int i = 0; i < 6; i++) {
            for (int j = 0; j < 6; j++) { grid[i * 6 + j] = i * 7 + j; }
        }
        for (int k = 0; k < 36; k++) { s += grid[k] * ((k % 3) + 1); }
        return s;
    }
    ",
    // Branch-heavy classification loop.
    "
    int classify(int x) {
        if (x < 10) { return 1; }
        if (x < 100) { return 2; }
        if (x % 7 == 0) { return 3; }
        return 4;
    }
    int main() {
        int histogram[5];
        for (int i = 0; i < 5; i++) { histogram[i] = 0; }
        for (int v = 0; v < 300; v += 3) { histogram[classify(v)] += 1; }
        return histogram[1] + 10 * histogram[2] + 100 * histogram[3] + 1000 * histogram[4];
    }
    ",
    // Recursion plus an accumulating loop.
    "
    int fib(int n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }
    int main() {
        int s = 0;
        for (int i = 1; i <= 12; i++) { s += fib(i); }
        return s;
    }
    ",
    // Library + application units (library blocks must never move).
    "
    int main() {
        int acc = 0;
        for (int i = 1; i <= 40; i++) { acc += scale(i, 3) - scale(i, 1); }
        return acc;
    }
    ",
];

const LIBRARY: &str = "int scale(int x, int k) { return x * k + (x >> 1); }";

fn compile(index: usize, level: OptLevel) -> MachineProgram {
    let units: Vec<SourceUnit<'_>> = if index == 3 {
        vec![
            SourceUnit::library(LIBRARY),
            SourceUnit::application(PROGRAMS[index]),
        ]
    } else {
        vec![SourceUnit::application(PROGRAMS[index])]
    };
    compile_program(&units, level).unwrap()
}

fn level_from(index: usize) -> OptLevel {
    OptLevel::ALL[index % OptLevel::ALL.len()]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Any subset of the optimizable blocks, placed in RAM, yields a program
    /// that loads, runs and computes the same result.
    #[test]
    fn arbitrary_placements_preserve_the_result(
        program_index in 0usize..4,
        level_index in 0usize..5,
        selection_bits in any::<u64>(),
    ) {
        let level = level_from(level_index);
        let program = compile(program_index, level);
        let board = Board::stm32vldiscovery();
        let config = RunConfig { max_cycles: 40_000_000 };
        let before = board.run_with_config(&program, &config).unwrap();

        let candidates = program.optimizable_block_refs();
        let selected: Vec<BlockRef> = candidates
            .iter()
            .enumerate()
            .filter(|(i, _)| selection_bits & (1 << (i % 64)) != 0)
            .map(|(_, r)| *r)
            .collect();

        let transformed = apply_placement(&program, &selected);
        let after = board.run_with_config(&transformed, &config).unwrap();
        prop_assert_eq!(before.return_value, after.return_value);
        // Single-cycle memories: relocation can never make the program faster.
        prop_assert!(after.cycles() >= before.cycles());
    }

    /// The optimizer's own placements (over random configurations) preserve
    /// semantics, keep power non-increasing and respect the RAM budget.
    #[test]
    fn optimizer_placements_preserve_the_result(
        program_index in 0usize..4,
        level_index in 0usize..5,
        x_limit in 1.0f64..2.5,
        budget in prop_oneof![Just(None), (0u32..1500).prop_map(Some)],
    ) {
        let level = level_from(level_index);
        let program = compile(program_index, level);
        let board = Board::stm32vldiscovery();
        let before = board.run(&program).unwrap();

        let placement = RamOptimizer::with_config(OptimizerConfig {
            x_limit,
            r_spare: budget,
            ..OptimizerConfig::default()
        })
        .optimize(&program, &board)
        .unwrap();
        let after = board.run(&placement.program).unwrap();

        prop_assert_eq!(before.return_value, after.return_value);
        prop_assert!(after.avg_power_mw <= before.avg_power_mw + 1e-9);
        if let Some(budget) = budget {
            let used: u32 = placement
                .selected
                .iter()
                .map(|r| placement.program.block(*r).size_bytes())
                .sum();
            prop_assert!(used <= budget);
        }
    }

    /// Structural invariants of the transformation, for arbitrary subsets:
    /// selected blocks are in RAM, unselected blocks are in flash, library
    /// blocks never move, and instrumentation appears exactly on
    /// memory-crossing edges.
    #[test]
    fn transformation_invariants_hold(
        program_index in 0usize..4,
        level_index in 0usize..5,
        selection_bits in any::<u64>(),
    ) {
        let level = level_from(level_index);
        let program = compile(program_index, level);
        let candidates = program.optimizable_block_refs();
        let selected: Vec<BlockRef> = candidates
            .iter()
            .enumerate()
            .filter(|(i, _)| selection_bits & (1 << (i % 64)) != 0)
            .map(|(_, r)| *r)
            .collect();
        let out = apply_placement(&program, &selected);

        for r in out.block_refs() {
            let is_library = out.functions[r.func.index()].is_library;
            let in_ram = out.block(r).section == Section::Ram;
            if is_library {
                prop_assert!(!in_ram, "library block {} moved to RAM", r);
            } else {
                prop_assert_eq!(in_ram, selected.contains(&r), "block {} in the wrong section", r);
            }
        }

        let instrumented = instrumented_blocks(&out);
        for r in out.block_refs() {
            let my_section = out.block(r).section;
            let crossing = out
                .block(r)
                .term
                .successors()
                .iter()
                .any(|s| out.functions[r.func.index()].blocks[s.index()].section != my_section);
            prop_assert_eq!(instrumented.contains(&r), crossing, "block {}", r);
        }

        // Applying the same placement twice is idempotent.
        let again = apply_placement(&out, &selected);
        prop_assert_eq!(again, out);
    }
}

/// Every BEEBS kernel survives `apply_placement` unchanged: the checksum
/// `main` returns is identical before and after relocating blocks to RAM,
/// both for the full optimizable set and for an alternating subset (which
/// maximizes memory-crossing edges and therefore instrumentation).
#[test]
fn beebs_kernels_preserve_their_checksum_under_placement() {
    let board = Board::stm32vldiscovery();
    let config = RunConfig {
        max_cycles: 100_000_000,
    };
    for bench in Benchmark::all() {
        let program = bench.compile_cached(OptLevel::O2).unwrap();
        let before = board.run_with_config(&program, &config).unwrap();
        let candidates = program.optimizable_block_refs();

        let all: Vec<BlockRef> = candidates.clone();
        let alternating: Vec<BlockRef> = candidates.iter().step_by(2).copied().collect();
        for (what, selected) in [("all blocks", &all), ("alternating blocks", &alternating)] {
            let transformed = apply_placement(&program, selected);
            let after = board.run_with_config(&transformed, &config).unwrap();
            assert_eq!(
                before.return_value, after.return_value,
                "{} with {what} in RAM changed the checksum",
                bench.name
            );
            assert!(
                after.cycles() >= before.cycles(),
                "{} with {what}: single-cycle memories cannot speed the code up",
                bench.name
            );
        }
    }
}

/// Deterministic exhaustive variant of the property above for one tiny
/// program: every possible placement of its blocks is checked.
#[test]
fn every_placement_of_a_tiny_program_is_correct() {
    let src = "
        int main() {
            int s = 0;
            for (int i = 0; i < 30; i++) { if (i % 2 == 0) { s += i; } else { s -= 1; } }
            return s;
        }
    ";
    let program = compile_program(&[SourceUnit::application(src)], OptLevel::O1).unwrap();
    let board = Board::stm32vldiscovery();
    let before = board.run(&program).unwrap();
    let candidates = program.optimizable_block_refs();
    assert!(
        candidates.len() <= 12,
        "program grew too large for exhaustive placement testing"
    );
    for mask in 0u32..(1 << candidates.len()) {
        let selected: Vec<BlockRef> = candidates
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, r)| *r)
            .collect();
        let transformed = apply_placement(&program, &selected);
        let after = board.run(&transformed).unwrap();
        assert_eq!(
            before.return_value, after.return_value,
            "placement mask {mask:#b} changed the result"
        );
    }
}
