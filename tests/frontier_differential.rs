//! Differential acceptance tests for the frontier sweep engine on the real
//! BEEBS placement models: warm-started chained sweeps must be
//! objective-identical to cold per-budget solves on **every** kernel while
//! spending measurably fewer root pivots, and the enumerated Pareto
//! staircase must hold up under actual simulation.

use flashram::beebs::Benchmark;
use flashram::core::{OptimizerConfig, PlacementScope, PlacementSession};
use flashram::mcu::Board;
use flashram::minicc::OptLevel;

fn session(board: &Board, bench: &Benchmark, x_limit: f64) -> PlacementSession {
    let program = bench.compile_cached(OptLevel::O2).expect("kernel compiles");
    PlacementSession::new(
        &program,
        board,
        &OptimizerConfig {
            x_limit,
            ..OptimizerConfig::default()
        },
    )
    .expect("kernel fits the board")
}

/// The acceptance check of the frontier engine: on every BEEBS kernel, a
/// chained RAM-budget sweep (model built once, roots warm-started through
/// RHS mutation, incumbents seeded) returns exactly the objectives of cold
/// per-budget solves, and its roots pivot strictly less in aggregate.
#[test]
fn warm_sweeps_match_cold_solves_on_every_kernel() {
    let board = Board::stm32vldiscovery();
    let mut chained_root_pivots = 0usize;
    let mut cold_root_pivots = 0usize;
    for bench in Benchmark::all() {
        let mut warm = session(&board, &bench, 1.5);
        let spare = warm.spare_ram();
        let budgets = [0, 64, 128, 512, 2048, spare];
        let warm_points = warm.sweep_ram(&budgets, 1.5);

        let mut cold = session(&board, &bench, 1.5);
        cold.solver.warm_start = false;
        let cold_points = cold.sweep_ram(&budgets, 1.5);

        for ((b, w), (_, c)) in warm_points.iter().zip(&cold_points) {
            let w = w.as_ref().expect("warm point solves");
            let c = c.as_ref().expect("cold point solves");
            assert!(
                (w.objective - c.objective).abs() <= 1e-6 * c.objective.abs().max(1.0),
                "{} at budget {b}: warm {} vs cold {}",
                bench.name,
                w.objective,
                c.objective
            );
            assert!(
                w.proven && c.proven,
                "{}: both modes prove optimality",
                bench.name
            );
        }
        // Every point after the first attempts the chain; a point may fall
        // back to a cold root when the chained vertex branches badly (the
        // bounded-regret guard), so the count is at least one and at most
        // all of them.
        let chained = warm.stats().chained_roots;
        assert!(
            (1..budgets.len()).contains(&chained),
            "{}: {} chained roots of {} points",
            bench.name,
            chained,
            budgets.len()
        );
        assert_eq!(cold.stats().chained_roots, 0);
        chained_root_pivots += warm.stats().root_pivots;
        cold_root_pivots += cold.stats().root_pivots;
    }
    assert!(
        chained_root_pivots < cold_root_pivots,
        "chained roots must pivot measurably less: {chained_root_pivots} vs {cold_root_pivots}"
    );
}

/// The enumerated staircase survives contact with the simulator: every
/// step's placement runs (fanned over the `BatchRunner` pool), preserves
/// semantics, and the RAM-free step reproduces the baseline while the full
/// optimum measurably beats it.
#[test]
fn frontier_steps_validate_by_simulation() {
    let board = Board::stm32vldiscovery();
    let bench = Benchmark::by_name("int_matmult").expect("known kernel");
    let program = bench.compile_cached(OptLevel::O2).expect("kernel compiles");
    let mut s = session(&board, &bench, 1.5);
    let spare = s.spare_ram();
    let frontier = s.enumerate_frontier(1.5, spare).expect("enumerable");
    assert!(frontier.exact);
    assert!(
        frontier.points.len() >= 3,
        "int_matmult has a real staircase"
    );

    let baseline = board.run(&program).expect("baseline runs");
    let validated = frontier.validate(&board, &program, PlacementScope::ApplicationOnly);
    assert_eq!(validated.len(), frontier.points.len());
    for v in &validated {
        let run = v.measured.as_ref().expect("every step runs");
        assert_eq!(
            run.return_value, baseline.return_value,
            "step at {} bytes changed the program result",
            v.min_ram_bytes
        );
    }
    let first = validated.first().unwrap().measured.as_ref().unwrap();
    assert_eq!(
        first.energy_mj, baseline.energy_mj,
        "the zero-RAM step is the baseline program"
    );
    let last = validated.last().unwrap().measured.as_ref().unwrap();
    assert!(
        last.energy_mj < baseline.energy_mj,
        "the full-budget optimum must measurably save energy: {} vs {}",
        last.energy_mj,
        baseline.energy_mj
    );
}
