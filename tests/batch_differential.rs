//! Differential test for the batched simulation substrate: running the
//! BEEBS sweep through `BatchRunner` must be observably indistinguishable —
//! bit-for-bit — from running each kernel one at a time on the same board.
//!
//! This is the workspace-level guarantee the experiment harnesses rely on:
//! `fig*` tables and `BENCH_sim.json` numbers produced by the parallel
//! sweep are exactly the numbers a sequential reproduction would print.

use std::num::NonZeroUsize;

use flashram_beebs::Benchmark;
use flashram_mcu::{BatchRunner, Board, RunConfig, RunError};
use flashram_minicc::OptLevel;

#[test]
fn batched_beebs_sweep_is_bit_identical_to_sequential() {
    let board = Board::stm32vldiscovery();
    let programs: Vec<_> = Benchmark::all()
        .iter()
        .flat_map(|bench| {
            [OptLevel::O2, OptLevel::Os]
                .into_iter()
                .map(|level| bench.compile_cached(level).expect("kernel compiles"))
        })
        .collect();

    let sequential: Vec<_> = programs
        .iter()
        .map(|p| board.run(p).expect("kernel runs"))
        .collect();

    for threads in [1, 3] {
        let runner = BatchRunner::with_threads(board.clone(), NonZeroUsize::new(threads).unwrap());
        let batched = runner.map(&programs, |board, p| board.run(p).expect("kernel runs"));
        assert_eq!(batched.len(), sequential.len());
        for (i, (b, s)) in batched.iter().zip(&sequential).enumerate() {
            assert!(
                b.bits_eq(s),
                "job {i} not bit-identical
batched: {b:?}
sequential: {s:?}"
            );
        }
    }
}

#[test]
fn batched_cycle_budget_sweep_reports_progress_in_errors() {
    let board = Board::stm32vldiscovery();
    let program = Benchmark::by_name("crc32")
        .unwrap()
        .compile_cached(OptLevel::O2)
        .unwrap();
    let full = board.run(&program).expect("kernel runs");

    // Sweep budgets around the true cycle count: undershooting budgets must
    // fail with the executed count just past the limit, overshooting ones
    // must reproduce the unbounded run exactly.
    let budgets = [
        full.cycles() / 4,
        full.cycles() / 2,
        full.cycles() + 1_000,
        full.cycles() * 2,
    ];
    let configs: Vec<RunConfig> = budgets
        .iter()
        .map(|&max_cycles| RunConfig { max_cycles })
        .collect();
    let results = BatchRunner::new(board).run_configs(&program, &configs);

    for (i, (result, &budget)) in results.iter().zip(&budgets).enumerate() {
        if budget < full.cycles() {
            let Err(RunError::CycleLimit { limit, executed }) = result else {
                panic!("budget {budget} (slot {i}) should hit the cycle limit: {result:?}");
            };
            assert_eq!(*limit, budget);
            assert!(
                *executed > budget,
                "slot {i}: executed {executed} must pass the {budget} budget"
            );
        } else {
            let run = result.as_ref().expect("generous budget succeeds");
            assert_eq!(run.cycles(), full.cycles(), "slot {i}");
            assert_eq!(run.return_value, full.return_value, "slot {i}");
        }
    }
}
