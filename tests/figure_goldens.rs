//! Figure-regeneration goldens: the text a `fig*` binary prints is checked
//! against a committed golden file, so a change to the underlying cost
//! model (or to the table formatting) shows up as a reviewable diff
//! instead of silently shifting the reproduced figures.
//!
//! This starts the ROADMAP item with the cheapest fully-deterministic
//! figure — the Figure 4 instrumentation-cost table, whose numbers come
//! straight from the ISA cost model with no simulation or solver in the
//! loop.  To regenerate after an intentional change:
//!
//! ```sh
//! cargo run --release -p flashram-bench --bin fig4_instrumentation_costs \
//!     > tests/goldens/fig4_instrumentation_costs.txt
//! ```

#[test]
fn fig4_table_matches_committed_golden() {
    let golden = include_str!("goldens/fig4_instrumentation_costs.txt");
    let printed = flashram_bench::figure4_text();
    assert_eq!(
        printed, golden,
        "fig4_instrumentation_costs output changed; if intentional, \
         regenerate tests/goldens/fig4_instrumentation_costs.txt"
    );
}
