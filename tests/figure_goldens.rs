//! Figure-regeneration goldens: the text a `fig*` binary prints is checked
//! against a committed golden file, so a change to the underlying cost
//! model, solver, or table formatting shows up as a reviewable diff
//! instead of silently shifting the reproduced figures.
//!
//! # Tolerance policy
//!
//! The comparisons are **exact string equality**, deliberately: everything
//! behind these figures is deterministic in-process — integer block
//! parameters, a deterministic simulator (bit-identical between engines
//! and across the batch pool), and a deterministic branch-and-bound search
//! — and the golden files were verified byte-identical between dev and
//! release builds.  There is no run-to-run noise to tolerate.
//!
//! What *can* legitimately move a golden is an intentional change to
//! solver heuristics (pricing, branching, warm-start policy): the
//! placement models are degenerate, so several placements can share the
//! optimal objective and a heuristic change may swap which one is
//! reported.  When that happens, verify that the *objective-bearing*
//! columns (energy, cycles) moved only where a real model change explains
//! it — tie-break churn shifts `ram bytes`/`blocks` but not energy — and
//! regenerate:
//!
//! ```sh
//! cargo run --release -p flashram-bench --bin fig1_instruction_power \
//!     > tests/goldens/fig1_instruction_power.txt
//! cargo run --release -p flashram-bench --bin fig4_instrumentation_costs \
//!     > tests/goldens/fig4_instrumentation_costs.txt
//! cargo run --release -p flashram-bench --bin fig6_tradeoff_space \
//!     > tests/goldens/fig6_tradeoff_space.txt
//! cargo run --release -p flashram-bench --bin fig5_beebs_results \
//!     | sed -n '/^Section 6 averages/,$p' > tests/goldens/fig5_averages.txt
//! cargo run --release -p flashram-bench --bin fig9_case_study \
//!     > tests/goldens/fig9_case_study.txt
//! cargo run --release -p flashram-bench --bin device_matrix \
//!     -- --no-fail crc32 fdct int_matmult \
//!     | sed '/^kernels where/,$d' > tests/goldens/device_matrix.txt
//! ```

use flashram::mcu::Board;
use flashram::minicc::OptLevel;

#[test]
fn fig4_table_matches_committed_golden() {
    let golden = include_str!("goldens/fig4_instrumentation_costs.txt");
    let printed = flashram_bench::figure4_text();
    assert_eq!(
        printed, golden,
        "fig4_instrumentation_costs output changed; if intentional, \
         regenerate tests/goldens/fig4_instrumentation_costs.txt"
    );
}

/// The Figure 6 report — subset enumeration, both constraint sweeps and the
/// exact Pareto staircase, all produced by the frontier sweep engine — must
/// match the committed golden byte for byte.
#[test]
fn fig6_tradeoff_space_matches_committed_golden() {
    let golden = include_str!("goldens/fig6_tradeoff_space.txt");
    let board = Board::stm32vldiscovery();
    let printed = flashram_bench::figure6_text(&board, &["int_matmult", "fdct"], OptLevel::O2, 10);
    assert_eq!(
        printed, golden,
        "fig6_tradeoff_space output changed; see the tolerance policy in \
         this file, then regenerate tests/goldens/fig6_tradeoff_space.txt"
    );
}

/// The Section 6 averages block of the Figure 5 binary (the headline
/// numbers of the paper's evaluation) against its golden.  The simulation
/// sweep behind it is bit-deterministic, so this is exact too.
#[test]
fn fig5_averages_match_committed_golden() {
    let golden = include_str!("goldens/fig5_averages.txt");
    let board = Board::stm32vldiscovery();
    let results = flashram_bench::beebs_sweep(&board, &[OptLevel::O2, OptLevel::Os], 1.5);
    let printed = flashram_bench::figure5_averages_text(&results);
    assert_eq!(
        printed, golden,
        "fig5 averages changed; see the tolerance policy in this file, \
         then regenerate tests/goldens/fig5_averages.txt"
    );
}

/// The Figure 1 micro-benchmark table (per-instruction power from flash
/// and RAM) against its golden.  The loops are deterministic simulator
/// runs, so this is exact.
#[test]
fn fig1_instruction_power_matches_committed_golden() {
    let golden = include_str!("goldens/fig1_instruction_power.txt");
    let board = Board::stm32vldiscovery();
    let printed = flashram_bench::figure1_text(&board);
    assert_eq!(
        printed, golden,
        "fig1_instruction_power output changed; if intentional, \
         regenerate tests/goldens/fig1_instruction_power.txt"
    );
}

/// The cross-device placement matrix (a kernel subset of the
/// `device_matrix` binary's summary table) against its golden: per-device
/// exact frontiers, the merged device-dominant Pareto set, and the
/// tight-probe divergence between the wait-state part and the zero-wait
/// reference.  Everything behind it is a deterministic ILP enumeration, so
/// the comparison is exact; the same tie-break caveat as the other solver
/// goldens applies.
#[test]
fn device_matrix_matches_committed_golden() {
    let golden = include_str!("goldens/device_matrix.txt");
    let (kernels, failures) =
        flashram::bench::device_matrix(&["crc32", "fdct", "int_matmult"], OptLevel::O2, 1.5);
    assert_eq!(failures, Vec::<String>::new(), "device matrix acceptance");
    let printed = flashram::bench::device_matrix_text(&kernels);
    assert_eq!(
        printed, golden,
        "device_matrix output changed; see the tolerance policy in this \
         file, then regenerate tests/goldens/device_matrix.txt"
    );
}

/// The Figure 9 / Section 7 case-study report against its golden.  The
/// measured factors come from deterministic simulation and the placement
/// ILP; tie-break churn in the solver cannot move them because the series
/// reports energy ratios of the *chosen* placement, so any change here is
/// a real model change.
#[test]
fn fig9_case_study_matches_committed_golden() {
    let golden = include_str!("goldens/fig9_case_study.txt");
    let board = Board::stm32vldiscovery();
    let printed = flashram_bench::figure9_text(
        &board,
        &["fdct", "int_matmult", "2dfir"],
        OptLevel::O2,
        &[1.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 16.0],
    );
    assert_eq!(
        printed, golden,
        "fig9_case_study output changed; see the tolerance policy in this \
         file, then regenerate tests/goldens/fig9_case_study.txt"
    );
}
