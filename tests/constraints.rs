//! Integration tests for the developer-facing constraints of the model:
//! the RAM budget `R_spare` (Eq. 7) and the execution-time bound `X_limit`
//! (Eq. 9), plus optimality checks of the branch-and-bound solver against
//! exhaustive enumeration on small instances.

use flashram_core::{
    evaluate_placement, extract_params, FrequencySource, ModelConfig, OptimizerConfig,
    PlacementModel, RamOptimizer, Solver,
};
use flashram_ilp::{BranchBound, ExhaustiveSolver};
use flashram_ir::MachineProgram;
use flashram_mcu::Board;
use flashram_minicc::{compile_program, OptLevel, SourceUnit};

const KERNEL: &str = "
    int table[32];
    int main() {
        for (int i = 0; i < 32; i++) { table[i] = i * i + 3; }
        int acc = 0;
        for (int rep = 0; rep < 25; rep++) {
            for (int i = 0; i < 32; i++) {
                if (table[i] % 5 == 0) { acc += table[i]; } else { acc -= i; }
            }
        }
        return acc;
    }
";

fn program(level: OptLevel) -> MachineProgram {
    compile_program(&[SourceUnit::application(KERNEL)], level).unwrap()
}

fn board() -> Board {
    Board::stm32vldiscovery()
}

#[test]
fn measured_ram_usage_respects_every_budget() {
    let board = board();
    let prog = program(OptLevel::O2);
    for budget in [0u32, 8, 24, 64, 200, 600] {
        let placement = RamOptimizer::with_config(OptimizerConfig {
            r_spare: Some(budget),
            ..OptimizerConfig::default()
        })
        .optimize(&prog, &board)
        .unwrap();
        let used: u32 = placement
            .selected
            .iter()
            .map(|r| placement.program.block(*r).size_bytes())
            .sum();
        assert!(
            used <= budget,
            "budget {budget}: placement uses {used} bytes"
        );
        if budget == 0 {
            assert!(placement.selected.is_empty());
        }
    }
}

#[test]
fn measured_slowdown_respects_the_time_factor() {
    let board = board();
    let prog = program(OptLevel::O2);
    let base = board.run(&prog).unwrap();
    for x_limit in [1.0, 1.05, 1.15, 1.3, 1.6, 2.0] {
        let placement = RamOptimizer::with_config(OptimizerConfig {
            x_limit,
            ..OptimizerConfig::default()
        })
        .optimize(&prog, &board)
        .unwrap();
        let run = board.run(&placement.program).unwrap();
        let ratio = run.cycles() as f64 / base.cycles() as f64;
        // The model bounds the *estimated* cycle growth; the measured growth
        // tracks it closely but is not exactly the same quantity (the static
        // frequency estimate is approximate), so allow a modest margin.
        assert!(
            ratio <= x_limit * 1.15 + 0.02,
            "X_limit {x_limit}: measured slowdown {ratio:.3}"
        );
        assert_eq!(base.return_value, run.return_value);
    }
}

#[test]
fn relaxing_the_ram_budget_never_hurts_the_model_energy() {
    let prog = program(OptLevel::O2);
    let params = extract_params(&prog, &FrequencySource::default());
    let (e_flash, e_ram) = board().power.model_coefficients();
    let mut last = f64::INFINITY;
    for budget in [0u32, 16, 48, 96, 192, 384, 768, 1536] {
        let config = ModelConfig {
            x_limit: 2.0,
            r_spare: budget,
            e_flash,
            e_ram,
        };
        let model = PlacementModel::build(&params, &config);
        let solution = BranchBound::new().solve(&model.problem).unwrap();
        let est = evaluate_placement(&params, &model.selected_blocks(&solution), &config);
        assert!(
            est.energy <= last + 1e-6,
            "budget {budget}: model energy {:.4} worse than the tighter budget's {:.4}",
            est.energy,
            last
        );
        assert!(est.ram_bytes <= budget);
        last = est.energy;
    }
}

#[test]
fn relaxing_the_time_bound_never_hurts_the_model_energy() {
    let prog = program(OptLevel::Os);
    let params = extract_params(&prog, &FrequencySource::default());
    let (e_flash, e_ram) = board().power.model_coefficients();
    let base = evaluate_placement(
        &params,
        &[],
        &ModelConfig {
            x_limit: 1.0,
            r_spare: 4096,
            e_flash,
            e_ram,
        },
    );
    let mut last = f64::INFINITY;
    for x_limit in [1.0, 1.05, 1.1, 1.25, 1.5, 2.0, 3.0] {
        let config = ModelConfig {
            x_limit,
            r_spare: 4096,
            e_flash,
            e_ram,
        };
        let model = PlacementModel::build(&params, &config);
        let solution = BranchBound::new().solve(&model.problem).unwrap();
        let est = evaluate_placement(&params, &model.selected_blocks(&solution), &config);
        assert!(
            est.energy <= last + 1e-6,
            "X_limit {x_limit} made the model energy worse"
        );
        assert!(
            est.cycles <= x_limit * base.cycles + 1e-6,
            "X_limit {x_limit}: estimated cycles {} exceed the bound {}",
            est.cycles,
            x_limit * base.cycles
        );
        last = est.energy;
    }
}

#[test]
fn branch_and_bound_matches_exhaustive_enumeration_on_small_models() {
    // A deliberately small function so 3 binaries per block stays within the
    // exhaustive solver's reach.
    let src = "
        int main() {
            int s = 0;
            for (int i = 0; i < 60; i++) { s += i * 7; }
            return s;
        }
    ";
    let prog = compile_program(&[SourceUnit::application(src)], OptLevel::O1).unwrap();
    let params = extract_params(&prog, &FrequencySource::default());
    let (e_flash, e_ram) = board().power.model_coefficients();
    for (r_spare, x_limit) in [(64u32, 1.5f64), (512, 1.1), (4096, 2.0), (0, 1.5)] {
        let config = ModelConfig {
            x_limit,
            r_spare,
            e_flash,
            e_ram,
        };
        let model = PlacementModel::build(&params, &config);
        let bnb = BranchBound::new().solve(&model.problem).unwrap();
        let exact = ExhaustiveSolver::new().solve(&model.problem).unwrap();
        assert!(
            (bnb.objective - exact.objective).abs() <= 1e-6 * exact.objective.abs().max(1.0),
            "R_spare={r_spare}, X_limit={x_limit}: branch-and-bound {} vs exhaustive {}",
            bnb.objective,
            exact.objective
        );
    }
}

#[test]
fn greedy_solutions_are_feasible_but_never_better_than_ilp() {
    let board = board();
    let prog = program(OptLevel::O2);
    for budget in [64u32, 256, 1024] {
        let config = OptimizerConfig {
            r_spare: Some(budget),
            ..OptimizerConfig::default()
        };
        let ilp = RamOptimizer::with_config(OptimizerConfig {
            solver: Solver::Ilp,
            ..config.clone()
        })
        .optimize(&prog, &board)
        .unwrap();
        let greedy = RamOptimizer::with_config(OptimizerConfig {
            solver: Solver::Greedy,
            ..config
        })
        .optimize(&prog, &board)
        .unwrap();
        let greedy_used: u32 = greedy
            .selected
            .iter()
            .map(|r| greedy.program.block(*r).size_bytes())
            .sum();
        assert!(
            greedy_used <= budget,
            "greedy placement violates the RAM budget"
        );
        assert!(
            ilp.predicted.energy <= greedy.predicted.energy + 1e-6,
            "budget {budget}: greedy model energy {} beats the ILP's {}",
            greedy.predicted.energy,
            ilp.predicted.energy
        );
    }
}

#[test]
fn x_limit_of_one_still_permits_free_moves() {
    // With X_limit = 1.0 the solver may only pick placements with zero cycle
    // overhead; such placements exist (e.g. clusters whose internal edges
    // never cross memories and whose blocks contain no loads), so the chosen
    // set must not slow the estimate down at all.
    let prog = program(OptLevel::O2);
    let params = extract_params(&prog, &FrequencySource::default());
    let (e_flash, e_ram) = board().power.model_coefficients();
    let config = ModelConfig {
        x_limit: 1.0,
        r_spare: 4096,
        e_flash,
        e_ram,
    };
    let model = PlacementModel::build(&params, &config);
    let solution = BranchBound::new().solve(&model.problem).unwrap();
    let est = evaluate_placement(&params, &model.selected_blocks(&solution), &config);
    let base = evaluate_placement(&params, &[], &config);
    assert!(est.cycles <= base.cycles + 1e-9);
    assert!(est.energy <= base.energy + 1e-9);
}
