//! Differential test for the optimized execution engines at workspace
//! level: for every BEEBS kernel — plain and placement-optimized — every
//! engine behind [`Board::run_with_engine`] (decoded, threaded dispatch,
//! tiered superblock) must be observably indistinguishable, bit-for-bit,
//! from the IR-walking reference interpreter.
//!
//! This is the guarantee that lets every harness in `flashram-bench` (and
//! every downstream experiment) run on the fast engines by default: the
//! numbers they print are exactly the numbers the reference semantics
//! produce.

use flashram_beebs::Benchmark;
use flashram_core::RamOptimizer;
use flashram_mcu::{Board, Engine, RunConfig, RunError, RunResult};
use flashram_minicc::OptLevel;

/// The engines under test — everything except the reference itself.
const FAST_ENGINES: [Engine; 3] = [Engine::Decoded, Engine::Threaded, Engine::Superblock];

fn assert_bit_identical(engine: &RunResult, reference: &RunResult, what: &str) {
    assert!(
        engine.bits_eq(reference),
        "{what}: results diverge\nengine: {engine:?}\nreference: {reference:?}"
    );
}

/// Run `program` under `config` on the reference and every fast engine,
/// asserting bitwise agreement (results and errors alike).
fn assert_engines_match(
    board: &Board,
    program: &flashram_ir::MachineProgram,
    config: &RunConfig,
    what: &str,
) {
    let reference = board.run_reference_with_config(program, config);
    for engine in FAST_ENGINES {
        let result = board.run_with_engine(program, config, engine);
        match (&result, &reference) {
            (Ok(a), Ok(b)) => assert_bit_identical(a, b, &format!("{what} [{engine}]")),
            (Err(a), Err(b)) => assert_eq!(a, b, "{what} [{engine}]: errors diverge"),
            other => panic!("{what} [{engine}]: engines disagree: {other:?}"),
        }
    }
}

#[test]
fn all_engines_match_reference_on_all_beebs_kernels() {
    let board = Board::stm32vldiscovery();
    for bench in Benchmark::all() {
        for level in [OptLevel::O2, OptLevel::Os] {
            let program = bench.compile_cached(level).expect("kernel compiles");
            assert_engines_match(
                &board,
                &program,
                &RunConfig::default(),
                &format!("{} {level}", bench.name),
            );
        }
    }
}

/// Placement-optimized kernels exercise the paths the plain kernels do
/// not: RAM-resident blocks (contention charges) and the indirect
/// long-range terminators the transformation substitutes.
#[test]
fn all_engines_match_reference_on_optimized_kernels() {
    let board = Board::stm32vldiscovery();
    for name in ["int_matmult", "fdct", "crc32"] {
        let bench = Benchmark::by_name(name).expect("known kernel");
        let program = bench.compile_cached(OptLevel::O2).expect("kernel compiles");
        let placement = RamOptimizer::new()
            .optimize(&program, &board)
            .expect("placement succeeds");
        assert!(
            !placement.selected.is_empty(),
            "{name}: optimizer should move blocks to RAM"
        );
        assert_engines_match(
            &board,
            &placement.program,
            &RunConfig::default(),
            &format!("{name} optimized"),
        );
    }
}

/// The engines agree on `CycleLimit { limit, executed }` under a budget
/// that fires mid-run — including budgets that land while the superblock
/// tier is active on a long-running kernel.
#[test]
fn all_engines_match_reference_cycle_limits_on_beebs() {
    let board = Board::stm32vldiscovery();
    let bench = Benchmark::by_name("crc32").expect("known kernel");
    let program = bench.compile_cached(OptLevel::O2).expect("kernel compiles");
    let total = board.run(&program).expect("full run").cycles();
    let mut limited = 0;
    // `total - 1` is the interesting edge: the budget check fires only at
    // chunk entry, so a run whose final chunk overshoots by one cycle
    // still completes — in every engine, identically.  The mid-range
    // budgets land well after the hot loop tiers up, so they expire while
    // superblocks are executing.
    for limit in [
        0,
        1,
        total / 3,
        total / 2,
        total * 2 / 3,
        total * 9 / 10,
        total - 1,
        total,
    ] {
        let config = RunConfig { max_cycles: limit };
        let reference = board.run_reference_with_config(&program, &config);
        if matches!(reference, Err(RunError::CycleLimit { .. })) {
            limited += 1;
        }
        for engine in FAST_ENGINES {
            let result = board.run_with_engine(&program, &config, engine);
            match (&result, &reference) {
                (
                    Err(RunError::CycleLimit {
                        limit: dl,
                        executed: de,
                    }),
                    Err(RunError::CycleLimit {
                        limit: rl,
                        executed: re,
                    }),
                ) => assert_eq!(
                    (dl, de),
                    (rl, re),
                    "limit {limit} [{engine}]: CycleLimit diverges"
                ),
                (Ok(d), Ok(r)) => assert_bit_identical(d, r, &format!("limit {limit} [{engine}]")),
                other => panic!("limit {limit} [{engine}]: engines disagree: {other:?}"),
            }
        }
    }
    assert!(limited >= 5, "the tight budgets must actually fire");
}

/// `BatchRunner::run_configs` decodes once and shares the decoded program
/// across the sweep; the results must still match per-config `Board::run`
/// calls bitwise.
#[test]
fn shared_decode_in_run_configs_matches_independent_runs() {
    let board = Board::stm32vldiscovery();
    let bench = Benchmark::by_name("sha").expect("known kernel");
    let program = bench.compile_cached(OptLevel::O2).expect("kernel compiles");
    let total = board.run(&program).expect("full run").cycles();
    let configs = vec![
        RunConfig { max_cycles: 100 },
        RunConfig::default(),
        RunConfig {
            max_cycles: total / 2,
        },
        RunConfig { max_cycles: total },
    ];
    let runner = flashram_mcu::BatchRunner::new(board.clone());
    let shared = runner.run_configs(&program, &configs);
    for (config, got) in configs.iter().zip(&shared) {
        let independent = board.run_with_config(&program, config);
        match (got, &independent) {
            (Ok(a), Ok(b)) => assert_bit_identical(a, b, "shared decode"),
            (Err(a), Err(b)) => assert_eq!(a, b, "shared decode errors"),
            other => panic!("shared vs independent diverge: {other:?}"),
        }
    }
}

/// `BatchRunner::run_configs_engine` shares one prepared program per
/// engine across a sweep; every slot must match a fresh independent run on
/// the same engine, for every engine.
#[test]
fn shared_prepare_in_run_configs_engine_matches_independent_runs() {
    let board = Board::stm32vldiscovery();
    let bench = Benchmark::by_name("dijkstra").expect("known kernel");
    let program = bench.compile_cached(OptLevel::Os).expect("kernel compiles");
    let total = board.run(&program).expect("full run").cycles();
    let configs = vec![
        RunConfig { max_cycles: 100 },
        RunConfig {
            max_cycles: total / 2,
        },
        RunConfig::default(),
    ];
    let runner = flashram_mcu::BatchRunner::new(board.clone());
    for engine in Engine::ALL {
        let shared = runner.run_configs_engine(&program, &configs, engine);
        for (config, got) in configs.iter().zip(&shared) {
            let independent = board.run_with_engine(&program, config, engine);
            match (got, &independent) {
                (Ok(a), Ok(b)) => assert_bit_identical(a, b, &format!("{engine} shared")),
                (Err(a), Err(b)) => assert_eq!(a, b, "{engine} shared errors"),
                other => panic!("{engine}: shared vs independent diverge: {other:?}"),
            }
        }
    }
}
