//! Differential test for the decoded execution engine at workspace level:
//! for every BEEBS kernel — plain and placement-optimized — the decoded
//! engine behind `Board::run` must be observably indistinguishable,
//! bit-for-bit, from the IR-walking reference interpreter.
//!
//! This is the guarantee that lets every harness in `flashram-bench` (and
//! every downstream experiment) run on the decoded engine by default: the
//! numbers they print are exactly the numbers the reference semantics
//! produce.

use flashram_beebs::Benchmark;
use flashram_core::RamOptimizer;
use flashram_mcu::{Board, RunConfig, RunError, RunResult};
use flashram_minicc::OptLevel;

fn assert_bit_identical(decoded: &RunResult, reference: &RunResult, what: &str) {
    assert!(
        decoded.bits_eq(reference),
        "{what}: results diverge\ndecoded: {decoded:?}\nreference: {reference:?}"
    );
}

#[test]
fn decoded_engine_matches_reference_on_all_beebs_kernels() {
    let board = Board::stm32vldiscovery();
    for bench in Benchmark::all() {
        for level in [OptLevel::O2, OptLevel::Os] {
            let program = bench.compile_cached(level).expect("kernel compiles");
            let decoded = board.run(&program).expect("decoded run");
            let reference = board.run_reference(&program).expect("reference run");
            assert_bit_identical(&decoded, &reference, &format!("{} {level}", bench.name));
        }
    }
}

/// Placement-optimized kernels exercise the paths the plain kernels do
/// not: RAM-resident blocks (contention charges) and the indirect
/// long-range terminators the transformation substitutes.
#[test]
fn decoded_engine_matches_reference_on_optimized_kernels() {
    let board = Board::stm32vldiscovery();
    for name in ["int_matmult", "fdct", "crc32"] {
        let bench = Benchmark::by_name(name).expect("known kernel");
        let program = bench.compile_cached(OptLevel::O2).expect("kernel compiles");
        let placement = RamOptimizer::new()
            .optimize(&program, &board)
            .expect("placement succeeds");
        assert!(
            !placement.selected.is_empty(),
            "{name}: optimizer should move blocks to RAM"
        );
        let decoded = board.run(&placement.program).expect("decoded run");
        let reference = board
            .run_reference(&placement.program)
            .expect("reference run");
        assert_bit_identical(&decoded, &reference, &format!("{name} optimized"));
    }
}

/// The engines agree on `CycleLimit { limit, executed }` under a budget
/// that fires mid-run.
#[test]
fn decoded_engine_matches_reference_cycle_limits_on_beebs() {
    let board = Board::stm32vldiscovery();
    let bench = Benchmark::by_name("crc32").expect("known kernel");
    let program = bench.compile_cached(OptLevel::O2).expect("kernel compiles");
    let total = board.run(&program).expect("full run").cycles();
    let mut limited = 0;
    // `total - 1` is the interesting edge: the budget check fires only at
    // block entry, so a run whose final block overshoots by one cycle
    // still completes — in both engines, identically.
    for limit in [0, 1, total / 3, total / 2, total - 1, total] {
        let config = RunConfig { max_cycles: limit };
        let decoded = board.run_with_config(&program, &config);
        let reference = board.run_reference_with_config(&program, &config);
        match (&decoded, &reference) {
            (
                Err(RunError::CycleLimit {
                    limit: dl,
                    executed: de,
                }),
                Err(RunError::CycleLimit {
                    limit: rl,
                    executed: re,
                }),
            ) => {
                assert_eq!((dl, de), (rl, re), "limit {limit}: CycleLimit diverges");
                limited += 1;
            }
            (Ok(d), Ok(r)) => assert_bit_identical(d, r, &format!("limit {limit}")),
            other => panic!("limit {limit}: engines disagree: {other:?}"),
        }
    }
    assert!(limited >= 3, "the tight budgets must actually fire");
}

/// `BatchRunner::run_configs` decodes once and shares the decoded program
/// across the sweep; the results must still match per-config `Board::run`
/// calls bitwise.
#[test]
fn shared_decode_in_run_configs_matches_independent_runs() {
    let board = Board::stm32vldiscovery();
    let bench = Benchmark::by_name("sha").expect("known kernel");
    let program = bench.compile_cached(OptLevel::O2).expect("kernel compiles");
    let total = board.run(&program).expect("full run").cycles();
    let configs = vec![
        RunConfig { max_cycles: 100 },
        RunConfig::default(),
        RunConfig {
            max_cycles: total / 2,
        },
        RunConfig { max_cycles: total },
    ];
    let runner = flashram_mcu::BatchRunner::new(board.clone());
    let shared = runner.run_configs(&program, &configs);
    for (config, got) in configs.iter().zip(&shared) {
        let independent = board.run_with_config(&program, config);
        match (got, &independent) {
            (Ok(a), Ok(b)) => assert_bit_identical(a, b, "shared decode"),
            (Err(a), Err(b)) => assert_eq!(a, b, "shared decode errors"),
            other => panic!("shared vs independent diverge: {other:?}"),
        }
    }
}
