//! A minimal, dependency-free stand-in for the [`criterion`] benchmark
//! harness.
//!
//! The build environment for this repository has no network access, so the
//! real `criterion` cannot be fetched from crates.io.  This crate implements
//! the subset of its API that the workspace's benches use — [`Criterion`],
//! [`Bencher::iter`], [`criterion_group!`] and [`criterion_main!`] — with a
//! simple mean-of-N timing loop instead of criterion's statistical analysis.
//! Timings are printed to stdout in a `name ... time: [...]` format so the
//! benches stay useful for eyeballing the perf trajectory.
//!
//! [`criterion`]: https://crates.io/crates/criterion

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver: holds configuration and runs registered functions.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Time `f` (one warm-up sample plus `sample_size` timed samples) and
    /// print the mean, minimum and maximum sample times.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
        };
        f(&mut bencher); // Warm-up, also priming lazy state.

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            samples.push(bencher.elapsed);
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        println!("{name:<40} time: [{min:>10.2?} {mean:>10.2?} {max:>10.2?}]");
        self
    }
}

/// Passed to each benchmark closure; [`Bencher::iter`] times the hot loop.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Time one execution of `routine` and accumulate it into the sample.
    pub fn iter<T, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> T,
    {
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
    }
}

/// Group benchmark functions, mirroring criterion's long and short forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generate the bench `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
