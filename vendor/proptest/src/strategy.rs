//! The [`Strategy`] trait and the combinators the workspace's tests use.

use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type from a random stream.
///
/// Unlike the real proptest there is no shrinking: a strategy is just a
/// deterministic function of the RNG state.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Build a recursive strategy: `self` generates the leaves and `recurse`
    /// wraps an inner strategy into branches, up to `depth` levels deep.
    ///
    /// The `_desired_size` and `_expected_branch_size` tuning knobs of the
    /// real crate are accepted for signature compatibility but unused.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut strat = self.boxed();
        for _ in 0..depth {
            let deeper = recurse(strat.clone()).boxed();
            strat = Union::new(vec![strat, deeper]).boxed();
        }
        strat
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Always produce a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.generate(rng))
    }
}

/// The strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Choose uniformly among several strategies (the [`prop_oneof!`] macro).
///
/// [`prop_oneof!`]: crate::prop_oneof
#[derive(Clone)]
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given non-empty list of strategies.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let index = rng.index(self.options.len());
        self.options[index].generate(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128) - (self.start as i128);
                assert!(span > 0, "empty range strategy");
                (self.start as i128 + (rng.next_u64() as i128).rem_euclid(span)) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = hi - lo + 1;
                (lo + (rng.next_u64() as i128).rem_euclid(span)) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.next_f64() * (self.end() - self.start())
    }
}

macro_rules! tuple_strategies {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
