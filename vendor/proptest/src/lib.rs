//! A minimal, dependency-free stand-in for the [`proptest`] crate.
//!
//! The build environment for this repository has no network access, so the
//! real `proptest` cannot be fetched from crates.io.  This crate implements
//! the subset of its API that the workspace's property tests use:
//!
//! * the [`Strategy`](strategy::Strategy) trait with `prop_map`, `prop_flat_map`,
//!   `prop_recursive` and `boxed`,
//! * strategies for integer and float ranges, tuples, [`Just`](strategy::Just),
//!   [`any`](arbitrary::any) and [`collection::vec`],
//! * the [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`],
//!   [`prop_assert_ne!`] and [`prop_oneof!`] macros,
//! * a [`ProptestConfig`](test_runner::ProptestConfig) carrying the case
//!   count.
//!
//! Unlike the real crate it does **not** shrink failing inputs; it reports
//! the failing assertion and the deterministic case number instead.  Every
//! test's random stream is seeded from its fully qualified name, so runs are
//! reproducible across machines and invocations.
//!
//! [`proptest`]: https://crates.io/crates/proptest

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-import surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirror of `proptest::prelude::prop`, so tests can write
    /// `prop::collection::vec(...)`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Define property tests.
///
/// Supports an optional leading `#![proptest_config(...)]` attribute and any
/// number of `fn name(arg in strategy, ...) { body }` items, each annotated
/// with `#[test]` (and optional doc comments) exactly as with the real crate.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::from_seed(
                $crate::test_runner::seed_from_name(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                )),
            );
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    ::std::panic!(
                        "proptest case {}/{} of `{}` failed: {}",
                        case + 1,
                        config.cases,
                        stringify!($name),
                        e
                    );
                }
            }
        }
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Assert two values are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{:?}` == `{:?}`: {}",
                    left,
                    right,
                    ::std::format!($($fmt)*)
                ),
            ));
        }
    }};
}

/// Assert two values differ inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        if !(left != right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{:?}` != `{:?}`: {}",
                    left,
                    right,
                    ::std::format!($($fmt)*)
                ),
            ));
        }
    }};
}

/// Choose uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}
