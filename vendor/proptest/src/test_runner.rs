//! The deterministic test runner: configuration, RNG and failure reporting.

use std::fmt;

/// Per-`proptest!` configuration.  Only the case count is honoured by this
/// stand-in; it can be built with struct-update syntax over
/// [`ProptestConfig::default`] exactly as with the real crate.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
    /// Accepted for real-proptest compatibility; this stand-in never
    /// shrinks, so the value is unused.
    pub max_shrink_iters: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 1024,
        }
    }
}

/// A failed property-test assertion.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Record a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// A small, fast, deterministic RNG (SplitMix64).  Quality is more than
/// adequate for generating test inputs, and the fixed algorithm keeps every
/// test's input stream stable across platforms and compiler versions.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG whose whole stream is determined by `seed`.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform index in `[0, n)`.  `n` must be positive.
    pub fn index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }
}

/// Derive a stable 64-bit seed from a test's fully qualified name (FNV-1a),
/// so each property gets an independent but reproducible input stream.
pub fn seed_from_name(name: &str) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}
