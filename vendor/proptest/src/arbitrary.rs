//! The [`any`] entry point and the [`Arbitrary`] implementations for the
//! primitive types the workspace's tests generate.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-range generation strategy.
pub trait Arbitrary {
    /// Produce one uniformly distributed value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// A strategy generating any value of `T` (see [`any`]).
#[derive(Debug)]
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
