//! Collection strategies (`proptest::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive-exclusive length range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            lo: exact,
            hi: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty collection size range");
        SizeRange {
            lo: range.start,
            hi: range.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> Self {
        assert!(range.start() <= range.end(), "empty collection size range");
        SizeRange {
            lo: *range.start(),
            hi: *range.end() + 1,
        }
    }
}

/// The strategy returned by [`fn@vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.lo + rng.index(self.size.hi - self.size.lo);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generate a `Vec` whose elements come from `element` and whose length is
/// drawn from `size` (an exact `usize`, a `Range` or a `RangeInclusive`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
