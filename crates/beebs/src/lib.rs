//! A BEEBS-like embedded benchmark suite for the flash/RAM reproduction.
//!
//! The paper evaluates its optimization on BEEBS, a benchmark suite built to
//! characterize the energy consumption of embedded platforms.  This crate
//! provides re-implementations of the same ten kernels in the mini-C dialect
//! understood by `flashram-minicc`, together with the soft-float support
//! library that the float-heavy kernels depend on.
//!
//! Each benchmark is a self-contained program whose `main` returns a
//! deterministic checksum, which the tests and the placement optimizer use
//! to verify that code transformations preserve semantics.
//!
//! # Example
//!
//! ```
//! use flashram_beebs::Benchmark;
//! use flashram_minicc::OptLevel;
//! use flashram_mcu::Board;
//!
//! let bench = Benchmark::by_name("int_matmult").unwrap();
//! let program = bench.compile(OptLevel::O2)?;
//! let result = Board::stm32vldiscovery().run(&program).unwrap();
//! assert_ne!(result.return_value, 0);
//! # Ok::<(), flashram_minicc::CompileError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kernels;
pub mod softfloat;

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use flashram_ir::MachineProgram;
use flashram_minicc::{compile_program, CompileError, OptLevel, SourceUnit};

pub use softfloat::SOFT_FLOAT_LIBRARY;

/// One benchmark of the suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Benchmark {
    /// Benchmark name, matching the paper's figures (e.g. `int_matmult`).
    pub name: &'static str,
    /// The mini-C source of the benchmark.
    pub source: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// Whether the kernel is dominated by calls into the soft-float library
    /// (the paper's `cubic` / `float_matmult` limitation).
    pub float_heavy: bool,
}

impl Benchmark {
    /// The full suite, in the order used by Figure 5 of the paper.
    pub fn all() -> Vec<Benchmark> {
        vec![
            Benchmark {
                name: "2dfir",
                source: kernels::FIR2D,
                description: "3x3 FIR filter over an 18x18 image",
                float_heavy: false,
            },
            Benchmark {
                name: "blowfish",
                source: kernels::BLOWFISH,
                description: "16-round Feistel cipher with key-derived S-box",
                float_heavy: false,
            },
            Benchmark {
                name: "crc32",
                source: kernels::CRC32,
                description: "bitwise CRC-32 of a 256-byte message",
                float_heavy: false,
            },
            Benchmark {
                name: "cubic",
                source: kernels::CUBIC,
                description: "Newton-Raphson cubic root finding in software float",
                float_heavy: true,
            },
            Benchmark {
                name: "dijkstra",
                source: kernels::DIJKSTRA,
                description: "single-source shortest paths on a dense 16-node graph",
                float_heavy: false,
            },
            Benchmark {
                name: "fdct",
                source: kernels::FDCT,
                description: "8x8 integer forward DCT with fixed-point cosine table",
                float_heavy: false,
            },
            Benchmark {
                name: "float_matmult",
                source: kernels::FLOAT_MATMULT,
                description: "8x8 software-float matrix multiplication",
                float_heavy: true,
            },
            Benchmark {
                name: "int_matmult",
                source: kernels::INT_MATMULT,
                description: "16x16 integer matrix multiplication",
                float_heavy: false,
            },
            Benchmark {
                name: "rijndael",
                source: kernels::RIJNDAEL,
                description: "AES-style substitution/shift/mix rounds",
                float_heavy: false,
            },
            Benchmark {
                name: "sha",
                source: kernels::SHA,
                description: "SHA-1-style 80-round compression function",
                float_heavy: false,
            },
        ]
    }

    /// Look a benchmark up by name.
    pub fn by_name(name: &str) -> Option<Benchmark> {
        Benchmark::all().into_iter().find(|b| b.name == name)
    }

    /// The source units of the program: the soft-float library plus the
    /// kernel itself (every benchmark links the library, as a real toolchain
    /// would link `libgcc`).
    pub fn source_units(&self) -> Vec<SourceUnit<'static>> {
        vec![
            SourceUnit::library(SOFT_FLOAT_LIBRARY),
            SourceUnit {
                code: self.source,
                is_library: false,
            },
        ]
    }

    /// Compile the benchmark at the given optimization level.
    ///
    /// # Errors
    ///
    /// Propagates compiler and link errors (which would indicate a bug in
    /// the kernel source shipped with this crate).
    pub fn compile(&self, opt: OptLevel) -> Result<MachineProgram, CompileError> {
        compile_program(&self.source_units(), opt)
    }

    /// Compile the benchmark through the process-wide fixture cache.
    ///
    /// The kernel sources are `'static` and the compiler is deterministic,
    /// so one compile per `(kernel, level)` pair serves every caller in the
    /// process.  The heavy integration tests and the sweep harnesses in
    /// `flashram-bench` use this instead of [`Benchmark::compile`] so a test
    /// binary that exercises ten kernels at five levels pays for fifty
    /// compiles once, not once per test.
    ///
    /// The returned [`Arc`] shares the cached program; clone the inner
    /// [`MachineProgram`] if you need to mutate it.
    ///
    /// # Errors
    ///
    /// Same as [`Benchmark::compile`]; failures are not cached.
    pub fn compile_cached(&self, opt: OptLevel) -> Result<Arc<MachineProgram>, CompileError> {
        type FixtureCache = Mutex<HashMap<(&'static str, OptLevel), Arc<MachineProgram>>>;
        static CACHE: OnceLock<FixtureCache> = OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        if let Some(hit) = cache
            .lock()
            .expect("fixture cache poisoned")
            .get(&(self.name, opt))
        {
            return Ok(Arc::clone(hit));
        }
        // Compile outside the lock: a miss takes long enough that holding
        // the lock would serialize every other thread's cache hits.  Two
        // threads racing on the same key both compile, but the compiler is
        // deterministic so either result is fine to keep.
        let program = Arc::new(self.compile(opt)?);
        let mut map = cache.lock().expect("fixture cache poisoned");
        Ok(Arc::clone(map.entry((self.name, opt)).or_insert(program)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashram_mcu::{Board, RunConfig};

    #[test]
    fn suite_has_the_papers_ten_benchmarks() {
        let names: Vec<&str> = Benchmark::all().iter().map(|b| b.name).collect();
        assert_eq!(
            names,
            vec![
                "2dfir",
                "blowfish",
                "crc32",
                "cubic",
                "dijkstra",
                "fdct",
                "float_matmult",
                "int_matmult",
                "rijndael",
                "sha"
            ]
        );
        assert!(Benchmark::by_name("fdct").is_some());
        assert!(Benchmark::by_name("absent").is_none());
    }

    #[test]
    fn cached_compiles_share_one_program_and_match_fresh_ones() {
        let b = Benchmark::by_name("crc32").unwrap();
        let first = b.compile_cached(OptLevel::O1).unwrap();
        let second = b.compile_cached(OptLevel::O1).unwrap();
        assert!(
            Arc::ptr_eq(&first, &second),
            "second lookup must hit the cache"
        );
        let fresh = b.compile(OptLevel::O1).unwrap();
        assert_eq!(*first, fresh, "cache must return what compile() returns");
        let other_level = b.compile_cached(OptLevel::O2).unwrap();
        assert!(
            !Arc::ptr_eq(&first, &other_level),
            "levels cached separately"
        );
    }

    #[test]
    fn every_benchmark_compiles_at_o2() {
        for b in Benchmark::all() {
            let prog = b
                .compile(OptLevel::O2)
                .unwrap_or_else(|e| panic!("{}: {e}", b.name));
            assert!(prog.validate().is_empty(), "{}", b.name);
            assert!(prog.function("main").is_some(), "{}", b.name);
        }
    }

    #[test]
    fn checksums_agree_across_optimization_levels() {
        let board = Board::stm32vldiscovery();
        let config = RunConfig {
            max_cycles: 100_000_000,
        };
        for b in Benchmark::all() {
            let reference = board
                .run_with_config(&b.compile(OptLevel::O0).unwrap(), &config)
                .unwrap_or_else(|e| panic!("{} at O0: {e}", b.name));
            assert_ne!(
                reference.return_value, 0,
                "{} checksum should be non-trivial",
                b.name
            );
            for level in [OptLevel::O1, OptLevel::O2, OptLevel::O3, OptLevel::Os] {
                let r = board
                    .run_with_config(&b.compile(level).unwrap(), &config)
                    .unwrap_or_else(|e| panic!("{} at {level}: {e}", b.name));
                assert_eq!(
                    r.return_value, reference.return_value,
                    "{} diverges at {level}",
                    b.name
                );
            }
        }
    }

    #[test]
    fn float_heavy_benchmarks_spend_their_time_in_library_code() {
        let board = Board::stm32vldiscovery();
        for name in ["cubic", "float_matmult"] {
            let b = Benchmark::by_name(name).unwrap();
            let prog = b.compile(OptLevel::O2).unwrap();
            let r = board.run(&prog).unwrap();
            // Count block executions attributable to library functions.
            let mut library_blocks = 0u64;
            let mut total = 0u64;
            for (block, count) in r.profile.iter() {
                total += count;
                if prog.functions[block.func.index()].is_library {
                    library_blocks += count;
                }
            }
            assert!(
                library_blocks * 2 > total,
                "{name}: library code should dominate ({library_blocks}/{total})"
            );
        }
    }

    #[test]
    fn integer_kernels_fit_comfortably_in_ram_budget() {
        let board = Board::stm32vldiscovery();
        for b in Benchmark::all() {
            let prog = b.compile(OptLevel::O2).unwrap();
            let spare = board
                .spare_ram(&prog)
                .unwrap_or_else(|e| panic!("{}: {e}", b.name));
            assert!(
                spare >= 1024,
                "{} leaves only {spare} bytes of spare RAM",
                b.name
            );
        }
    }

    #[test]
    fn benchmarks_have_meaningful_runtimes() {
        let board = Board::stm32vldiscovery();
        for b in Benchmark::all() {
            let prog = b.compile(OptLevel::O2).unwrap();
            let r = board.run(&prog).unwrap();
            assert!(
                r.cycles() > 20_000,
                "{} runs for only {} cycles — too short to be representative",
                b.name,
                r.cycles()
            );
        }
    }
}
