//! The ten benchmark kernels, as mini-C source.
//!
//! The kernels mirror the BEEBS programs used in the paper's evaluation
//! (2dfir, blowfish, crc32, cubic, dijkstra, fdct, float_matmult,
//! int_matmult, rijndael, sha).  They are re-implementations sized for the
//! simulated STM32F100 (8 KB of RAM) rather than verbatim copies: each keeps
//! the structural property that matters for the placement optimization —
//! hot inner loops for the integer kernels, large read-only tables for the
//! crypto kernels, and library-call-dominated code for the float kernels.
//! Every `main` returns a deterministic checksum so the optimizer can be
//! checked for semantic preservation.

/// 16×16 integer matrix multiplication (`int_matmult`).
pub const INT_MATMULT: &str = r#"
int ma[256];
int mb[256];
int mc[256];

void initm() {
    for (int i = 0; i < 256; i++) {
        ma[i] = (i * 7 + 3) % 19 - 9;
        mb[i] = (i * 13 + 5) % 17 - 8;
    }
}

void multiply() {
    for (int i = 0; i < 16; i++) {
        for (int j = 0; j < 16; j++) {
            int acc = 0;
            for (int k = 0; k < 16; k++) {
                acc += ma[i * 16 + k] * mb[k * 16 + j];
            }
            mc[i * 16 + j] = acc;
        }
    }
}

int main() {
    int check = 0;
    for (int rep = 0; rep < 4; rep++) {
        initm();
        multiply();
        for (int i = 0; i < 256; i++) { check += mc[i]; }
    }
    return check;
}
"#;

/// 8×8 software-float matrix multiplication (`float_matmult`).
pub const FLOAT_MATMULT: &str = r#"
float fa[64];
float fb[64];
float fc[64];

void initf() {
    for (int i = 0; i < 64; i++) {
        fa[i] = (float)((i % 9) - 4) * 0.5f;
        fb[i] = (float)((i % 7) - 3) * 0.25f;
    }
}

void fmultiply() {
    for (int i = 0; i < 8; i++) {
        for (int j = 0; j < 8; j++) {
            float acc = 0.0f;
            for (int k = 0; k < 8; k++) {
                acc = acc + fa[i * 8 + k] * fb[k * 8 + j];
            }
            fc[i * 8 + j] = acc;
        }
    }
}

int main() {
    int check = 0;
    for (int rep = 0; rep < 2; rep++) {
        initf();
        fmultiply();
        for (int i = 0; i < 64; i++) { check += (int)(fc[i] * 4.0f); }
    }
    return check;
}
"#;

/// 3×3 FIR filter over an 18×18 image with a one-pixel border (`2dfir`).
pub const FIR2D: &str = r#"
int image[400];
int output[400];
const int coeff[9] = {1, 2, 1, 2, 4, 2, 1, 2, 1};

void initimg() {
    for (int i = 0; i < 400; i++) { image[i] = (i * 11 + 7) % 64; }
}

void fir2d() {
    for (int y = 1; y < 19; y++) {
        for (int x = 1; x < 19; x++) {
            int acc = 0;
            for (int ky = 0; ky < 3; ky++) {
                for (int kx = 0; kx < 3; kx++) {
                    acc += image[(y + ky - 1) * 20 + (x + kx - 1)] * coeff[ky * 3 + kx];
                }
            }
            output[y * 20 + x] = acc / 16;
        }
    }
}

int main() {
    int check = 0;
    initimg();
    for (int rep = 0; rep < 6; rep++) {
        fir2d();
        for (int i = 0; i < 400; i++) { check += output[i]; }
    }
    return check;
}
"#;

/// Bitwise CRC-32 over a 256-byte message (`crc32`).
pub const CRC32: &str = r#"
unsigned char msg[256];

void initmsg() {
    for (int i = 0; i < 256; i++) { msg[i] = (i * 61 + 17) % 251; }
}

unsigned crc32(int len) {
    unsigned crc = 0xffffffff;
    for (int i = 0; i < len; i++) {
        crc = crc ^ (unsigned)msg[i];
        for (int b = 0; b < 8; b++) {
            if ((crc & 1) != 0) {
                crc = (crc >> 1) ^ 0xedb88320;
            } else {
                crc = crc >> 1;
            }
        }
    }
    return crc ^ 0xffffffff;
}

int main() {
    initmsg();
    unsigned check = 0;
    for (int rep = 0; rep < 8; rep++) {
        check = check ^ crc32(256);
        check = check + rep;
    }
    return (int)(check & 0x7fffffff);
}
"#;

/// A condensed Blowfish-style 16-round Feistel cipher (`blowfish`).
pub const BLOWFISH: &str = r#"
unsigned parr[18];
unsigned sbox[256];
unsigned enc_l;
unsigned enc_r;

void bf_init() {
    unsigned seed = 0x243f6a88;
    for (int i = 0; i < 18; i++) {
        seed = seed * 1664525 + 1013904223;
        parr[i] = seed;
    }
    for (int i = 0; i < 256; i++) {
        seed = seed * 1664525 + 1013904223;
        sbox[i] = seed;
    }
}

unsigned bf_round(unsigned x) {
    unsigned a = sbox[(x >> 24) & 0xff];
    unsigned b = sbox[((x >> 16) & 0xff) ^ 0x55];
    unsigned c = sbox[((x >> 8) & 0xff) ^ 0xaa];
    unsigned d = sbox[x & 0xff];
    return ((a + b) ^ c) + d;
}

void bf_encrypt() {
    unsigned l = enc_l;
    unsigned r = enc_r;
    for (int i = 0; i < 16; i++) {
        l = l ^ parr[i];
        r = r ^ bf_round(l);
        unsigned t = l;
        l = r;
        r = t;
    }
    unsigned t = l;
    l = r;
    r = t;
    r = r ^ parr[16];
    l = l ^ parr[17];
    enc_l = l;
    enc_r = r;
}

int main() {
    bf_init();
    unsigned check = 0;
    for (int rep = 0; rep < 3; rep++) {
        for (int blk = 0; blk < 48; blk++) {
            enc_l = (unsigned)(blk * 0x01010101 + rep);
            enc_r = (unsigned)(blk * 0x10101010 + 7);
            bf_encrypt();
            check = check ^ enc_l ^ enc_r;
        }
    }
    return (int)(check & 0x7fffffff);
}
"#;

/// All-pairs-from-every-source shortest paths on a 16-node dense graph
/// (`dijkstra`).
pub const DIJKSTRA: &str = r#"
int graph[256];
int dist[16];
int visited[16];

void dij_init() {
    for (int i = 0; i < 256; i++) {
        int w = (i * 37 + 11) % 23;
        if (w == 0) { w = 25; }
        graph[i] = w;
    }
    for (int i = 0; i < 16; i++) { graph[i * 16 + i] = 0; }
}

int dijkstra(int src) {
    for (int i = 0; i < 16; i++) {
        dist[i] = 1000000;
        visited[i] = 0;
    }
    dist[src] = 0;
    for (int iter = 0; iter < 16; iter++) {
        int best = 0 - 1;
        int bestd = 1000000;
        for (int i = 0; i < 16; i++) {
            if (visited[i] == 0 && dist[i] < bestd) {
                bestd = dist[i];
                best = i;
            }
        }
        if (best < 0) { break; }
        visited[best] = 1;
        for (int j = 0; j < 16; j++) {
            int nd = dist[best] + graph[best * 16 + j];
            if (nd < dist[j]) { dist[j] = nd; }
        }
    }
    int sum = 0;
    for (int i = 0; i < 16; i++) { sum += dist[i]; }
    return sum;
}

int main() {
    dij_init();
    int check = 0;
    for (int rep = 0; rep < 4; rep++) {
        for (int s = 0; s < 16; s++) { check += dijkstra(s) * (s + 1); }
    }
    return check;
}
"#;

/// 8×8 integer forward DCT with a fixed-point cosine table (`fdct`).
pub const FDCT: &str = r#"
int block[64];
int dct_out[64];
const int costab[64] = {
     256,  256,  256,  256,  256,  256,  256,  256,
     251,  213,  142,   50,  -50, -142, -213, -251,
     237,   98,  -98, -237, -237,  -98,   98,  237,
     213,  -50, -251, -142,  142,  251,   50, -213,
     181, -181, -181,  181,  181, -181, -181,  181,
     142, -251,   50,  213, -213,  -50,  251, -142,
      98, -237,  237,  -98,  -98,  237, -237,   98,
      50, -142,  213, -251,  251, -213,  142,  -50
};

void fdct_init(int seed) {
    for (int i = 0; i < 64; i++) {
        block[i] = ((i * seed + 13) % 255) - 128;
    }
}

void fdct() {
    for (int u = 0; u < 8; u++) {
        for (int v = 0; v < 8; v++) {
            int acc = 0;
            for (int x = 0; x < 8; x++) {
                int cx = costab[u * 8 + x];
                for (int y = 0; y < 8; y++) {
                    acc += ((block[x * 8 + y] * cx) >> 8) * costab[v * 8 + y];
                }
            }
            dct_out[u * 8 + v] = acc >> 8;
        }
    }
}

int main() {
    int check = 0;
    for (int rep = 0; rep < 10; rep++) {
        fdct_init(rep * 3 + 1);
        fdct();
        for (int i = 0; i < 64; i++) { check += dct_out[i]; }
    }
    return check;
}
"#;

/// Newton–Raphson cubic root finding with software floats (`cubic`).
pub const CUBIC: &str = r#"
float ca;
float cb;
float cc;
float cd;

float cubic_eval(float x) {
    return ((ca * x + cb) * x + cc) * x + cd;
}

float cubic_deriv(float x) {
    return (ca * 3.0f * x + cb * 2.0f) * x + cc;
}

float cubic_root(float guess) {
    float x = guess;
    for (int i = 0; i < 12; i++) {
        float fx = cubic_eval(x);
        float dx = cubic_deriv(x);
        if (fabsf(dx) < 0.0001f) { return x; }
        x = x - fx / dx;
    }
    return x;
}

int main() {
    int check = 0;
    for (int k = 1; k <= 6; k++) {
        ca = 1.0f;
        cb = (float)(0 - k);
        cc = (float)(k * 2 - 7) * 0.5f;
        cd = (float)(3 - k);
        float r = cubic_root(3.0f);
        check += (int)(r * 1000.0f);
        float s = sqrtf((float)(k * k + 1));
        check += (int)(s * 100.0f);
    }
    return check;
}
"#;

/// An AES-style substitution/shift/mix/add round function (`rijndael`).
pub const RIJNDAEL: &str = r#"
const int aes_sbox[64] = {
     99, 124, 119, 123, 242, 107, 111, 197,  48,   1, 103,  43, 254, 215, 171, 118,
    202, 130, 201, 125, 250,  89,  71, 240, 173, 212, 162, 175, 156, 164, 114, 192,
    183, 253, 147,  38,  54,  63, 247, 204,  52, 165, 229, 241, 113, 216,  49,  21,
      4, 199,  35, 195,  24, 150,   5, 154,   7,  18, 128, 226, 235,  39, 178, 117
};

unsigned char state[16];
unsigned char roundkey[16];

int xtime(int x) {
    x = x << 1;
    if ((x & 0x100) != 0) { x = (x ^ 0x1b); }
    return x & 0xff;
}

void sub_shift() {
    unsigned char tmp[16];
    for (int i = 0; i < 16; i++) {
        tmp[i] = (unsigned char)aes_sbox[state[i] & 63];
    }
    for (int c = 0; c < 4; c++) {
        for (int r = 0; r < 4; r++) {
            state[c * 4 + r] = tmp[((c + r) % 4) * 4 + r];
        }
    }
}

void mix_add(int round) {
    for (int c = 0; c < 4; c++) {
        int a0 = state[c * 4];
        int a1 = state[c * 4 + 1];
        int a2 = state[c * 4 + 2];
        int a3 = state[c * 4 + 3];
        state[c * 4] = (unsigned char)(xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3 ^ roundkey[c * 4] ^ round);
        state[c * 4 + 1] = (unsigned char)(a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3 ^ roundkey[c * 4 + 1]);
        state[c * 4 + 2] = (unsigned char)(a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3) ^ roundkey[c * 4 + 2]);
        state[c * 4 + 3] = (unsigned char)((xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3) ^ roundkey[c * 4 + 3]);
    }
}

int main() {
    for (int i = 0; i < 16; i++) { roundkey[i] = (i * 7 + 1) & 0xff; }
    int check = 0;
    for (int blk = 0; blk < 40; blk++) {
        for (int i = 0; i < 16; i++) { state[i] = (blk * 16 + i) & 0xff; }
        for (int round = 0; round < 10; round++) {
            sub_shift();
            mix_add(round);
        }
        for (int i = 0; i < 16; i++) { check += state[i] * (i + 1); }
    }
    return check;
}
"#;

/// A SHA-1-style 80-round compression function (`sha`).
pub const SHA: &str = r#"
unsigned w[80];
unsigned h0;
unsigned h1;
unsigned h2;
unsigned h3;
unsigned h4;

unsigned rotl(unsigned x, int n) {
    return (x << n) | (x >> (32 - n));
}

void sha_block(int seed) {
    for (int i = 0; i < 16; i++) {
        w[i] = (unsigned)(seed * 73 + i * 40503 + 12345);
    }
    for (int i = 16; i < 80; i++) {
        w[i] = rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
    }
    unsigned a = h0;
    unsigned b = h1;
    unsigned c = h2;
    unsigned d = h3;
    unsigned e = h4;
    for (int i = 0; i < 80; i++) {
        unsigned f = 0;
        unsigned k = 0;
        if (i < 20) {
            f = (b & c) | ((~b) & d);
            k = 0x5a827999;
        } else if (i < 40) {
            f = b ^ c ^ d;
            k = 0x6ed9eba1;
        } else if (i < 60) {
            f = (b & c) | (b & d) | (c & d);
            k = 0x8f1bbcdc;
        } else {
            f = b ^ c ^ d;
            k = 0xca62c1d6;
        }
        unsigned temp = rotl(a, 5) + f + e + k + w[i];
        e = d;
        d = c;
        c = rotl(b, 30);
        b = a;
        a = temp;
    }
    h0 = h0 + a;
    h1 = h1 + b;
    h2 = h2 + c;
    h3 = h3 + d;
    h4 = h4 + e;
}

int main() {
    h0 = 0x67452301;
    h1 = 0xefcdab89;
    h2 = 0x98badcfe;
    h3 = 0x10325476;
    h4 = 0xc3d2e1f0;
    for (int blk = 0; blk < 20; blk++) {
        sha_block(blk + 1);
    }
    return (int)((h0 ^ h1 ^ h2 ^ h3 ^ h4) & 0x7fffffff);
}
"#;
