//! The soft-float support library, written in mini-C and compiled as an
//! opaque *library* translation unit.
//!
//! The modelled Cortex-M3 has no floating-point hardware, so every `float`
//! operation the compiler sees becomes a call into these routines — and
//! because they are statically linked library code, the placement optimizer
//! is not allowed to move them into RAM.  This reproduces the limitation the
//! paper reports for `cubic` and `float_matmult`: benchmarks dominated by
//! library calls barely benefit from the optimization.
//!
//! The implementation is single-precision IEEE-754 with truncating rounding
//! and without subnormal support (subnormals flush to zero); that is more
//! than enough numerical fidelity for deterministic benchmark checksums.

/// Mini-C source of the support library.
///
/// The routines operate on the raw bit patterns (`unsigned`), which is also
/// why they do not themselves trigger soft-float expansion when compiled.
pub const SOFT_FLOAT_LIBRARY: &str = r#"
// ---- IEEE-754 single precision in software (library unit) ----

unsigned __f32_pack(unsigned s, int e, unsigned m) {
    if (m == 0) { return s << 31; }
    while (m >= 0x1000000) { m = m >> 1; e = e + 1; }
    while (m < 0x800000) { m = m << 1; e = e - 1; }
    if (e <= 0) { return s << 31; }
    if (e >= 255) { return (s << 31) | 0x7f800000; }
    return (s << 31) | ((unsigned)e << 23) | (m & 0x7fffff);
}

unsigned __f32_add(unsigned a, unsigned b) {
    unsigned sa = a >> 31;
    unsigned sb = b >> 31;
    int ea = (int)((a >> 23) & 0xff);
    int eb = (int)((b >> 23) & 0xff);
    unsigned ma = a & 0x7fffff;
    unsigned mb = b & 0x7fffff;
    if (ea == 0) { return b; }
    if (eb == 0) { return a; }
    ma = (ma | 0x800000) << 3;
    mb = (mb | 0x800000) << 3;
    if (ea > eb) {
        int d = ea - eb;
        if (d > 26) { mb = 0; } else { mb = mb >> d; }
        eb = ea;
    } else {
        int d = eb - ea;
        if (d > 26) { ma = 0; } else { ma = ma >> d; }
        ea = eb;
    }
    unsigned s = sa;
    unsigned m = 0;
    if (sa == sb) {
        m = ma + mb;
        s = sa;
    } else {
        if (ma >= mb) { m = ma - mb; s = sa; }
        else { m = mb - ma; s = sb; }
    }
    if (m == 0) { return 0; }
    return __f32_pack(s, ea - 3, m);
}

unsigned __f32_sub(unsigned a, unsigned b) {
    return __f32_add(a, b ^ 0x80000000);
}

unsigned __f32_mul(unsigned a, unsigned b) {
    unsigned s = (a >> 31) ^ (b >> 31);
    int ea = (int)((a >> 23) & 0xff);
    int eb = (int)((b >> 23) & 0xff);
    if (ea == 0) { return s << 31; }
    if (eb == 0) { return s << 31; }
    unsigned ma = (a & 0x7fffff) | 0x800000;
    unsigned mb = (b & 0x7fffff) | 0x800000;
    unsigned ah = ma >> 12;
    unsigned al = ma & 0xfff;
    unsigned bh = mb >> 12;
    unsigned bl = mb & 0xfff;
    unsigned hi = ah * bh;
    unsigned mid = ah * bl + al * bh;
    unsigned lo = al * bl;
    unsigned m = (hi << 1) + (mid >> 11) + (lo >> 23);
    return __f32_pack(s, ea + eb - 127, m);
}

unsigned __f32_div(unsigned a, unsigned b) {
    unsigned s = (a >> 31) ^ (b >> 31);
    int ea = (int)((a >> 23) & 0xff);
    int eb = (int)((b >> 23) & 0xff);
    if (eb == 0) { return (s << 31) | 0x7f800000; }
    if (ea == 0) { return s << 31; }
    unsigned ma = (a & 0x7fffff) | 0x800000;
    unsigned mb = (b & 0x7fffff) | 0x800000;
    unsigned q = 0;
    unsigned rem = ma;
    if (rem >= mb) { rem = rem - mb; q = 1; }
    for (int i = 0; i < 25; i++) {
        q = q << 1;
        rem = rem << 1;
        if (rem >= mb) { rem = rem - mb; q = q | 1; }
    }
    return __f32_pack(s, ea - eb + 125, q);
}

int __f32_eq(unsigned a, unsigned b) {
    unsigned az = a & 0x7fffffff;
    unsigned bz = b & 0x7fffffff;
    if (az == 0) { if (bz == 0) { return 1; } }
    if (a == b) { return 1; }
    return 0;
}

int __f32_lt(unsigned a, unsigned b) {
    unsigned az = a & 0x7fffffff;
    unsigned bz = b & 0x7fffffff;
    if (az == 0) { if (bz == 0) { return 0; } }
    int sa = (int)(a >> 31);
    int sb = (int)(b >> 31);
    if (sa != sb) { return sa > sb; }
    if (sa == 0) { return az < bz; }
    return az > bz;
}

int __f32_le(unsigned a, unsigned b) {
    if (__f32_eq(a, b)) { return 1; }
    return __f32_lt(a, b);
}

unsigned __f32_from_int(int x) {
    if (x == 0) { return 0; }
    unsigned s = 0;
    unsigned m = 0;
    if (x < 0) { s = 1; m = (unsigned)(0 - x); } else { m = (unsigned)x; }
    return __f32_pack(s, 150, m);
}

int __f32_to_int(unsigned a) {
    int e = (int)((a >> 23) & 0xff);
    if (e == 0) { return 0; }
    unsigned m = (a & 0x7fffff) | 0x800000;
    int shift = e - 150;
    int v = 0;
    if (shift >= 8) {
        v = 0x7fffffff;
    } else if (shift >= 0) {
        v = (int)(m << shift);
    } else if (shift < -24) {
        v = 0;
    } else {
        v = (int)(m >> (0 - shift));
    }
    if ((a >> 31) != 0) { v = 0 - v; }
    return v;
}

unsigned fabsf(unsigned x) {
    return x & 0x7fffffff;
}

unsigned sqrtf(unsigned x) {
    if ((x & 0x7fffffff) == 0) { return 0; }
    if ((x >> 31) != 0) { return 0; }
    int e = (int)((x >> 23) & 0xff);
    int ge = (e - 127) / 2 + 127;
    unsigned g = ((unsigned)ge << 23) | (x & 0x7fffff);
    for (int i = 0; i < 6; i++) {
        unsigned q = __f32_div(x, g);
        unsigned sum = __f32_add(g, q);
        g = __f32_mul(sum, 0x3f000000);
    }
    return g;
}
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use flashram_mcu::Board;
    use flashram_minicc::{compile_program, OptLevel, SourceUnit};

    fn run(app: &str) -> i32 {
        let prog = compile_program(
            &[
                SourceUnit::library(SOFT_FLOAT_LIBRARY),
                SourceUnit::application(app),
            ],
            OptLevel::O2,
        )
        .unwrap();
        Board::stm32vldiscovery().run(&prog).unwrap().return_value
    }

    #[test]
    fn library_compiles_as_library_unit() {
        let prog = compile_program(
            &[
                SourceUnit::library(SOFT_FLOAT_LIBRARY),
                SourceUnit::application("int main() { return 0; }"),
            ],
            OptLevel::O2,
        )
        .unwrap();
        assert!(prog.function("__f32_add").unwrap().is_library);
        assert!(prog.function("sqrtf").unwrap().is_library);
    }

    #[test]
    fn basic_arithmetic_matches_ieee() {
        assert_eq!(
            run("int main() { float a = 1.5f; float b = 2.25f; return (int)((a + b) * 4.0f); }"),
            15
        );
        assert_eq!(
            run("int main() { float a = 10.0f; float b = 4.0f; return (int)(a / b * 100.0f); }"),
            250
        );
        assert_eq!(
            run("int main() { float a = 3.0f; float b = 7.0f; return (int)(a * b); }"),
            21
        );
        assert_eq!(
            run("int main() { float a = 5.5f; float b = 2.25f; return (int)((a - b) * 8.0f); }"),
            26
        );
    }

    #[test]
    fn negative_values_and_conversions() {
        assert_eq!(
            run("int main() { float a = -2.5f; return (int)(a * -4.0f); }"),
            10
        );
        assert_eq!(
            run("int main() { int x = -7; float f = (float)x; return (int)(f * 3.0f); }"),
            -21
        );
        assert_eq!(
            run("int main() { float a = -3.75f; return (int)fabsf(a * 4.0f); }"),
            15
        );
    }

    #[test]
    fn comparisons_work() {
        assert_eq!(
            run("int main() { float a = 1.0f; float b = 2.0f; if (a < b) return 1; return 0; }"),
            1
        );
        assert_eq!(
            run("int main() { float a = 2.0f; float b = 2.0f; if (a <= b) return 1; return 0; }"),
            1
        );
        assert_eq!(
            run("int main() { float a = 3.0f; float b = 2.0f; if (a > b) return 1; return 0; }"),
            1
        );
        assert_eq!(
            run("int main() { float a = -1.0f; float b = 1.0f; if (a >= b) return 1; return 0; }"),
            0
        );
        assert_eq!(
            run("int main() { float a = 0.0f; float b = -0.0f; if (a == b) return 1; return 0; }"),
            1
        );
    }

    #[test]
    fn sqrt_converges() {
        // sqrt(16) = 4, sqrt(2) ≈ 1.414
        assert_eq!(
            run("int main() { float x = 16.0f; return (int)(sqrtf(x) * 100.0f); }"),
            400
        );
        let v = run("int main() { float x = 2.0f; return (int)(sqrtf(x) * 1000.0f); }");
        assert!((1410..=1418).contains(&v), "sqrt(2)*1000 ≈ 1414, got {v}");
    }

    #[test]
    fn division_accuracy_is_reasonable() {
        let v =
            run("int main() { float a = 1.0f; float b = 3.0f; return (int)(a / b * 100000.0f); }");
        assert!((33320..=33340).contains(&v), "1/3*1e5 ≈ 33333, got {v}");
    }
}
