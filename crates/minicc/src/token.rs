//! Lexer for the mini-C language.

use std::fmt;

use crate::error::CompileError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Integer literal (decimal or `0x` hexadecimal).
    Int(i64),
    /// Floating-point literal.
    Float(f32),
    /// Character literal, already reduced to its byte value.
    Char(u8),
    /// Identifier or keyword candidate.
    Ident(String),
    /// A keyword.
    Keyword(Keyword),
    /// Punctuation or operator.
    Punct(Punct),
    /// End of input.
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Int(v) => write!(f, "{v}"),
            Token::Float(v) => write!(f, "{v}"),
            Token::Char(c) => write!(f, "'{}'", *c as char),
            Token::Ident(s) => write!(f, "{s}"),
            Token::Keyword(k) => write!(f, "{k}"),
            Token::Punct(p) => write!(f, "{p}"),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}

/// Reserved words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Keyword {
    Int,
    Unsigned,
    Char,
    Float,
    Void,
    Const,
    If,
    Else,
    While,
    Do,
    For,
    Return,
    Break,
    Continue,
    Sizeof,
}

impl fmt::Display for Keyword {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Keyword::Int => "int",
            Keyword::Unsigned => "unsigned",
            Keyword::Char => "char",
            Keyword::Float => "float",
            Keyword::Void => "void",
            Keyword::Const => "const",
            Keyword::If => "if",
            Keyword::Else => "else",
            Keyword::While => "while",
            Keyword::Do => "do",
            Keyword::For => "for",
            Keyword::Return => "return",
            Keyword::Break => "break",
            Keyword::Continue => "continue",
            Keyword::Sizeof => "sizeof",
        };
        write!(f, "{s}")
    }
}

fn keyword_of(ident: &str) -> Option<Keyword> {
    Some(match ident {
        "int" => Keyword::Int,
        "unsigned" => Keyword::Unsigned,
        "char" => Keyword::Char,
        "float" => Keyword::Float,
        "void" => Keyword::Void,
        "const" => Keyword::Const,
        "if" => Keyword::If,
        "else" => Keyword::Else,
        "while" => Keyword::While,
        "do" => Keyword::Do,
        "for" => Keyword::For,
        "return" => Keyword::Return,
        "break" => Keyword::Break,
        "continue" => Keyword::Continue,
        "sizeof" => Keyword::Sizeof,
        _ => return None,
    })
}

/// Operators and punctuation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Punct {
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semicolon,
    Comma,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    Shl,
    Shr,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    Ne,
    AndAnd,
    OrOr,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    PercentAssign,
    AmpAssign,
    PipeAssign,
    CaretAssign,
    ShlAssign,
    ShrAssign,
    PlusPlus,
    MinusMinus,
    Question,
    Colon,
}

impl fmt::Display for Punct {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Punct::LParen => "(",
            Punct::RParen => ")",
            Punct::LBrace => "{",
            Punct::RBrace => "}",
            Punct::LBracket => "[",
            Punct::RBracket => "]",
            Punct::Semicolon => ";",
            Punct::Comma => ",",
            Punct::Plus => "+",
            Punct::Minus => "-",
            Punct::Star => "*",
            Punct::Slash => "/",
            Punct::Percent => "%",
            Punct::Amp => "&",
            Punct::Pipe => "|",
            Punct::Caret => "^",
            Punct::Tilde => "~",
            Punct::Bang => "!",
            Punct::Shl => "<<",
            Punct::Shr => ">>",
            Punct::Lt => "<",
            Punct::Le => "<=",
            Punct::Gt => ">",
            Punct::Ge => ">=",
            Punct::EqEq => "==",
            Punct::Ne => "!=",
            Punct::AndAnd => "&&",
            Punct::OrOr => "||",
            Punct::Assign => "=",
            Punct::PlusAssign => "+=",
            Punct::MinusAssign => "-=",
            Punct::StarAssign => "*=",
            Punct::SlashAssign => "/=",
            Punct::PercentAssign => "%=",
            Punct::AmpAssign => "&=",
            Punct::PipeAssign => "|=",
            Punct::CaretAssign => "^=",
            Punct::ShlAssign => "<<=",
            Punct::ShrAssign => ">>=",
            Punct::PlusPlus => "++",
            Punct::MinusMinus => "--",
            Punct::Question => "?",
            Punct::Colon => ":",
        };
        write!(f, "{s}")
    }
}

/// A token together with the line it came from (1-based).
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Source line number.
    pub line: u32,
}

/// Tokenize a complete source text.
///
/// # Errors
///
/// Returns a [`CompileError`] on malformed literals or unexpected characters.
pub fn tokenize(source: &str) -> Result<Vec<Spanned>, CompileError> {
    let mut tokens = Vec::new();
    let bytes: Vec<char> = source.chars().collect();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = bytes.len();

    let err = |line: u32, msg: String| CompileError::new(msg, line);

    while i < n {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '/' if i + 1 < n && bytes[i + 1] == '/' => {
                while i < n && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < n && bytes[i + 1] == '*' => {
                i += 2;
                while i + 1 < n && !(bytes[i] == '*' && bytes[i + 1] == '/') {
                    if bytes[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
                if i + 1 >= n {
                    return Err(err(line, "unterminated block comment".into()));
                }
                i += 2;
            }
            '0'..='9' => {
                let start = i;
                let mut is_float = false;
                if c == '0' && i + 1 < n && (bytes[i + 1] == 'x' || bytes[i + 1] == 'X') {
                    i += 2;
                    let hex_start = i;
                    while i < n && bytes[i].is_ascii_hexdigit() {
                        i += 1;
                    }
                    if i == hex_start {
                        return Err(err(line, "empty hexadecimal literal".into()));
                    }
                    let text: String = bytes[hex_start..i].iter().collect();
                    let value = i64::from_str_radix(&text, 16)
                        .map_err(|_| err(line, format!("invalid hex literal 0x{text}")))?;
                    tokens.push(Spanned {
                        token: Token::Int(value),
                        line,
                    });
                    // Allow unsigned suffixes.
                    while i < n && matches!(bytes[i], 'u' | 'U' | 'l' | 'L') {
                        i += 1;
                    }
                    continue;
                }
                while i < n && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                if i < n && bytes[i] == '.' {
                    is_float = true;
                    i += 1;
                    while i < n && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < n && (bytes[i] == 'e' || bytes[i] == 'E') {
                    is_float = true;
                    i += 1;
                    if i < n && (bytes[i] == '+' || bytes[i] == '-') {
                        i += 1;
                    }
                    while i < n && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text: String = bytes[start..i].iter().collect();
                if is_float || (i < n && bytes[i] == 'f') {
                    if i < n && bytes[i] == 'f' {
                        i += 1;
                    }
                    let value: f32 = text
                        .parse()
                        .map_err(|_| err(line, format!("invalid float literal {text}")))?;
                    tokens.push(Spanned {
                        token: Token::Float(value),
                        line,
                    });
                } else {
                    let value: i64 = text
                        .parse()
                        .map_err(|_| err(line, format!("invalid integer literal {text}")))?;
                    tokens.push(Spanned {
                        token: Token::Int(value),
                        line,
                    });
                    while i < n && matches!(bytes[i], 'u' | 'U' | 'l' | 'L') {
                        i += 1;
                    }
                }
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < n && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                match keyword_of(&text) {
                    Some(k) => tokens.push(Spanned {
                        token: Token::Keyword(k),
                        line,
                    }),
                    None => tokens.push(Spanned {
                        token: Token::Ident(text),
                        line,
                    }),
                }
            }
            '\'' => {
                i += 1;
                if i >= n {
                    return Err(err(line, "unterminated character literal".into()));
                }
                let value = if bytes[i] == '\\' {
                    i += 1;
                    let esc = bytes.get(i).copied().unwrap_or('\0');
                    i += 1;
                    match esc {
                        'n' => b'\n',
                        't' => b'\t',
                        'r' => b'\r',
                        '0' => 0,
                        '\\' => b'\\',
                        '\'' => b'\'',
                        other => {
                            return Err(err(line, format!("unknown escape '\\{other}'")));
                        }
                    }
                } else {
                    let v = bytes[i] as u8;
                    i += 1;
                    v
                };
                if i >= n || bytes[i] != '\'' {
                    return Err(err(line, "unterminated character literal".into()));
                }
                i += 1;
                tokens.push(Spanned {
                    token: Token::Char(value),
                    line,
                });
            }
            _ => {
                let (punct, len) = match_punct(&bytes[i..])
                    .ok_or_else(|| err(line, format!("unexpected character '{c}'")))?;
                tokens.push(Spanned {
                    token: Token::Punct(punct),
                    line,
                });
                i += len;
            }
        }
    }
    tokens.push(Spanned {
        token: Token::Eof,
        line,
    });
    Ok(tokens)
}

fn match_punct(rest: &[char]) -> Option<(Punct, usize)> {
    let three: String = rest.iter().take(3).collect();
    let two: String = rest.iter().take(2).collect();
    let one = rest.first()?;
    let p3 = match three.as_str() {
        "<<=" => Some(Punct::ShlAssign),
        ">>=" => Some(Punct::ShrAssign),
        _ => None,
    };
    if let Some(p) = p3 {
        return Some((p, 3));
    }
    let p2 = match two.as_str() {
        "<<" => Some(Punct::Shl),
        ">>" => Some(Punct::Shr),
        "<=" => Some(Punct::Le),
        ">=" => Some(Punct::Ge),
        "==" => Some(Punct::EqEq),
        "!=" => Some(Punct::Ne),
        "&&" => Some(Punct::AndAnd),
        "||" => Some(Punct::OrOr),
        "+=" => Some(Punct::PlusAssign),
        "-=" => Some(Punct::MinusAssign),
        "*=" => Some(Punct::StarAssign),
        "/=" => Some(Punct::SlashAssign),
        "%=" => Some(Punct::PercentAssign),
        "&=" => Some(Punct::AmpAssign),
        "|=" => Some(Punct::PipeAssign),
        "^=" => Some(Punct::CaretAssign),
        "++" => Some(Punct::PlusPlus),
        "--" => Some(Punct::MinusMinus),
        _ => None,
    };
    if let Some(p) = p2 {
        return Some((p, 2));
    }
    let p1 = match one {
        '(' => Punct::LParen,
        ')' => Punct::RParen,
        '{' => Punct::LBrace,
        '}' => Punct::RBrace,
        '[' => Punct::LBracket,
        ']' => Punct::RBracket,
        ';' => Punct::Semicolon,
        ',' => Punct::Comma,
        '+' => Punct::Plus,
        '-' => Punct::Minus,
        '*' => Punct::Star,
        '/' => Punct::Slash,
        '%' => Punct::Percent,
        '&' => Punct::Amp,
        '|' => Punct::Pipe,
        '^' => Punct::Caret,
        '~' => Punct::Tilde,
        '!' => Punct::Bang,
        '<' => Punct::Lt,
        '>' => Punct::Gt,
        '=' => Punct::Assign,
        '?' => Punct::Question,
        ':' => Punct::Colon,
        _ => return None,
    };
    Some((p1, 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        tokenize(src)
            .unwrap()
            .into_iter()
            .map(|s| s.token)
            .collect()
    }

    #[test]
    fn integers_and_floats() {
        assert_eq!(
            toks("42 0x1F 3.5 2e3 7f 10u"),
            vec![
                Token::Int(42),
                Token::Int(31),
                Token::Float(3.5),
                Token::Float(2000.0),
                Token::Float(7.0),
                Token::Int(10),
                Token::Eof
            ]
        );
    }

    #[test]
    fn identifiers_and_keywords() {
        assert_eq!(
            toks("int foo while bar_2"),
            vec![
                Token::Keyword(Keyword::Int),
                Token::Ident("foo".into()),
                Token::Keyword(Keyword::While),
                Token::Ident("bar_2".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn operators_longest_match() {
        assert_eq!(
            toks("a <<= b >> c <= d < e"),
            vec![
                Token::Ident("a".into()),
                Token::Punct(Punct::ShlAssign),
                Token::Ident("b".into()),
                Token::Punct(Punct::Shr),
                Token::Ident("c".into()),
                Token::Punct(Punct::Le),
                Token::Ident("d".into()),
                Token::Punct(Punct::Lt),
                Token::Ident("e".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped_and_lines_counted() {
        let spanned = tokenize("int a; // comment\n/* multi\nline */ int b;").unwrap();
        let lines: Vec<u32> = spanned.iter().map(|s| s.line).collect();
        assert_eq!(spanned[0].token, Token::Keyword(Keyword::Int));
        // `int b` appears on line 3.
        assert_eq!(lines[3], 3);
    }

    #[test]
    fn char_literals_and_escapes() {
        assert_eq!(
            toks("'a' '\\n' '\\0'"),
            vec![
                Token::Char(b'a'),
                Token::Char(b'\n'),
                Token::Char(0),
                Token::Eof
            ]
        );
    }

    #[test]
    fn errors_are_reported_with_lines() {
        let e = tokenize("int a;\n@").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("unexpected character"));
        assert!(tokenize("'x").is_err());
        assert!(tokenize("/* open").is_err());
    }
}
