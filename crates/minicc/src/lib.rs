//! A small C-subset compiler targeting the Thumb-2-like machine model.
//!
//! `flashram-minicc` stands in for GCC 4.8 in the reproduction of
//! *Optimizing the flash-RAM energy trade-off in deeply embedded systems*
//! (CGO 2015): it compiles the benchmark kernels to machine-level control
//! flow graphs at five optimization levels (`-O0`, `-O1`, `-O2`, `-O3`,
//! `-Os`), which the placement optimizer in `flashram-core` then analyses
//! and transforms.
//!
//! The pipeline is conventional: lexer → parser → typed lowering to a
//! three-address IR → scalar optimization passes → linear-scan register
//! allocation → Thumb-2-like code generation.  Translation units can be
//! marked as *library* code; the resulting functions are flagged so the
//! placement optimizer leaves them in flash, reproducing the paper's
//! library-call limitation.
//!
//! # Example
//!
//! ```
//! use flashram_minicc::{compile_program, OptLevel, SourceUnit};
//!
//! let program = compile_program(
//!     &[SourceUnit::application(
//!         "int main() { int s = 0; for (int i = 0; i < 10; i++) { s += i; } return s; }",
//!     )],
//!     OptLevel::O2,
//! )?;
//! assert!(program.function("main").is_some());
//! # Ok::<(), flashram_minicc::CompileError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod codegen;
pub mod error;
pub mod lower;
pub mod parser;
pub mod passes;
pub mod regalloc;
pub mod token;
pub mod types;

use std::collections::HashSet;
use std::fmt;

use flashram_ir::{IrInst, IrModule, MachineProgram};

pub use codegen::CodegenOptions;
pub use error::CompileError;
pub use lower::LowerOptions;

/// The GCC-style optimization levels the evaluation sweeps over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OptLevel {
    /// No optimization; every value lives on the stack.
    O0,
    /// Basic scalar optimizations and register allocation.
    O1,
    /// `O1` plus function inlining.
    O2,
    /// `O2` plus loop unrolling (larger, faster code).
    O3,
    /// Optimize for size: like `O2` but without inlining.
    Os,
}

impl OptLevel {
    /// All levels, in the order used by the paper's evaluation.
    pub const ALL: [OptLevel; 5] = [
        OptLevel::O0,
        OptLevel::O1,
        OptLevel::O2,
        OptLevel::O3,
        OptLevel::Os,
    ];

    /// The lowering options for this level.
    pub fn lower_options(self) -> LowerOptions {
        LowerOptions {
            unroll_loops: self == OptLevel::O3,
            unroll_limit: 96,
        }
    }

    /// The code-generation options for this level.
    pub fn codegen_options(self) -> CodegenOptions {
        CodegenOptions {
            use_registers: self != OptLevel::O0,
            use_compare_branch: self != OptLevel::O0,
        }
    }

    /// The inlining threshold (maximum callee instruction count), if the
    /// level inlines at all.
    pub fn inline_threshold(self) -> Option<usize> {
        match self {
            OptLevel::O0 | OptLevel::O1 | OptLevel::Os => None,
            OptLevel::O2 => Some(8),
            OptLevel::O3 => Some(16),
        }
    }

    /// Whether the scalar pass pipeline runs at all.
    pub fn runs_passes(self) -> bool {
        self != OptLevel::O0
    }
}

impl fmt::Display for OptLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OptLevel::O0 => "O0",
            OptLevel::O1 => "O1",
            OptLevel::O2 => "O2",
            OptLevel::O3 => "O3",
            OptLevel::Os => "Os",
        };
        write!(f, "{s}")
    }
}

/// A source file together with its linkage role.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceUnit<'a> {
    /// The mini-C source text.
    pub code: &'a str,
    /// Whether this unit is statically-linked library code (always compiled
    /// at `-O2` and opaque to the placement optimizer).
    pub is_library: bool,
}

impl<'a> SourceUnit<'a> {
    /// An application translation unit.
    pub fn application(code: &'a str) -> SourceUnit<'a> {
        SourceUnit {
            code,
            is_library: false,
        }
    }

    /// A library translation unit.
    pub fn library(code: &'a str) -> SourceUnit<'a> {
        SourceUnit {
            code,
            is_library: true,
        }
    }
}

/// Compile one translation unit to the mid-level IR (parsed, lowered and
/// optimized according to `opt`).
///
/// # Errors
///
/// Returns the first lexical, syntactic or semantic error.
pub fn compile_module(
    source: &str,
    opt: OptLevel,
    is_library: bool,
) -> Result<IrModule, CompileError> {
    let ast = parser::parse(source)?;
    let mut module = lower::lower_program(&ast, &opt.lower_options(), is_library)?;
    if opt.runs_passes() {
        passes::optimize_module(&mut module, opt.inline_threshold());
    }
    Ok(module)
}

/// Link several IR modules into one, remapping global references and
/// rejecting duplicate definitions.
///
/// # Errors
///
/// Returns an error on duplicate function or global names.
pub fn link_modules(modules: Vec<IrModule>) -> Result<IrModule, CompileError> {
    let mut linked = IrModule::new();
    let mut function_names: HashSet<String> = HashSet::new();
    let mut global_names: HashSet<String> = HashSet::new();
    for module in modules {
        let global_offset = linked.globals.len();
        for g in module.globals {
            if !global_names.insert(g.name.clone()) {
                return Err(CompileError::global(format!(
                    "duplicate definition of global `{}`",
                    g.name
                )));
            }
            linked.globals.push(g);
        }
        for mut f in module.functions {
            if !function_names.insert(f.name.clone()) {
                return Err(CompileError::global(format!(
                    "duplicate definition of function `{}`",
                    f.name
                )));
            }
            if global_offset > 0 {
                for block in &mut f.blocks {
                    for inst in &mut block.insts {
                        if let IrInst::GlobalAddr { global, .. } = inst {
                            *global += global_offset;
                        }
                    }
                }
            }
            linked.functions.push(f);
        }
    }
    Ok(linked)
}

/// Compile and link a whole program: every source unit is compiled (library
/// units always at `-O2`, application units at `opt`), linked, and lowered to
/// a machine program ready for layout, optimization and simulation.
///
/// # Errors
///
/// Returns compile errors from any unit, duplicate-symbol link errors, or
/// undefined-function errors from code generation.
pub fn compile_program(
    units: &[SourceUnit<'_>],
    opt: OptLevel,
) -> Result<MachineProgram, CompileError> {
    let mut modules = Vec::with_capacity(units.len());
    for unit in units {
        let unit_level = if unit.is_library { OptLevel::O2 } else { opt };
        modules.push(compile_module(unit.code, unit_level, unit.is_library)?);
    }
    let linked = link_modules(modules)?;
    let program = codegen::codegen_module(&linked, &opt.codegen_options())?;
    let problems = program.validate();
    if !problems.is_empty() {
        return Err(CompileError::global(format!(
            "internal error: generated program failed validation: {}",
            problems.join("; ")
        )));
    }
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;

    const APP: &str = "
        int data[8] = {3, 1, 4, 1, 5, 9, 2, 6};
        int sum(int n) {
            int s = 0;
            for (int i = 0; i < n; i++) { s += data[i]; }
            return s;
        }
        int main() { return sum(8); }
    ";

    #[test]
    fn compiles_at_every_optimization_level() {
        for level in OptLevel::ALL {
            let prog = compile_program(&[SourceUnit::application(APP)], level)
                .unwrap_or_else(|e| panic!("{level}: {e}"));
            assert!(prog.function("main").is_some(), "{level}");
            assert!(prog.validate().is_empty(), "{level}");
        }
    }

    #[test]
    fn higher_levels_produce_smaller_or_equal_code_than_o0() {
        let sizes: Vec<(OptLevel, u32)> = OptLevel::ALL
            .iter()
            .map(|&l| {
                let p = compile_program(&[SourceUnit::application(APP)], l).unwrap();
                (l, p.code_size())
            })
            .collect();
        let o0 = sizes.iter().find(|(l, _)| *l == OptLevel::O0).unwrap().1;
        let o2 = sizes.iter().find(|(l, _)| *l == OptLevel::O2).unwrap().1;
        assert!(
            o2 < o0,
            "O2 ({o2} bytes) should be smaller than O0 ({o0} bytes)"
        );
    }

    #[test]
    fn o3_unrolling_changes_block_structure() {
        let src = "
            int acc(int x[]) { int s = 0; for (int i = 0; i < 8; i++) { s += x[i]; } return s; }
            int main() { int a[8]; for (int i = 0; i < 8; i++) { a[i] = i; } return acc(a); }
        ";
        let o2 = compile_program(&[SourceUnit::application(src)], OptLevel::O2).unwrap();
        let o3 = compile_program(&[SourceUnit::application(src)], OptLevel::O3).unwrap();
        let blocks = |p: &MachineProgram, name: &str| p.function(name).unwrap().blocks.len();
        assert!(
            blocks(&o3, "acc") < blocks(&o2, "acc"),
            "unrolling should remove the loop: O3 {} vs O2 {}",
            blocks(&o3, "acc"),
            blocks(&o2, "acc")
        );
        // The unrolled body is straight-line code; with constant-folded
        // offsets it may be smaller or larger than the rolled loop, but it
        // must differ.
        assert_ne!(
            o3.function("acc").unwrap().size_bytes(),
            o2.function("acc").unwrap().size_bytes()
        );
    }

    #[test]
    fn library_units_are_flagged_and_linked() {
        let lib = "int helper(int x) { return x * 3; }";
        let app = "int main() { return helper(4); }";
        let prog = compile_program(
            &[SourceUnit::library(lib), SourceUnit::application(app)],
            OptLevel::O1,
        )
        .unwrap();
        assert!(prog.function("helper").unwrap().is_library);
        assert!(!prog.function("main").unwrap().is_library);
    }

    #[test]
    fn duplicate_symbols_are_link_errors() {
        let a = "int f() { return 1; }";
        let b = "int f() { return 2; }";
        let err = compile_program(
            &[SourceUnit::application(a), SourceUnit::application(b)],
            OptLevel::O1,
        )
        .unwrap_err();
        assert!(err.message.contains("duplicate"), "{err}");
    }

    #[test]
    fn global_references_survive_linking() {
        let lib = "int lib_state = 7; int lib_get() { return lib_state; }";
        let app = "int app_state = 9; int main() { return lib_get() + app_state; }";
        let prog = compile_program(
            &[SourceUnit::library(lib), SourceUnit::application(app)],
            OptLevel::O2,
        )
        .unwrap();
        assert_eq!(prog.globals.len(), 2);
        assert!(prog.validate().is_empty());
    }
}
