//! Recursive-descent parser for mini-C.

use crate::ast::{
    BinAstOp, DeclType, Expr, Function, Initializer, Item, Param, Program, Stmt, TypeSpec, UnOp,
    VarDecl,
};
use crate::error::CompileError;
use crate::token::{tokenize, Keyword, Punct, Spanned, Token};

/// Parse a complete translation unit.
///
/// # Errors
///
/// Returns the first lexical or syntactic error encountered.
pub fn parse(source: &str) -> Result<Program, CompileError> {
    let tokens = tokenize(source)?;
    Parser { tokens, pos: 0 }.parse_program()
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos].token
    }

    fn peek_ahead(&self, offset: usize) -> &Token {
        let idx = (self.pos + offset).min(self.tokens.len() - 1);
        &self.tokens[idx].token
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos].line
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].token.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, msg: impl Into<String>) -> CompileError {
        CompileError::new(msg, self.line())
    }

    fn expect_punct(&mut self, p: Punct) -> Result<(), CompileError> {
        match self.peek() {
            Token::Punct(q) if *q == p => {
                self.bump();
                Ok(())
            }
            other => Err(self.error(format!("expected '{p}', found '{other}'"))),
        }
    }

    fn eat_punct(&mut self, p: Punct) -> bool {
        if matches!(self.peek(), Token::Punct(q) if *q == p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_keyword(&mut self, k: Keyword) -> bool {
        if matches!(self.peek(), Token::Keyword(q) if *q == k) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String, CompileError> {
        match self.bump() {
            Token::Ident(s) => Ok(s),
            other => Err(self.error(format!("expected identifier, found '{other}'"))),
        }
    }

    // ----- types -----

    fn peek_is_type(&self) -> bool {
        matches!(
            self.peek(),
            Token::Keyword(
                Keyword::Int
                    | Keyword::Unsigned
                    | Keyword::Char
                    | Keyword::Float
                    | Keyword::Void
                    | Keyword::Const
            )
        )
    }

    fn parse_type_spec(&mut self) -> Result<(TypeSpec, bool), CompileError> {
        let mut is_const = false;
        if self.eat_keyword(Keyword::Const) {
            is_const = true;
        }
        let spec = match self.bump() {
            Token::Keyword(Keyword::Int) => TypeSpec::Int,
            Token::Keyword(Keyword::Unsigned) => {
                // Allow `unsigned int` and `unsigned char`.
                if self.eat_keyword(Keyword::Int) {
                    TypeSpec::Unsigned
                } else if self.eat_keyword(Keyword::Char) {
                    TypeSpec::UChar
                } else {
                    TypeSpec::Unsigned
                }
            }
            Token::Keyword(Keyword::Char) => TypeSpec::Char,
            Token::Keyword(Keyword::Float) => TypeSpec::Float,
            Token::Keyword(Keyword::Void) => TypeSpec::Void,
            other => return Err(self.error(format!("expected type, found '{other}'"))),
        };
        if self.eat_keyword(Keyword::Const) {
            is_const = true;
        }
        Ok((spec, is_const))
    }

    // ----- program structure -----

    fn parse_program(&mut self) -> Result<Program, CompileError> {
        let mut items = Vec::new();
        while !matches!(self.peek(), Token::Eof) {
            items.push(self.parse_item()?);
        }
        Ok(Program { items })
    }

    fn parse_item(&mut self) -> Result<Item, CompileError> {
        let line = self.line();
        let (base, is_const) = self.parse_type_spec()?;
        let mut pointer = 0u8;
        while self.eat_punct(Punct::Star) {
            pointer += 1;
        }
        let name = self.expect_ident()?;
        if matches!(self.peek(), Token::Punct(Punct::LParen)) {
            // Function definition.
            let func = self.parse_function(base, pointer, name, line)?;
            Ok(Item::Function(func))
        } else {
            let decl = self.parse_global_tail(base, pointer, name, is_const, line)?;
            Ok(Item::Global(decl))
        }
    }

    fn parse_function(
        &mut self,
        ret_base: TypeSpec,
        ret_ptr: u8,
        name: String,
        line: u32,
    ) -> Result<Function, CompileError> {
        self.expect_punct(Punct::LParen)?;
        let mut params = Vec::new();
        if !self.eat_punct(Punct::RParen) {
            if self.eat_keyword(Keyword::Void) && matches!(self.peek(), Token::Punct(Punct::RParen))
            {
                self.expect_punct(Punct::RParen)?;
            } else {
                loop {
                    let (base, _) = self.parse_type_spec()?;
                    let mut pointer = 0u8;
                    while self.eat_punct(Punct::Star) {
                        pointer += 1;
                    }
                    let pname = self.expect_ident()?;
                    // Array parameters decay to pointers: `int a[]` or `int a[N]`.
                    if self.eat_punct(Punct::LBracket) {
                        if !matches!(self.peek(), Token::Punct(Punct::RBracket)) {
                            let _ = self.parse_expr()?;
                        }
                        self.expect_punct(Punct::RBracket)?;
                        pointer += 1;
                    }
                    params.push(Param {
                        name: pname,
                        ty: DeclType {
                            base,
                            pointer,
                            array_len: None,
                        },
                    });
                    if self.eat_punct(Punct::RParen) {
                        break;
                    }
                    self.expect_punct(Punct::Comma)?;
                }
            }
        }
        self.expect_punct(Punct::LBrace)?;
        let body = self.parse_block_body()?;
        Ok(Function {
            name,
            ret: DeclType {
                base: ret_base,
                pointer: ret_ptr,
                array_len: None,
            },
            params,
            body,
            line,
        })
    }

    fn parse_global_tail(
        &mut self,
        base: TypeSpec,
        pointer: u8,
        name: String,
        is_const: bool,
        line: u32,
    ) -> Result<VarDecl, CompileError> {
        let array_len = if self.eat_punct(Punct::LBracket) {
            let len = self.parse_const_len()?;
            self.expect_punct(Punct::RBracket)?;
            Some(len)
        } else {
            None
        };
        let init = if self.eat_punct(Punct::Assign) {
            Some(self.parse_initializer()?)
        } else {
            None
        };
        self.expect_punct(Punct::Semicolon)?;
        Ok(VarDecl {
            name,
            ty: DeclType {
                base,
                pointer,
                array_len,
            },
            is_const,
            init,
            line,
        })
    }

    fn parse_const_len(&mut self) -> Result<usize, CompileError> {
        match self.bump() {
            Token::Int(v) if v >= 0 => Ok(v as usize),
            other => Err(self.error(format!("expected array length, found '{other}'"))),
        }
    }

    fn parse_initializer(&mut self) -> Result<Initializer, CompileError> {
        if self.eat_punct(Punct::LBrace) {
            let mut items = Vec::new();
            if !self.eat_punct(Punct::RBrace) {
                loop {
                    items.push(self.parse_expr()?);
                    if self.eat_punct(Punct::RBrace) {
                        break;
                    }
                    self.expect_punct(Punct::Comma)?;
                    // Allow a trailing comma before '}'.
                    if self.eat_punct(Punct::RBrace) {
                        break;
                    }
                }
            }
            Ok(Initializer::List(items))
        } else {
            Ok(Initializer::Expr(self.parse_expr()?))
        }
    }

    // ----- statements -----

    fn parse_block_body(&mut self) -> Result<Vec<Stmt>, CompileError> {
        let mut stmts = Vec::new();
        while !self.eat_punct(Punct::RBrace) {
            if matches!(self.peek(), Token::Eof) {
                return Err(self.error("unexpected end of input inside block"));
            }
            stmts.push(self.parse_stmt()?);
        }
        Ok(stmts)
    }

    fn parse_stmt(&mut self) -> Result<Stmt, CompileError> {
        match self.peek().clone() {
            Token::Punct(Punct::Semicolon) => {
                self.bump();
                Ok(Stmt::Empty)
            }
            Token::Punct(Punct::LBrace) => {
                self.bump();
                Ok(Stmt::Block(self.parse_block_body()?))
            }
            Token::Keyword(Keyword::Return) => {
                self.bump();
                if self.eat_punct(Punct::Semicolon) {
                    Ok(Stmt::Return(None))
                } else {
                    let e = self.parse_expr()?;
                    self.expect_punct(Punct::Semicolon)?;
                    Ok(Stmt::Return(Some(e)))
                }
            }
            Token::Keyword(Keyword::Break) => {
                self.bump();
                self.expect_punct(Punct::Semicolon)?;
                Ok(Stmt::Break)
            }
            Token::Keyword(Keyword::Continue) => {
                self.bump();
                self.expect_punct(Punct::Semicolon)?;
                Ok(Stmt::Continue)
            }
            Token::Keyword(Keyword::If) => self.parse_if(),
            Token::Keyword(Keyword::While) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let cond = self.parse_expr()?;
                self.expect_punct(Punct::RParen)?;
                let body = self.parse_stmt_as_block()?;
                Ok(Stmt::While { cond, body })
            }
            Token::Keyword(Keyword::Do) => {
                self.bump();
                let body = self.parse_stmt_as_block()?;
                if !self.eat_keyword(Keyword::While) {
                    return Err(self.error("expected 'while' after do-block"));
                }
                self.expect_punct(Punct::LParen)?;
                let cond = self.parse_expr()?;
                self.expect_punct(Punct::RParen)?;
                self.expect_punct(Punct::Semicolon)?;
                Ok(Stmt::DoWhile { body, cond })
            }
            Token::Keyword(Keyword::For) => self.parse_for(),
            Token::Keyword(_) if self.peek_is_type() => {
                let d = self.parse_local_decl()?;
                Ok(Stmt::Decl(d))
            }
            _ => {
                let stmt = self.parse_expr_or_assign()?;
                self.expect_punct(Punct::Semicolon)?;
                Ok(stmt)
            }
        }
    }

    fn parse_stmt_as_block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        if self.eat_punct(Punct::LBrace) {
            self.parse_block_body()
        } else {
            Ok(vec![self.parse_stmt()?])
        }
    }

    fn parse_if(&mut self) -> Result<Stmt, CompileError> {
        self.bump(); // if
        self.expect_punct(Punct::LParen)?;
        let cond = self.parse_expr()?;
        self.expect_punct(Punct::RParen)?;
        let then_body = self.parse_stmt_as_block()?;
        let else_body = if self.eat_keyword(Keyword::Else) {
            if matches!(self.peek(), Token::Keyword(Keyword::If)) {
                vec![self.parse_if()?]
            } else {
                self.parse_stmt_as_block()?
            }
        } else {
            Vec::new()
        };
        Ok(Stmt::If {
            cond,
            then_body,
            else_body,
        })
    }

    fn parse_for(&mut self) -> Result<Stmt, CompileError> {
        self.bump(); // for
        self.expect_punct(Punct::LParen)?;
        let init = if self.eat_punct(Punct::Semicolon) {
            None
        } else if self.peek_is_type() {
            Some(Box::new(Stmt::Decl(self.parse_local_decl()?)))
        } else {
            let s = self.parse_expr_or_assign()?;
            self.expect_punct(Punct::Semicolon)?;
            Some(Box::new(s))
        };
        let cond = if self.eat_punct(Punct::Semicolon) {
            None
        } else {
            let e = self.parse_expr()?;
            self.expect_punct(Punct::Semicolon)?;
            Some(e)
        };
        let step = if matches!(self.peek(), Token::Punct(Punct::RParen)) {
            None
        } else {
            Some(Box::new(self.parse_expr_or_assign()?))
        };
        self.expect_punct(Punct::RParen)?;
        let body = self.parse_stmt_as_block()?;
        Ok(Stmt::For {
            init,
            cond,
            step,
            body,
        })
    }

    fn parse_local_decl(&mut self) -> Result<VarDecl, CompileError> {
        let line = self.line();
        let (base, is_const) = self.parse_type_spec()?;
        let mut pointer = 0u8;
        while self.eat_punct(Punct::Star) {
            pointer += 1;
        }
        let name = self.expect_ident()?;
        let array_len = if self.eat_punct(Punct::LBracket) {
            let len = self.parse_const_len()?;
            self.expect_punct(Punct::RBracket)?;
            Some(len)
        } else {
            None
        };
        let init = if self.eat_punct(Punct::Assign) {
            Some(self.parse_initializer()?)
        } else {
            None
        };
        self.expect_punct(Punct::Semicolon)?;
        Ok(VarDecl {
            name,
            ty: DeclType {
                base,
                pointer,
                array_len,
            },
            is_const,
            init,
            line,
        })
    }

    /// Parse either an expression statement, an assignment (simple or
    /// compound) or an increment/decrement statement.
    fn parse_expr_or_assign(&mut self) -> Result<Stmt, CompileError> {
        let target = self.parse_expr()?;
        let op = match self.peek() {
            Token::Punct(Punct::Assign) => {
                self.bump();
                let value = self.parse_expr()?;
                return Ok(Stmt::Assign {
                    target,
                    op: None,
                    value,
                });
            }
            Token::Punct(Punct::PlusAssign) => Some(BinAstOp::Add),
            Token::Punct(Punct::MinusAssign) => Some(BinAstOp::Sub),
            Token::Punct(Punct::StarAssign) => Some(BinAstOp::Mul),
            Token::Punct(Punct::SlashAssign) => Some(BinAstOp::Div),
            Token::Punct(Punct::PercentAssign) => Some(BinAstOp::Mod),
            Token::Punct(Punct::AmpAssign) => Some(BinAstOp::BitAnd),
            Token::Punct(Punct::PipeAssign) => Some(BinAstOp::BitOr),
            Token::Punct(Punct::CaretAssign) => Some(BinAstOp::BitXor),
            Token::Punct(Punct::ShlAssign) => Some(BinAstOp::Shl),
            Token::Punct(Punct::ShrAssign) => Some(BinAstOp::Shr),
            Token::Punct(Punct::PlusPlus) => {
                self.bump();
                return Ok(Stmt::Assign {
                    target: target.clone(),
                    op: Some(BinAstOp::Add),
                    value: Expr::IntLit(1),
                });
            }
            Token::Punct(Punct::MinusMinus) => {
                self.bump();
                return Ok(Stmt::Assign {
                    target: target.clone(),
                    op: Some(BinAstOp::Sub),
                    value: Expr::IntLit(1),
                });
            }
            _ => return Ok(Stmt::Expr(target)),
        };
        self.bump();
        let value = self.parse_expr()?;
        Ok(Stmt::Assign { target, op, value })
    }

    // ----- expressions (precedence climbing) -----

    fn parse_expr(&mut self) -> Result<Expr, CompileError> {
        self.parse_conditional()
    }

    fn parse_conditional(&mut self) -> Result<Expr, CompileError> {
        let cond = self.parse_binary(0)?;
        if self.eat_punct(Punct::Question) {
            let then_expr = self.parse_expr()?;
            self.expect_punct(Punct::Colon)?;
            let else_expr = self.parse_conditional()?;
            Ok(Expr::Conditional {
                cond: Box::new(cond),
                then_expr: Box::new(then_expr),
                else_expr: Box::new(else_expr),
            })
        } else {
            Ok(cond)
        }
    }

    fn parse_binary(&mut self, min_prec: u8) -> Result<Expr, CompileError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let (op, prec) = match self.peek() {
                Token::Punct(Punct::OrOr) => (BinAstOp::LogicalOr, 1),
                Token::Punct(Punct::AndAnd) => (BinAstOp::LogicalAnd, 2),
                Token::Punct(Punct::Pipe) => (BinAstOp::BitOr, 3),
                Token::Punct(Punct::Caret) => (BinAstOp::BitXor, 4),
                Token::Punct(Punct::Amp) => (BinAstOp::BitAnd, 5),
                Token::Punct(Punct::EqEq) => (BinAstOp::Eq, 6),
                Token::Punct(Punct::Ne) => (BinAstOp::Ne, 6),
                Token::Punct(Punct::Lt) => (BinAstOp::Lt, 7),
                Token::Punct(Punct::Le) => (BinAstOp::Le, 7),
                Token::Punct(Punct::Gt) => (BinAstOp::Gt, 7),
                Token::Punct(Punct::Ge) => (BinAstOp::Ge, 7),
                Token::Punct(Punct::Shl) => (BinAstOp::Shl, 8),
                Token::Punct(Punct::Shr) => (BinAstOp::Shr, 8),
                Token::Punct(Punct::Plus) => (BinAstOp::Add, 9),
                Token::Punct(Punct::Minus) => (BinAstOp::Sub, 9),
                Token::Punct(Punct::Star) => (BinAstOp::Mul, 10),
                Token::Punct(Punct::Slash) => (BinAstOp::Div, 10),
                Token::Punct(Punct::Percent) => (BinAstOp::Mod, 10),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.parse_binary(prec + 1)?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, CompileError> {
        match self.peek().clone() {
            Token::Punct(Punct::Minus) => {
                self.bump();
                Ok(Expr::Unary {
                    op: UnOp::Neg,
                    expr: Box::new(self.parse_unary()?),
                })
            }
            Token::Punct(Punct::Bang) => {
                self.bump();
                Ok(Expr::Unary {
                    op: UnOp::LogicalNot,
                    expr: Box::new(self.parse_unary()?),
                })
            }
            Token::Punct(Punct::Tilde) => {
                self.bump();
                Ok(Expr::Unary {
                    op: UnOp::BitNot,
                    expr: Box::new(self.parse_unary()?),
                })
            }
            Token::Punct(Punct::LParen) if self.is_cast_ahead() => {
                self.bump();
                let (base, _) = self.parse_type_spec()?;
                let mut pointer = 0u8;
                while self.eat_punct(Punct::Star) {
                    pointer += 1;
                }
                self.expect_punct(Punct::RParen)?;
                let expr = self.parse_unary()?;
                Ok(Expr::Cast {
                    ty: DeclType {
                        base,
                        pointer,
                        array_len: None,
                    },
                    expr: Box::new(expr),
                })
            }
            _ => self.parse_postfix(),
        }
    }

    fn is_cast_ahead(&self) -> bool {
        matches!(self.peek(), Token::Punct(Punct::LParen))
            && matches!(
                self.peek_ahead(1),
                Token::Keyword(
                    Keyword::Int
                        | Keyword::Unsigned
                        | Keyword::Char
                        | Keyword::Float
                        | Keyword::Void
                )
            )
    }

    fn parse_postfix(&mut self) -> Result<Expr, CompileError> {
        let mut expr = self.parse_primary()?;
        loop {
            if self.eat_punct(Punct::LBracket) {
                let index = self.parse_expr()?;
                self.expect_punct(Punct::RBracket)?;
                expr = Expr::Index {
                    base: Box::new(expr),
                    index: Box::new(index),
                };
            } else {
                break;
            }
        }
        Ok(expr)
    }

    fn parse_primary(&mut self) -> Result<Expr, CompileError> {
        match self.bump() {
            Token::Int(v) => Ok(Expr::IntLit(v)),
            Token::Float(v) => Ok(Expr::FloatLit(v)),
            Token::Char(c) => Ok(Expr::CharLit(c)),
            Token::Ident(name) => {
                if self.eat_punct(Punct::LParen) {
                    let mut args = Vec::new();
                    if !self.eat_punct(Punct::RParen) {
                        loop {
                            args.push(self.parse_expr()?);
                            if self.eat_punct(Punct::RParen) {
                                break;
                            }
                            self.expect_punct(Punct::Comma)?;
                        }
                    }
                    Ok(Expr::Call { name, args })
                } else {
                    Ok(Expr::Ident(name))
                }
            }
            Token::Punct(Punct::LParen) => {
                let e = self.parse_expr()?;
                self.expect_punct(Punct::RParen)?;
                Ok(e)
            }
            other => Err(self.error(format!("unexpected token '{other}' in expression"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_global_and_function() {
        let src = "
            const int table[4] = {1, 2, 3, 4};
            int counter = 0;
            int add(int a, int b) { return a + b; }
        ";
        let p = parse(src).unwrap();
        assert_eq!(p.globals().count(), 2);
        assert_eq!(p.functions().count(), 1);
        let f = p.functions().next().unwrap();
        assert_eq!(f.name, "add");
        assert_eq!(f.params.len(), 2);
    }

    #[test]
    fn precedence_groups_multiplication_tighter() {
        let p = parse("int f() { return 1 + 2 * 3; }").unwrap();
        let f = p.functions().next().unwrap();
        match &f.body[0] {
            Stmt::Return(Some(Expr::Binary {
                op: BinAstOp::Add,
                rhs,
                ..
            })) => {
                assert!(matches!(
                    **rhs,
                    Expr::Binary {
                        op: BinAstOp::Mul,
                        ..
                    }
                ));
            }
            other => panic!("unexpected AST: {other:?}"),
        }
    }

    #[test]
    fn parses_control_flow() {
        let src = "
            int f(int n) {
                int s = 0;
                for (int i = 0; i < n; i++) {
                    if (i % 2 == 0) { s += i; } else { s -= 1; }
                }
                while (s > 100) s /= 2;
                do { s++; } while (s < 10);
                return s;
            }
        ";
        let p = parse(src).unwrap();
        let f = p.functions().next().unwrap();
        assert!(f.body.iter().any(|s| matches!(s, Stmt::For { .. })));
        assert!(f.body.iter().any(|s| matches!(s, Stmt::While { .. })));
        assert!(f.body.iter().any(|s| matches!(s, Stmt::DoWhile { .. })));
    }

    #[test]
    fn parses_arrays_pointers_and_calls() {
        let src = "
            void fir(int x[], int *y, int n) {
                int acc = 0;
                for (int i = 0; i < n; i++) { acc += x[i] * y[i]; }
                y[0] = acc;
            }
            int main() { int a[8]; int b[8]; fir(a, b, 8); return 0; }
        ";
        let p = parse(src).unwrap();
        let fir = p.functions().next().unwrap();
        assert_eq!(
            fir.params[0].ty.pointer, 1,
            "array parameter decays to pointer"
        );
        assert_eq!(fir.params[1].ty.pointer, 1);
    }

    #[test]
    fn parses_casts_conditional_and_logical_ops() {
        let src = "int f(int a, int b) { int x = (a > 0 && b > 0) ? a : b; return (int)(x * 1); }";
        let p = parse(src).unwrap();
        assert_eq!(p.functions().count(), 1);
    }

    #[test]
    fn parses_float_code() {
        let src = "
            float scale = 1.5f;
            float mul(float a, float b) { return a * b * scale; }
        ";
        let p = parse(src).unwrap();
        assert_eq!(p.globals().count(), 1);
    }

    #[test]
    fn else_if_chains() {
        let src = "int f(int x) { if (x > 2) return 2; else if (x > 1) return 1; else return 0; }";
        let p = parse(src).unwrap();
        let f = p.functions().next().unwrap();
        match &f.body[0] {
            Stmt::If { else_body, .. } => {
                assert!(matches!(else_body[0], Stmt::If { .. }));
            }
            other => panic!("unexpected AST: {other:?}"),
        }
    }

    #[test]
    fn reports_syntax_errors_with_lines() {
        let e = parse("int f() {\n return 1 +; \n}").unwrap_err();
        assert!(
            e.line >= 2,
            "error should point at or after the bad line, got {}",
            e.line
        );
        assert!(parse("int f( { return 0; }").is_err());
        assert!(parse("int x = ;").is_err());
    }

    #[test]
    fn unsigned_char_and_hex_literals() {
        let src = "unsigned char box1[2] = {0x63, 0x7c}; unsigned int mask = 0xffffffff;";
        let p = parse(src).unwrap();
        let globals: Vec<_> = p.globals().collect();
        assert_eq!(globals[0].ty.base, TypeSpec::UChar);
        assert_eq!(globals[0].ty.array_len, Some(2));
        assert_eq!(globals[1].ty.base, TypeSpec::Unsigned);
    }
}
