//! Semantic types of the mini-C language.

use flashram_isa::MemWidth;

use crate::ast::{DeclType, TypeSpec};

/// A resolved type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ty {
    /// No value.
    Void,
    /// 32-bit signed integer.
    Int,
    /// 32-bit unsigned integer.
    Uint,
    /// 8-bit unsigned character (plain `char` is unsigned on this target,
    /// as it is on ARM EABI).
    Char,
    /// IEEE-754 single precision, software implemented.
    Float,
    /// Pointer to an element type.
    Ptr(Box<Ty>),
    /// Fixed-size array.
    Array(Box<Ty>, usize),
}

impl Ty {
    /// Resolve a declared type.
    pub fn from_decl(d: &DeclType) -> Ty {
        let base = match d.base {
            TypeSpec::Int => Ty::Int,
            TypeSpec::Unsigned => Ty::Uint,
            TypeSpec::Char | TypeSpec::UChar => Ty::Char,
            TypeSpec::Float => Ty::Float,
            TypeSpec::Void => Ty::Void,
        };
        let mut ty = base;
        for _ in 0..d.pointer {
            ty = Ty::Ptr(Box::new(ty));
        }
        if let Some(len) = d.array_len {
            ty = Ty::Array(Box::new(ty), len);
        }
        ty
    }

    /// Size of a value of this type in bytes.
    pub fn size(&self) -> u32 {
        match self {
            Ty::Void => 0,
            Ty::Char => 1,
            Ty::Int | Ty::Uint | Ty::Float | Ty::Ptr(_) => 4,
            Ty::Array(elem, len) => elem.size() * *len as u32,
        }
    }

    /// The memory access width used to load or store a scalar of this type.
    pub fn mem_width(&self) -> MemWidth {
        match self {
            Ty::Char => MemWidth::Byte,
            _ => MemWidth::Word,
        }
    }

    /// Whether this is the software float type.
    pub fn is_float(&self) -> bool {
        matches!(self, Ty::Float)
    }

    /// Whether this is an integer type (char included).
    pub fn is_integer(&self) -> bool {
        matches!(self, Ty::Int | Ty::Uint | Ty::Char)
    }

    /// Whether arithmetic on this type is unsigned.
    pub fn is_unsigned(&self) -> bool {
        matches!(self, Ty::Uint | Ty::Char | Ty::Ptr(_))
    }

    /// Whether this is a pointer.
    pub fn is_pointer(&self) -> bool {
        matches!(self, Ty::Ptr(_))
    }

    /// Whether this is an array.
    pub fn is_array(&self) -> bool {
        matches!(self, Ty::Array(..))
    }

    /// Array-to-pointer decay (other types unchanged).
    pub fn decay(&self) -> Ty {
        match self {
            Ty::Array(elem, _) => Ty::Ptr(elem.clone()),
            other => other.clone(),
        }
    }

    /// Element type of a pointer or array.
    pub fn element(&self) -> Option<&Ty> {
        match self {
            Ty::Ptr(e) | Ty::Array(e, _) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(Ty::Int.size(), 4);
        assert_eq!(Ty::Char.size(), 1);
        assert_eq!(Ty::Float.size(), 4);
        assert_eq!(Ty::Array(Box::new(Ty::Int), 10).size(), 40);
        assert_eq!(Ty::Array(Box::new(Ty::Char), 7).size(), 7);
        assert_eq!(Ty::Ptr(Box::new(Ty::Char)).size(), 4);
    }

    #[test]
    fn decl_resolution_and_decay() {
        let d = DeclType {
            base: TypeSpec::Int,
            pointer: 0,
            array_len: Some(4),
        };
        let t = Ty::from_decl(&d);
        assert_eq!(t, Ty::Array(Box::new(Ty::Int), 4));
        assert_eq!(t.decay(), Ty::Ptr(Box::new(Ty::Int)));
        let p = DeclType {
            base: TypeSpec::Float,
            pointer: 1,
            array_len: None,
        };
        assert_eq!(Ty::from_decl(&p), Ty::Ptr(Box::new(Ty::Float)));
    }

    #[test]
    fn classification() {
        assert!(Ty::Uint.is_unsigned());
        assert!(Ty::Char.is_unsigned());
        assert!(!Ty::Int.is_unsigned());
        assert!(Ty::Float.is_float());
        assert!(Ty::Int.is_integer());
        assert!(!Ty::Float.is_integer());
        assert_eq!(Ty::Char.mem_width(), MemWidth::Byte);
        assert_eq!(Ty::Int.mem_width(), MemWidth::Word);
        assert_eq!(Ty::Ptr(Box::new(Ty::Int)).element(), Some(&Ty::Int));
    }
}
