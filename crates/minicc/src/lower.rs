//! Lowering from the mini-C AST to the mid-level IR.
//!
//! The lowering performs type checking as it goes: integer promotion, array
//! decay, pointer-arithmetic scaling, implicit conversions, and the
//! replacement of every `float` operation by a call into the soft-float
//! support library (`__f32_add`, `__f32_mul`, ...).  Those calls are what
//! make the float-heavy benchmarks opaque to the placement optimizer — the
//! same limitation the paper observes for `cubic` and `float_matmult`.

use std::collections::HashMap;

use crate::ast::{
    BinAstOp, Expr, Function, Initializer, Item, Program, Stmt, TypeSpec, UnOp, VarDecl,
};
use crate::error::CompileError;
use crate::types::Ty;
use flashram_ir::{
    BinOp, BlockId, CmpOp, FuncRef, Global, GlobalInit, IrFunction, IrInst, IrModule, IrTerm,
    StackSlot, VReg, Value,
};

/// Options controlling AST-level transformations applied during lowering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LowerOptions {
    /// Fully unroll small counted `for` loops (enabled at `-O3`).
    pub unroll_loops: bool,
    /// Maximum `trip count × body statements` product for full unrolling.
    pub unroll_limit: usize,
}

impl Default for LowerOptions {
    fn default() -> Self {
        LowerOptions {
            unroll_loops: false,
            unroll_limit: 96,
        }
    }
}

/// Lower a parsed translation unit to an IR module.
///
/// `is_library` marks every produced function as statically-linked library
/// code, which the placement optimizer refuses to touch.
///
/// # Errors
///
/// Returns a [`CompileError`] for type errors, references to undefined names
/// or unsupported constructs.
pub fn lower_program(
    prog: &Program,
    opts: &LowerOptions,
    is_library: bool,
) -> Result<IrModule, CompileError> {
    let mut module = IrModule::new();
    let mut ctx = ModuleCtx::default();
    ctx.install_builtins();

    // Pass 1: collect globals and function signatures.
    for item in &prog.items {
        match item {
            Item::Global(decl) => {
                let ty = Ty::from_decl(&decl.ty);
                if ty == Ty::Void {
                    return Err(CompileError::new("global of type void", decl.line));
                }
                let init = lower_global_init(decl, &ty)?;
                let index = module.globals.len();
                module.globals.push(Global {
                    name: decl.name.clone(),
                    init,
                    mutable: !decl.is_const,
                });
                ctx.globals
                    .insert(decl.name.clone(), GlobalInfo { index, ty });
            }
            Item::Function(f) => {
                let sig = FuncSig {
                    ret: Ty::from_decl(&f.ret),
                    params: f
                        .params
                        .iter()
                        .map(|p| Ty::from_decl(&p.ty).decay())
                        .collect(),
                };
                if sig.params.len() > 4 {
                    return Err(CompileError::new(
                        format!("function {} has more than 4 parameters", f.name),
                        f.line,
                    ));
                }
                ctx.funcs.insert(f.name.clone(), sig);
            }
        }
    }

    // Pass 2: lower each function body.
    for f in prog.functions() {
        let func = FnLower::new(&ctx, f, opts)?.run(f)?;
        let mut func = func;
        func.is_library = is_library;
        module.functions.push(func);
    }
    Ok(module)
}

/// Information about a module global.
#[derive(Debug, Clone)]
struct GlobalInfo {
    index: usize,
    ty: Ty,
}

/// A function signature.
#[derive(Debug, Clone)]
struct FuncSig {
    ret: Ty,
    params: Vec<Ty>,
}

#[derive(Default)]
struct ModuleCtx {
    globals: HashMap<String, GlobalInfo>,
    funcs: HashMap<String, FuncSig>,
}

impl ModuleCtx {
    /// Register the soft-float and math support routines the lowering may
    /// emit calls to.  Their implementations live in the library translation
    /// unit shipped with `flashram-beebs`.
    fn install_builtins(&mut self) {
        let f = Ty::Float;
        let i = Ty::Int;
        let two_f = |ret: Ty| FuncSig {
            ret,
            params: vec![f.clone(), f.clone()],
        };
        self.funcs.insert("__f32_add".into(), two_f(f.clone()));
        self.funcs.insert("__f32_sub".into(), two_f(f.clone()));
        self.funcs.insert("__f32_mul".into(), two_f(f.clone()));
        self.funcs.insert("__f32_div".into(), two_f(f.clone()));
        self.funcs.insert("__f32_lt".into(), two_f(i.clone()));
        self.funcs.insert("__f32_le".into(), two_f(i.clone()));
        self.funcs.insert("__f32_eq".into(), two_f(i.clone()));
        self.funcs.insert(
            "__f32_from_int".into(),
            FuncSig {
                ret: f.clone(),
                params: vec![i.clone()],
            },
        );
        self.funcs.insert(
            "__f32_to_int".into(),
            FuncSig {
                ret: i.clone(),
                params: vec![f.clone()],
            },
        );
        self.funcs.insert(
            "sqrtf".into(),
            FuncSig {
                ret: f.clone(),
                params: vec![f.clone()],
            },
        );
        self.funcs.insert(
            "fabsf".into(),
            FuncSig {
                ret: f.clone(),
                params: vec![f.clone()],
            },
        );
    }
}

fn lower_global_init(decl: &VarDecl, ty: &Ty) -> Result<GlobalInit, CompileError> {
    let line = decl.line;
    match (&decl.init, ty) {
        (None, _) => Ok(GlobalInit::Zero(ty.size().max(1))),
        (Some(Initializer::Expr(e)), Ty::Array(..)) => Err(CompileError::new(
            format!(
                "array {} must use a brace initializer, not {e:?}",
                decl.name
            ),
            line,
        )),
        (Some(Initializer::Expr(e)), scalar) => {
            let v = const_eval(e, line)?;
            Ok(GlobalInit::Words(vec![const_to_bits(v, scalar)]))
        }
        (Some(Initializer::List(items)), Ty::Array(elem, len)) => {
            if items.len() > *len {
                return Err(CompileError::new(
                    format!(
                        "too many initializers for {} ({} > {len})",
                        decl.name,
                        items.len()
                    ),
                    line,
                ));
            }
            match **elem {
                Ty::Char => {
                    let mut bytes = Vec::with_capacity(*len);
                    for e in items {
                        let v = const_eval(e, line)?;
                        bytes.push((const_to_bits(v, &Ty::Int) & 0xff) as u8);
                    }
                    bytes.resize(*len, 0);
                    Ok(GlobalInit::Bytes(bytes))
                }
                _ => {
                    let mut words = Vec::with_capacity(*len);
                    for e in items {
                        let v = const_eval(e, line)?;
                        words.push(const_to_bits(v, elem));
                    }
                    words.resize(*len, 0);
                    Ok(GlobalInit::Words(words))
                }
            }
        }
        (Some(Initializer::List(_)), _) => Err(CompileError::new(
            format!("brace initializer on non-array global {}", decl.name),
            line,
        )),
    }
}

/// A compile-time constant.
#[derive(Debug, Clone, Copy, PartialEq)]
enum ConstVal {
    Int(i64),
    Float(f32),
}

fn const_to_bits(v: ConstVal, ty: &Ty) -> i32 {
    match (v, ty) {
        (ConstVal::Int(i), Ty::Float) => f32::to_bits(i as f32) as i32,
        (ConstVal::Int(i), _) => i as i32,
        (ConstVal::Float(f), Ty::Float) => f32::to_bits(f) as i32,
        (ConstVal::Float(f), _) => f as i32,
    }
}

fn const_eval(e: &Expr, line: u32) -> Result<ConstVal, CompileError> {
    match e {
        Expr::IntLit(v) => Ok(ConstVal::Int(*v)),
        Expr::CharLit(c) => Ok(ConstVal::Int(*c as i64)),
        Expr::FloatLit(f) => Ok(ConstVal::Float(*f)),
        Expr::Unary {
            op: UnOp::Neg,
            expr,
        } => match const_eval(expr, line)? {
            ConstVal::Int(v) => Ok(ConstVal::Int(-v)),
            ConstVal::Float(v) => Ok(ConstVal::Float(-v)),
        },
        Expr::Unary {
            op: UnOp::BitNot,
            expr,
        } => match const_eval(expr, line)? {
            ConstVal::Int(v) => Ok(ConstVal::Int(!(v as i32) as i64)),
            ConstVal::Float(_) => Err(CompileError::new("bitwise not of float constant", line)),
        },
        Expr::Binary { op, lhs, rhs } => {
            let l = const_eval(lhs, line)?;
            let r = const_eval(rhs, line)?;
            match (l, r) {
                (ConstVal::Int(a), ConstVal::Int(b)) => {
                    let a32 = a as i32;
                    let b32 = b as i32;
                    let v = match op {
                        BinAstOp::Add => a32.wrapping_add(b32),
                        BinAstOp::Sub => a32.wrapping_sub(b32),
                        BinAstOp::Mul => a32.wrapping_mul(b32),
                        BinAstOp::Div => {
                            if b32 == 0 {
                                return Err(CompileError::new("constant division by zero", line));
                            }
                            a32.wrapping_div(b32)
                        }
                        BinAstOp::Mod => {
                            if b32 == 0 {
                                return Err(CompileError::new("constant modulo by zero", line));
                            }
                            a32.wrapping_rem(b32)
                        }
                        BinAstOp::BitAnd => a32 & b32,
                        BinAstOp::BitOr => a32 | b32,
                        BinAstOp::BitXor => a32 ^ b32,
                        BinAstOp::Shl => a32.wrapping_shl(b32 as u32 & 31),
                        BinAstOp::Shr => ((a32 as u32).wrapping_shr(b32 as u32 & 31)) as i32,
                        other => {
                            return Err(CompileError::new(
                                format!("operator {other:?} not allowed in constant expressions"),
                                line,
                            ))
                        }
                    };
                    Ok(ConstVal::Int(v as i64))
                }
                (ConstVal::Float(a), ConstVal::Float(b)) => {
                    let v = match op {
                        BinAstOp::Add => a + b,
                        BinAstOp::Sub => a - b,
                        BinAstOp::Mul => a * b,
                        BinAstOp::Div => a / b,
                        other => {
                            return Err(CompileError::new(
                                format!("operator {other:?} not allowed on float constants"),
                                line,
                            ))
                        }
                    };
                    Ok(ConstVal::Float(v))
                }
                _ => Err(CompileError::new(
                    "mixed int/float constant expression",
                    line,
                )),
            }
        }
        Expr::Cast { ty, expr } => {
            let v = const_eval(expr, line)?;
            let target = Ty::from_decl(ty);
            Ok(match (v, target.is_float()) {
                (ConstVal::Int(i), true) => ConstVal::Float(i as f32),
                (ConstVal::Float(f), false) => ConstVal::Int(f as i64),
                (v, _) => v,
            })
        }
        other => Err(CompileError::new(
            format!("expression {other:?} is not a compile-time constant"),
            line,
        )),
    }
}

/// A name binding inside a function.
#[derive(Debug, Clone)]
enum Binding {
    /// A scalar local held in a virtual register.
    Reg { reg: VReg, ty: Ty },
    /// An array local held in a stack slot.
    Slot { slot: usize, ty: Ty },
}

/// An assignable location.
enum LValue {
    Reg { reg: VReg, ty: Ty },
    Mem { addr: Value, offset: i32, ty: Ty },
}

impl LValue {
    fn ty(&self) -> &Ty {
        match self {
            LValue::Reg { ty, .. } | LValue::Mem { ty, .. } => ty,
        }
    }
}

struct FnLower<'a> {
    ctx: &'a ModuleCtx,
    opts: LowerOptions,
    func: IrFunction,
    scopes: Vec<HashMap<String, Binding>>,
    cur: BlockId,
    terminated: bool,
    /// Stack of `(break target, continue target)`.
    loop_stack: Vec<(BlockId, BlockId)>,
    ret_ty: Ty,
    line: u32,
}

impl<'a> FnLower<'a> {
    fn new(
        ctx: &'a ModuleCtx,
        f: &Function,
        opts: &LowerOptions,
    ) -> Result<FnLower<'a>, CompileError> {
        let ret_ty = Ty::from_decl(&f.ret);
        let mut func = IrFunction::new(f.name.clone(), f.params.len());
        func.returns_value = ret_ty != Ty::Void;
        let mut scopes = vec![HashMap::new()];
        for (i, p) in f.params.iter().enumerate() {
            let ty = Ty::from_decl(&p.ty).decay();
            scopes[0].insert(
                p.name.clone(),
                Binding::Reg {
                    reg: VReg(i as u32),
                    ty,
                },
            );
        }
        Ok(FnLower {
            ctx,
            opts: *opts,
            func,
            scopes,
            cur: BlockId(0),
            terminated: false,
            loop_stack: Vec::new(),
            ret_ty,
            line: f.line,
        })
    }

    fn run(mut self, f: &Function) -> Result<IrFunction, CompileError> {
        self.lower_stmts(&f.body)?;
        if !self.terminated {
            let term = if self.ret_ty == Ty::Void {
                IrTerm::Ret(None)
            } else {
                IrTerm::Ret(Some(Value::Const(0)))
            };
            self.terminate(term);
        }
        Ok(self.func)
    }

    // ----- block plumbing -----

    fn emit(&mut self, inst: IrInst) {
        if self.terminated {
            // Unreachable code after return/break; keep it in a dead block so
            // lowering stays simple — CFG simplification removes it later.
            let b = self.func.new_block();
            self.cur = b;
            self.terminated = false;
        }
        self.func.blocks[self.cur.index()].insts.push(inst);
    }

    fn terminate(&mut self, term: IrTerm) {
        if self.terminated {
            return;
        }
        self.func.blocks[self.cur.index()].term = term;
        self.terminated = true;
    }

    fn switch_to(&mut self, block: BlockId) {
        self.cur = block;
        self.terminated = false;
    }

    fn new_block(&mut self) -> BlockId {
        self.func.new_block()
    }

    fn new_reg(&mut self) -> VReg {
        self.func.new_vreg()
    }

    fn err(&self, msg: impl Into<String>) -> CompileError {
        CompileError::new(msg, self.line)
    }

    // ----- scopes -----

    fn push_scope(&mut self) {
        self.scopes.push(HashMap::new());
    }

    fn pop_scope(&mut self) {
        self.scopes.pop();
    }

    fn bind(&mut self, name: &str, binding: Binding) {
        self.scopes
            .last_mut()
            .expect("at least one scope")
            .insert(name.to_string(), binding);
    }

    fn lookup(&self, name: &str) -> Option<Binding> {
        for scope in self.scopes.iter().rev() {
            if let Some(b) = scope.get(name) {
                return Some(b.clone());
            }
        }
        None
    }

    // ----- statements -----

    fn lower_stmts(&mut self, stmts: &[Stmt]) -> Result<(), CompileError> {
        for s in stmts {
            self.lower_stmt(s)?;
        }
        Ok(())
    }

    fn lower_stmt(&mut self, stmt: &Stmt) -> Result<(), CompileError> {
        match stmt {
            Stmt::Empty => Ok(()),
            Stmt::Block(stmts) => {
                self.push_scope();
                self.lower_stmts(stmts)?;
                self.pop_scope();
                Ok(())
            }
            Stmt::Decl(d) => self.lower_local_decl(d),
            Stmt::Expr(e) => {
                self.lower_expr(e)?;
                Ok(())
            }
            Stmt::Assign { target, op, value } => self.lower_assign(target, *op, value),
            Stmt::Return(e) => {
                let term = match e {
                    None => IrTerm::Ret(None),
                    Some(e) => {
                        let ret_ty = self.ret_ty.clone();
                        let (v, ty) = self.lower_expr(e)?;
                        let v = self.convert(v, &ty, &ret_ty)?;
                        IrTerm::Ret(Some(v))
                    }
                };
                self.terminate(term);
                Ok(())
            }
            Stmt::Break => {
                let (brk, _) = *self
                    .loop_stack
                    .last()
                    .ok_or_else(|| self.err("break outside of a loop"))?;
                self.terminate(IrTerm::Jump(brk));
                Ok(())
            }
            Stmt::Continue => {
                let (_, cont) = *self
                    .loop_stack
                    .last()
                    .ok_or_else(|| self.err("continue outside of a loop"))?;
                self.terminate(IrTerm::Jump(cont));
                Ok(())
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let then_bb = self.new_block();
                let else_bb = self.new_block();
                let join_bb = self.new_block();
                self.lower_cond(cond, then_bb, else_bb)?;
                self.switch_to(then_bb);
                self.push_scope();
                self.lower_stmts(then_body)?;
                self.pop_scope();
                self.terminate(IrTerm::Jump(join_bb));
                self.switch_to(else_bb);
                self.push_scope();
                self.lower_stmts(else_body)?;
                self.pop_scope();
                self.terminate(IrTerm::Jump(join_bb));
                self.switch_to(join_bb);
                Ok(())
            }
            Stmt::While { cond, body } => {
                let cond_bb = self.new_block();
                let body_bb = self.new_block();
                let exit_bb = self.new_block();
                self.terminate(IrTerm::Jump(cond_bb));
                self.switch_to(cond_bb);
                self.lower_cond(cond, body_bb, exit_bb)?;
                self.switch_to(body_bb);
                self.loop_stack.push((exit_bb, cond_bb));
                self.push_scope();
                self.lower_stmts(body)?;
                self.pop_scope();
                self.loop_stack.pop();
                self.terminate(IrTerm::Jump(cond_bb));
                self.switch_to(exit_bb);
                Ok(())
            }
            Stmt::DoWhile { body, cond } => {
                let body_bb = self.new_block();
                let cond_bb = self.new_block();
                let exit_bb = self.new_block();
                self.terminate(IrTerm::Jump(body_bb));
                self.switch_to(body_bb);
                self.loop_stack.push((exit_bb, cond_bb));
                self.push_scope();
                self.lower_stmts(body)?;
                self.pop_scope();
                self.loop_stack.pop();
                self.terminate(IrTerm::Jump(cond_bb));
                self.switch_to(cond_bb);
                self.lower_cond(cond, body_bb, exit_bb)?;
                self.switch_to(exit_bb);
                Ok(())
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                if self.opts.unroll_loops {
                    if let Some(unrolled) = try_unroll_for(
                        init.as_deref(),
                        cond.as_ref(),
                        step.as_deref(),
                        body,
                        self.opts.unroll_limit,
                    ) {
                        self.push_scope();
                        self.lower_stmts(&unrolled)?;
                        self.pop_scope();
                        return Ok(());
                    }
                }
                self.push_scope();
                if let Some(init) = init {
                    self.lower_stmt(init)?;
                }
                let cond_bb = self.new_block();
                let body_bb = self.new_block();
                let step_bb = self.new_block();
                let exit_bb = self.new_block();
                self.terminate(IrTerm::Jump(cond_bb));
                self.switch_to(cond_bb);
                match cond {
                    Some(c) => self.lower_cond(c, body_bb, exit_bb)?,
                    None => self.terminate(IrTerm::Jump(body_bb)),
                }
                self.switch_to(body_bb);
                self.loop_stack.push((exit_bb, step_bb));
                self.push_scope();
                self.lower_stmts(body)?;
                self.pop_scope();
                self.loop_stack.pop();
                self.terminate(IrTerm::Jump(step_bb));
                self.switch_to(step_bb);
                if let Some(step) = step {
                    self.lower_stmt(step)?;
                }
                self.terminate(IrTerm::Jump(cond_bb));
                self.switch_to(exit_bb);
                self.pop_scope();
                Ok(())
            }
        }
    }

    fn lower_local_decl(&mut self, d: &VarDecl) -> Result<(), CompileError> {
        self.line = d.line;
        let ty = Ty::from_decl(&d.ty);
        if ty.is_array() {
            let slot = self.func.slots.len();
            self.func.slots.push(StackSlot {
                name: d.name.clone(),
                size: ty.size(),
            });
            self.bind(
                &d.name,
                Binding::Slot {
                    slot,
                    ty: ty.clone(),
                },
            );
            if let Some(Initializer::List(items)) = &d.init {
                let elem = ty.element().cloned().unwrap_or(Ty::Int);
                let addr = self.new_reg();
                self.emit(IrInst::FrameAddr { dst: addr, slot });
                for (i, e) in items.iter().enumerate() {
                    let (v, vty) = self.lower_expr(e)?;
                    let v = self.convert(v, &vty, &elem)?;
                    self.emit(IrInst::Store {
                        src: v,
                        addr: Value::Reg(addr),
                        offset: (i as u32 * elem.size()) as i32,
                        width: elem.mem_width(),
                    });
                }
            } else if d.init.is_some() {
                return Err(self.err("array initializer must be a brace list"));
            }
            Ok(())
        } else {
            let reg = self.new_reg();
            self.bind(
                &d.name,
                Binding::Reg {
                    reg,
                    ty: ty.clone(),
                },
            );
            match &d.init {
                Some(Initializer::Expr(e)) => {
                    let (v, vty) = self.lower_expr(e)?;
                    let v = self.convert(v, &vty, &ty)?;
                    self.emit(IrInst::Copy { dst: reg, src: v });
                }
                Some(Initializer::List(_)) => {
                    return Err(self.err("brace initializer on scalar local"));
                }
                None => {}
            }
            Ok(())
        }
    }

    fn lower_assign(
        &mut self,
        target: &Expr,
        op: Option<BinAstOp>,
        value: &Expr,
    ) -> Result<(), CompileError> {
        let lv = self.lower_lvalue(target)?;
        let target_ty = lv.ty().clone();
        let rhs = match op {
            None => {
                let (v, vty) = self.lower_expr(value)?;
                self.convert(v, &vty, &target_ty)?
            }
            Some(op) => {
                let current = self.load_lvalue(&lv);
                let (v, vty) = self.lower_expr(value)?;
                let (res, res_ty) =
                    self.lower_binary_values(op, current, target_ty.clone(), v, vty)?;
                self.convert(res, &res_ty, &target_ty)?
            }
        };
        self.store_lvalue(&lv, rhs);
        Ok(())
    }

    fn lower_lvalue(&mut self, e: &Expr) -> Result<LValue, CompileError> {
        match e {
            Expr::Ident(name) => {
                if let Some(binding) = self.lookup(name) {
                    match binding {
                        Binding::Reg { reg, ty } => Ok(LValue::Reg { reg, ty }),
                        Binding::Slot { .. } => {
                            Err(self.err(format!("cannot assign to array {name} as a whole")))
                        }
                    }
                } else if let Some(g) = self.ctx.globals.get(name) {
                    if g.ty.is_array() {
                        return Err(self.err(format!("cannot assign to array {name} as a whole")));
                    }
                    let addr = self.new_reg();
                    self.emit(IrInst::GlobalAddr {
                        dst: addr,
                        global: g.index,
                    });
                    Ok(LValue::Mem {
                        addr: Value::Reg(addr),
                        offset: 0,
                        ty: g.ty.clone(),
                    })
                } else {
                    Err(self.err(format!("undefined variable {name}")))
                }
            }
            Expr::Index { base, index } => {
                let (base_val, base_ty) = self.lower_expr(base)?;
                let elem = base_ty
                    .element()
                    .cloned()
                    .ok_or_else(|| self.err("indexing a non-pointer value"))?;
                let (idx_val, idx_ty) = self.lower_expr(index)?;
                if !idx_ty.is_integer() {
                    return Err(self.err("array index must be an integer"));
                }
                match idx_val {
                    Value::Const(c) => Ok(LValue::Mem {
                        addr: base_val,
                        offset: c.wrapping_mul(elem.size() as i32),
                        ty: elem,
                    }),
                    idx => {
                        let scaled = self.scale_index(idx, elem.size());
                        let addr = self.new_reg();
                        self.emit(IrInst::Bin {
                            op: BinOp::Add,
                            dst: addr,
                            lhs: base_val,
                            rhs: scaled,
                        });
                        Ok(LValue::Mem {
                            addr: Value::Reg(addr),
                            offset: 0,
                            ty: elem,
                        })
                    }
                }
            }
            other => Err(self.err(format!("expression {other:?} is not assignable"))),
        }
    }

    fn scale_index(&mut self, idx: Value, elem_size: u32) -> Value {
        if elem_size == 1 {
            return idx;
        }
        let dst = self.new_reg();
        if elem_size.is_power_of_two() {
            self.emit(IrInst::Bin {
                op: BinOp::Shl,
                dst,
                lhs: idx,
                rhs: Value::Const(elem_size.trailing_zeros() as i32),
            });
        } else {
            self.emit(IrInst::Bin {
                op: BinOp::Mul,
                dst,
                lhs: idx,
                rhs: Value::Const(elem_size as i32),
            });
        }
        Value::Reg(dst)
    }

    fn load_lvalue(&mut self, lv: &LValue) -> Value {
        match lv {
            LValue::Reg { reg, .. } => Value::Reg(*reg),
            LValue::Mem { addr, offset, ty } => {
                let dst = self.new_reg();
                self.emit(IrInst::Load {
                    dst,
                    addr: *addr,
                    offset: *offset,
                    width: ty.mem_width(),
                });
                Value::Reg(dst)
            }
        }
    }

    fn store_lvalue(&mut self, lv: &LValue, value: Value) {
        match lv {
            LValue::Reg { reg, .. } => self.emit(IrInst::Copy {
                dst: *reg,
                src: value,
            }),
            LValue::Mem { addr, offset, ty } => self.emit(IrInst::Store {
                src: value,
                addr: *addr,
                offset: *offset,
                width: ty.mem_width(),
            }),
        }
    }

    // ----- conditions -----

    fn lower_cond(
        &mut self,
        e: &Expr,
        then_bb: BlockId,
        else_bb: BlockId,
    ) -> Result<(), CompileError> {
        match e {
            Expr::Binary {
                op: BinAstOp::LogicalAnd,
                lhs,
                rhs,
            } => {
                let mid = self.new_block();
                self.lower_cond(lhs, mid, else_bb)?;
                self.switch_to(mid);
                self.lower_cond(rhs, then_bb, else_bb)
            }
            Expr::Binary {
                op: BinAstOp::LogicalOr,
                lhs,
                rhs,
            } => {
                let mid = self.new_block();
                self.lower_cond(lhs, then_bb, mid)?;
                self.switch_to(mid);
                self.lower_cond(rhs, then_bb, else_bb)
            }
            Expr::Unary {
                op: UnOp::LogicalNot,
                expr,
            } => self.lower_cond(expr, else_bb, then_bb),
            Expr::Binary { op, lhs, rhs } if op.is_comparison() => {
                let (lv, lty) = self.lower_expr(lhs)?;
                let (rv, rty) = self.lower_expr(rhs)?;
                if lty.is_float() || rty.is_float() {
                    let v = self.lower_float_compare(*op, lv, &lty, rv, &rty)?;
                    self.terminate(IrTerm::Branch {
                        op: CmpOp::Ne,
                        lhs: v,
                        rhs: Value::Const(0),
                        then_block: then_bb,
                        else_block: else_bb,
                    });
                } else {
                    let unsigned = lty.is_unsigned() || rty.is_unsigned();
                    let cmp = ast_cmp_to_ir(*op, unsigned);
                    self.terminate(IrTerm::Branch {
                        op: cmp,
                        lhs: lv,
                        rhs: rv,
                        then_block: then_bb,
                        else_block: else_bb,
                    });
                }
                Ok(())
            }
            other => {
                let (v, _ty) = self.lower_expr(other)?;
                self.terminate(IrTerm::Branch {
                    op: CmpOp::Ne,
                    lhs: v,
                    rhs: Value::Const(0),
                    then_block: then_bb,
                    else_block: else_bb,
                });
                Ok(())
            }
        }
    }

    // ----- expressions -----

    fn lower_expr(&mut self, e: &Expr) -> Result<(Value, Ty), CompileError> {
        match e {
            Expr::IntLit(v) => Ok((Value::Const(*v as i32), Ty::Int)),
            Expr::CharLit(c) => Ok((Value::Const(*c as i32), Ty::Int)),
            Expr::FloatLit(f) => Ok((Value::Const(f32::to_bits(*f) as i32), Ty::Float)),
            Expr::Ident(name) => self.lower_ident(name),
            Expr::Index { .. } => {
                let lv = self.lower_lvalue(e)?;
                let ty = lv.ty().clone();
                let v = self.load_lvalue(&lv);
                Ok((v, ty))
            }
            Expr::Unary { op, expr } => self.lower_unary(*op, expr),
            Expr::Binary { op, lhs, rhs } => self.lower_binary(*op, lhs, rhs),
            Expr::Call { name, args } => self.lower_call(name, args),
            Expr::Cast { ty, expr } => {
                let (v, from) = self.lower_expr(expr)?;
                let to = Ty::from_decl(ty);
                let v = self.convert(v, &from, &to)?;
                Ok((v, to))
            }
            Expr::Conditional {
                cond,
                then_expr,
                else_expr,
            } => {
                let then_bb = self.new_block();
                let else_bb = self.new_block();
                let join_bb = self.new_block();
                let result = self.new_reg();
                self.lower_cond(cond, then_bb, else_bb)?;
                self.switch_to(then_bb);
                let (tv, tty) = self.lower_expr(then_expr)?;
                self.emit(IrInst::Copy {
                    dst: result,
                    src: tv,
                });
                self.terminate(IrTerm::Jump(join_bb));
                self.switch_to(else_bb);
                let (ev, ety) = self.lower_expr(else_expr)?;
                let ev = self.convert(ev, &ety, &tty)?;
                self.emit(IrInst::Copy {
                    dst: result,
                    src: ev,
                });
                self.terminate(IrTerm::Jump(join_bb));
                self.switch_to(join_bb);
                Ok((Value::Reg(result), tty))
            }
        }
    }

    fn lower_ident(&mut self, name: &str) -> Result<(Value, Ty), CompileError> {
        if let Some(binding) = self.lookup(name) {
            return Ok(match binding {
                Binding::Reg { reg, ty } => (Value::Reg(reg), ty),
                Binding::Slot { slot, ty } => {
                    let dst = self.new_reg();
                    self.emit(IrInst::FrameAddr { dst, slot });
                    (Value::Reg(dst), ty.decay())
                }
            });
        }
        if let Some(g) = self.ctx.globals.get(name).cloned() {
            let addr = self.new_reg();
            self.emit(IrInst::GlobalAddr {
                dst: addr,
                global: g.index,
            });
            if g.ty.is_array() {
                return Ok((Value::Reg(addr), g.ty.decay()));
            }
            let dst = self.new_reg();
            self.emit(IrInst::Load {
                dst,
                addr: Value::Reg(addr),
                offset: 0,
                width: g.ty.mem_width(),
            });
            return Ok((Value::Reg(dst), g.ty));
        }
        Err(self.err(format!("undefined variable {name}")))
    }

    fn lower_unary(&mut self, op: UnOp, expr: &Expr) -> Result<(Value, Ty), CompileError> {
        let (v, ty) = self.lower_expr(expr)?;
        match op {
            UnOp::Neg => {
                if ty.is_float() {
                    // Flip the IEEE sign bit; cheaper than a library call and
                    // exactly what compilers do for single-precision negation.
                    let dst = self.new_reg();
                    self.emit(IrInst::Bin {
                        op: BinOp::Xor,
                        dst,
                        lhs: v,
                        rhs: Value::Const(i32::MIN),
                    });
                    Ok((Value::Reg(dst), Ty::Float))
                } else {
                    let dst = self.new_reg();
                    self.emit(IrInst::Neg { dst, src: v });
                    Ok((Value::Reg(dst), ty))
                }
            }
            UnOp::BitNot => {
                let dst = self.new_reg();
                self.emit(IrInst::Not { dst, src: v });
                Ok((Value::Reg(dst), ty))
            }
            UnOp::LogicalNot => {
                let dst = self.new_reg();
                self.emit(IrInst::Cmp {
                    op: CmpOp::Eq,
                    dst,
                    lhs: v,
                    rhs: Value::Const(0),
                });
                Ok((Value::Reg(dst), Ty::Int))
            }
        }
    }

    fn lower_binary(
        &mut self,
        op: BinAstOp,
        lhs: &Expr,
        rhs: &Expr,
    ) -> Result<(Value, Ty), CompileError> {
        if op.is_logical() {
            // Materialize short-circuit logic into 0/1.
            let then_bb = self.new_block();
            let else_bb = self.new_block();
            let join_bb = self.new_block();
            let result = self.new_reg();
            let expr = Expr::Binary {
                op,
                lhs: Box::new(lhs.clone()),
                rhs: Box::new(rhs.clone()),
            };
            self.lower_cond(&expr, then_bb, else_bb)?;
            self.switch_to(then_bb);
            self.emit(IrInst::Copy {
                dst: result,
                src: Value::Const(1),
            });
            self.terminate(IrTerm::Jump(join_bb));
            self.switch_to(else_bb);
            self.emit(IrInst::Copy {
                dst: result,
                src: Value::Const(0),
            });
            self.terminate(IrTerm::Jump(join_bb));
            self.switch_to(join_bb);
            return Ok((Value::Reg(result), Ty::Int));
        }
        let (lv, lty) = self.lower_expr(lhs)?;
        let (rv, rty) = self.lower_expr(rhs)?;
        self.lower_binary_values(op, lv, lty, rv, rty)
    }

    fn lower_binary_values(
        &mut self,
        op: BinAstOp,
        lv: Value,
        lty: Ty,
        rv: Value,
        rty: Ty,
    ) -> Result<(Value, Ty), CompileError> {
        // Float arithmetic and comparisons go through the support library.
        if lty.is_float() || rty.is_float() {
            if op.is_comparison() {
                let v = self.lower_float_compare(op, lv, &lty, rv, &rty)?;
                return Ok((v, Ty::Int));
            }
            let lf = self.convert(lv, &lty, &Ty::Float)?;
            let rf = self.convert(rv, &rty, &Ty::Float)?;
            let callee = match op {
                BinAstOp::Add => "__f32_add",
                BinAstOp::Sub => "__f32_sub",
                BinAstOp::Mul => "__f32_mul",
                BinAstOp::Div => "__f32_div",
                other => return Err(self.err(format!("operator {other:?} not supported on float"))),
            };
            let dst = self.new_reg();
            self.emit(IrInst::Call {
                dst: Some(dst),
                callee: FuncRef(callee.to_string()),
                args: vec![lf, rf],
            });
            return Ok((Value::Reg(dst), Ty::Float));
        }

        // Pointer arithmetic: scale the integer operand by the element size.
        if lty.is_pointer() && rty.is_integer() && matches!(op, BinAstOp::Add | BinAstOp::Sub) {
            let elem_size = lty.element().map(Ty::size).unwrap_or(1);
            let scaled = self.scale_index(rv, elem_size);
            let dst = self.new_reg();
            let bin = if op == BinAstOp::Add {
                BinOp::Add
            } else {
                BinOp::Sub
            };
            self.emit(IrInst::Bin {
                op: bin,
                dst,
                lhs: lv,
                rhs: scaled,
            });
            return Ok((Value::Reg(dst), lty));
        }

        let unsigned = lty.is_unsigned() || rty.is_unsigned();
        if op.is_comparison() {
            let dst = self.new_reg();
            self.emit(IrInst::Cmp {
                op: ast_cmp_to_ir(op, unsigned),
                dst,
                lhs: lv,
                rhs: rv,
            });
            return Ok((Value::Reg(dst), Ty::Int));
        }
        let bin = match op {
            BinAstOp::Add => BinOp::Add,
            BinAstOp::Sub => BinOp::Sub,
            BinAstOp::Mul => BinOp::Mul,
            BinAstOp::Div => {
                if unsigned {
                    BinOp::Udiv
                } else {
                    BinOp::Div
                }
            }
            BinAstOp::Mod => {
                if unsigned {
                    BinOp::Urem
                } else {
                    BinOp::Rem
                }
            }
            BinAstOp::BitAnd => BinOp::And,
            BinAstOp::BitOr => BinOp::Or,
            BinAstOp::BitXor => BinOp::Xor,
            BinAstOp::Shl => BinOp::Shl,
            BinAstOp::Shr => {
                if unsigned {
                    BinOp::Lshr
                } else {
                    BinOp::Ashr
                }
            }
            other => return Err(self.err(format!("unsupported binary operator {other:?}"))),
        };
        let dst = self.new_reg();
        self.emit(IrInst::Bin {
            op: bin,
            dst,
            lhs: lv,
            rhs: rv,
        });
        let result_ty = if unsigned { Ty::Uint } else { Ty::Int };
        Ok((Value::Reg(dst), result_ty))
    }

    fn lower_float_compare(
        &mut self,
        op: BinAstOp,
        lv: Value,
        lty: &Ty,
        rv: Value,
        rty: &Ty,
    ) -> Result<Value, CompileError> {
        let lf = self.convert(lv, lty, &Ty::Float)?;
        let rf = self.convert(rv, rty, &Ty::Float)?;
        // Map every comparison onto the three library primitives.
        let (callee, args, negate) = match op {
            BinAstOp::Lt => ("__f32_lt", vec![lf, rf], false),
            BinAstOp::Gt => ("__f32_lt", vec![rf, lf], false),
            BinAstOp::Le => ("__f32_le", vec![lf, rf], false),
            BinAstOp::Ge => ("__f32_le", vec![rf, lf], false),
            BinAstOp::Eq => ("__f32_eq", vec![lf, rf], false),
            BinAstOp::Ne => ("__f32_eq", vec![lf, rf], true),
            other => return Err(self.err(format!("{other:?} is not a comparison"))),
        };
        let dst = self.new_reg();
        self.emit(IrInst::Call {
            dst: Some(dst),
            callee: FuncRef(callee.to_string()),
            args,
        });
        if negate {
            let inv = self.new_reg();
            self.emit(IrInst::Cmp {
                op: CmpOp::Eq,
                dst: inv,
                lhs: Value::Reg(dst),
                rhs: Value::Const(0),
            });
            Ok(Value::Reg(inv))
        } else {
            Ok(Value::Reg(dst))
        }
    }

    fn lower_call(&mut self, name: &str, args: &[Expr]) -> Result<(Value, Ty), CompileError> {
        if args.len() > 4 {
            return Err(self.err(format!("function {name} has more than 4 arguments")));
        }
        // Functions defined in another translation unit get a C-style
        // implicit signature (int return, arguments as written); the linker
        // reports them if they never materialize.
        let sig = match self.ctx.funcs.get(name).cloned() {
            Some(sig) => {
                if args.len() != sig.params.len() {
                    return Err(self.err(format!(
                        "function {name} expects {} arguments, got {}",
                        sig.params.len(),
                        args.len()
                    )));
                }
                sig
            }
            None => FuncSig {
                ret: Ty::Int,
                params: vec![],
            },
        };
        let mut lowered = Vec::with_capacity(args.len());
        if sig.params.is_empty() && !args.is_empty() {
            for a in args {
                let (v, _ty) = self.lower_expr(a)?;
                lowered.push(v);
            }
        } else {
            for (a, pty) in args.iter().zip(&sig.params) {
                let (v, ty) = self.lower_expr(a)?;
                lowered.push(self.convert(v, &ty, pty)?);
            }
        }
        let dst = if sig.ret == Ty::Void {
            None
        } else {
            Some(self.new_reg())
        };
        self.emit(IrInst::Call {
            dst,
            callee: FuncRef(name.to_string()),
            args: lowered,
        });
        match dst {
            Some(d) => Ok((Value::Reg(d), sig.ret)),
            None => Ok((Value::Const(0), Ty::Void)),
        }
    }

    fn convert(&mut self, v: Value, from: &Ty, to: &Ty) -> Result<Value, CompileError> {
        if from == to || to == &Ty::Void {
            return Ok(v);
        }
        match (from, to) {
            // Integer widths and signedness conversions are free at the value
            // level (stores truncate, loads zero-extend).
            (a, b) if a.is_integer() && b.is_integer() => Ok(v),
            (a, b) if a.is_pointer() && b.is_pointer() => Ok(v),
            (a, b) if a.is_pointer() && b.is_integer() => Ok(v),
            (a, b) if a.is_integer() && b.is_pointer() => Ok(v),
            (a, Ty::Float) if a.is_integer() => match v {
                Value::Const(c) => Ok(Value::Const(f32::to_bits(c as f32) as i32)),
                reg => {
                    let dst = self.new_reg();
                    self.emit(IrInst::Call {
                        dst: Some(dst),
                        callee: FuncRef("__f32_from_int".to_string()),
                        args: vec![reg],
                    });
                    Ok(Value::Reg(dst))
                }
            },
            (Ty::Float, b) if b.is_integer() => match v {
                Value::Const(c) => Ok(Value::Const(f32::from_bits(c as u32) as i32)),
                reg => {
                    let dst = self.new_reg();
                    self.emit(IrInst::Call {
                        dst: Some(dst),
                        callee: FuncRef("__f32_to_int".to_string()),
                        args: vec![reg],
                    });
                    Ok(Value::Reg(dst))
                }
            },
            (a, b) => Err(self.err(format!("cannot convert {a:?} to {b:?}"))),
        }
    }
}

fn ast_cmp_to_ir(op: BinAstOp, unsigned: bool) -> CmpOp {
    match (op, unsigned) {
        (BinAstOp::Eq, _) => CmpOp::Eq,
        (BinAstOp::Ne, _) => CmpOp::Ne,
        (BinAstOp::Lt, false) => CmpOp::Slt,
        (BinAstOp::Le, false) => CmpOp::Sle,
        (BinAstOp::Gt, false) => CmpOp::Sgt,
        (BinAstOp::Ge, false) => CmpOp::Sge,
        (BinAstOp::Lt, true) => CmpOp::Ult,
        (BinAstOp::Le, true) => CmpOp::Ule,
        (BinAstOp::Gt, true) => CmpOp::Ugt,
        (BinAstOp::Ge, true) => CmpOp::Uge,
        _ => unreachable!("not a comparison operator"),
    }
}

// ----- AST-level loop unrolling -----

/// Attempt to fully unroll a counted `for` loop with literal bounds.
fn try_unroll_for(
    init: Option<&Stmt>,
    cond: Option<&Expr>,
    step: Option<&Stmt>,
    body: &[Stmt],
    limit: usize,
) -> Option<Vec<Stmt>> {
    let init = init?;
    let cond = cond?;
    let step = step?;

    // init: `int i = <lit>` or `i = <lit>`
    let (var, start, declared) = match init {
        Stmt::Decl(VarDecl {
            name,
            ty,
            init: Some(Initializer::Expr(Expr::IntLit(v))),
            ..
        }) if ty.base == TypeSpec::Int && ty.pointer == 0 && ty.array_len.is_none() => {
            (name.clone(), *v, true)
        }
        Stmt::Assign {
            target: Expr::Ident(name),
            op: None,
            value: Expr::IntLit(v),
        } => (name.clone(), *v, false),
        _ => return None,
    };

    // cond: `i < lit` or `i <= lit`
    let (end, inclusive) = match cond {
        Expr::Binary {
            op: BinAstOp::Lt,
            lhs,
            rhs,
        } => match (&**lhs, &**rhs) {
            (Expr::Ident(n), Expr::IntLit(v)) if *n == var => (*v, false),
            _ => return None,
        },
        Expr::Binary {
            op: BinAstOp::Le,
            lhs,
            rhs,
        } => match (&**lhs, &**rhs) {
            (Expr::Ident(n), Expr::IntLit(v)) if *n == var => (*v, true),
            _ => return None,
        },
        _ => return None,
    };

    // step: `i += lit` or `i++`
    let stride = match step {
        Stmt::Assign {
            target: Expr::Ident(n),
            op: Some(BinAstOp::Add),
            value: Expr::IntLit(v),
        } if *n == var && *v > 0 => *v,
        _ => return None,
    };

    // Only unroll innermost loops: unrolling a loop nest multiplies code
    // size by the product of trip counts and easily overflows a 64 KB part.
    if contains_loop(body) {
        return None;
    }
    let last = if inclusive { end } else { end - 1 };
    if last < start {
        return Some(Vec::new());
    }
    let trips = ((last - start) / stride + 1) as usize;
    if trips == 0 || trips * body.len().max(1) > limit {
        return None;
    }
    if body_blocks_unrolling(body, &var) {
        return None;
    }

    let mut out = Vec::new();
    let mut i = start;
    for _ in 0..trips {
        for s in body {
            out.push(substitute_stmt(s, &var, i));
        }
        i += stride;
    }
    if !declared {
        // Keep the loop variable's final value observable.
        out.push(Stmt::Assign {
            target: Expr::Ident(var),
            op: None,
            value: Expr::IntLit(i),
        });
    }
    Some(out)
}

fn contains_loop(body: &[Stmt]) -> bool {
    body.iter().any(|s| match s {
        Stmt::For { .. } | Stmt::While { .. } | Stmt::DoWhile { .. } => true,
        Stmt::If {
            then_body,
            else_body,
            ..
        } => contains_loop(then_body) || contains_loop(else_body),
        Stmt::Block(inner) => contains_loop(inner),
        _ => false,
    })
}

/// Unrolling is unsafe if the body branches out of the loop or writes the
/// induction variable.
fn body_blocks_unrolling(body: &[Stmt], var: &str) -> bool {
    body.iter().any(|s| match s {
        Stmt::Break | Stmt::Continue => true,
        Stmt::Assign {
            target: Expr::Ident(n),
            ..
        } if n == var => true,
        Stmt::Decl(d) if d.name == var => true,
        Stmt::If {
            then_body,
            else_body,
            ..
        } => body_blocks_unrolling(then_body, var) || body_blocks_unrolling(else_body, var),
        Stmt::Block(inner) => body_blocks_unrolling(inner, var),
        // Nested loops define their own break/continue scope, but may still
        // write the outer induction variable; be conservative and only check
        // for assignments.
        Stmt::While { body, .. } | Stmt::DoWhile { body, .. } => assigns_var(body, var),
        Stmt::For {
            body, init, step, ..
        } => {
            let mut v = assigns_var(body, var);
            if let Some(i) = init {
                v |= assigns_var(std::slice::from_ref(i), var);
            }
            if let Some(s) = step {
                v |= assigns_var(std::slice::from_ref(s), var);
            }
            v
        }
        _ => false,
    })
}

fn assigns_var(body: &[Stmt], var: &str) -> bool {
    body.iter().any(|s| match s {
        Stmt::Assign {
            target: Expr::Ident(n),
            ..
        } => n == var,
        Stmt::If {
            then_body,
            else_body,
            ..
        } => assigns_var(then_body, var) || assigns_var(else_body, var),
        Stmt::Block(inner) => assigns_var(inner, var),
        Stmt::While { body, .. } | Stmt::DoWhile { body, .. } => assigns_var(body, var),
        Stmt::For { body, .. } => assigns_var(body, var),
        _ => false,
    })
}

fn substitute_stmt(s: &Stmt, var: &str, value: i64) -> Stmt {
    let sub_e = |e: &Expr| substitute_expr(e, var, value);
    match s {
        Stmt::Decl(d) => Stmt::Decl(VarDecl {
            init: d.init.as_ref().map(|i| match i {
                Initializer::Expr(e) => Initializer::Expr(sub_e(e)),
                Initializer::List(items) => Initializer::List(items.iter().map(sub_e).collect()),
            }),
            ..d.clone()
        }),
        Stmt::Expr(e) => Stmt::Expr(sub_e(e)),
        Stmt::Assign {
            target,
            op,
            value: v,
        } => Stmt::Assign {
            target: sub_e(target),
            op: *op,
            value: sub_e(v),
        },
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => Stmt::If {
            cond: sub_e(cond),
            then_body: then_body
                .iter()
                .map(|s| substitute_stmt(s, var, value))
                .collect(),
            else_body: else_body
                .iter()
                .map(|s| substitute_stmt(s, var, value))
                .collect(),
        },
        Stmt::While { cond, body } => Stmt::While {
            cond: sub_e(cond),
            body: body
                .iter()
                .map(|s| substitute_stmt(s, var, value))
                .collect(),
        },
        Stmt::DoWhile { body, cond } => Stmt::DoWhile {
            body: body
                .iter()
                .map(|s| substitute_stmt(s, var, value))
                .collect(),
            cond: sub_e(cond),
        },
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            // If the nested loop redeclares the variable, leave it alone.
            let shadows = matches!(&init.as_deref(), Some(Stmt::Decl(d)) if d.name == var);
            if shadows {
                s.clone()
            } else {
                Stmt::For {
                    init: init
                        .as_ref()
                        .map(|i| Box::new(substitute_stmt(i, var, value))),
                    cond: cond.as_ref().map(sub_e),
                    step: step
                        .as_ref()
                        .map(|st| Box::new(substitute_stmt(st, var, value))),
                    body: body
                        .iter()
                        .map(|s| substitute_stmt(s, var, value))
                        .collect(),
                }
            }
        }
        Stmt::Return(e) => Stmt::Return(e.as_ref().map(sub_e)),
        Stmt::Block(inner) => Stmt::Block(
            inner
                .iter()
                .map(|s| substitute_stmt(s, var, value))
                .collect(),
        ),
        other => other.clone(),
    }
}

fn substitute_expr(e: &Expr, var: &str, value: i64) -> Expr {
    match e {
        Expr::Ident(n) if n == var => Expr::IntLit(value),
        Expr::Index { base, index } => Expr::Index {
            base: Box::new(substitute_expr(base, var, value)),
            index: Box::new(substitute_expr(index, var, value)),
        },
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(substitute_expr(expr, var, value)),
        },
        Expr::Binary { op, lhs, rhs } => Expr::Binary {
            op: *op,
            lhs: Box::new(substitute_expr(lhs, var, value)),
            rhs: Box::new(substitute_expr(rhs, var, value)),
        },
        Expr::Call { name, args } => Expr::Call {
            name: name.clone(),
            args: args
                .iter()
                .map(|a| substitute_expr(a, var, value))
                .collect(),
        },
        Expr::Cast { ty, expr } => Expr::Cast {
            ty: ty.clone(),
            expr: Box::new(substitute_expr(expr, var, value)),
        },
        Expr::Conditional {
            cond,
            then_expr,
            else_expr,
        } => Expr::Conditional {
            cond: Box::new(substitute_expr(cond, var, value)),
            then_expr: Box::new(substitute_expr(then_expr, var, value)),
            else_expr: Box::new(substitute_expr(else_expr, var, value)),
        },
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use flashram_isa::MemWidth;

    fn lower(src: &str) -> IrModule {
        lower_program(&parse(src).unwrap(), &LowerOptions::default(), false).unwrap()
    }

    #[test]
    fn lowers_simple_arithmetic_function() {
        let m = lower("int add(int a, int b) { return a + b * 2; }");
        assert_eq!(m.functions.len(), 1);
        let f = &m.functions[0];
        assert_eq!(f.num_params, 2);
        assert!(f.returns_value);
        assert!(f.inst_count() >= 2);
    }

    #[test]
    fn lowers_globals_with_initializers() {
        let m = lower(
            "const int table[3] = {5, 6, 7}; int counter = 9; const char sbox[4] = {1,2,3,4};
             int main() { return counter + table[1]; }",
        );
        assert_eq!(m.globals.len(), 3);
        assert!(!m.globals[0].mutable);
        assert!(m.globals[1].mutable);
        assert_eq!(m.globals[0].init.to_bytes()[0..4], [5, 0, 0, 0]);
        assert_eq!(m.globals[1].init.to_bytes(), vec![9, 0, 0, 0]);
        assert_eq!(m.globals[2].init.to_bytes(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn control_flow_creates_loops() {
        let m = lower(
            "int sum(int n) { int s = 0; for (int i = 0; i < n; i++) { s += i; } return s; }",
        );
        let f = &m.functions[0];
        let cfg = f.cfg();
        let loops = cfg.loop_info();
        assert_eq!(loops.loop_count(), 1, "one natural loop expected:\n{f}");
    }

    #[test]
    fn float_arithmetic_becomes_library_calls() {
        let m = lower("float f(float a, float b) { return a * b + 1.5f; }");
        let f = &m.functions[0];
        let calls: Vec<String> = f
            .blocks
            .iter()
            .flat_map(|b| b.insts.iter())
            .filter_map(|i| match i {
                IrInst::Call { callee, .. } => Some(callee.0.clone()),
                _ => None,
            })
            .collect();
        assert!(calls.contains(&"__f32_mul".to_string()), "calls: {calls:?}");
        assert!(calls.contains(&"__f32_add".to_string()), "calls: {calls:?}");
    }

    #[test]
    fn float_compare_uses_library_and_int_compare_does_not() {
        let m = lower("int f(float a, float b, int c) { if (a < b) return c > 3; return 0; }");
        let f = &m.functions[0];
        let has_lt_call = f
            .blocks
            .iter()
            .flat_map(|b| b.insts.iter())
            .any(|i| matches!(i, IrInst::Call { callee, .. } if callee.0 == "__f32_lt"));
        assert!(has_lt_call, "{f}");
    }

    #[test]
    fn array_access_scales_indices() {
        let m = lower(
            "int get(int a[], int i) { return a[i]; }
             char getc(char s[], int i) { return s[i]; }",
        );
        let word_fn = &m.functions[0];
        let has_shift = word_fn.blocks.iter().flat_map(|b| b.insts.iter()).any(|i| {
            matches!(
                i,
                IrInst::Bin {
                    op: BinOp::Shl,
                    rhs: Value::Const(2),
                    ..
                }
            )
        });
        assert!(has_shift, "word access must scale by 4:\n{word_fn}");
        let byte_fn = &m.functions[1];
        let has_byte_load = byte_fn.blocks.iter().flat_map(|b| b.insts.iter()).any(|i| {
            matches!(
                i,
                IrInst::Load {
                    width: MemWidth::Byte,
                    ..
                }
            )
        });
        assert!(has_byte_load, "{byte_fn}");
    }

    #[test]
    fn local_arrays_get_stack_slots() {
        let m = lower("int f() { int buf[16]; buf[0] = 1; return buf[0]; }");
        let f = &m.functions[0];
        assert_eq!(f.slots.len(), 1);
        assert_eq!(f.slots[0].size, 64);
    }

    #[test]
    fn logical_operators_short_circuit() {
        let m = lower("int f(int a, int b) { if (a > 0 && b > 0) return 1; return 0; }");
        let f = &m.functions[0];
        // Short-circuiting needs an intermediate block.
        assert!(f.blocks.len() >= 4, "{f}");
    }

    #[test]
    fn break_and_continue_target_loop_blocks() {
        let m = lower(
            "int f(int n) { int s = 0; while (1) { s++; if (s > n) break; if (s == 3) continue; s++; } return s; }",
        );
        let f = &m.functions[0];
        assert!(f.cfg().loop_info().loop_count() >= 1, "{f}");
    }

    #[test]
    fn unrolling_replaces_small_counted_loops() {
        let src =
            "int f(int x[]) { int s = 0; for (int i = 0; i < 4; i++) { s += x[i]; } return s; }";
        let rolled = lower_program(&parse(src).unwrap(), &LowerOptions::default(), false).unwrap();
        let unrolled = lower_program(
            &parse(src).unwrap(),
            &LowerOptions {
                unroll_loops: true,
                unroll_limit: 96,
            },
            false,
        )
        .unwrap();
        assert!(rolled.functions[0].cfg().loop_info().loop_count() >= 1);
        assert_eq!(unrolled.functions[0].cfg().loop_info().loop_count(), 0);
    }

    #[test]
    fn unrolling_keeps_large_loops_rolled() {
        let src =
            "int f(int x[]) { int s = 0; for (int i = 0; i < 1000; i++) { s += x[i]; } return s; }";
        let unrolled = lower_program(
            &parse(src).unwrap(),
            &LowerOptions {
                unroll_loops: true,
                unroll_limit: 96,
            },
            false,
        )
        .unwrap();
        assert!(unrolled.functions[0].cfg().loop_info().loop_count() >= 1);
    }

    #[test]
    fn library_flag_marks_functions() {
        let m = lower_program(
            &parse("int f() { return 1; }").unwrap(),
            &LowerOptions::default(),
            true,
        )
        .unwrap();
        assert!(m.functions[0].is_library);
    }

    #[test]
    fn errors_for_undefined_names_and_bad_calls() {
        let undef = lower_program(
            &parse("int f() { return missing; }").unwrap(),
            &LowerOptions::default(),
            false,
        );
        assert!(undef.is_err());
        // Calls to functions from other translation units get an implicit
        // signature; they are resolved (or reported) at link/codegen time.
        let cross_unit = lower_program(
            &parse("int f() { return g(1); }").unwrap(),
            &LowerOptions::default(),
            false,
        );
        assert!(cross_unit.is_ok());
        let arity = lower_program(
            &parse("int g(int a) { return a; } int f() { return g(1, 2); }").unwrap(),
            &LowerOptions::default(),
            false,
        );
        assert!(arity.is_err());
    }

    #[test]
    fn conditional_expression_produces_single_value() {
        let m = lower("int f(int a, int b) { int m = a > b ? a : b; return m; }");
        let f = &m.functions[0];
        assert!(f.blocks.len() >= 4, "{f}");
    }

    #[test]
    fn global_float_initializers_store_ieee_bits() {
        let m = lower("float pi = 3.5f; int main() { return 0; }");
        let bytes = m.globals[0].init.to_bytes();
        let bits = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
        assert_eq!(f32::from_bits(bits), 3.5);
    }
}
