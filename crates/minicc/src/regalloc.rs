//! Linear-scan register allocation for the code generator.
//!
//! Virtual registers are mapped either to one of the callee-saved core
//! registers (`r4`–`r11`) or to a spill slot in the stack frame.  Keeping the
//! allocatable pool to callee-saved registers means values never need to be
//! shuffled around calls: the caller-saved registers `r0`–`r3`/`r12` are used
//! only as short-lived scratch within a single MIR instruction.
//!
//! At `-O0` the allocator is bypassed entirely and every virtual register
//! lives in a stack slot, reproducing the load/store-heavy code a real
//! compiler emits without optimization.

use std::collections::HashMap;

use flashram_ir::{IrFunction, VReg, Value};
use flashram_isa::Reg;

/// Where a virtual register lives during execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loc {
    /// A physical register.
    Reg(Reg),
    /// A word-sized spill slot (index into the spill area of the frame).
    Spill(u32),
}

/// The result of register allocation for one function.
#[derive(Debug, Clone, Default)]
pub struct Allocation {
    assignment: HashMap<VReg, Loc>,
    /// Number of spill slots used.
    pub spill_slots: u32,
    /// The callee-saved registers actually used (must be saved/restored).
    pub used_regs: Vec<Reg>,
}

impl Allocation {
    /// Location of a virtual register.
    ///
    /// # Panics
    ///
    /// Panics if the register was never seen by the allocator (which would
    /// be a code-generation bug).
    pub fn loc(&self, reg: VReg) -> Loc {
        *self
            .assignment
            .get(&reg)
            .unwrap_or_else(|| panic!("virtual register {reg} has no allocation"))
    }

    /// Whether the register ended up spilled.
    pub fn is_spilled(&self, reg: VReg) -> bool {
        matches!(self.loc(reg), Loc::Spill(_))
    }
}

/// Allocate every virtual register of `func` to a register or spill slot.
///
/// When `spill_everything` is true (the `-O0` configuration) no physical
/// registers are used at all.
pub fn allocate(func: &IrFunction, spill_everything: bool) -> Allocation {
    let pool: [Reg; 8] = [
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
    ];
    let intervals = live_intervals(func);
    let mut alloc = Allocation::default();

    if spill_everything {
        let mut ordered: Vec<&VReg> = intervals.keys().collect();
        ordered.sort();
        for (i, reg) in ordered.into_iter().enumerate() {
            alloc.assignment.insert(*reg, Loc::Spill(i as u32));
        }
        alloc.spill_slots = alloc.assignment.len() as u32;
        return alloc;
    }

    // Linear scan over intervals sorted by start.
    let mut sorted: Vec<(VReg, Interval)> = intervals.into_iter().collect();
    sorted.sort_by_key(|(r, iv)| (iv.start, r.0));

    // Pop from the end: reverse so that low registers (richer 16-bit
    // encodings, usable by cbz/cbnz) are handed out first.
    let mut free: Vec<Reg> = pool.iter().rev().copied().collect();
    // Active intervals: (end, vreg, reg), kept sorted by end.
    let mut active: Vec<(u32, VReg, Reg)> = Vec::new();
    let mut next_spill = 0u32;

    for (vreg, iv) in sorted {
        // Expire old intervals.
        active.retain(|(end, _, reg)| {
            if *end < iv.start {
                free.push(*reg);
                false
            } else {
                true
            }
        });
        if let Some(reg) = free.pop() {
            active.push((iv.end, vreg, reg));
            active.sort_by_key(|(end, _, _)| *end);
            alloc.assignment.insert(vreg, Loc::Reg(reg));
            if !alloc.used_regs.contains(&reg) {
                alloc.used_regs.push(reg);
            }
        } else {
            // Spill the interval that ends last (it or the new one).
            let (last_end, last_vreg, last_reg) =
                *active.last().expect("pool exhausted ⇒ active nonempty");
            if last_end > iv.end {
                // Steal the register from the longest-lived active interval.
                alloc.assignment.insert(last_vreg, Loc::Spill(next_spill));
                next_spill += 1;
                active.pop();
                active.push((iv.end, vreg, last_reg));
                active.sort_by_key(|(end, _, _)| *end);
                alloc.assignment.insert(vreg, Loc::Reg(last_reg));
            } else {
                alloc.assignment.insert(vreg, Loc::Spill(next_spill));
                next_spill += 1;
            }
        }
    }
    alloc.spill_slots = next_spill;
    alloc.used_regs.sort_by_key(|r| r.index());
    alloc
}

#[derive(Debug, Clone, Copy)]
struct Interval {
    start: u32,
    end: u32,
}

/// Compute conservative live intervals: block-level liveness (backwards
/// dataflow) refined with instruction positions inside blocks.
fn live_intervals(func: &IrFunction) -> HashMap<VReg, Interval> {
    let nblocks = func.blocks.len();
    // use[b] and def[b] sets.
    let mut use_set: Vec<Vec<VReg>> = vec![Vec::new(); nblocks];
    let mut def_set: Vec<Vec<VReg>> = vec![Vec::new(); nblocks];
    for (bi, block) in func.blocks.iter().enumerate() {
        let mut defined: Vec<VReg> = Vec::new();
        for inst in &block.insts {
            for u in inst.uses() {
                if let Value::Reg(r) = u {
                    if !defined.contains(&r) && !use_set[bi].contains(&r) {
                        use_set[bi].push(r);
                    }
                }
            }
            if let Some(d) = inst.dst() {
                if !defined.contains(&d) {
                    defined.push(d);
                }
            }
        }
        for u in block.term.uses() {
            if let Value::Reg(r) = u {
                if !defined.contains(&r) && !use_set[bi].contains(&r) {
                    use_set[bi].push(r);
                }
            }
        }
        def_set[bi] = defined;
    }

    // Backward liveness to a fixed point.
    let succs: Vec<Vec<usize>> = func
        .blocks
        .iter()
        .map(|b| b.term.successors().iter().map(|s| s.index()).collect())
        .collect();
    let mut live_in: Vec<Vec<VReg>> = vec![Vec::new(); nblocks];
    let mut live_out: Vec<Vec<VReg>> = vec![Vec::new(); nblocks];
    let mut changed = true;
    while changed {
        changed = false;
        for b in (0..nblocks).rev() {
            let mut out: Vec<VReg> = Vec::new();
            for &s in &succs[b] {
                for r in &live_in[s] {
                    if !out.contains(r) {
                        out.push(*r);
                    }
                }
            }
            let mut inn = use_set[b].clone();
            for r in &out {
                if !def_set[b].contains(r) && !inn.contains(r) {
                    inn.push(*r);
                }
            }
            if out != live_out[b] || inn != live_in[b] {
                live_out[b] = out;
                live_in[b] = inn;
                changed = true;
            }
        }
    }

    // Linear positions: block b spans [block_start[b], block_end[b]].
    let mut pos = 0u32;
    let mut block_start = vec![0u32; nblocks];
    let mut block_end = vec![0u32; nblocks];
    let mut positions: HashMap<VReg, Interval> = HashMap::new();
    let touch = |map: &mut HashMap<VReg, Interval>, r: VReg, p: u32| {
        map.entry(r)
            .and_modify(|iv| {
                iv.start = iv.start.min(p);
                iv.end = iv.end.max(p);
            })
            .or_insert(Interval { start: p, end: p });
    };
    for (bi, block) in func.blocks.iter().enumerate() {
        block_start[bi] = pos;
        for inst in &block.insts {
            for u in inst.uses() {
                if let Value::Reg(r) = u {
                    touch(&mut positions, r, pos);
                }
            }
            if let Some(d) = inst.dst() {
                touch(&mut positions, d, pos);
            }
            pos += 1;
        }
        for u in block.term.uses() {
            if let Value::Reg(r) = u {
                touch(&mut positions, r, pos);
            }
        }
        block_end[bi] = pos;
        pos += 1;
    }

    // Parameters are defined at position 0 by the prologue.
    for p in 0..func.num_params as u32 {
        touch(&mut positions, VReg(p), 0);
    }

    // Extend intervals across blocks where the register is live-in/out.
    for b in 0..nblocks {
        for r in &live_in[b] {
            touch(&mut positions, *r, block_start[b]);
        }
        for r in &live_out[b] {
            touch(&mut positions, *r, block_end[b]);
        }
    }
    positions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::{lower_program, LowerOptions};
    use crate::parser::parse;

    fn lower_fn(src: &str) -> IrFunction {
        lower_program(&parse(src).unwrap(), &LowerOptions::default(), false)
            .unwrap()
            .functions
            .remove(0)
    }

    #[test]
    fn small_functions_avoid_spills() {
        let f = lower_fn("int f(int a, int b) { int c = a + b; return c * a; }");
        let alloc = allocate(&f, false);
        assert_eq!(alloc.spill_slots, 0);
        assert!(!alloc.used_regs.is_empty());
        for r in 0..f.vreg_count {
            let _ = alloc.loc(VReg(r));
        }
    }

    #[test]
    fn spill_everything_mode_uses_no_registers() {
        let f = lower_fn("int f(int a, int b) { return a * b + a - b; }");
        let alloc = allocate(&f, true);
        assert!(alloc.used_regs.is_empty());
        assert!(alloc.spill_slots > 0);
        for r in 0..f.vreg_count {
            assert!(alloc.is_spilled(VReg(r)));
        }
    }

    #[test]
    fn no_two_overlapping_vregs_share_a_register_in_a_loop() {
        let f = lower_fn(
            "int f(int n) {
                int s = 0;
                int p = 1;
                for (int i = 0; i < n; i++) { s = s + i; p = p * 2; }
                return s + p;
             }",
        );
        let alloc = allocate(&f, false);
        // `s`, `p`, `i` and `n` are simultaneously live inside the loop; they
        // must all get distinct locations.
        let mut locs = Vec::new();
        for r in 0..f.num_params as u32 {
            locs.push(alloc.loc(VReg(r)));
        }
        // Check the property globally: every pair of registers assigned the
        // same physical register must have disjoint intervals — proxy check:
        // the four key variables get distinct locations.
        let intervals = super::live_intervals(&f);
        let mut by_reg: HashMap<Reg, Vec<(u32, u32)>> = HashMap::new();
        for (vr, iv) in &intervals {
            if let Loc::Reg(r) = alloc.loc(*vr) {
                by_reg.entry(r).or_default().push((iv.start, iv.end));
            }
        }
        for (reg, mut ivs) in by_reg {
            ivs.sort();
            for w in ivs.windows(2) {
                assert!(
                    w[0].1 <= w[1].0,
                    "register {reg} assigned to overlapping intervals {w:?}"
                );
            }
        }
    }

    #[test]
    fn many_live_values_cause_spills() {
        // Sixteen simultaneously-live sums exceed the eight-register pool.
        let mut body = String::new();
        for i in 0..16 {
            body.push_str(&format!("int v{i} = a + {i};\n"));
        }
        body.push_str("return ");
        let terms: Vec<String> = (0..16).map(|i| format!("v{i}")).collect();
        body.push_str(&terms.join(" + "));
        body.push(';');
        let src = format!("int f(int a) {{ {body} }}");
        let f = lower_fn(&src);
        let alloc = allocate(&f, false);
        assert!(alloc.spill_slots > 0, "expected spills with 16 live values");
    }
}
