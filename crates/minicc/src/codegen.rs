//! Code generation: mid-level IR → Thumb-2-like machine code.
//!
//! Each IR basic block becomes one machine basic block, so the CFG the
//! placement optimizer sees is exactly the CFG of the generated code.  The
//! generator works from the register allocation produced by
//! [`regalloc`](crate::regalloc); caller-saved registers (`r0`–`r3`, `r12`)
//! are used only as intra-instruction scratch, which keeps calls simple.

use std::collections::HashMap;

use flashram_ir::{
    BinOp, BlockId, CmpOp, FuncId, GlobalData, IrFunction, IrInst, IrModule, IrTerm, MachineBlock,
    MachineFunction, MachineProgram, VReg, Value,
};
use flashram_isa::inst::LitValue;
use flashram_isa::{Cond, Inst, MemWidth, Reg, ShiftOp, SymbolId, Terminator};

use crate::error::CompileError;
use crate::regalloc::{allocate, Allocation, Loc};

/// Code-generation options derived from the optimization level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodegenOptions {
    /// Allocate virtual registers to physical registers (false at `-O0`,
    /// where everything is kept in stack slots).
    pub use_registers: bool,
    /// Use `cbz`/`cbnz` for compare-with-zero branches (O1 and above).
    pub use_compare_branch: bool,
}

impl Default for CodegenOptions {
    fn default() -> Self {
        CodegenOptions {
            use_registers: true,
            use_compare_branch: true,
        }
    }
}

/// Generate a complete machine program from a linked IR module.
///
/// # Errors
///
/// Returns a link-style error if a called function does not exist in the
/// module.
pub fn codegen_module(
    module: &IrModule,
    opts: &CodegenOptions,
) -> Result<MachineProgram, CompileError> {
    let mut func_index: HashMap<&str, u32> = HashMap::new();
    for (i, f) in module.functions.iter().enumerate() {
        func_index.insert(f.name.as_str(), i as u32);
    }
    let mut functions = Vec::with_capacity(module.functions.len());
    for f in &module.functions {
        functions.push(codegen_function(f, &func_index, opts)?);
    }
    let globals = module
        .globals
        .iter()
        .map(|g| GlobalData {
            name: g.name.clone(),
            bytes: g.init.to_bytes(),
            mutable: g.mutable,
        })
        .collect();
    let entry = module
        .function_index("main")
        .map(|i| FuncId(i as u32))
        .unwrap_or(FuncId(0));
    Ok(MachineProgram {
        functions,
        globals,
        entry,
    })
}

/// Generate machine code for one function.
///
/// # Errors
///
/// Returns an error if the function calls an unknown function.
pub fn codegen_function(
    func: &IrFunction,
    func_index: &HashMap<&str, u32>,
    opts: &CodegenOptions,
) -> Result<MachineFunction, CompileError> {
    let alloc = allocate(func, !opts.use_registers);
    let gen = FuncGen::new(func, &alloc, func_index, *opts);
    gen.run()
}

const SCRATCH_A: Reg = Reg::R0;
const SCRATCH_B: Reg = Reg::R1;
const SCRATCH_C: Reg = Reg::R2;
const SCRATCH_ADDR: Reg = Reg::R12;

struct FuncGen<'a> {
    func: &'a IrFunction,
    alloc: &'a Allocation,
    func_index: &'a HashMap<&'a str, u32>,
    opts: CodegenOptions,
    /// Byte offset of each array stack slot from SP (after the prologue).
    slot_offsets: Vec<i32>,
    frame_size: u32,
    saved_regs: Vec<Reg>,
}

impl<'a> FuncGen<'a> {
    fn new(
        func: &'a IrFunction,
        alloc: &'a Allocation,
        func_index: &'a HashMap<&'a str, u32>,
        opts: CodegenOptions,
    ) -> FuncGen<'a> {
        // Frame layout (from SP upward): spill slots, then array slots.
        let spill_bytes = alloc.spill_slots * 4;
        let mut slot_offsets = Vec::with_capacity(func.slots.len());
        let mut offset = spill_bytes;
        for slot in &func.slots {
            slot_offsets.push(offset as i32);
            offset += (slot.size + 3) & !3;
        }
        let frame_size = offset;
        let mut saved_regs = alloc.used_regs.clone();
        saved_regs.push(Reg::Lr);
        FuncGen {
            func,
            alloc,
            func_index,
            opts,
            slot_offsets,
            frame_size,
            saved_regs,
        }
    }

    fn run(self) -> Result<MachineFunction, CompileError> {
        let mut blocks = Vec::with_capacity(self.func.blocks.len());
        for (bi, block) in self.func.blocks.iter().enumerate() {
            let mut insts = Vec::new();
            if bi == 0 {
                self.emit_prologue(&mut insts);
            }
            for inst in &block.insts {
                self.emit_inst(inst, &mut insts)?;
            }
            let term = self.emit_terminator(&block.term, bi, &mut insts);
            blocks.push(MachineBlock::new(insts, term));
        }
        Ok(MachineFunction {
            name: self.func.name.clone(),
            blocks,
            frame_size: self.frame_size,
            num_params: self.func.num_params,
            is_library: self.func.is_library,
        })
    }

    // ----- prologue / epilogue -----

    fn emit_prologue(&self, out: &mut Vec<Inst>) {
        if !self.saved_regs.is_empty() {
            out.push(Inst::Push {
                regs: self.saved_regs.clone(),
            });
        }
        if self.frame_size > 0 {
            out.push(Inst::AddSp {
                delta: -(self.frame_size as i32),
            });
        }
        // Move incoming arguments (r0..r3) to their allocated homes.
        for p in 0..self.func.num_params {
            let arg_reg = Reg::ARGS[p];
            match self.loc(VReg(p as u32)) {
                Loc::Reg(r) => {
                    if r != arg_reg {
                        out.push(Inst::MovReg { rd: r, rm: arg_reg });
                    }
                }
                Loc::Spill(slot) => out.push(Inst::Store {
                    rs: arg_reg,
                    base: Reg::Sp,
                    offset: (slot * 4) as i32,
                    width: MemWidth::Word,
                }),
            }
        }
    }

    fn emit_epilogue(&self, out: &mut Vec<Inst>) {
        if self.frame_size > 0 {
            out.push(Inst::AddSp {
                delta: self.frame_size as i32,
            });
        }
        if !self.saved_regs.is_empty() {
            out.push(Inst::Pop {
                regs: self.saved_regs.clone(),
            });
        }
    }

    // ----- operand plumbing -----

    fn loc(&self, reg: VReg) -> Loc {
        self.alloc.loc(reg)
    }

    fn spill_offset(&self, slot: u32) -> i32 {
        (slot * 4) as i32
    }

    /// Materialize a value into some register, preferring its home register
    /// and otherwise using `scratch`.
    fn value_to_reg(&self, v: Value, scratch: Reg, out: &mut Vec<Inst>) -> Reg {
        match v {
            Value::Const(c) => {
                out.push(Inst::MovImm {
                    rd: scratch,
                    imm: c,
                });
                scratch
            }
            Value::Reg(vr) => match self.loc(vr) {
                Loc::Reg(r) => r,
                Loc::Spill(slot) => {
                    out.push(Inst::Load {
                        rd: scratch,
                        base: Reg::Sp,
                        offset: self.spill_offset(slot),
                        width: MemWidth::Word,
                    });
                    scratch
                }
            },
        }
    }

    /// Materialize a value into a *specific* register (used for call
    /// arguments and return values).
    fn value_into(&self, v: Value, target: Reg, out: &mut Vec<Inst>) {
        match v {
            Value::Const(c) => out.push(Inst::MovImm { rd: target, imm: c }),
            Value::Reg(vr) => match self.loc(vr) {
                Loc::Reg(r) => {
                    if r != target {
                        out.push(Inst::MovReg { rd: target, rm: r });
                    }
                }
                Loc::Spill(slot) => out.push(Inst::Load {
                    rd: target,
                    base: Reg::Sp,
                    offset: self.spill_offset(slot),
                    width: MemWidth::Word,
                }),
            },
        }
    }

    /// The register a destination should be computed into, plus whether the
    /// result must be stored back to a spill slot afterwards.
    fn dst_reg(&self, dst: VReg) -> (Reg, Option<i32>) {
        match self.loc(dst) {
            Loc::Reg(r) => (r, None),
            Loc::Spill(slot) => (SCRATCH_C, Some(self.spill_offset(slot))),
        }
    }

    fn finish_dst(&self, spill: Option<i32>, reg: Reg, out: &mut Vec<Inst>) {
        if let Some(offset) = spill {
            out.push(Inst::Store {
                rs: reg,
                base: Reg::Sp,
                offset,
                width: MemWidth::Word,
            });
        }
    }

    // ----- instruction selection -----

    fn emit_inst(&self, inst: &IrInst, out: &mut Vec<Inst>) -> Result<(), CompileError> {
        match inst {
            IrInst::Copy { dst, src } => {
                let (rd, spill) = self.dst_reg(*dst);
                match src {
                    Value::Const(c) => out.push(Inst::MovImm { rd, imm: *c }),
                    v => {
                        let rs = self.value_to_reg(*v, rd, out);
                        if rs != rd {
                            out.push(Inst::MovReg { rd, rm: rs });
                        }
                    }
                }
                self.finish_dst(spill, rd, out);
            }
            IrInst::Bin { op, dst, lhs, rhs } => {
                self.emit_bin(*op, *dst, *lhs, *rhs, out);
            }
            IrInst::Cmp { op, dst, lhs, rhs } => {
                let (rd, spill) = self.dst_reg(*dst);
                let ra = self.value_to_reg(*lhs, SCRATCH_A, out);
                match rhs {
                    Value::Const(c) => out.push(Inst::CmpImm { rn: ra, imm: *c }),
                    v => {
                        let rb = self.value_to_reg(*v, SCRATCH_B, out);
                        out.push(Inst::CmpReg { rn: ra, rm: rb });
                    }
                }
                out.push(Inst::MovImm { rd, imm: 0 });
                out.push(Inst::MovCond {
                    cond: cmp_to_cond(*op),
                    rd,
                    imm: 1,
                });
                self.finish_dst(spill, rd, out);
            }
            IrInst::Neg { dst, src } => {
                let (rd, spill) = self.dst_reg(*dst);
                let rs = self.value_to_reg(*src, SCRATCH_A, out);
                out.push(Inst::RsbImm { rd, rn: rs, imm: 0 });
                self.finish_dst(spill, rd, out);
            }
            IrInst::Not { dst, src } => {
                let (rd, spill) = self.dst_reg(*dst);
                let rs = self.value_to_reg(*src, SCRATCH_A, out);
                out.push(Inst::Mvn { rd, rm: rs });
                self.finish_dst(spill, rd, out);
            }
            IrInst::FrameAddr { dst, slot } => {
                let (rd, spill) = self.dst_reg(*dst);
                out.push(Inst::AddImm {
                    rd,
                    rn: Reg::Sp,
                    imm: self.slot_offsets[*slot],
                });
                self.finish_dst(spill, rd, out);
            }
            IrInst::GlobalAddr { dst, global } => {
                let (rd, spill) = self.dst_reg(*dst);
                out.push(Inst::LdrLit {
                    rd,
                    value: LitValue::Symbol(SymbolId(*global as u32)),
                });
                self.finish_dst(spill, rd, out);
            }
            IrInst::Load {
                dst,
                addr,
                offset,
                width,
            } => {
                let (rd, spill) = self.dst_reg(*dst);
                let base = self.value_to_reg(*addr, SCRATCH_ADDR, out);
                out.push(Inst::Load {
                    rd,
                    base,
                    offset: *offset,
                    width: *width,
                });
                self.finish_dst(spill, rd, out);
            }
            IrInst::Store {
                src,
                addr,
                offset,
                width,
            } => {
                let base = self.value_to_reg(*addr, SCRATCH_ADDR, out);
                let rs = self.value_to_reg(*src, SCRATCH_A, out);
                out.push(Inst::Store {
                    rs,
                    base,
                    offset: *offset,
                    width: *width,
                });
            }
            IrInst::Call { dst, callee, args } => {
                for (i, a) in args.iter().enumerate() {
                    self.value_into(*a, Reg::ARGS[i], out);
                }
                let index = self
                    .func_index
                    .get(callee.0.as_str())
                    .copied()
                    .ok_or_else(|| {
                        CompileError::global(format!(
                            "undefined reference to function `{}` (called from `{}`)",
                            callee.0, self.func.name
                        ))
                    })?;
                out.push(Inst::Bl { callee: index });
                if let Some(dst) = dst {
                    let (rd, spill) = self.dst_reg(*dst);
                    if rd != Reg::R0 {
                        out.push(Inst::MovReg { rd, rm: Reg::R0 });
                    }
                    self.finish_dst(spill, rd, out);
                }
            }
        }
        Ok(())
    }

    fn emit_bin(&self, op: BinOp, dst: VReg, lhs: Value, rhs: Value, out: &mut Vec<Inst>) {
        let (rd, spill) = self.dst_reg(dst);
        let ra = self.value_to_reg(lhs, SCRATCH_A, out);
        // Immediate forms where the ISA has them.
        let done = match (op, rhs) {
            (BinOp::Add, Value::Const(c)) => {
                if c >= 0 {
                    out.push(Inst::AddImm { rd, rn: ra, imm: c });
                } else {
                    out.push(Inst::SubImm {
                        rd,
                        rn: ra,
                        imm: -c,
                    });
                }
                true
            }
            (BinOp::Sub, Value::Const(c)) => {
                if c >= 0 {
                    out.push(Inst::SubImm { rd, rn: ra, imm: c });
                } else {
                    out.push(Inst::AddImm {
                        rd,
                        rn: ra,
                        imm: -c,
                    });
                }
                true
            }
            (BinOp::And, Value::Const(c)) => {
                out.push(Inst::AndImm { rd, rn: ra, imm: c });
                true
            }
            (BinOp::Or, Value::Const(c)) => {
                out.push(Inst::OrrImm { rd, rn: ra, imm: c });
                true
            }
            (BinOp::Xor, Value::Const(c)) => {
                out.push(Inst::EorImm { rd, rn: ra, imm: c });
                true
            }
            (BinOp::Shl, Value::Const(c)) => {
                out.push(Inst::ShiftImm {
                    op: ShiftOp::Lsl,
                    rd,
                    rm: ra,
                    imm: (c & 31) as u8,
                });
                true
            }
            (BinOp::Lshr, Value::Const(c)) => {
                out.push(Inst::ShiftImm {
                    op: ShiftOp::Lsr,
                    rd,
                    rm: ra,
                    imm: (c & 31) as u8,
                });
                true
            }
            (BinOp::Ashr, Value::Const(c)) => {
                out.push(Inst::ShiftImm {
                    op: ShiftOp::Asr,
                    rd,
                    rm: ra,
                    imm: (c & 31) as u8,
                });
                true
            }
            _ => false,
        };
        if done {
            self.finish_dst(spill, rd, out);
            return;
        }
        let rb = self.value_to_reg(rhs, SCRATCH_B, out);
        match op {
            BinOp::Add => out.push(Inst::AddReg { rd, rn: ra, rm: rb }),
            BinOp::Sub => out.push(Inst::SubReg { rd, rn: ra, rm: rb }),
            BinOp::Mul => out.push(Inst::Mul { rd, rn: ra, rm: rb }),
            BinOp::Div => out.push(Inst::Sdiv { rd, rn: ra, rm: rb }),
            BinOp::Udiv => out.push(Inst::Udiv { rd, rn: ra, rm: rb }),
            BinOp::Rem | BinOp::Urem => {
                // r = a - (a / b) * b, using the remaining scratch register.
                let q = SCRATCH_C;
                if matches!(op, BinOp::Rem) {
                    out.push(Inst::Sdiv {
                        rd: q,
                        rn: ra,
                        rm: rb,
                    });
                } else {
                    out.push(Inst::Udiv {
                        rd: q,
                        rn: ra,
                        rm: rb,
                    });
                }
                out.push(Inst::Mul {
                    rd: q,
                    rn: q,
                    rm: rb,
                });
                out.push(Inst::SubReg { rd, rn: ra, rm: q });
            }
            BinOp::And => out.push(Inst::And { rd, rn: ra, rm: rb }),
            BinOp::Or => out.push(Inst::Orr { rd, rn: ra, rm: rb }),
            BinOp::Xor => out.push(Inst::Eor { rd, rn: ra, rm: rb }),
            BinOp::Shl => out.push(Inst::ShiftReg {
                op: ShiftOp::Lsl,
                rd,
                rn: ra,
                rm: rb,
            }),
            BinOp::Lshr => out.push(Inst::ShiftReg {
                op: ShiftOp::Lsr,
                rd,
                rn: ra,
                rm: rb,
            }),
            BinOp::Ashr => out.push(Inst::ShiftReg {
                op: ShiftOp::Asr,
                rd,
                rn: ra,
                rm: rb,
            }),
        }
        self.finish_dst(spill, rd, out);
    }

    fn emit_terminator(
        &self,
        term: &IrTerm,
        block_index: usize,
        out: &mut Vec<Inst>,
    ) -> Terminator<BlockId> {
        match term {
            IrTerm::Jump(target) => {
                if target.index() == block_index + 1 {
                    Terminator::FallThrough { target: *target }
                } else {
                    Terminator::Branch { target: *target }
                }
            }
            IrTerm::Branch {
                op,
                lhs,
                rhs,
                then_block,
                else_block,
            } => {
                // Compare-with-zero branches become cbz/cbnz where allowed.
                if self.opts.use_compare_branch
                    && matches!(op, CmpOp::Eq | CmpOp::Ne)
                    && *rhs == Value::Const(0)
                {
                    if let Value::Reg(vr) = lhs {
                        if let Loc::Reg(r) = self.loc(*vr) {
                            if r.is_low() {
                                return Terminator::CompareBranch {
                                    nonzero: matches!(op, CmpOp::Ne),
                                    rn: r,
                                    target: *then_block,
                                    fallthrough: *else_block,
                                };
                            }
                        }
                    }
                }
                let ra = self.value_to_reg(*lhs, SCRATCH_A, out);
                match rhs {
                    Value::Const(c) => out.push(Inst::CmpImm { rn: ra, imm: *c }),
                    v => {
                        let rb = self.value_to_reg(*v, SCRATCH_B, out);
                        out.push(Inst::CmpReg { rn: ra, rm: rb });
                    }
                }
                Terminator::CondBranch {
                    cond: cmp_to_cond(*op),
                    target: *then_block,
                    fallthrough: *else_block,
                }
            }
            IrTerm::Ret(value) => {
                if let Some(v) = value {
                    self.value_into(*v, Reg::R0, out);
                }
                self.emit_epilogue(out);
                Terminator::Return
            }
        }
    }
}

fn cmp_to_cond(op: CmpOp) -> Cond {
    match op {
        CmpOp::Eq => Cond::Eq,
        CmpOp::Ne => Cond::Ne,
        CmpOp::Slt => Cond::Lt,
        CmpOp::Sle => Cond::Le,
        CmpOp::Sgt => Cond::Gt,
        CmpOp::Sge => Cond::Ge,
        CmpOp::Ult => Cond::Cc,
        CmpOp::Ule => Cond::Ls,
        CmpOp::Ugt => Cond::Hi,
        CmpOp::Uge => Cond::Cs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::{lower_program, LowerOptions};
    use crate::parser::parse;

    fn compile(src: &str, opts: &CodegenOptions) -> MachineProgram {
        let module = lower_program(&parse(src).unwrap(), &LowerOptions::default(), false).unwrap();
        codegen_module(&module, opts).unwrap()
    }

    #[test]
    fn generates_valid_machine_program() {
        let prog = compile(
            "int add(int a, int b) { return a + b; }
             int main() { return add(2, 3); }",
            &CodegenOptions::default(),
        );
        assert!(prog.validate().is_empty(), "{:?}", prog.validate());
        assert_eq!(prog.functions.len(), 2);
        assert_eq!(prog.entry.index(), 1);
    }

    #[test]
    fn o0_style_codegen_is_bigger_than_optimized() {
        let src = "int f(int a, int b) { int c = a + b; int d = c * 2; return d - a; }";
        let o0 = compile(
            src,
            &CodegenOptions {
                use_registers: false,
                use_compare_branch: false,
            },
        );
        let o1 = compile(src, &CodegenOptions::default());
        assert!(
            o0.code_size() > o1.code_size(),
            "expected unoptimized code to be larger: {} vs {}",
            o0.code_size(),
            o1.code_size()
        );
    }

    #[test]
    fn loops_generate_conditional_terminators() {
        let prog = compile(
            "int sum(int n) { int s = 0; for (int i = 0; i < n; i++) { s += i; } return s; }
             int main() { return sum(5); }",
            &CodegenOptions::default(),
        );
        let f = prog.function("sum").unwrap();
        let has_cond = f.blocks.iter().any(|b| {
            matches!(
                b.term,
                Terminator::CondBranch { .. } | Terminator::CompareBranch { .. }
            )
        });
        assert!(has_cond, "{prog}");
    }

    #[test]
    fn compare_with_zero_uses_cbz_when_enabled() {
        let src =
            "int f(int a) { while (a != 0) { a = a - 1; } return a; } int main() { return f(9); }";
        let with = compile(src, &CodegenOptions::default());
        let without = compile(
            src,
            &CodegenOptions {
                use_registers: true,
                use_compare_branch: false,
            },
        );
        let count_cbz = |p: &MachineProgram| {
            p.functions
                .iter()
                .flat_map(|f| f.blocks.iter())
                .filter(|b| matches!(b.term, Terminator::CompareBranch { .. }))
                .count()
        };
        assert!(count_cbz(&with) >= 1);
        assert_eq!(count_cbz(&without), 0);
    }

    #[test]
    fn calls_marshal_arguments_into_r0_r3() {
        let prog = compile(
            "int g(int a, int b, int c, int d) { return a + b + c + d; }
             int main() { return g(1, 2, 3, 4); }",
            &CodegenOptions::default(),
        );
        let main = prog.function("main").unwrap();
        let insts: Vec<&Inst> = main.blocks.iter().flat_map(|b| b.insts.iter()).collect();
        let has_call = insts.iter().any(|i| matches!(i, Inst::Bl { .. }));
        assert!(has_call);
        // All four argument registers must be written before the call.
        for target in [Reg::R0, Reg::R1, Reg::R2, Reg::R3] {
            let written = insts
                .iter()
                .any(|i| matches!(i, Inst::MovImm { rd, .. } if *rd == target));
            assert!(written, "argument register {target} never written:\n{prog}");
        }
    }

    #[test]
    fn globals_become_symbol_loads() {
        let prog = compile(
            "int counter = 5; int main() { counter = counter + 1; return counter; }",
            &CodegenOptions::default(),
        );
        assert_eq!(prog.globals.len(), 1);
        let main = prog.function("main").unwrap();
        let has_sym_load = main.blocks.iter().flat_map(|b| b.insts.iter()).any(|i| {
            matches!(
                i,
                Inst::LdrLit {
                    value: LitValue::Symbol(SymbolId(0)),
                    ..
                }
            )
        });
        assert!(has_sym_load, "{prog}");
    }

    #[test]
    fn undefined_call_is_a_link_error() {
        let module = lower_program(
            &parse("float f(float a) { return sqrtf(a); }").unwrap(),
            &LowerOptions::default(),
            false,
        )
        .unwrap();
        let err = codegen_module(&module, &CodegenOptions::default()).unwrap_err();
        assert!(err.message.contains("sqrtf"), "{err}");
    }

    #[test]
    fn prologue_saves_and_epilogue_restores() {
        let prog = compile(
            "int f(int a, int b) { int c[4]; c[0] = a; c[1] = b; return c[0] + c[1]; }
             int main() { return f(1, 2); }",
            &CodegenOptions::default(),
        );
        let f = prog.function("f").unwrap();
        assert!(f.frame_size >= 16, "array slot must be in the frame");
        let entry = &f.blocks[0];
        assert!(matches!(entry.insts[0], Inst::Push { .. }));
        let returns: Vec<&MachineBlock> = f
            .blocks
            .iter()
            .filter(|b| matches!(b.term, Terminator::Return))
            .collect();
        assert!(!returns.is_empty());
        for b in returns {
            assert!(
                b.insts.iter().any(|i| matches!(i, Inst::Pop { .. })),
                "every return path must restore saved registers"
            );
        }
    }
}
