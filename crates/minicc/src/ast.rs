//! Abstract syntax tree of the mini-C language.
//!
//! The language is a small C subset sufficient to express the BEEBS-style
//! embedded kernels used in the evaluation: `int`/`unsigned`/`char`/`float`
//! scalars, one-dimensional arrays, pointers (one level, as array parameters),
//! the usual statements and operators, and function calls.  `float` arithmetic
//! has no hardware support on the modelled core — the lowering turns it into
//! calls to the opaque soft-float support library, exactly the situation the
//! paper describes for `cubic` and `float_matmult`.

/// Base type specifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeSpec {
    /// 32-bit signed integer.
    Int,
    /// 32-bit unsigned integer.
    Unsigned,
    /// 8-bit unsigned character.
    Char,
    /// Unsigned 8-bit (spelled `unsigned char`).
    UChar,
    /// IEEE-754 single precision, implemented in software.
    Float,
    /// No value (function returns only).
    Void,
}

/// A declared type: base specifier plus pointer/array derivations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeclType {
    /// Base specifier.
    pub base: TypeSpec,
    /// Pointer indirection depth (0 = not a pointer; at most 1 is supported).
    pub pointer: u8,
    /// Array length, if this is an array declaration.
    pub array_len: Option<usize>,
}

impl DeclType {
    /// A plain scalar of the given base type.
    pub fn scalar(base: TypeSpec) -> DeclType {
        DeclType {
            base,
            pointer: 0,
            array_len: None,
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not (`!`).
    LogicalNot,
    /// Bitwise complement (`~`).
    BitNot,
}

/// Binary operators (including comparisons and logical connectives).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum BinAstOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    LogicalAnd,
    LogicalOr,
}

impl BinAstOp {
    /// Whether the operator is a comparison (result is `int` 0/1).
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinAstOp::Lt | BinAstOp::Le | BinAstOp::Gt | BinAstOp::Ge | BinAstOp::Eq | BinAstOp::Ne
        )
    }

    /// Whether the operator is `&&` or `||`.
    pub fn is_logical(self) -> bool {
        matches!(self, BinAstOp::LogicalAnd | BinAstOp::LogicalOr)
    }
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    IntLit(i64),
    /// Float literal.
    FloatLit(f32),
    /// Character literal.
    CharLit(u8),
    /// Variable reference.
    Ident(String),
    /// Array indexing `base[index]`.
    Index {
        /// Array or pointer expression.
        base: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinAstOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Function call.
    Call {
        /// Callee name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// C-style cast.
    Cast {
        /// Target type.
        ty: DeclType,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Conditional expression `cond ? then : else`.
    Conditional {
        /// Condition.
        cond: Box<Expr>,
        /// Value if the condition is non-zero.
        then_expr: Box<Expr>,
        /// Value otherwise.
        else_expr: Box<Expr>,
    },
}

/// Initializer of a declaration.
#[derive(Debug, Clone, PartialEq)]
pub enum Initializer {
    /// A single expression.
    Expr(Expr),
    /// A brace-enclosed list (arrays).
    List(Vec<Expr>),
}

/// A variable declaration (local or global).
#[derive(Debug, Clone, PartialEq)]
pub struct VarDecl {
    /// Name.
    pub name: String,
    /// Declared type.
    pub ty: DeclType,
    /// Whether the declaration is `const` (globals only: placed in flash).
    pub is_const: bool,
    /// Optional initializer.
    pub init: Option<Initializer>,
    /// Source line.
    pub line: u32,
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Local variable declaration.
    Decl(VarDecl),
    /// Expression evaluated for its side effects (usually a call).
    Expr(Expr),
    /// Assignment `target op= value` (plain assignment when `op` is `None`).
    Assign {
        /// Assignment target (identifier, array element or dereference).
        target: Expr,
        /// Compound-assignment operator, if any.
        op: Option<BinAstOp>,
        /// Right-hand side.
        value: Expr,
    },
    /// `if`/`else`.
    If {
        /// Condition.
        cond: Expr,
        /// Taken branch.
        then_body: Vec<Stmt>,
        /// Else branch (empty when absent).
        else_body: Vec<Stmt>,
    },
    /// `while` loop.
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `do { .. } while (cond);` loop.
    DoWhile {
        /// Body.
        body: Vec<Stmt>,
        /// Condition.
        cond: Expr,
    },
    /// `for` loop.
    For {
        /// Initialization statement (declaration or assignment).
        init: Option<Box<Stmt>>,
        /// Loop condition (absent means "always true").
        cond: Option<Expr>,
        /// Step statement.
        step: Option<Box<Stmt>>,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `return`.
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// A braced block introducing a scope.
    Block(Vec<Stmt>),
    /// Empty statement.
    Empty,
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// Name.
    pub name: String,
    /// Type (arrays decay to pointers).
    pub ty: DeclType,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Name.
    pub name: String,
    /// Return type.
    pub ret: DeclType,
    /// Parameters (at most four are supported by the code generator).
    pub params: Vec<Param>,
    /// Body.
    pub body: Vec<Stmt>,
    /// Source line of the definition.
    pub line: u32,
}

/// A top-level item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// A global variable or constant table.
    Global(VarDecl),
    /// A function definition.
    Function(Function),
}

/// A parsed translation unit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

impl Program {
    /// The function definitions of the unit.
    pub fn functions(&self) -> impl Iterator<Item = &Function> {
        self.items.iter().filter_map(|i| match i {
            Item::Function(f) => Some(f),
            Item::Global(_) => None,
        })
    }

    /// The global declarations of the unit.
    pub fn globals(&self) -> impl Iterator<Item = &VarDecl> {
        self.items.iter().filter_map(|i| match i {
            Item::Global(g) => Some(g),
            Item::Function(_) => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decltype_helpers() {
        let t = DeclType::scalar(TypeSpec::Int);
        assert_eq!(t.pointer, 0);
        assert_eq!(t.array_len, None);
    }

    #[test]
    fn binop_classification() {
        assert!(BinAstOp::Lt.is_comparison());
        assert!(!BinAstOp::Add.is_comparison());
        assert!(BinAstOp::LogicalAnd.is_logical());
        assert!(!BinAstOp::BitAnd.is_logical());
    }

    #[test]
    fn program_item_filters() {
        let p = Program {
            items: vec![
                Item::Global(VarDecl {
                    name: "g".into(),
                    ty: DeclType::scalar(TypeSpec::Int),
                    is_const: false,
                    init: None,
                    line: 1,
                }),
                Item::Function(Function {
                    name: "main".into(),
                    ret: DeclType::scalar(TypeSpec::Int),
                    params: vec![],
                    body: vec![],
                    line: 2,
                }),
            ],
        };
        assert_eq!(p.functions().count(), 1);
        assert_eq!(p.globals().count(), 1);
    }
}
