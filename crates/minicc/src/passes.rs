//! Optimization passes over the mid-level IR.
//!
//! The pass pipeline stands in for GCC's optimization levels in the
//! reproduction: `-O0` runs nothing, `-O1` and above run constant folding,
//! copy propagation, dead-code elimination and CFG simplification to a fixed
//! point, `-O2`/`-O3` additionally inline small functions, and `-O3` unrolls
//! small counted loops (during lowering).  What matters for the placement
//! optimizer is that different levels produce CFGs with realistically
//! different block counts, sizes and frequencies — which these passes do.

use std::collections::{HashMap, HashSet};

use flashram_ir::{BlockId, IrFunction, IrInst, IrModule, IrTerm, VReg, Value};

/// Fold constant expressions and constant branches within each block.
///
/// Returns `true` if anything changed.
pub fn constant_fold(func: &mut IrFunction) -> bool {
    let mut changed = false;
    for block in &mut func.blocks {
        let mut known: HashMap<VReg, i32> = HashMap::new();
        for inst in &mut block.insts {
            // Rewrite uses through the constant map.
            for u in inst.uses_mut() {
                if let Value::Reg(r) = u {
                    if let Some(c) = known.get(r) {
                        *u = Value::Const(*c);
                        changed = true;
                    }
                }
            }
            // Fold the instruction itself where possible.
            let folded: Option<(VReg, i32)> = match inst {
                IrInst::Bin {
                    op,
                    dst,
                    lhs: Value::Const(a),
                    rhs: Value::Const(b),
                } => Some((*dst, op.eval(*a, *b))),
                IrInst::Cmp {
                    op,
                    dst,
                    lhs: Value::Const(a),
                    rhs: Value::Const(b),
                } => Some((*dst, op.eval(*a, *b) as i32)),
                IrInst::Neg {
                    dst,
                    src: Value::Const(c),
                } => Some((*dst, c.wrapping_neg())),
                IrInst::Not {
                    dst,
                    src: Value::Const(c),
                } => Some((*dst, !*c)),
                IrInst::Copy {
                    dst,
                    src: Value::Const(c),
                } => Some((*dst, *c)),
                _ => None,
            };
            match folded {
                Some((dst, value)) => {
                    if !matches!(
                        inst,
                        IrInst::Copy {
                            src: Value::Const(_),
                            ..
                        }
                    ) {
                        *inst = IrInst::Copy {
                            dst,
                            src: Value::Const(value),
                        };
                        changed = true;
                    }
                    known.insert(dst, value);
                }
                None => {
                    if let Some(dst) = inst.dst() {
                        known.remove(&dst);
                    }
                }
            }
        }
        // Rewrite terminator uses and fold constant branches.
        for u in block.term.uses_mut() {
            if let Value::Reg(r) = u {
                if let Some(c) = known.get(r) {
                    *u = Value::Const(*c);
                    changed = true;
                }
            }
        }
        if let IrTerm::Branch {
            op,
            lhs: Value::Const(a),
            rhs: Value::Const(b),
            then_block,
            else_block,
        } = block.term
        {
            let target = if op.eval(a, b) {
                then_block
            } else {
                else_block
            };
            block.term = IrTerm::Jump(target);
            changed = true;
        }
    }
    changed
}

/// Propagate copies within each block (`y = x; use y` becomes `use x`).
///
/// Returns `true` if anything changed.
pub fn copy_propagate(func: &mut IrFunction) -> bool {
    let mut changed = false;
    for block in &mut func.blocks {
        let mut copies: HashMap<VReg, Value> = HashMap::new();
        for inst in &mut block.insts {
            for u in inst.uses_mut() {
                if let Value::Reg(r) = u {
                    if let Some(v) = copies.get(r) {
                        *u = *v;
                        changed = true;
                    }
                }
            }
            if let Some(dst) = inst.dst() {
                // The destination is redefined: forget copies involving it.
                copies.remove(&dst);
                copies.retain(|_, v| *v != Value::Reg(dst));
                if let IrInst::Copy { src, .. } = inst {
                    if *src != Value::Reg(dst) {
                        copies.insert(dst, *src);
                    }
                }
            }
        }
        for u in block.term.uses_mut() {
            if let Value::Reg(r) = u {
                if let Some(v) = copies.get(r) {
                    *u = *v;
                    changed = true;
                }
            }
        }
    }
    changed
}

/// Remove side-effect-free instructions whose results are never used.
///
/// Returns `true` if anything changed.
pub fn dead_code_elim(func: &mut IrFunction) -> bool {
    let mut changed = false;
    loop {
        let mut used: HashSet<VReg> = HashSet::new();
        for block in &func.blocks {
            for inst in &block.insts {
                for u in inst.uses() {
                    if let Value::Reg(r) = u {
                        used.insert(r);
                    }
                }
            }
            for u in block.term.uses() {
                if let Value::Reg(r) = u {
                    used.insert(r);
                }
            }
        }
        // Parameters are implicitly live on entry (the prologue materializes
        // them), so keep their defining copies even if currently unused.
        let mut removed_any = false;
        for block in &mut func.blocks {
            let before = block.insts.len();
            block.insts.retain(|inst| {
                if inst.has_side_effects() {
                    return true;
                }
                match inst.dst() {
                    Some(dst) => used.contains(&dst),
                    None => true,
                }
            });
            if block.insts.len() != before {
                removed_any = true;
                changed = true;
            }
        }
        if !removed_any {
            break;
        }
    }
    changed
}

/// Simplify the control-flow graph: thread trivial jump blocks, merge blocks
/// with single predecessors, and drop unreachable blocks.
///
/// Returns `true` if anything changed.
pub fn simplify_cfg(func: &mut IrFunction) -> bool {
    let mut changed = false;
    changed |= thread_jumps(func);
    changed |= merge_straightline(func);
    changed |= remove_unreachable(func);
    changed
}

/// Redirect branches that target an empty block containing only a jump.
fn thread_jumps(func: &mut IrFunction) -> bool {
    let n = func.blocks.len();
    // Compute the forwarding target of each block (transitively, with a hop
    // limit to be safe against cycles of empty blocks).
    let mut forward: Vec<BlockId> = (0..n as u32).map(BlockId).collect();
    for (b, fwd) in forward.iter_mut().enumerate() {
        let mut target = BlockId(b as u32);
        for _ in 0..n {
            let blk = &func.blocks[target.index()];
            if blk.insts.is_empty() {
                if let IrTerm::Jump(next) = blk.term {
                    if next != target {
                        target = next;
                        continue;
                    }
                }
            }
            break;
        }
        *fwd = target;
    }
    let mut changed = false;
    for block in &mut func.blocks {
        let remap = |t: &mut BlockId, changed: &mut bool| {
            let f = forward[t.index()];
            if f != *t {
                *t = f;
                *changed = true;
            }
        };
        match &mut block.term {
            IrTerm::Jump(t) => remap(t, &mut changed),
            IrTerm::Branch {
                then_block,
                else_block,
                ..
            } => {
                remap(then_block, &mut changed);
                remap(else_block, &mut changed);
            }
            IrTerm::Ret(_) => {}
        }
    }
    changed
}

/// Merge `a -> b` when `a` jumps unconditionally to `b` and `b` has no other
/// predecessors.
fn merge_straightline(func: &mut IrFunction) -> bool {
    let mut changed = false;
    loop {
        let n = func.blocks.len();
        let mut pred_count = vec![0usize; n];
        for block in &func.blocks {
            for s in block.term.successors() {
                pred_count[s.index()] += 1;
            }
        }
        let mut merged = false;
        for a in 0..n {
            let target = match func.blocks[a].term {
                IrTerm::Jump(t) => t,
                _ => continue,
            };
            let t = target.index();
            if t == a || pred_count[t] != 1 || t == 0 {
                continue;
            }
            // Splice block t into a.
            let spliced = std::mem::take(&mut func.blocks[t].insts);
            let term = std::mem::replace(&mut func.blocks[t].term, IrTerm::Ret(None));
            func.blocks[a].insts.extend(spliced);
            func.blocks[a].term = term;
            // Leave t in place as an unreachable empty block; a later
            // `remove_unreachable` collects it.
            merged = true;
            changed = true;
            break;
        }
        if !merged {
            break;
        }
    }
    changed
}

/// Remove blocks unreachable from the entry and renumber the rest.
fn remove_unreachable(func: &mut IrFunction) -> bool {
    let n = func.blocks.len();
    let mut reachable = vec![false; n];
    let mut stack = vec![0usize];
    reachable[0] = true;
    while let Some(b) = stack.pop() {
        for s in func.blocks[b].term.successors() {
            if !reachable[s.index()] {
                reachable[s.index()] = true;
                stack.push(s.index());
            }
        }
    }
    if reachable.iter().all(|r| *r) {
        return false;
    }
    let mut remap: Vec<Option<u32>> = vec![None; n];
    let mut next = 0u32;
    for b in 0..n {
        if reachable[b] {
            remap[b] = Some(next);
            next += 1;
        }
    }
    let mut new_blocks = Vec::with_capacity(next as usize);
    for (b, block) in func.blocks.drain(..).enumerate() {
        if reachable[b] {
            new_blocks.push(block);
        }
    }
    for block in &mut new_blocks {
        let remap_id = |t: &mut BlockId| {
            *t = BlockId(remap[t.index()].expect("reachable target"));
        };
        match &mut block.term {
            IrTerm::Jump(t) => remap_id(t),
            IrTerm::Branch {
                then_block,
                else_block,
                ..
            } => {
                remap_id(then_block);
                remap_id(else_block);
            }
            IrTerm::Ret(_) => {}
        }
    }
    func.blocks = new_blocks;
    true
}

/// Inline calls to small, single-block, non-recursive functions.
///
/// Returns `true` if anything changed.  `max_insts` bounds the callee size.
pub fn inline_small_functions(module: &mut IrModule, max_insts: usize) -> bool {
    // Identify inlinable callees.
    let mut inlinable: HashMap<String, IrFunction> = HashMap::new();
    for f in &module.functions {
        if f.blocks.len() != 1 || f.inst_count() > max_insts || !f.slots.is_empty() || f.is_library
        {
            continue;
        }
        let calls_self = f.blocks[0]
            .insts
            .iter()
            .any(|i| matches!(i, IrInst::Call { callee, .. } if callee.0 == f.name));
        if calls_self {
            continue;
        }
        inlinable.insert(f.name.clone(), f.clone());
    }
    if inlinable.is_empty() {
        return false;
    }

    let mut changed = false;
    for func in &mut module.functions {
        let caller_name = func.name.clone();
        for b in 0..func.blocks.len() {
            let mut new_insts: Vec<IrInst> = Vec::new();
            let insts = std::mem::take(&mut func.blocks[b].insts);
            for inst in insts {
                let (callee_name, dst, args) = match &inst {
                    IrInst::Call { callee, dst, args } => (callee.0.clone(), *dst, args.clone()),
                    _ => {
                        new_insts.push(inst);
                        continue;
                    }
                };
                let Some(callee) = inlinable.get(&callee_name) else {
                    new_insts.push(inst);
                    continue;
                };
                if callee.name == caller_name {
                    new_insts.push(inst);
                    continue;
                }
                // Map callee virtual registers into fresh caller registers.
                let mut reg_map: HashMap<VReg, VReg> = HashMap::new();
                for (p, &arg) in args[..callee.num_params].iter().enumerate() {
                    let fresh = func_new_vreg(func);
                    reg_map.insert(VReg(p as u32), fresh);
                    new_insts.push(IrInst::Copy {
                        dst: fresh,
                        src: arg,
                    });
                }
                let map_value =
                    |v: Value, func: &mut IrFunction, reg_map: &mut HashMap<VReg, VReg>| match v {
                        Value::Reg(r) => {
                            let mapped = *reg_map.entry(r).or_insert_with(|| func_new_vreg(func));
                            Value::Reg(mapped)
                        }
                        c => c,
                    };
                for callee_inst in &callee.blocks[0].insts {
                    let mut cloned = callee_inst.clone();
                    for u in cloned.uses_mut() {
                        *u = map_value(*u, func, &mut reg_map);
                    }
                    cloned = rewrite_dst(cloned, func, &mut reg_map);
                    new_insts.push(cloned);
                }
                // The callee's return value feeds the call destination.
                if let (Some(dst), IrTerm::Ret(Some(v))) = (dst, &callee.blocks[0].term) {
                    let v = map_value(*v, func, &mut reg_map);
                    new_insts.push(IrInst::Copy { dst, src: v });
                }
                changed = true;
            }
            func.blocks[b].insts = new_insts;
        }
    }
    changed
}

fn func_new_vreg(func: &mut IrFunction) -> VReg {
    let r = VReg(func.vreg_count);
    func.vreg_count += 1;
    r
}

fn rewrite_dst(
    mut inst: IrInst,
    func: &mut IrFunction,
    reg_map: &mut HashMap<VReg, VReg>,
) -> IrInst {
    let map = |r: VReg, func: &mut IrFunction, reg_map: &mut HashMap<VReg, VReg>| {
        *reg_map.entry(r).or_insert_with(|| func_new_vreg(func))
    };
    match &mut inst {
        IrInst::Bin { dst, .. }
        | IrInst::Cmp { dst, .. }
        | IrInst::Copy { dst, .. }
        | IrInst::Neg { dst, .. }
        | IrInst::Not { dst, .. }
        | IrInst::FrameAddr { dst, .. }
        | IrInst::GlobalAddr { dst, .. }
        | IrInst::Load { dst, .. } => *dst = map(*dst, func, reg_map),
        IrInst::Call { dst: Some(dst), .. } => *dst = map(*dst, func, reg_map),
        IrInst::Call { dst: None, .. } | IrInst::Store { .. } => {}
    }
    inst
}

/// Run the scalar pass pipeline to a fixed point (bounded at a few rounds).
pub fn optimize_function(func: &mut IrFunction) {
    for _ in 0..4 {
        let mut changed = false;
        changed |= constant_fold(func);
        changed |= copy_propagate(func);
        changed |= dead_code_elim(func);
        changed |= simplify_cfg(func);
        if !changed {
            break;
        }
    }
}

/// Run the whole-module pipeline for a given amount of effort.
pub fn optimize_module(module: &mut IrModule, inline_threshold: Option<usize>) {
    if let Some(threshold) = inline_threshold {
        inline_small_functions(module, threshold);
    }
    for func in &mut module.functions {
        optimize_function(func);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::{lower_program, LowerOptions};
    use crate::parser::parse;
    use flashram_ir::CmpOp;

    fn lower(src: &str) -> IrModule {
        lower_program(&parse(src).unwrap(), &LowerOptions::default(), false).unwrap()
    }

    #[test]
    fn constant_folding_reduces_arithmetic() {
        let mut m = lower("int f() { int a = 2 + 3; int b = a * 4; return b; }");
        let f = &mut m.functions[0];
        constant_fold(f);
        copy_propagate(f);
        dead_code_elim(f);
        // The returned value must be the constant 20.
        let ret_const = f
            .blocks
            .iter()
            .any(|b| matches!(b.term, IrTerm::Ret(Some(Value::Const(20)))));
        assert!(ret_const, "{f}");
    }

    #[test]
    fn constant_branches_become_jumps() {
        let mut m = lower("int f() { if (1 < 2) return 5; return 6; }");
        let f = &mut m.functions[0];
        constant_fold(f);
        let has_branch = f
            .blocks
            .iter()
            .any(|b| matches!(b.term, IrTerm::Branch { .. }));
        assert!(!has_branch, "{f}");
    }

    #[test]
    fn dce_removes_unused_computation_but_keeps_side_effects() {
        let mut m = lower(
            "int g(int x) { return x; }
             int f(int a) { int unused = a * 17; g(a); return a; }",
        );
        let f = &mut m.functions[1];
        let before = f.inst_count();
        dead_code_elim(f);
        let after = f.inst_count();
        assert!(after < before, "dead multiply should go away");
        let still_calls = f
            .blocks
            .iter()
            .flat_map(|b| b.insts.iter())
            .any(|i| matches!(i, IrInst::Call { .. }));
        assert!(still_calls, "calls must not be removed");
    }

    #[test]
    fn simplify_cfg_shrinks_diamond_of_constant_branch() {
        let mut m = lower("int f() { int x; if (3 > 2) { x = 1; } else { x = 2; } return x; }");
        let f = &mut m.functions[0];
        let before = f.blocks.len();
        optimize_function(f);
        assert!(f.blocks.len() < before, "{f}");
        // Semantics: returns 1.
        let ret_one = f
            .blocks
            .iter()
            .any(|b| matches!(b.term, IrTerm::Ret(Some(Value::Const(1)))));
        assert!(ret_one, "{f}");
    }

    #[test]
    fn unreachable_blocks_are_removed() {
        let mut m = lower("int f(int a) { return a; a = a + 1; return a; }");
        let f = &mut m.functions[0];
        simplify_cfg(f);
        assert_eq!(f.blocks.len(), 1, "{f}");
    }

    #[test]
    fn copy_propagation_rewrites_uses() {
        let mut m = lower("int f(int a) { int b = a; int c = b + b; return c; }");
        let f = &mut m.functions[0];
        copy_propagate(f);
        dead_code_elim(f);
        // After propagation the add should use the parameter directly.
        let uses_param = f.blocks.iter().flat_map(|b| b.insts.iter()).any(|i| {
            matches!(
                i,
                IrInst::Bin {
                    lhs: Value::Reg(VReg(0)),
                    rhs: Value::Reg(VReg(0)),
                    ..
                }
            )
        });
        assert!(uses_param, "{f}");
    }

    #[test]
    fn inlining_replaces_small_calls() {
        let mut m = lower(
            "int sq(int x) { return x * x; }
             int f(int a) { return sq(a) + sq(a + 1); }",
        );
        assert!(inline_small_functions(&mut m, 8));
        let f = m.function("f").unwrap();
        let call_count = f
            .blocks
            .iter()
            .flat_map(|b| b.insts.iter())
            .filter(|i| matches!(i, IrInst::Call { .. }))
            .count();
        assert_eq!(call_count, 0, "{f}");
    }

    #[test]
    fn recursive_and_large_functions_are_not_inlined() {
        let mut m = lower(
            "int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); }
             int f(int a) { return fact(a); }",
        );
        inline_small_functions(&mut m, 100);
        let f = m.function("f").unwrap();
        let still_calls = f
            .blocks
            .iter()
            .flat_map(|b| b.insts.iter())
            .any(|i| matches!(i, IrInst::Call { .. }));
        assert!(still_calls);
    }

    #[test]
    fn optimization_preserves_loop_structure() {
        let mut m = lower(
            "int sum(int n) { int s = 0; for (int i = 0; i < n; i++) { s += i; } return s; }",
        );
        let f = &mut m.functions[0];
        optimize_function(f);
        assert!(f.cfg().loop_info().loop_count() >= 1, "{f}");
        // The loop comparison must survive.
        let has_branch = f
            .blocks
            .iter()
            .any(|b| matches!(b.term, IrTerm::Branch { op: CmpOp::Slt, .. }));
        assert!(has_branch, "{f}");
    }
}
