//! Compilation errors.

use std::fmt;

/// An error produced while lexing, parsing, type-checking or lowering a
/// mini-C translation unit, or while linking modules into a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// Human-readable description.
    pub message: String,
    /// 1-based source line the error was detected on (0 when the error is
    /// not tied to a specific line, e.g. link errors).
    pub line: u32,
}

impl CompileError {
    /// Create an error attached to a source line.
    pub fn new(message: impl Into<String>, line: u32) -> CompileError {
        CompileError {
            message: message.into(),
            line,
        }
    }

    /// Create an error that is not attached to a source line.
    pub fn global(message: impl Into<String>) -> CompileError {
        CompileError {
            message: message.into(),
            line: 0,
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.message)
        } else {
            write!(f, "{}", self.message)
        }
    }
}

impl std::error::Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_line_when_present() {
        assert_eq!(
            CompileError::new("bad token", 7).to_string(),
            "line 7: bad token"
        );
        assert_eq!(
            CompileError::global("undefined function f").to_string(),
            "undefined function f"
        );
    }
}
