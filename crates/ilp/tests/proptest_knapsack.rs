//! Additional solver properties on randomly generated knapsack-style
//! problems, complementing `proptest_solvers.rs`: behaviour under objective
//! scaling, degenerate capacities, and cardinality side constraints (the
//! same structural family as the placement model's RAM budget plus
//! time-bound pair).

use flashram_ilp::{BranchBound, Cmp, ExhaustiveSolver, LinearExpr, Problem, Sense};
use proptest::prelude::*;

/// A maximization knapsack with an optional cardinality constraint.
fn knapsack(
    values: &[u32],
    weights: &[u32],
    capacity_fraction: f64,
    max_items: Option<usize>,
) -> Problem {
    let mut p = Problem::new(Sense::Maximize);
    let vars: Vec<_> = (0..values.len())
        .map(|i| p.add_binary(format!("x{i}")))
        .collect();
    let mut objective = LinearExpr::new();
    let mut weight_expr = LinearExpr::new();
    let mut count_expr = LinearExpr::new();
    for (i, &v) in vars.iter().enumerate() {
        objective.add_term(v, values[i] as f64);
        weight_expr.add_term(v, weights[i] as f64);
        count_expr.add_term(v, 1.0);
    }
    let total_weight: u32 = weights.iter().sum();
    p.set_objective(objective);
    p.add_constraint(
        weight_expr,
        Cmp::Le,
        total_weight as f64 * capacity_fraction,
    );
    if let Some(k) = max_items {
        p.add_constraint(count_expr, Cmp::Le, k as f64);
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Adding a cardinality side constraint (like the placement model's
    /// second, time-bound constraint) never confuses branch-and-bound: it
    /// still matches exhaustive enumeration and respects the constraint.
    #[test]
    fn cardinality_constrained_knapsacks_are_solved_optimally(
        values in proptest::collection::vec(1u32..50, 1..10),
        weights_seed in proptest::collection::vec(1u32..20, 10),
        capacity_fraction in 0.2f64..0.9,
        limit_items in 1usize..6,
    ) {
        let weights = &weights_seed[..values.len()];
        let problem = knapsack(&values, weights, capacity_fraction, Some(limit_items));
        let exact = ExhaustiveSolver::new().solve(&problem).expect("exhaustive solves");
        let bnb = BranchBound::new().solve(&problem).expect("branch-and-bound solves");
        prop_assert!(
            (bnb.objective - exact.objective).abs() <= 1e-6 * exact.objective.abs().max(1.0),
            "branch-and-bound {} vs exhaustive {}",
            bnb.objective,
            exact.objective
        );
        prop_assert!(problem.is_feasible(&bnb.values, 1e-6));
        let chosen = bnb.values.iter().filter(|v| **v > 0.5).count();
        prop_assert!(chosen <= limit_items);
    }

    /// Scaling every objective coefficient by a positive constant scales the
    /// optimum and cannot change which assignments are optimal.
    #[test]
    fn objective_scaling_scales_the_optimum(
        values in proptest::collection::vec(1u32..40, 1..8),
        weights_seed in proptest::collection::vec(1u32..15, 8),
        scale in 2u32..6,
    ) {
        let weights = &weights_seed[..values.len()];
        let base = knapsack(&values, weights, 0.5, None);
        let scaled_values: Vec<u32> = values.iter().map(|v| v * scale).collect();
        let scaled = knapsack(&scaled_values, weights, 0.5, None);
        let a = BranchBound::new().solve(&base).expect("solves");
        let b = BranchBound::new().solve(&scaled).expect("solves");
        prop_assert!(
            (b.objective - a.objective * scale as f64).abs() <= 1e-6 * b.objective.abs().max(1.0)
        );
    }

    /// A zero-capacity knapsack selects nothing and scores zero.
    #[test]
    fn zero_capacity_selects_nothing(
        values in proptest::collection::vec(1u32..40, 1..8),
        weights_seed in proptest::collection::vec(1u32..15, 8),
    ) {
        let weights = &weights_seed[..values.len()];
        let problem = knapsack(&values, weights, 0.0, None);
        let sol = BranchBound::new().solve(&problem).expect("solves");
        prop_assert!(sol.objective.abs() < 1e-9);
        prop_assert!(sol.values.iter().all(|v| *v < 0.5));
    }

    /// Monotonicity in the capacity: a larger knapsack is never worse.
    #[test]
    fn larger_capacity_never_hurts(
        values in proptest::collection::vec(1u32..40, 1..9),
        weights_seed in proptest::collection::vec(1u32..15, 9),
        fractions in (0.1f64..0.5, 0.5f64..1.0),
    ) {
        let weights = &weights_seed[..values.len()];
        let tight = knapsack(&values, weights, fractions.0, None);
        let loose = knapsack(&values, weights, fractions.1, None);
        let a = BranchBound::new().solve(&tight).expect("solves");
        let b = BranchBound::new().solve(&loose).expect("solves");
        prop_assert!(b.objective >= a.objective - 1e-6);
    }
}
