//! Property-based tests for the search-quality machinery: best-bound and
//! depth-first node selection must return identical objectives on random
//! placement-shaped instances, and the cover-cut/presolve-augmented solver
//! must never cut off the true integer optimum.

use flashram_ilp::{
    BranchBound, Cmp, ExhaustiveSolver, LinearExpr, NodeSelection, Problem, Sense, SolveError, Var,
};
use proptest::prelude::*;

/// Build a placement-shaped instance: maximize value subject to one or two
/// binary knapsack rows (the RAM and time budget rows of the placement ILP).
fn build_problem(
    values: &[u16],
    weights: &[u16],
    weights2: &[u16],
    cap_frac: f64,
    use_second: bool,
) -> Problem {
    let n = values.len();
    let mut p = Problem::new(Sense::Maximize);
    let xs: Vec<Var> = (0..n).map(|i| p.add_binary(format!("x{i}"))).collect();
    let total: f64 = weights.iter().map(|w| *w as f64).sum();
    p.add_constraint(
        LinearExpr::from_terms(xs.iter().copied().zip(weights.iter().map(|w| *w as f64))),
        Cmp::Le,
        total * cap_frac,
    );
    if use_second {
        let total2: f64 = weights2.iter().map(|w| *w as f64).sum();
        p.add_constraint(
            LinearExpr::from_terms(xs.iter().copied().zip(weights2.iter().map(|w| *w as f64))),
            Cmp::Le,
            total2 * (1.0 - cap_frac * 0.5),
        );
    }
    p.set_objective(LinearExpr::from_terms(
        xs.iter().copied().zip(values.iter().map(|v| *v as f64)),
    ));
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn best_bound_and_depth_first_return_identical_objectives(
        values in prop::collection::vec(1u16..100, 1..10),
        weights in prop::collection::vec(1u16..50, 1..10),
        weights2 in prop::collection::vec(1u16..50, 1..10),
        cap_frac in 0.1f64..0.9,
        use_second in any::<bool>(),
    ) {
        let n = values.len().min(weights.len()).min(weights2.len());
        let p = build_problem(&values[..n], &weights[..n], &weights2[..n], cap_frac, use_second);
        let best = BranchBound::new().solve(&p);
        let dfs = BranchBound {
            node_selection: NodeSelection::DepthFirst,
            ..BranchBound::default()
        }.solve(&p);
        match (best, dfs) {
            (Ok(a), Ok(b)) => {
                prop_assert!(p.is_feasible(&a.values, 1e-6), "best-bound returned infeasible point");
                prop_assert!(p.is_feasible(&b.values, 1e-6), "depth-first returned infeasible point");
                prop_assert!((a.objective - b.objective).abs() < 1e-5,
                    "objectives differ: best-bound {} vs depth-first {}", a.objective, b.objective);
            }
            (Err(SolveError::Infeasible), Err(SolveError::Infeasible)) => {}
            (a, b) => prop_assert!(false, "order disagreement: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn cuts_and_presolve_never_cut_off_the_integer_optimum(
        values in prop::collection::vec(1u16..100, 1..9),
        weights in prop::collection::vec(1u16..50, 1..9),
        weights2 in prop::collection::vec(1u16..50, 1..9),
        cap_frac in 0.1f64..0.9,
        use_second in any::<bool>(),
    ) {
        let n = values.len().min(weights.len()).min(weights2.len());
        let p = build_problem(&values[..n], &weights[..n], &weights2[..n], cap_frac, use_second);
        // Aggressive cut settings: if a cover cut or tightened row were ever
        // invalid, this is where it would exclude the true optimum.
        let cutting = BranchBound {
            cut_depth: 4,
            max_cuts: 64,
            ..BranchBound::default()
        };
        let exact = ExhaustiveSolver::new().solve(&p);
        let cut = cutting.solve(&p);
        match (exact, cut) {
            (Ok(e), Ok(c)) => {
                prop_assert!(p.is_feasible(&c.values, 1e-6), "cut-augmented solve returned infeasible point");
                prop_assert!((e.objective - c.objective).abs() < 1e-5,
                    "cuts changed the optimum: exhaustive {} vs cut-augmented {}", e.objective, c.objective);
            }
            (Err(SolveError::Infeasible), Err(SolveError::Infeasible)) => {}
            (e, c) => prop_assert!(false, "solver disagreement: {e:?} vs {c:?}"),
        }
    }
}
