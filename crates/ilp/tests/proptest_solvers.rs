//! Property-based tests: the branch-and-bound solver must agree with
//! exhaustive enumeration on random small 0-1 knapsack-style instances, and
//! every returned solution must be feasible.

use flashram_ilp::{
    BranchBound, Cmp, ExhaustiveSolver, GreedySolver, LinearExpr, Problem, Sense, SolveError, Var,
};
use proptest::prelude::*;

/// Build a random selection problem: maximize value subject to one or two
/// capacity constraints.
fn build_problem(
    values: &[u16],
    weights: &[u16],
    weights2: &[u16],
    cap_frac: f64,
    use_second: bool,
) -> Problem {
    let n = values.len();
    let mut p = Problem::new(Sense::Maximize);
    let xs: Vec<Var> = (0..n).map(|i| p.add_binary(format!("x{i}"))).collect();
    let total: f64 = weights.iter().map(|w| *w as f64).sum();
    p.add_constraint(
        LinearExpr::from_terms(xs.iter().copied().zip(weights.iter().map(|w| *w as f64))),
        Cmp::Le,
        total * cap_frac,
    );
    if use_second {
        let total2: f64 = weights2.iter().map(|w| *w as f64).sum();
        p.add_constraint(
            LinearExpr::from_terms(xs.iter().copied().zip(weights2.iter().map(|w| *w as f64))),
            Cmp::Le,
            total2 * (1.0 - cap_frac * 0.5),
        );
    }
    p.set_objective(LinearExpr::from_terms(
        xs.iter().copied().zip(values.iter().map(|v| *v as f64)),
    ));
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn branch_and_bound_matches_exhaustive(
        values in prop::collection::vec(1u16..100, 1..9),
        weights in prop::collection::vec(1u16..50, 1..9),
        weights2 in prop::collection::vec(1u16..50, 1..9),
        cap_frac in 0.1f64..0.9,
        use_second in any::<bool>(),
    ) {
        let n = values.len().min(weights.len()).min(weights2.len());
        let p = build_problem(&values[..n], &weights[..n], &weights2[..n], cap_frac, use_second);
        let exact = ExhaustiveSolver::new().solve(&p);
        let bb = BranchBound::new().solve(&p);
        match (exact, bb) {
            (Ok(e), Ok(b)) => {
                prop_assert!(p.is_feasible(&b.values, 1e-6), "branch-and-bound returned infeasible point");
                prop_assert!((e.objective - b.objective).abs() < 1e-5,
                    "objectives differ: exhaustive {} vs branch-and-bound {}", e.objective, b.objective);
            }
            (Err(SolveError::Infeasible), Err(SolveError::Infeasible)) => {}
            (e, b) => prop_assert!(false, "solver disagreement: {e:?} vs {b:?}"),
        }
    }

    #[test]
    fn greedy_never_beats_exact_and_is_feasible(
        values in prop::collection::vec(1u16..100, 1..8),
        weights in prop::collection::vec(1u16..50, 1..8),
        cap_frac in 0.1f64..0.9,
    ) {
        let n = values.len().min(weights.len());
        let p = build_problem(&values[..n], &weights[..n], &weights[..n], cap_frac, false);
        let exact = ExhaustiveSolver::new().solve(&p).unwrap();
        let greedy = GreedySolver::new().solve(&p).unwrap();
        prop_assert!(p.is_feasible(&greedy.values, 1e-6));
        prop_assert!(greedy.objective <= exact.objective + 1e-6);
    }

    #[test]
    fn lp_relaxation_bounds_the_integer_optimum(
        values in prop::collection::vec(1u16..100, 1..8),
        weights in prop::collection::vec(1u16..50, 1..8),
        cap_frac in 0.1f64..0.9,
    ) {
        let n = values.len().min(weights.len());
        let p = build_problem(&values[..n], &weights[..n], &weights[..n], cap_frac, false);
        let exact = ExhaustiveSolver::new().solve(&p).unwrap();
        let relax = flashram_ilp::SimplexSolver::new().solve_relaxation(&p, &[]).solution().unwrap();
        // For a maximization problem the relaxation is an upper bound.
        prop_assert!(relax.objective >= exact.objective - 1e-5,
            "relaxation {} below integer optimum {}", relax.objective, exact.objective);
    }
}
