//! Differential testing of the three solving strategies on randomly
//! generated small knapsack instances: exhaustive enumeration is the ground
//! truth, branch-and-bound must match it exactly, and the simplex LP
//! relaxation must bound it from above — with the rounded relaxation, when
//! it happens to be integral, matching it exactly too.
//!
//! The proptest stand-in used by this workspace derives each test's RNG seed
//! from the test's fully qualified name, so these instances are fixed across
//! runs and machines.

use flashram_ilp::{
    BranchBound, Cmp, ExhaustiveSolver, LinearExpr, Problem, Sense, SimplexSolver, Var,
};
use proptest::prelude::*;

/// A 0-1 knapsack: maximize value subject to a single capacity constraint.
fn knapsack(values: &[u32], weights: &[u32], cap_frac: f64) -> Problem {
    let mut p = Problem::new(Sense::Maximize);
    let xs: Vec<Var> = (0..values.len())
        .map(|i| p.add_binary(format!("x{i}")))
        .collect();
    let total: f64 = weights.iter().map(|w| f64::from(*w)).sum();
    p.add_constraint(
        LinearExpr::from_terms(
            xs.iter()
                .copied()
                .zip(weights.iter().map(|w| f64::from(*w))),
        ),
        Cmp::Le,
        total * cap_frac,
    );
    p.set_objective(LinearExpr::from_terms(
        xs.iter().copied().zip(values.iter().map(|v| f64::from(*v))),
    ));
    p
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// All three strategies line up against exhaustive enumeration:
    /// branch-and-bound agrees exactly, the LP relaxation is an upper bound,
    /// and an integral relaxation rounds to exactly the optimum.
    #[test]
    fn solvers_agree_on_small_knapsacks(
        values in proptest::collection::vec(1u32..60, 1..9),
        weights_seed in proptest::collection::vec(1u32..25, 9),
        cap_frac in 0.1f64..0.95,
    ) {
        let weights = &weights_seed[..values.len()];
        let p = knapsack(&values, weights, cap_frac);

        let exact = ExhaustiveSolver::new().solve(&p).expect("exhaustive solves");
        let bnb = BranchBound::new().solve(&p).expect("branch-and-bound solves");
        prop_assert!(
            (bnb.objective - exact.objective).abs() <= 1e-6 * exact.objective.abs().max(1.0),
            "branch-and-bound {} vs exhaustive {}",
            bnb.objective,
            exact.objective
        );
        prop_assert!(p.is_feasible(&bnb.values, 1e-6));

        let relaxed = SimplexSolver::new()
            .solve_relaxation(&p, &[])
            .solution()
            .expect("relaxation solves");
        prop_assert!(
            relaxed.objective >= exact.objective - 1e-6,
            "LP relaxation {} below the integer optimum {}",
            relaxed.objective,
            exact.objective
        );

        // A single-constraint knapsack relaxation has at most one fractional
        // variable; when there is none, rounding is the integer optimum.
        let integral = relaxed.values.iter().all(|v| (v - v.round()).abs() <= 1e-6);
        if integral {
            let rounded: Vec<f64> = relaxed.values.iter().map(|v| v.round()).collect();
            prop_assert!(p.is_feasible(&rounded, 1e-6));
            let objective = p.objective_value(&rounded);
            prop_assert!(
                (objective - exact.objective).abs() <= 1e-6 * exact.objective.abs().max(1.0),
                "integral relaxation rounds to {} but exhaustive finds {}",
                objective,
                exact.objective
            );
        }
    }

    /// Rounding the relaxation *down* (dropping the fractional pick) always
    /// yields a feasible solution that cannot beat the true optimum.
    #[test]
    fn rounded_down_relaxation_is_a_feasible_lower_bound(
        values in proptest::collection::vec(1u32..60, 1..9),
        weights_seed in proptest::collection::vec(1u32..25, 9),
        cap_frac in 0.1f64..0.95,
    ) {
        let weights = &weights_seed[..values.len()];
        let p = knapsack(&values, weights, cap_frac);
        let exact = ExhaustiveSolver::new().solve(&p).expect("exhaustive solves");
        let relaxed = SimplexSolver::new()
            .solve_relaxation(&p, &[])
            .solution()
            .expect("relaxation solves");
        let floored: Vec<f64> = relaxed.values.iter().map(|v| v.floor().max(0.0)).collect();
        prop_assert!(p.is_feasible(&floored, 1e-6), "floored relaxation must stay feasible");
        prop_assert!(p.objective_value(&floored) <= exact.objective + 1e-6);
    }
}
