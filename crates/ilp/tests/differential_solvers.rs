//! Differential testing of the three solving strategies on randomly
//! generated small knapsack instances: exhaustive enumeration is the ground
//! truth, branch-and-bound must match it exactly, and the simplex LP
//! relaxation must bound it from above — with the rounded relaxation, when
//! it happens to be integral, matching it exactly too.
//!
//! The proptest stand-in used by this workspace derives each test's RNG seed
//! from the test's fully qualified name, so these instances are fixed across
//! runs and machines.

use flashram_ilp::{
    BranchBound, Cmp, ExhaustiveSolver, LinearExpr, Problem, Sense, SimplexOutcome, SimplexSolver,
    Var,
};
use proptest::prelude::*;

/// A 0-1 knapsack: maximize value subject to a single capacity constraint.
fn knapsack(values: &[u32], weights: &[u32], cap_frac: f64) -> Problem {
    let mut p = Problem::new(Sense::Maximize);
    let xs: Vec<Var> = (0..values.len())
        .map(|i| p.add_binary(format!("x{i}")))
        .collect();
    let total: f64 = weights.iter().map(|w| f64::from(*w)).sum();
    p.add_constraint(
        LinearExpr::from_terms(
            xs.iter()
                .copied()
                .zip(weights.iter().map(|w| f64::from(*w))),
        ),
        Cmp::Le,
        total * cap_frac,
    );
    p.set_objective(LinearExpr::from_terms(
        xs.iter().copied().zip(values.iter().map(|v| f64::from(*v))),
    ));
    p
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// All three strategies line up against exhaustive enumeration:
    /// branch-and-bound agrees exactly, the LP relaxation is an upper bound,
    /// and an integral relaxation rounds to exactly the optimum.
    #[test]
    fn solvers_agree_on_small_knapsacks(
        values in proptest::collection::vec(1u32..60, 1..9),
        weights_seed in proptest::collection::vec(1u32..25, 9),
        cap_frac in 0.1f64..0.95,
    ) {
        let weights = &weights_seed[..values.len()];
        let p = knapsack(&values, weights, cap_frac);

        let exact = ExhaustiveSolver::new().solve(&p).expect("exhaustive solves");
        let bnb = BranchBound::new().solve(&p).expect("branch-and-bound solves");
        prop_assert!(
            (bnb.objective - exact.objective).abs() <= 1e-6 * exact.objective.abs().max(1.0),
            "branch-and-bound {} vs exhaustive {}",
            bnb.objective,
            exact.objective
        );
        prop_assert!(p.is_feasible(&bnb.values, 1e-6));

        let relaxed = SimplexSolver::new()
            .solve_relaxation(&p, &[])
            .solution()
            .expect("relaxation solves");
        prop_assert!(
            relaxed.objective >= exact.objective - 1e-6,
            "LP relaxation {} below the integer optimum {}",
            relaxed.objective,
            exact.objective
        );

        // A single-constraint knapsack relaxation has at most one fractional
        // variable; when there is none, rounding is the integer optimum.
        let integral = relaxed.values.iter().all(|v| (v - v.round()).abs() <= 1e-6);
        if integral {
            let rounded: Vec<f64> = relaxed.values.iter().map(|v| v.round()).collect();
            prop_assert!(p.is_feasible(&rounded, 1e-6));
            let objective = p.objective_value(&rounded);
            prop_assert!(
                (objective - exact.objective).abs() <= 1e-6 * exact.objective.abs().max(1.0),
                "integral relaxation rounds to {} but exhaustive finds {}",
                objective,
                exact.objective
            );
        }
    }

    /// Rounding the relaxation *down* (dropping the fractional pick) always
    /// yields a feasible solution that cannot beat the true optimum.
    #[test]
    fn rounded_down_relaxation_is_a_feasible_lower_bound(
        values in proptest::collection::vec(1u32..60, 1..9),
        weights_seed in proptest::collection::vec(1u32..25, 9),
        cap_frac in 0.1f64..0.95,
    ) {
        let weights = &weights_seed[..values.len()];
        let p = knapsack(&values, weights, cap_frac);
        let exact = ExhaustiveSolver::new().solve(&p).expect("exhaustive solves");
        let relaxed = SimplexSolver::new()
            .solve_relaxation(&p, &[])
            .solution()
            .expect("relaxation solves");
        let floored: Vec<f64> = relaxed.values.iter().map(|v| v.floor().max(0.0)).collect();
        prop_assert!(p.is_feasible(&floored, 1e-6), "floored relaxation must stay feasible");
        prop_assert!(p.objective_value(&floored) <= exact.objective + 1e-6);
    }
}

/// A randomly generated bounded LP built twice: once with native variable
/// bounds and fixings (the bounded-variable simplex path), and once in the
/// seed encoding where every upper bound is an explicit `≤` row and every
/// fixing an explicit `=` row.  The two formulations describe the same
/// polytope, so their LP optima must agree.
struct BoundedPair {
    native: Problem,
    rows: Problem,
    fixings: Vec<(Var, f64)>,
    lower: Vec<f64>,
    upper: Vec<f64>,
}

#[allow(clippy::too_many_arguments)]
fn build_bounded_pair(
    n: usize,
    bin_mask: &[bool],
    lows: &[f64],
    ranges: &[f64],
    obj: &[f64],
    coeff_rows: &[Vec<f64>],
    ops: &[u32],
    fracs: &[f64],
    fix_mask: &[bool],
    fix_vals: &[bool],
    maximize: bool,
) -> BoundedPair {
    let sense = if maximize {
        Sense::Maximize
    } else {
        Sense::Minimize
    };
    let mut native = Problem::new(sense);
    let mut rows = Problem::new(sense);
    let mut lower = vec![0.0f64; n];
    let mut upper = vec![0.0f64; n];
    let mut point = vec![0.0f64; n]; // a point inside every bound
    for i in 0..n {
        let binary = bin_mask[i % bin_mask.len()];
        let (lo, up) = if binary {
            (0.0, 1.0)
        } else {
            let lo = lows[i % lows.len()];
            (lo, lo + ranges[i % ranges.len()])
        };
        lower[i] = lo;
        upper[i] = up;
        point[i] = lo + fracs[i % fracs.len()] * (up - lo);
        if binary {
            native.add_binary(format!("x{i}"));
        } else {
            native.add_continuous(format!("x{i}"), lo, Some(up));
        }
        // Seed encoding: nonzero lower bound stays native (the seed shifted
        // those), the upper bound becomes an explicit row.
        let v = rows.add_continuous(format!("x{i}"), lo, None);
        rows.add_constraint(LinearExpr::var(v), Cmp::Le, up);
    }

    // Constraints are anchored on `point` so the unfixed LP is feasible by
    // construction; `≤`/`≥` rows get slack away from the anchor.
    for (r, coeffs) in coeff_rows.iter().enumerate() {
        let op = match ops[r % ops.len()] % 3 {
            0 => Cmp::Le,
            1 => Cmp::Ge,
            _ => Cmp::Eq,
        };
        let terms: Vec<(Var, f64)> = (0..n).map(|i| (Var(i), coeffs[i % coeffs.len()])).collect();
        let dot: f64 = terms.iter().map(|(v, k)| k * point[v.index()]).sum();
        let margin = 0.5 + ranges[r % ranges.len()];
        let rhs = match op {
            Cmp::Le => dot + margin,
            Cmp::Ge => dot - margin,
            Cmp::Eq => dot,
        };
        native.add_constraint(LinearExpr::from_terms(terms.iter().copied()), op, rhs);
        rows.add_constraint(LinearExpr::from_terms(terms.iter().copied()), op, rhs);
    }

    let mut fixings = Vec::new();
    for i in 0..n {
        if bin_mask[i % bin_mask.len()] && fix_mask[i % fix_mask.len()] {
            let val = if fix_vals[i % fix_vals.len()] {
                1.0
            } else {
                0.0
            };
            fixings.push((Var(i), val));
            rows.add_constraint(LinearExpr::var(Var(i)), Cmp::Eq, val);
        }
    }

    let objective = LinearExpr::from_terms((0..n).map(|i| (Var(i), obj[i])));
    native.set_objective(objective.clone());
    rows.set_objective(objective);
    BoundedPair {
        native,
        rows,
        fixings,
        lower,
        upper,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// Random bounded LPs with mixed `≤`/`≥`/`=` rows, nonzero lower
    /// bounds and binary fixings: the bounded-variable simplex must agree
    /// with the same polytope encoded the old way (upper bounds and
    /// fixings as explicit rows), and its solution must respect every
    /// bound, fixing and constraint.
    #[test]
    fn bounded_simplex_matches_the_row_encoded_formulation(
        obj in proptest::collection::vec(-9.0f64..9.0, 2..8),
        bin_mask in proptest::collection::vec(any::<bool>(), 8),
        lows in proptest::collection::vec(-2.0f64..2.0, 4),
        ranges in proptest::collection::vec(0.5f64..3.0, 4),
        coeff_rows in proptest::collection::vec(proptest::collection::vec(-4.0f64..4.0, 8), 1..5),
        ops in proptest::collection::vec(0u32..3, 5),
        fracs in proptest::collection::vec(0.0f64..1.0, 5),
        fix_mask in proptest::collection::vec(any::<bool>(), 8),
        fix_vals in proptest::collection::vec(any::<bool>(), 8),
        maximize in any::<bool>(),
    ) {
        let n = obj.len();
        let pair = build_bounded_pair(
            n, &bin_mask, &lows, &ranges, &obj, &coeff_rows, &ops, &fracs,
            &fix_mask, &fix_vals, maximize,
        );
        let solver = SimplexSolver::new();
        let native = solver.solve_relaxation(&pair.native, &pair.fixings);
        let encoded = solver.solve_relaxation(&pair.rows, &[]);
        match (native, encoded) {
            (SimplexOutcome::Optimal(a), SimplexOutcome::Optimal(b)) => {
                prop_assert!(
                    (a.objective - b.objective).abs() <= 1e-5 * b.objective.abs().max(1.0),
                    "native bounds give {} but the row encoding gives {}",
                    a.objective,
                    b.objective
                );
                // The native solution must sit inside the bounds, honor the
                // fixings and satisfy every constraint.
                for i in 0..n {
                    prop_assert!(a.values[i] >= pair.lower[i] - 1e-6);
                    prop_assert!(a.values[i] <= pair.upper[i] + 1e-6);
                }
                for (v, val) in &pair.fixings {
                    prop_assert!((a.value(*v) - val).abs() <= 1e-6);
                }
                for c in pair.native.constraints() {
                    prop_assert!(c.satisfied(&a.values, 1e-5));
                }
            }
            (SimplexOutcome::Infeasible, SimplexOutcome::Infeasible) => {}
            (a, b) => prop_assert!(false, "outcome disagreement: native {a:?} vs rows {b:?}"),
        }
    }

    /// A chain of warm-started dual-simplex re-solves (one fixing at a
    /// time, as branch-and-bound applies them) must reach the same optimum
    /// as a cold two-phase solve with the full fixing set.
    #[test]
    fn warm_started_resolves_match_cold_solves(
        obj in proptest::collection::vec(-9.0f64..9.0, 2..8),
        bin_mask in proptest::collection::vec(any::<bool>(), 8),
        lows in proptest::collection::vec(-2.0f64..2.0, 4),
        ranges in proptest::collection::vec(0.5f64..3.0, 4),
        coeff_rows in proptest::collection::vec(proptest::collection::vec(-4.0f64..4.0, 8), 1..5),
        ops in proptest::collection::vec(0u32..3, 5),
        fracs in proptest::collection::vec(0.0f64..1.0, 5),
        fix_mask in proptest::collection::vec(any::<bool>(), 8),
        fix_vals in proptest::collection::vec(any::<bool>(), 8),
        maximize in any::<bool>(),
    ) {
        let n = obj.len();
        let pair = build_bounded_pair(
            n, &bin_mask, &lows, &ranges, &obj, &coeff_rows, &ops, &fracs,
            &fix_mask, &fix_vals, maximize,
        );
        let solver = SimplexSolver::new();
        let root = solver.solve_tracked(&pair.native, &[]);
        // The unfixed LP is feasible and bounded by construction.
        let mut state = match root.state {
            Some(s) => s,
            None => return Err(proptest::test_runner::TestCaseError::fail(
                format!("root must solve, got {:?}", root.outcome),
            )),
        };
        let mut applied: Vec<(Var, f64)> = Vec::new();
        for fixing in &pair.fixings {
            applied.push(*fixing);
            let warm = solver.resolve_with_fixings(&pair.native, &state, &[*fixing]);
            let cold = solver.solve_tracked(&pair.native, &applied);
            match (warm.outcome, cold.outcome) {
                (SimplexOutcome::Optimal(w), SimplexOutcome::Optimal(c)) => {
                    prop_assert!(
                        (w.objective - c.objective).abs() <= 1e-5 * c.objective.abs().max(1.0),
                        "warm restart gives {} but a cold solve gives {}",
                        w.objective,
                        c.objective
                    );
                    state = warm.state.expect("optimal warm solve carries state");
                }
                (SimplexOutcome::Infeasible, SimplexOutcome::Infeasible) => break,
                (w, c) => prop_assert!(false, "warm {w:?} disagrees with cold {c:?}"),
            }
        }
    }

    /// Pinning binaries with equality rows: warm-started branch-and-bound
    /// must still match exhaustive enumeration exactly.
    #[test]
    fn branch_and_bound_with_pinned_binaries_matches_exhaustive(
        values in proptest::collection::vec(1u32..60, 3..9),
        weights_seed in proptest::collection::vec(1u32..25, 9),
        cap_frac in 0.3f64..0.95,
        pin_mask in proptest::collection::vec(any::<bool>(), 3),
        pin_vals in proptest::collection::vec(any::<bool>(), 3),
    ) {
        let weights = &weights_seed[..values.len()];
        let mut p = knapsack(&values, weights, cap_frac);
        for (i, pin) in pin_mask.iter().enumerate() {
            if *pin && i < values.len() {
                let val = if pin_vals[i % pin_vals.len()] { 1.0 } else { 0.0 };
                p.add_constraint(LinearExpr::var(Var(i)), Cmp::Eq, val);
            }
        }
        let exact = ExhaustiveSolver::new().solve(&p);
        let bnb = BranchBound::new().solve(&p);
        match (exact, bnb) {
            (Ok(e), Ok(b)) => {
                prop_assert!(
                    (e.objective - b.objective).abs() <= 1e-6 * e.objective.abs().max(1.0),
                    "exhaustive {} vs branch-and-bound {}",
                    e.objective,
                    b.objective
                );
                prop_assert!(p.is_feasible(&b.values, 1e-6));
            }
            (Err(flashram_ilp::SolveError::Infeasible), Err(flashram_ilp::SolveError::Infeasible)) => {}
            (e, b) => prop_assert!(false, "solver disagreement: {e:?} vs {b:?}"),
        }
    }
}
