//! Exhaustive enumeration of 0-1 assignments.
//!
//! Two uses: validating the branch-and-bound solver on small instances, and
//! generating the complete placement trade-off space of Figure 6 (the paper
//! enumerates all `2^k` combinations of basic blocks in RAM to show where the
//! ILP solutions fall).

use crate::problem::{Problem, Solution, SolveError, VarKind};

/// An exhaustive 0-1 solver / enumerator.
///
/// Only problems whose variables are all binary are supported; continuous
/// variables would require an LP solve per assignment, which the caller can
/// do directly with [`SimplexSolver`](crate::SimplexSolver) if needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExhaustiveSolver {
    /// Maximum number of binary variables accepted (the enumeration is
    /// `2^n`; the default of 24 keeps it under seventeen million points).
    pub max_vars: usize,
}

impl Default for ExhaustiveSolver {
    fn default() -> Self {
        ExhaustiveSolver { max_vars: 24 }
    }
}

impl ExhaustiveSolver {
    /// A solver with the default size limit.
    pub fn new() -> ExhaustiveSolver {
        ExhaustiveSolver::default()
    }

    /// Solve by enumerating every assignment.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::InvalidModel`] if the problem has continuous
    /// variables or more binaries than `max_vars`, and
    /// [`SolveError::Infeasible`] if no assignment satisfies the constraints.
    pub fn solve(&self, problem: &Problem) -> Result<Solution, SolveError> {
        let mut best: Option<Solution> = None;
        self.for_each_feasible(problem, |sol| {
            let better = best
                .as_ref()
                .is_none_or(|b| problem.is_better(sol.objective, b.objective));
            if better {
                best = Some(sol.clone());
            }
        })?;
        best.ok_or(SolveError::Infeasible)
    }

    /// Enumerate every *feasible* assignment, calling `visit` for each.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::InvalidModel`] under the same conditions as
    /// [`ExhaustiveSolver::solve`].
    pub fn for_each_feasible<F: FnMut(&Solution)>(
        &self,
        problem: &Problem,
        mut visit: F,
    ) -> Result<(), SolveError> {
        problem.check()?;
        let n = problem.num_vars();
        if problem
            .vars()
            .iter()
            .any(|d| !matches!(d.kind, VarKind::Binary))
        {
            return Err(SolveError::InvalidModel(
                "exhaustive enumeration requires all variables to be binary".into(),
            ));
        }
        if n > self.max_vars {
            return Err(SolveError::InvalidModel(format!(
                "{n} binary variables exceed the exhaustive limit of {}",
                self.max_vars
            )));
        }
        let mut values = vec![0.0; n];
        for mask in 0u64..(1u64 << n) {
            for (i, v) in values.iter_mut().enumerate() {
                *v = ((mask >> i) & 1) as f64;
            }
            if problem.is_feasible(&values, 1e-9) {
                let objective = problem.objective_value(&values);
                visit(&Solution {
                    values: values.clone(),
                    objective,
                });
            }
        }
        Ok(())
    }

    /// Enumerate **all** assignments (feasible or not), calling `visit` with
    /// the assignment and its feasibility.  Used to plot full trade-off
    /// spaces where infeasible points are still interesting.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::InvalidModel`] under the same conditions as
    /// [`ExhaustiveSolver::solve`].
    pub fn for_each_assignment<F: FnMut(&Solution, bool)>(
        &self,
        problem: &Problem,
        mut visit: F,
    ) -> Result<(), SolveError> {
        problem.check()?;
        let n = problem.num_vars();
        if n > self.max_vars {
            return Err(SolveError::InvalidModel(format!(
                "{n} binary variables exceed the exhaustive limit of {}",
                self.max_vars
            )));
        }
        let mut values = vec![0.0; n];
        for mask in 0u64..(1u64 << n) {
            for (i, v) in values.iter_mut().enumerate() {
                *v = ((mask >> i) & 1) as f64;
            }
            let feasible = problem.is_feasible(&values, 1e-9);
            let objective = problem.objective_value(&values);
            visit(
                &Solution {
                    values: values.clone(),
                    objective,
                },
                feasible,
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{LinearExpr, Var};
    use crate::problem::{Cmp, Sense};
    use crate::BranchBound;

    fn knapsack(values: &[f64], weights: &[f64], cap: f64) -> (Problem, Vec<Var>) {
        let mut p = Problem::new(Sense::Maximize);
        let xs: Vec<Var> = (0..values.len())
            .map(|i| p.add_binary(format!("x{i}")))
            .collect();
        p.add_constraint(
            LinearExpr::from_terms(xs.iter().copied().zip(weights.iter().copied())),
            Cmp::Le,
            cap,
        );
        p.set_objective(LinearExpr::from_terms(
            xs.iter().copied().zip(values.iter().copied()),
        ));
        (p, xs)
    }

    #[test]
    fn matches_branch_and_bound_on_knapsacks() {
        let cases: [(&[f64], &[f64], f64); 3] = [
            (&[10.0, 7.0, 4.0], &[5.0, 4.0, 3.0], 9.0),
            (&[6.0, 5.0, 4.0, 3.0, 2.0], &[4.0, 3.0, 2.0, 2.0, 1.0], 6.0),
            (&[1.0, 1.0, 1.0, 1.0], &[1.0, 1.0, 1.0, 1.0], 2.0),
        ];
        for (values, weights, cap) in cases {
            let (p, _) = knapsack(values, weights, cap);
            let exact = ExhaustiveSolver::new().solve(&p).unwrap();
            let bb = BranchBound::new().solve(&p).unwrap();
            assert!(
                (exact.objective - bb.objective).abs() < 1e-6,
                "exhaustive {} vs branch-and-bound {}",
                exact.objective,
                bb.objective
            );
        }
    }

    #[test]
    fn counts_all_assignments() {
        let (p, _) = knapsack(&[1.0, 2.0, 3.0], &[1.0, 1.0, 1.0], 10.0);
        let mut total = 0;
        let mut feasible = 0;
        ExhaustiveSolver::new()
            .for_each_assignment(&p, |_, ok| {
                total += 1;
                if ok {
                    feasible += 1;
                }
            })
            .unwrap();
        assert_eq!(total, 8);
        assert_eq!(feasible, 8, "capacity 10 admits every subset");
    }

    #[test]
    fn infeasible_when_no_assignment_fits() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_binary("x");
        p.add_constraint(LinearExpr::var(x), Cmp::Ge, 2.0);
        p.set_objective(LinearExpr::var(x));
        assert_eq!(
            ExhaustiveSolver::new().solve(&p),
            Err(SolveError::Infeasible)
        );
    }

    #[test]
    fn rejects_continuous_variables_and_oversized_problems() {
        let mut p = Problem::new(Sense::Minimize);
        p.add_continuous("x", 0.0, None);
        assert!(matches!(
            ExhaustiveSolver::new().solve(&p),
            Err(SolveError::InvalidModel(_))
        ));

        let mut big = Problem::new(Sense::Minimize);
        for i in 0..30 {
            big.add_binary(format!("x{i}"));
        }
        let solver = ExhaustiveSolver { max_vars: 10 };
        assert!(matches!(
            solver.solve(&big),
            Err(SolveError::InvalidModel(_))
        ));
    }
}
