//! A greedy improvement heuristic for 0-1 problems.
//!
//! Used as a comparison baseline for the ILP formulation (the paper's model
//! is contrasted with simpler selection policies in the evaluation) and as a
//! fallback when the branch-and-bound node budget is exhausted.

use crate::expr::Var;
use crate::problem::{Problem, Solution, SolveError, VarKind};

/// A greedy 0-1 solver: starting from the all-zeros assignment, repeatedly
/// set the single variable that most improves the objective while keeping
/// the assignment feasible, until no improving flip exists.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GreedySolver {
    /// If true, also consider clearing already-set variables (a 1-exchange
    /// local search rather than pure accretion).
    pub allow_unset: bool,
}

impl GreedySolver {
    /// A pure accretive greedy solver.
    pub fn new() -> GreedySolver {
        GreedySolver::default()
    }

    /// Run the heuristic.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::InvalidModel`] if the problem has continuous
    /// variables, and [`SolveError::Infeasible`] if even the all-zeros
    /// assignment violates the constraints.
    pub fn solve(&self, problem: &Problem) -> Result<Solution, SolveError> {
        problem.check()?;
        if problem
            .vars()
            .iter()
            .any(|d| !matches!(d.kind, VarKind::Binary))
        {
            return Err(SolveError::InvalidModel(
                "greedy heuristic requires all variables to be binary".into(),
            ));
        }
        let n = problem.num_vars();
        let mut values = vec![0.0; n];
        if !problem.is_feasible(&values, 1e-9) {
            return Err(SolveError::Infeasible);
        }
        let mut objective = problem.objective_value(&values);

        loop {
            let mut best_flip: Option<(Var, f64)> = None;
            for i in 0..n {
                let var = Var(i);
                let current = values[i];
                let flipped = 1.0 - current;
                if current > 0.5 && !self.allow_unset {
                    continue;
                }
                values[i] = flipped;
                if problem.is_feasible(&values, 1e-9) {
                    let obj = problem.objective_value(&values);
                    if problem.is_better(obj, objective) {
                        let improvement = (obj - objective).abs();
                        let better_than_best =
                            best_flip.is_none_or(|(_, best_impr)| improvement > best_impr);
                        if better_than_best {
                            best_flip = Some((var, improvement));
                        }
                    }
                }
                values[i] = current;
            }
            match best_flip {
                Some((var, _)) => {
                    values[var.index()] = 1.0 - values[var.index()];
                    objective = problem.objective_value(&values);
                }
                None => break,
            }
        }
        Ok(Solution { values, objective })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinearExpr;
    use crate::problem::{Cmp, Sense};
    use crate::{BranchBound, ExhaustiveSolver};

    #[test]
    fn greedy_solves_easy_knapsack_optimally() {
        // One dominant item: greedy and exact agree.
        let mut p = Problem::new(Sense::Maximize);
        let a = p.add_binary("a");
        let b = p.add_binary("b");
        let c = p.add_binary("c");
        p.add_constraint(
            LinearExpr::from_terms([(a, 2.0), (b, 2.0), (c, 2.0)]),
            Cmp::Le,
            4.0,
        );
        p.set_objective(LinearExpr::from_terms([(a, 10.0), (b, 3.0), (c, 1.0)]));
        let g = GreedySolver::new().solve(&p).unwrap();
        let e = ExhaustiveSolver::new().solve(&p).unwrap();
        assert!((g.objective - e.objective).abs() < 1e-9);
        assert!(g.is_set(a) && g.is_set(b));
    }

    #[test]
    fn greedy_is_feasible_but_may_be_suboptimal() {
        // Classic greedy trap: one big item vs two medium items.
        let mut p = Problem::new(Sense::Maximize);
        let big = p.add_binary("big");
        let m1 = p.add_binary("m1");
        let m2 = p.add_binary("m2");
        p.add_constraint(
            LinearExpr::from_terms([(big, 10.0), (m1, 6.0), (m2, 6.0)]),
            Cmp::Le,
            12.0,
        );
        p.set_objective(LinearExpr::from_terms([(big, 10.0), (m1, 7.0), (m2, 7.0)]));
        let g = GreedySolver::new().solve(&p).unwrap();
        let exact = BranchBound::new().solve(&p).unwrap();
        assert!(p.is_feasible(&g.values, 1e-9));
        assert!((exact.objective - 14.0).abs() < 1e-6);
        assert!(g.objective <= exact.objective + 1e-9);
    }

    #[test]
    fn reports_infeasible_when_zero_assignment_violates() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_binary("x");
        let y = p.add_binary("y");
        p.add_constraint(LinearExpr::from_terms([(x, 1.0), (y, 1.0)]), Cmp::Ge, 3.0);
        p.set_objective(LinearExpr::var(x));
        assert_eq!(GreedySolver::new().solve(&p), Err(SolveError::Infeasible));
    }

    #[test]
    fn rejects_continuous_variables() {
        let mut p = Problem::new(Sense::Minimize);
        p.add_continuous("x", 0.0, None);
        assert!(matches!(
            GreedySolver::new().solve(&p),
            Err(SolveError::InvalidModel(_))
        ));
    }

    #[test]
    fn minimization_starts_at_zero_and_stays_there_without_pressure() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_binary("x");
        let y = p.add_binary("y");
        p.set_objective(LinearExpr::from_terms([(x, 1.0), (y, 2.0)]));
        let g = GreedySolver::new().solve(&p).unwrap();
        assert_eq!(g.objective, 0.0);
        assert!(!g.is_set(x) && !g.is_set(y));
    }
}
