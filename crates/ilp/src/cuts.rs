//! Knapsack-row analysis for the placement models: presolve and cover cuts.
//!
//! The placement ILP's budget rows (`Σ S_b·r_b ≤ R_spare` and the time-limit
//! row) are knapsack constraints over binaries, which makes two classic MIP
//! techniques cheap and strong here:
//!
//! * **Presolve** — at the current budgets some blocks are *trivially*
//!   flash-resident (their size alone exceeds a budget row's right-hand
//!   side, so `x_j = 0` in every feasible placement) or trivially
//!   RAM-resident (every knapsack row they appear in is redundant, so only
//!   the objective decides them).  Fixing those variables before the tree
//!   starts shrinks every relaxation.  On top of the fixings, *coefficient
//!   tightening* produces an integer-equivalent but LP-tighter copy of a
//!   knapsack row: when `M − a_j < b` (with `M` the row's maximum activity),
//!   the row is slack for every 0-1 point with `x_j = 0`, so both `a_j` and
//!   `b` can be reduced by `δ_j = b − (M − a_j)` without cutting any integer
//!   point.  The per-variable deltas are invariant under sequential
//!   application (each application lowers `b` and `M` by the same `δ`), so
//!   one batch pass computes the fully tightened row.
//! * **Cover cuts** — a set `C` of items with `Σ_C a_j > b` cannot all be
//!   chosen, so `Σ_C x_j ≤ |C| − 1` is valid for the integer hull; when the
//!   LP relaxation picks fractionally more than `|C| − 1` of them the
//!   inequality cuts the fractional point off.  Separation over a knapsack
//!   row is a greedy scan, and the simple *extension* lifting
//!   `E(C) = C ∪ {j : a_j ≥ max_C a_i}` strengthens the cut for free
//!   (any `|C|`-subset of `E(C)` weighs at least `Σ_C a_j > b`).
//!
//! Everything here is **budget-relative**: fixings, tightened rows and cover
//! cuts are valid only at the right-hand sides they were derived from, so
//! the branch-and-bound applies them to a solve-local copy of the problem
//! and re-derives them at every sweep point — the caller's [`Problem`] and
//! its row indices are never disturbed, which is what keeps
//! `set_rhs`/`resolve_with_rhs` chaining working across sweep points.

use crate::expr::{LinearExpr, Var};
use crate::problem::{Cmp, Problem, Sense, VarKind};

/// A constraint row of the form `Σ a_j·x_j ≤ b` with every `x_j` binary and
/// every `a_j > 0` — the shape presolve and cover separation understand.
///
/// The right-hand side is *not* stored: it is read from the problem at use
/// time, because frontier sweeps mutate it in place between solves.
#[derive(Debug, Clone)]
pub(crate) struct KnapsackRow {
    /// Constraint index in the source problem.
    pub row: usize,
    /// `(variable, positive coefficient)` pairs, in variable order.
    pub terms: Vec<(Var, f64)>,
    /// Sum of all coefficients (the row's maximum activity).
    pub total: f64,
}

/// Find every knapsack-shaped row of the problem: `≤` rows whose terms are
/// all binary variables with strictly positive coefficients.
///
/// Rows with any negative coefficient are skipped — the placement time row
/// can have negative entries for blocks that get *faster* in RAM, and such
/// rows are not knapsacks.
pub(crate) fn knapsack_rows(problem: &Problem, tol: f64) -> Vec<KnapsackRow> {
    let vars = problem.vars();
    let mut rows = Vec::new();
    'rows: for (index, c) in problem.constraints().iter().enumerate() {
        if c.op != Cmp::Le {
            continue;
        }
        let mut terms = Vec::with_capacity(c.expr.num_terms());
        let mut total = 0.0;
        for (v, a) in c.expr.terms() {
            if a <= tol {
                continue 'rows;
            }
            match vars.get(v.index()).map(|d| d.kind) {
                Some(VarKind::Binary) => {}
                _ => continue 'rows,
            }
            terms.push((v, a));
            total += a;
        }
        if terms.len() < 2 {
            continue;
        }
        rows.push(KnapsackRow {
            row: index,
            terms,
            total,
        });
    }
    rows
}

/// Result of the presolve pass over the knapsack rows at the problem's
/// current right-hand sides.
#[derive(Debug, Clone, Default)]
pub(crate) struct PresolveResult {
    /// Variables provably at a fixed value in every optimal solution.
    pub fixings: Vec<(Var, f64)>,
    /// Integer-equivalent tightened copies of knapsack rows, to be appended
    /// as extra `≤` rows (the originals keep their indices for RHS
    /// chaining).
    pub tightened: Vec<(LinearExpr, f64)>,
    /// A knapsack row's right-hand side is below zero: no 0-1 point can
    /// satisfy it, the model is infeasible at these budgets.
    pub infeasible: bool,
}

impl PresolveResult {
    /// Number of variables fixed.
    pub fn num_fixed(&self) -> usize {
        self.fixings.len()
    }
}

/// Presolve the problem's knapsack rows at their current right-hand sides.
///
/// Three reductions, in order:
///
/// 1. `a_j > b` fixes `x_j = 0` (the item alone overflows the budget);
///    `b < 0` proves infeasibility.
/// 2. A variable whose knapsack rows are all *redundant* (maximum remaining
///    activity `≤ b`) and which appears in no other constraint is decided by
///    the objective alone: fixed to 1 when its coefficient strictly improves
///    the objective, to 0 when it strictly hurts.
/// 3. Batch coefficient tightening of each non-redundant row (see the
///    module docs); the tightened copy is returned for appending, the
///    original row is left untouched.
pub(crate) fn presolve(problem: &Problem, knap: &[KnapsackRow], tol: f64) -> PresolveResult {
    let mut out = PresolveResult::default();
    let n = problem.num_vars();

    // Pass 1: single-item overflow fixings and infeasibility.
    let mut fixed_zero = vec![false; n];
    for row in knap {
        let b = problem.rhs(row.row).unwrap_or(f64::INFINITY);
        if b < -tol {
            out.infeasible = true;
            return out;
        }
        for &(v, a) in &row.terms {
            if a > b + tol {
                fixed_zero[v.index()] = true;
            }
        }
    }

    // Residual activity per row once the fixed-to-0 items are dropped, and
    // per-variable membership in non-redundant knapsack rows.
    let mut in_tight_row = vec![false; n];
    let mut row_redundant = vec![false; knap.len()];
    for (k, row) in knap.iter().enumerate() {
        let b = problem.rhs(row.row).unwrap_or(f64::INFINITY);
        let fixed: f64 = row
            .terms
            .iter()
            .filter(|(v, _)| fixed_zero[v.index()])
            .map(|&(_, a)| a)
            .sum();
        let residual = row.total - fixed;
        if residual <= b + tol {
            row_redundant[k] = true;
            continue;
        }
        for &(v, _) in &row.terms {
            if !fixed_zero[v.index()] {
                in_tight_row[v.index()] = true;
            }
        }
    }

    // Membership in any non-knapsack constraint disqualifies a variable from
    // the objective-only fixing.
    let knap_row_set: Vec<bool> = {
        let mut s = vec![false; problem.num_constraints()];
        for row in knap {
            s[row.row] = true;
        }
        s
    };
    let mut in_other_row = vec![false; n];
    for (index, c) in problem.constraints().iter().enumerate() {
        if knap_row_set[index] {
            continue;
        }
        for (v, _) in c.expr.terms() {
            in_other_row[v.index()] = true;
        }
    }

    // Pass 2: objective-only variables among the binaries.
    for (j, def) in problem.vars().iter().enumerate() {
        if def.kind != VarKind::Binary {
            continue;
        }
        if fixed_zero[j] {
            out.fixings.push((Var(j), 0.0));
            continue;
        }
        if in_tight_row[j] || in_other_row[j] {
            continue;
        }
        let c = problem.objective().coeff(Var(j));
        let favorable = match problem.sense() {
            Sense::Maximize => c > tol,
            Sense::Minimize => c < -tol,
        };
        let unfavorable = match problem.sense() {
            Sense::Maximize => c < -tol,
            Sense::Minimize => c > tol,
        };
        if favorable {
            out.fixings.push((Var(j), 1.0));
        } else if unfavorable {
            out.fixings.push((Var(j), 0.0));
        }
    }

    // Pass 3: batch coefficient tightening of the non-redundant rows.
    for (k, row) in knap.iter().enumerate() {
        if row_redundant[k] {
            continue;
        }
        let b = problem.rhs(row.row).unwrap_or(f64::INFINITY);
        let live: Vec<(Var, f64)> = row
            .terms
            .iter()
            .filter(|(v, _)| !fixed_zero[v.index()])
            .copied()
            .collect();
        let m: f64 = live.iter().map(|&(_, a)| a).sum();
        let mut total_delta = 0.0;
        let mut expr = LinearExpr::new();
        for &(v, a) in &live {
            let delta = (b - (m - a)).max(0.0);
            total_delta += delta;
            expr.add_term(v, a - delta);
        }
        if total_delta > tol {
            let new_rhs = (b - total_delta).max(0.0);
            out.tightened.push((expr, new_rhs));
        }
    }

    out
}

/// Separate a lifted minimal cover cut from one knapsack row against a
/// fractional LP point.
///
/// Returns the cut `Σ_{j ∈ E(C)} x_j ≤ |C| − 1` as `(vars, rhs)` when a
/// cover violated by more than `threshold` exists, `None` otherwise.
///
/// The greedy order is ascending `(1 − x*_j)/a_j` — items that are nearly
/// chosen and heavy enter the cover first, which maximizes the chance the
/// resulting cover is violated.  The cover is then *minimalized* (dropping
/// an item both shrinks `|C| − 1` by one and the left-hand side by
/// `x*_j ≤ 1`, so every drop weakly increases violation) and extended with
/// all items at least as heavy as the cover's heaviest member.
pub(crate) fn separate_cover(
    terms: &[(Var, f64)],
    rhs: f64,
    values: &[f64],
    threshold: f64,
) -> Option<(Vec<Var>, f64)> {
    let total: f64 = terms.iter().map(|&(_, a)| a).sum();
    if total <= rhs {
        return None; // row is redundant, no cover exists
    }

    // Greedy cover construction.
    let mut order: Vec<usize> = (0..terms.len()).collect();
    let score = |i: usize| {
        let (v, a) = terms[i];
        let x = values
            .get(v.index())
            .copied()
            .unwrap_or(0.0)
            .clamp(0.0, 1.0);
        (1.0 - x) / a
    };
    order.sort_by(|&i, &j| {
        score(i)
            .partial_cmp(&score(j))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut cover: Vec<usize> = Vec::new();
    let mut weight = 0.0;
    for &i in &order {
        cover.push(i);
        weight += terms[i].1;
        if weight > rhs + threshold {
            break;
        }
    }
    if weight <= rhs + threshold {
        return None;
    }

    // Minimalize: drop items while the remainder still overflows, starting
    // from the smallest LP value (largest violation gain).
    cover.sort_by(|&i, &j| {
        let xi = values.get(terms[i].0.index()).copied().unwrap_or(0.0);
        let xj = values.get(terms[j].0.index()).copied().unwrap_or(0.0);
        xi.partial_cmp(&xj).unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut keep = vec![true; cover.len()];
    for (pos, &i) in cover.iter().enumerate() {
        if weight - terms[i].1 > rhs + threshold {
            keep[pos] = false;
            weight -= terms[i].1;
        }
    }
    let cover: Vec<usize> = cover
        .iter()
        .zip(&keep)
        .filter(|(_, &k)| k)
        .map(|(&i, _)| i)
        .collect();

    // Violation check on the minimal cover.
    let cut_rhs = cover.len() as f64 - 1.0;
    let lhs: f64 = cover
        .iter()
        .map(|&i| values.get(terms[i].0.index()).copied().unwrap_or(0.0))
        .sum();
    if lhs <= cut_rhs + threshold {
        return None;
    }

    // Extension lifting: any item at least as heavy as the cover's heaviest
    // member joins the left-hand side without changing the right-hand side.
    let a_max = cover.iter().map(|&i| terms[i].1).fold(0.0, f64::max);
    let in_cover: std::collections::BTreeSet<usize> = cover.iter().copied().collect();
    let mut cut_vars: Vec<Var> = cover.iter().map(|&i| terms[i].0).collect();
    for (i, &(v, a)) in terms.iter().enumerate() {
        if !in_cover.contains(&i) && a >= a_max {
            cut_vars.push(v);
        }
    }
    cut_vars.sort();
    Some((cut_vars, cut_rhs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Problem, Sense};

    fn knapsack_problem() -> (Problem, Vec<Var>) {
        let mut p = Problem::new(Sense::Maximize);
        let xs: Vec<Var> = (0..4).map(|i| p.add_binary(format!("x{i}"))).collect();
        p.add_constraint(
            LinearExpr::from_terms([(xs[0], 4.0), (xs[1], 4.0), (xs[2], 9.0), (xs[3], 1.0)]),
            Cmp::Le,
            5.0,
        );
        p.set_objective(LinearExpr::from_terms([
            (xs[0], 3.0),
            (xs[1], 3.0),
            (xs[2], 10.0),
            (xs[3], 1.0),
        ]));
        (p, xs)
    }

    #[test]
    fn knapsack_rows_are_detected_and_filtered() {
        let (mut p, xs) = knapsack_problem();
        // A row with a negative coefficient and a Ge row are both skipped.
        p.add_constraint(
            LinearExpr::from_terms([(xs[0], 1.0), (xs[1], -2.0)]),
            Cmp::Le,
            1.0,
        );
        p.add_constraint(
            LinearExpr::from_terms([(xs[0], 1.0), (xs[1], 1.0)]),
            Cmp::Ge,
            0.0,
        );
        let rows = knapsack_rows(&p, 1e-9);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].row, 0);
        assert_eq!(rows[0].terms.len(), 4);
        assert!((rows[0].total - 18.0).abs() < 1e-12);
    }

    #[test]
    fn rows_with_continuous_vars_are_not_knapsacks() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_binary("x");
        let y = p.add_continuous("y", 0.0, Some(1.0));
        p.add_constraint(LinearExpr::from_terms([(x, 1.0), (y, 1.0)]), Cmp::Le, 1.0);
        assert!(knapsack_rows(&p, 1e-9).is_empty());
    }

    #[test]
    fn presolve_fixes_overflowing_items_to_zero() {
        let (p, xs) = knapsack_problem();
        let knap = knapsack_rows(&p, 1e-9);
        let pre = presolve(&p, &knap, 1e-9);
        assert!(!pre.infeasible);
        // x2 weighs 9 > 5: trivially flash-resident.
        assert!(pre.fixings.contains(&(xs[2], 0.0)));
    }

    #[test]
    fn presolve_detects_negative_rhs_infeasibility() {
        let (mut p, _) = knapsack_problem();
        p.set_rhs(0, -1.0).unwrap();
        let knap = knapsack_rows(&p, 1e-9);
        assert!(presolve(&p, &knap, 1e-9).infeasible);
    }

    #[test]
    fn presolve_fixes_objective_only_vars_when_rows_are_redundant() {
        let mut p = Problem::new(Sense::Maximize);
        let a = p.add_binary("a");
        let b = p.add_binary("b");
        let c = p.add_binary("c");
        // Row is redundant (2 + 1 + 1 ≤ 10), so all three are objective-only.
        p.add_constraint(
            LinearExpr::from_terms([(a, 2.0), (b, 1.0), (c, 1.0)]),
            Cmp::Le,
            10.0,
        );
        p.set_objective(LinearExpr::from_terms([(a, 5.0), (b, -3.0)]));
        let knap = knapsack_rows(&p, 1e-9);
        let pre = presolve(&p, &knap, 1e-9);
        assert!(
            pre.fixings.contains(&(a, 1.0)),
            "favorable coeff fixes to 1"
        );
        assert!(
            pre.fixings.contains(&(b, 0.0)),
            "unfavorable coeff fixes to 0"
        );
        assert!(
            !pre.fixings.iter().any(|&(v, _)| v == c),
            "zero-coefficient variable stays free"
        );
    }

    #[test]
    fn coefficient_tightening_matches_hand_computation() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_binary("x");
        let y = p.add_binary("y");
        p.add_constraint(LinearExpr::from_terms([(x, 5.0), (y, 5.0)]), Cmp::Le, 8.0);
        p.set_objective(LinearExpr::from_terms([(x, 1.0), (y, 1.0)]));
        let knap = knapsack_rows(&p, 1e-9);
        let pre = presolve(&p, &knap, 1e-9);
        assert_eq!(pre.tightened.len(), 1);
        let (expr, rhs) = &pre.tightened[0];
        // δ = 8 − (10 − 5) = 3 per item: 2x + 2y ≤ 2.
        assert!((expr.coeff(x) - 2.0).abs() < 1e-9);
        assert!((expr.coeff(y) - 2.0).abs() < 1e-9);
        assert!((rhs - 2.0).abs() < 1e-9);
    }

    #[test]
    fn tightened_rows_keep_all_integer_points() {
        // Exhaustively confirm integer-equivalence on a batch-tightened row.
        let mut p = Problem::new(Sense::Maximize);
        let vars: Vec<Var> = (0..3).map(|i| p.add_binary(format!("v{i}"))).collect();
        // δ only triggers for items whose *complement* fits under the
        // budget: here 4 + 3 = 7 < 9, so the 7-item tightens to 5 and the
        // rhs drops to 7.
        let coeffs = [7.0, 4.0, 3.0];
        let rhs = 9.0;
        p.add_constraint(
            LinearExpr::from_terms(vars.iter().copied().zip(coeffs)),
            Cmp::Le,
            rhs,
        );
        p.set_objective(LinearExpr::from_terms(vars.iter().map(|&v| (v, 1.0))));
        let knap = knapsack_rows(&p, 1e-9);
        let pre = presolve(&p, &knap, 1e-9);
        assert_eq!(pre.tightened.len(), 1);
        let (expr, new_rhs) = &pre.tightened[0];
        for bits in 0..8u32 {
            let values: Vec<f64> = (0..3).map(|i| f64::from((bits >> i) & 1)).collect();
            let original: f64 = coeffs.iter().zip(&values).map(|(a, x)| a * x).sum();
            let tightened = expr.evaluate(&values);
            assert_eq!(
                original <= rhs + 1e-9,
                tightened <= new_rhs + 1e-9,
                "integer point {values:?} classified differently"
            );
        }
    }

    #[test]
    fn cover_separation_finds_a_violated_lifted_cover() {
        // Knapsack 4x0 + 4x1 + 4x2 ≤ 9 with LP point (0.9, 0.9, 0.9):
        // cover {0,1,2} has weight 12 > 9, lhs 2.7 > 2.
        let terms = [(Var(0), 4.0), (Var(1), 4.0), (Var(2), 4.0)];
        let values = [0.9, 0.9, 0.9];
        let (vars, rhs) = separate_cover(&terms, 9.0, &values, 1e-4).expect("violated cover");
        assert_eq!(vars, vec![Var(0), Var(1), Var(2)]);
        assert!((rhs - 2.0).abs() < 1e-9);
    }

    #[test]
    fn cover_separation_respects_violation_threshold() {
        // Integral LP point: no violated cover exists.
        let terms = [(Var(0), 4.0), (Var(1), 4.0), (Var(2), 4.0)];
        let values = [1.0, 1.0, 0.0];
        assert!(separate_cover(&terms, 9.0, &values, 1e-4).is_none());
    }

    #[test]
    fn cover_extension_adds_heavier_items() {
        // 5x0 + 3x1 + 3x2 + 6x3 ≤ 7, point (0.0, 0.9, 0.9, 0.2):
        // minimal cover {1, 2, 3}? weight 12 > 7... but minimalization can
        // drop x3 (12 − 6 = 6 ≤ 7 keeps it). Greedy order by (1−x)/a picks
        // x1, x2 (score ≈ 0.033) then x3 (0.133): weight 12 > 7 → cover
        // {1,2,3}; dropping x3 leaves 6 ≤ 7 so it stays; dropping x1 or x2
        // leaves 9, 9 > 7 → minimal cover ends as a 2-element set plus x3.
        let terms = [(Var(0), 5.0), (Var(1), 3.0), (Var(2), 3.0), (Var(3), 6.0)];
        let values = [0.0, 0.9, 0.9, 0.2];
        if let Some((vars, rhs)) = separate_cover(&terms, 7.0, &values, 1e-4) {
            // Whatever minimal cover survives, the cut must not exclude the
            // extension property: every var in the cut with weight below the
            // heaviest cover member must itself be a cover member.
            assert!(rhs >= 1.0);
            assert!(!vars.is_empty());
            // And it must be violated at the fractional point.
            let lhs: f64 = vars.iter().map(|v| values[v.index()]).sum();
            assert!(lhs > rhs + 1e-6);
        } else {
            panic!("expected a violated cover");
        }
    }

    #[test]
    fn redundant_row_yields_no_cover() {
        let terms = [(Var(0), 1.0), (Var(1), 1.0)];
        assert!(separate_cover(&terms, 5.0, &[0.9, 0.9], 1e-4).is_none());
    }
}
