//! Branch-and-bound 0-1 ILP solver over the simplex relaxation.
//!
//! Branching fixes one fractional binary variable to 0 and to 1 in turn; the
//! LP relaxation of each node provides the bound used for pruning.  The
//! search is depth-first with the "most fractional variable" branching rule,
//! exploring the rounded value first so that good incumbents appear early.
//!
//! Child relaxations are **warm-started**: a branch fixing only tightens one
//! variable's bounds, which leaves the parent's optimal basis dual feasible,
//! so each child is re-solved with the dual simplex from the parent's
//! [`LpState`] instead of a cold two-phase solve.
//! [`BranchBoundStats`] reports the pivot counts of both kinds of solve.

use std::rc::Rc;

use crate::basis::LpState;
use crate::expr::Var;
use crate::problem::{Problem, Solution, SolveError};
use crate::simplex::{SimplexOutcome, SimplexSolver};

/// Statistics about a branch-and-bound run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BranchBoundStats {
    /// Number of nodes whose relaxation was solved.
    pub nodes_explored: usize,
    /// Number of nodes pruned by bound.
    pub nodes_pruned: usize,
    /// Whether the **node budget** was exhausted (the returned solution is
    /// then the best incumbent, not necessarily optimal).  LP iteration
    /// limits are tracked separately in
    /// [`lp_iteration_limited`](BranchBoundStats::lp_iteration_limited).
    pub budget_exhausted: bool,
    /// Number of nodes whose *LP* hit the simplex iteration limit.  Those
    /// subtrees are skipped, so a nonzero count means the incumbent may be
    /// suboptimal even when the node budget was never exhausted.
    pub lp_iteration_limited: usize,
    /// Total simplex pivots across every node's LP solve.
    pub lp_pivots: usize,
    /// Pivots the **root** relaxation alone took (a cold two-phase solve,
    /// or a dual-simplex re-entry for chained sweeps — see
    /// [`BranchBound::solve_chained`]).
    pub root_pivots: usize,
    /// Whether the search started from a feasible seeded incumbent (see
    /// [`BranchBound::solve_chained`]).
    pub seeded: bool,
    /// Nodes solved cold (two-phase solve from scratch).
    pub cold_solves: usize,
    /// Pivots spent in cold solves.
    pub cold_pivots: usize,
    /// Nodes warm-started with the dual simplex from the parent basis.
    pub warm_solves: usize,
    /// Pivots spent in warm-started solves.
    pub warm_pivots: usize,
}

/// The outcome of one chained branch-and-bound solve (see
/// [`BranchBound::solve_chained`]): the incumbent, the search statistics,
/// and the solved state of the **root** relaxation, which the next solve in
/// a sweep chain warm-starts from after the problem's right-hand sides move.
#[derive(Debug, Clone)]
pub struct ChainedSolve {
    /// The best integer solution found.
    pub solution: Solution,
    /// Search statistics of this solve.
    pub stats: BranchBoundStats,
    /// The solved root relaxation, for chaining into the next solve
    /// (`None` only if the root LP produced no reusable state).
    pub root_state: Option<LpState>,
    /// Whether the root relaxation was warm-started from a previous chained
    /// state rather than solved cold.
    pub chained: bool,
}

/// A 0-1 ILP solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BranchBound {
    /// LP solver used for the relaxations.
    pub lp: SimplexSolver,
    /// Maximum number of branch-and-bound nodes to explore.
    pub max_nodes: usize,
    /// Integrality tolerance.
    pub tolerance: f64,
    /// Warm-start child nodes with the dual simplex from the parent basis
    /// (on by default; disable to benchmark against cold solves).
    pub warm_start: bool,
    /// Bounded-regret guard for chained solves
    /// ([`BranchBound::solve_chained`]): when a *chained* root's search tree
    /// exceeds this many nodes, the attempt is abandoned and the point
    /// re-solved from a cold root (the seed is kept).  The placement models
    /// are degenerate enough that alternate optimal root vertices can
    /// partition the space very differently; this caps how much an unlucky
    /// chained vertex can cost over the cold solve, while small trees —
    /// where chaining pays — keep the full saving.  `usize::MAX` disables
    /// the guard; plain (non-chained) solves never use it.
    pub chain_fallback_nodes: usize,
}

impl Default for BranchBound {
    fn default() -> Self {
        BranchBound {
            lp: SimplexSolver::default(),
            max_nodes: 20_000,
            tolerance: 1e-6,
            warm_start: true,
            chain_fallback_nodes: 512,
        }
    }
}

/// What one [`BranchBound::solve_inner`] pass concluded: a finished solve,
/// or a chained attempt abandoned at its node cap (the bounded-regret
/// guard), carrying the effort spent so the retry can account for it.
enum InnerOutcome {
    Done(Box<ChainedSolve>),
    ChainAborted(BranchBoundStats),
}

/// One open node of the search tree.
struct Node {
    /// All fixings accumulated along the path from the root.
    fixings: Vec<(Var, f64)>,
    /// The solved state of the parent's relaxation, shared with the sibling.
    parent_state: Option<Rc<LpState>>,
}

/// Ceiling on the total memory the DFS frontier may hold in warm-start
/// tableau snapshots (each is shared by the two children of a node).  Nodes
/// pushed beyond the budget carry no state and re-solve cold — correctness
/// is unaffected, only the warm-start saving for those nodes.
const WARM_STATE_MEMORY_BUDGET: usize = 64 << 20;

/// Approximate heap footprint of one [`LpState`] snapshot.
fn state_bytes(state: &LpState) -> usize {
    let (rows, cols) = (state.num_rows(), state.num_cols());
    8 * (rows * cols + 2 * rows + 4 * cols)
}

impl BranchBound {
    /// A solver with default budgets.
    pub fn new() -> BranchBound {
        BranchBound::default()
    }

    /// Solve the problem to optimality (within the node budget).
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Infeasible`] or [`SolveError::Unbounded`] when
    /// the problem has no optimal solution, [`SolveError::BudgetExhausted`]
    /// when the node budget or a node's LP iteration limit ran out before
    /// any integer-feasible solution was found (the message says which), and
    /// [`SolveError::InvalidModel`] for malformed models.
    pub fn solve(&self, problem: &Problem) -> Result<Solution, SolveError> {
        self.solve_with_stats(problem).map(|(s, _)| s)
    }

    /// Solve and also report search statistics.
    ///
    /// # Errors
    ///
    /// See [`BranchBound::solve`].
    pub fn solve_with_stats(
        &self,
        problem: &Problem,
    ) -> Result<(Solution, BranchBoundStats), SolveError> {
        match self.solve_inner(problem, None, None, false, None)? {
            InnerOutcome::Done(run) => Ok((run.solution, run.stats)),
            InnerOutcome::ChainAborted(_) => unreachable!("an uncapped solve cannot abort"),
        }
    }

    /// Solve as part of a **sweep chain**: when `warm_root` is the root
    /// state of a previous solve of the *same problem structure* (only
    /// right-hand sides may have changed in between, via
    /// [`crate::Problem::set_rhs`]), the root relaxation is re-solved with
    /// the dual simplex from that state instead of a cold two-phase solve —
    /// the same warm-start saving branch-and-bound already applies per node,
    /// applied *across* solves.  The returned [`ChainedSolve::root_state`]
    /// feeds the next link of the chain.
    ///
    /// `seed` is a candidate integer solution — typically the previous sweep
    /// point's optimum.  If it is feasible under the current right-hand
    /// sides (always the case when a budget *relaxes*), it becomes the
    /// initial incumbent, so the search starts with a proven bound and
    /// prunes everything the budget change did not improve; when the new
    /// optimum equals the seed, the solve reduces to the root relaxation
    /// proving optimality.  An infeasible seed is ignored.
    ///
    /// With `warm_root: None` and `seed: None` (or `warm_start` disabled)
    /// this is exactly [`BranchBound::solve_with_stats`] plus the
    /// root-state capture.
    ///
    /// # Errors
    ///
    /// See [`BranchBound::solve`]; additionally, a `warm_root` whose
    /// dimensions do not match `problem` is an
    /// [`SolveError::InvalidModel`].
    pub fn solve_chained(
        &self,
        problem: &Problem,
        warm_root: Option<&LpState>,
        seed: Option<&Solution>,
    ) -> Result<ChainedSolve, SolveError> {
        if self.warm_start && warm_root.is_some() {
            let cap =
                (self.chain_fallback_nodes < self.max_nodes).then_some(self.chain_fallback_nodes);
            match self.solve_inner(problem, warm_root, seed, true, cap)? {
                InnerOutcome::Done(run) => return Ok(*run),
                InnerOutcome::ChainAborted(aborted) => {
                    // The chained vertex partitioned the space badly; pay
                    // the bounded abort cost and re-solve from a cold root,
                    // keeping the seed.  The wasted effort stays in the
                    // stats — pivot accounting must cover the failed
                    // attempt too.
                    let InnerOutcome::Done(mut run) =
                        self.solve_inner(problem, None, seed, true, None)?
                    else {
                        unreachable!("an uncapped solve cannot abort")
                    };
                    run.stats.nodes_explored += aborted.nodes_explored;
                    run.stats.nodes_pruned += aborted.nodes_pruned;
                    run.stats.lp_pivots += aborted.lp_pivots;
                    run.stats.root_pivots += aborted.root_pivots;
                    run.stats.lp_iteration_limited += aborted.lp_iteration_limited;
                    run.stats.cold_solves += aborted.cold_solves;
                    run.stats.cold_pivots += aborted.cold_pivots;
                    run.stats.warm_solves += aborted.warm_solves;
                    run.stats.warm_pivots += aborted.warm_pivots;
                    return Ok(*run);
                }
            }
        }
        match self.solve_inner(problem, warm_root, seed, true, None)? {
            InnerOutcome::Done(run) => Ok(*run),
            InnerOutcome::ChainAborted(_) => unreachable!("an uncapped solve cannot abort"),
        }
    }

    /// The shared search loop.  `capture_root` keeps a clone of the solved
    /// root relaxation state for sweep chaining (skipped for the plain
    /// entry points, which have no use for it); `chain_cap` aborts the
    /// search once that many nodes were explored (the bounded-regret guard
    /// of [`BranchBound::solve_chained`]).
    fn solve_inner(
        &self,
        problem: &Problem,
        warm_root: Option<&LpState>,
        seed: Option<&Solution>,
        capture_root: bool,
        chain_cap: Option<usize>,
    ) -> Result<InnerOutcome, SolveError> {
        problem.check()?;
        let mut stats = BranchBoundStats::default();
        let mut root_state: Option<LpState> = None;
        let chained = warm_root.is_some() && self.warm_start;

        // A feasible seed becomes the initial incumbent: its objective is a
        // proven bound, so the search only explores what the moved
        // right-hand sides actually improved.  (The objective is
        // re-evaluated — RHS changes never alter it, but the seed may come
        // from an arbitrary caller.)
        let mut incumbent: Option<Solution> = seed
            .filter(|s| problem.is_feasible(&s.values, self.tolerance))
            .map(|s| Solution {
                values: s.values.clone(),
                objective: problem.objective_value(&s.values),
            });
        stats.seeded = incumbent.is_some();

        let mut stack: Vec<Node> = vec![Node {
            fixings: Vec::new(),
            parent_state: None,
        }];

        // Stack entries currently holding a warm-start state (each state is
        // shared by the two sibling entries), used to bound retained memory.
        let mut retained_entries = 0usize;

        while let Some(mut node) = stack.pop() {
            if node.parent_state.is_some() {
                retained_entries -= 1;
            }
            if let Some(cap) = chain_cap {
                if stats.nodes_explored >= cap {
                    return Ok(InnerOutcome::ChainAborted(stats));
                }
            }
            if stats.nodes_explored >= self.max_nodes {
                stats.budget_exhausted = true;
                break;
            }
            stats.nodes_explored += 1;

            let warm_state = if self.warm_start {
                node.parent_state.take()
            } else {
                None
            };
            let result = if node.fixings.is_empty() && chained {
                // The chained root: same rows and columns as the previous
                // sweep point, only right-hand sides moved — re-enter with
                // the dual simplex from the previous root basis.
                let warm_root = warm_root.expect("chained implies a warm root");
                stats.warm_solves += 1;
                let r = self.lp.resolve_with_rhs(problem, warm_root);
                stats.warm_pivots += r.pivots;
                r
            } else {
                match warm_state {
                    Some(state) => {
                        // Only the final fixing is new relative to the
                        // parent's state; everything earlier is already baked
                        // in.  The sibling explored first still shares the Rc
                        // (clone); the second child is the last user and
                        // takes the state without copying the tableau.
                        let last = *node.fixings.last().expect("warm node has a fixing");
                        let state = Rc::try_unwrap(state).unwrap_or_else(|rc| (*rc).clone());
                        stats.warm_solves += 1;
                        let r = self.lp.resolve_owned(problem, state, &[last]);
                        stats.warm_pivots += r.pivots;
                        r
                    }
                    None => {
                        stats.cold_solves += 1;
                        let r = self.lp.solve_tracked(problem, &node.fixings);
                        stats.cold_pivots += r.pivots;
                        r
                    }
                }
            };
            stats.lp_pivots += result.pivots;
            if node.fixings.is_empty() {
                stats.root_pivots = result.pivots;
                if capture_root {
                    root_state = result.state.clone();
                }
            }

            let relaxed = match result.outcome {
                SimplexOutcome::Optimal(s) => s,
                SimplexOutcome::Infeasible => continue,
                SimplexOutcome::Unbounded => {
                    // The relaxation being unbounded at the root means the
                    // ILP itself is unbounded (binaries alone cannot bound
                    // a continuous ray).
                    if node.fixings.is_empty() {
                        return Err(SolveError::Unbounded);
                    }
                    continue;
                }
                SimplexOutcome::IterationLimit => {
                    // An LP that ran out of pivots is not node-budget
                    // exhaustion: count it separately and skip the subtree.
                    stats.lp_iteration_limited += 1;
                    continue;
                }
                SimplexOutcome::InvalidModel(why) => {
                    // `problem.check()` passed, so this indicates solver-side
                    // state corruption; surface it rather than mask it.
                    return Err(SolveError::InvalidModel(why));
                }
            };

            // Bound: prune unless the relaxation strictly improves on the
            // incumbent.  Ties must be pruned too — the placement models are
            // massively degenerate, and exploring equal-bound nodes can only
            // rediscover equally good solutions at exponential cost.
            if let Some(best) = &incumbent {
                let margin = self.tolerance * best.objective.abs().max(1.0);
                let improves = problem.is_better(relaxed.objective, best.objective)
                    && (relaxed.objective - best.objective).abs() > margin;
                if !improves {
                    stats.nodes_pruned += 1;
                    continue;
                }
            }

            // Find the most fractional binary variable.
            let mut branch_var: Option<Var> = None;
            let mut most_fractional = self.tolerance;
            for v in problem.binary_vars() {
                let val = relaxed.value(v);
                let frac = (val - val.round()).abs();
                if frac > most_fractional {
                    most_fractional = frac;
                    branch_var = Some(v);
                }
            }

            match branch_var {
                None => {
                    // Integer feasible: candidate incumbent.
                    let mut values = relaxed.values.clone();
                    for v in problem.binary_vars() {
                        let idx = v.index();
                        values[idx] = values[idx].round();
                    }
                    let objective = problem.objective_value(&values);
                    let candidate = Solution { values, objective };
                    let better = incumbent
                        .as_ref()
                        .is_none_or(|best| problem.is_better(objective, best.objective));
                    if better {
                        incumbent = Some(candidate);
                    }
                }
                Some(v) => {
                    let val = relaxed.value(v);
                    let rounded = val.round().clamp(0.0, 1.0);
                    let other = 1.0 - rounded;
                    // Hand the solved state to both children unless warm
                    // starts are disabled or the frontier already retains
                    // its memory budget's worth of snapshots — beyond that,
                    // children re-solve cold.
                    let state = self
                        .warm_start
                        .then_some(result.state)
                        .flatten()
                        .map(Rc::new);
                    let bytes = state.as_deref().map_or(0, state_bytes);
                    let state = if state.is_some()
                        && (retained_entries + 2) * (bytes / 2) <= WARM_STATE_MEMORY_BUDGET
                    {
                        retained_entries += 2;
                        state
                    } else {
                        None
                    };
                    // Explore the rounded branch first (pushed last).
                    let mut far = node.fixings.clone();
                    far.push((v, other));
                    stack.push(Node {
                        fixings: far,
                        parent_state: state.clone(),
                    });
                    let mut near = node.fixings;
                    near.push((v, rounded));
                    stack.push(Node {
                        fixings: near,
                        parent_state: state,
                    });
                }
            }
        }

        match incumbent {
            Some(solution) => Ok(InnerOutcome::Done(Box::new(ChainedSolve {
                solution,
                stats,
                root_state,
                chained,
            }))),
            None if stats.budget_exhausted || stats.lp_iteration_limited > 0 => {
                let mut reasons = Vec::new();
                if stats.budget_exhausted {
                    reasons.push(format!("node budget of {} exhausted", self.max_nodes));
                }
                if stats.lp_iteration_limited > 0 {
                    reasons.push(format!(
                        "LP iteration limit hit at {} node(s)",
                        stats.lp_iteration_limited
                    ));
                }
                Err(SolveError::BudgetExhausted(format!(
                    "no integer solution found: {}",
                    reasons.join("; ")
                )))
            }
            None => Err(SolveError::Infeasible),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinearExpr;
    use crate::problem::{Cmp, Sense};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-5, "{a} vs {b}");
    }

    #[test]
    fn knapsack_small() {
        // Items (value, weight): (10,5), (7,4), (4,3), capacity 9 → pick 1 & 2 = 17.
        let values = [10.0, 7.0, 4.0];
        let weights = [5.0, 4.0, 3.0];
        let mut p = Problem::new(Sense::Maximize);
        let xs: Vec<Var> = (0..3).map(|i| p.add_binary(format!("x{i}"))).collect();
        p.add_constraint(
            LinearExpr::from_terms(xs.iter().copied().zip(weights.iter().copied())),
            Cmp::Le,
            9.0,
        );
        p.set_objective(LinearExpr::from_terms(
            xs.iter().copied().zip(values.iter().copied()),
        ));
        let sol = BranchBound::new().solve(&p).unwrap();
        assert_close(sol.objective, 17.0);
        assert!(sol.is_set(xs[0]));
        assert!(sol.is_set(xs[1]));
        assert!(!sol.is_set(xs[2]));
    }

    #[test]
    fn pure_lp_passes_through() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_continuous("x", 0.0, None);
        p.add_constraint(LinearExpr::var(x), Cmp::Ge, 2.0);
        p.set_objective(LinearExpr::var(x));
        let sol = BranchBound::new().solve(&p).unwrap();
        assert_close(sol.value(x), 2.0);
    }

    #[test]
    fn infeasible_integer_problem() {
        // x + y = 1.5 with x, y binary is LP-feasible but has no integer point.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_binary("x");
        let y = p.add_binary("y");
        p.add_constraint(LinearExpr::from_terms([(x, 1.0), (y, 1.0)]), Cmp::Eq, 1.5);
        p.set_objective(LinearExpr::from_terms([(x, 1.0), (y, 1.0)]));
        assert_eq!(BranchBound::new().solve(&p), Err(SolveError::Infeasible));
    }

    #[test]
    fn equality_selection() {
        // Exactly two of four items, minimize cost.
        let costs = [5.0, 1.0, 3.0, 2.0];
        let mut p = Problem::new(Sense::Minimize);
        let xs: Vec<Var> = (0..4).map(|i| p.add_binary(format!("x{i}"))).collect();
        p.add_constraint(
            LinearExpr::from_terms(xs.iter().map(|v| (*v, 1.0))),
            Cmp::Eq,
            2.0,
        );
        p.set_objective(LinearExpr::from_terms(
            xs.iter().copied().zip(costs.iter().copied()),
        ));
        let sol = BranchBound::new().solve(&p).unwrap();
        assert_close(sol.objective, 3.0);
        assert!(sol.is_set(xs[1]) && sol.is_set(xs[3]));
    }

    #[test]
    fn mixed_integer_problem() {
        // max 2x + 3b s.t. x + 4b <= 5, x <= 3, b binary → b=1, x=1? obj=5 vs b=0,x=3 obj=6.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_continuous("x", 0.0, Some(3.0));
        let b = p.add_binary("b");
        p.add_constraint(LinearExpr::from_terms([(x, 1.0), (b, 4.0)]), Cmp::Le, 5.0);
        p.set_objective(LinearExpr::from_terms([(x, 2.0), (b, 3.0)]));
        let sol = BranchBound::new().solve(&p).unwrap();
        assert_close(sol.objective, 6.0);
        assert!(!sol.is_set(b));
        assert_close(sol.value(x), 3.0);
    }

    #[test]
    fn stats_are_reported() {
        let mut p = Problem::new(Sense::Maximize);
        let xs: Vec<Var> = (0..6).map(|i| p.add_binary(format!("x{i}"))).collect();
        p.add_constraint(
            LinearExpr::from_terms(xs.iter().map(|v| (*v, 1.0))),
            Cmp::Le,
            3.0,
        );
        p.set_objective(LinearExpr::from_terms(
            xs.iter().enumerate().map(|(i, v)| (*v, 1.0 + i as f64)),
        ));
        let (sol, stats) = BranchBound::new().solve_with_stats(&p).unwrap();
        assert_close(sol.objective, 4.0 + 5.0 + 6.0);
        assert!(stats.nodes_explored >= 1);
        assert!(!stats.budget_exhausted);
        assert_eq!(stats.lp_iteration_limited, 0);
        assert_eq!(
            stats.warm_solves + stats.cold_solves,
            stats.nodes_explored,
            "every explored node is either warm or cold"
        );
        assert_eq!(stats.lp_pivots, stats.warm_pivots + stats.cold_pivots);
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let mut p = Problem::new(Sense::Maximize);
        let xs: Vec<Var> = (0..10).map(|i| p.add_binary(format!("x{i}"))).collect();
        p.add_constraint(
            LinearExpr::from_terms(xs.iter().map(|v| (*v, 1.0))),
            Cmp::Le,
            5.0,
        );
        p.set_objective(LinearExpr::from_terms(xs.iter().map(|v| (*v, 1.0))));
        let solver = BranchBound {
            max_nodes: 0,
            ..BranchBound::default()
        };
        match solver.solve(&p) {
            Err(SolveError::BudgetExhausted(msg)) => {
                assert!(msg.contains("node budget"), "message was: {msg}");
                assert!(!msg.contains("LP iteration"), "no LP limit was hit: {msg}");
            }
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
    }

    #[test]
    fn lp_iteration_limit_is_not_conflated_with_node_budget() {
        // Regression: a single node's LP hitting its pivot budget used to be
        // reported as "no integer solution within N nodes".  The LP limit
        // and the node budget are now tracked and reported separately.
        let mut p = Problem::new(Sense::Maximize);
        let xs: Vec<Var> = (0..8).map(|i| p.add_binary(format!("x{i}"))).collect();
        let weights = [3.0, 5.0, 2.0, 7.0, 4.0, 1.0, 6.0, 2.5];
        p.add_constraint(
            LinearExpr::from_terms(xs.iter().copied().zip(weights.iter().copied())),
            Cmp::Le,
            11.0,
        );
        p.add_constraint(
            LinearExpr::from_terms(xs.iter().map(|v| (*v, 1.0))),
            Cmp::Ge,
            2.0,
        );
        p.set_objective(LinearExpr::from_terms(
            xs.iter().enumerate().map(|(i, v)| (*v, 2.0 + i as f64)),
        ));
        let solver = BranchBound {
            lp: SimplexSolver {
                max_iterations: 1,
                ..SimplexSolver::default()
            },
            ..BranchBound::default()
        };
        match solver.solve_with_stats(&p) {
            Err(SolveError::BudgetExhausted(msg)) => {
                assert!(msg.contains("LP iteration"), "message was: {msg}");
                assert!(!msg.contains("node budget"), "message was: {msg}");
            }
            other => panic!("expected BudgetExhausted from LP limits, got {other:?}"),
        }
    }

    #[test]
    fn solution_respects_all_constraints() {
        let mut p = Problem::new(Sense::Maximize);
        let xs: Vec<Var> = (0..8).map(|i| p.add_binary(format!("x{i}"))).collect();
        let weights = [3.0, 5.0, 2.0, 7.0, 4.0, 1.0, 6.0, 2.5];
        let values = [4.0, 6.0, 3.0, 8.0, 5.0, 1.0, 7.0, 3.5];
        p.add_constraint(
            LinearExpr::from_terms(xs.iter().copied().zip(weights.iter().copied())),
            Cmp::Le,
            12.0,
        );
        // Pairwise exclusion: x0 + x1 <= 1.
        p.add_constraint(
            LinearExpr::from_terms([(xs[0], 1.0), (xs[1], 1.0)]),
            Cmp::Le,
            1.0,
        );
        p.set_objective(LinearExpr::from_terms(
            xs.iter().copied().zip(values.iter().copied()),
        ));
        let sol = BranchBound::new().solve(&p).unwrap();
        assert!(p.is_feasible(&sol.values, 1e-6));
    }

    /// A selection instance big enough that branching happens.
    fn branching_instance() -> Problem {
        let mut p = Problem::new(Sense::Maximize);
        let xs: Vec<Var> = (0..12).map(|i| p.add_binary(format!("x{i}"))).collect();
        let weights = [3.0, 5.0, 2.0, 7.0, 4.0, 1.0, 6.0, 2.5, 3.5, 4.5, 1.5, 5.5];
        let values = [4.0, 6.0, 3.0, 8.0, 5.0, 1.0, 7.0, 3.5, 4.2, 5.1, 2.2, 6.3];
        p.add_constraint(
            LinearExpr::from_terms(xs.iter().copied().zip(weights.iter().copied())),
            Cmp::Le,
            17.0,
        );
        p.add_constraint(
            LinearExpr::from_terms([(xs[0], 1.0), (xs[3], 1.0), (xs[6], 1.0)]),
            Cmp::Le,
            2.0,
        );
        p.set_objective(LinearExpr::from_terms(
            xs.iter().copied().zip(values.iter().copied()),
        ));
        p
    }

    #[test]
    fn chained_sweep_matches_cold_per_budget_solves() {
        // Sweep the knapsack capacity row: each chained solve must match a
        // cold solve of the same mutated problem exactly, and the chained
        // roots must be warm (no cold re-solve of the root relaxation).
        let mut p = branching_instance();
        let solver = BranchBound::new();
        let mut root = None;
        let mut seed = None;
        for capacity in [17.0, 12.0, 9.0, 6.0, 3.0, 0.0, 14.0] {
            p.set_rhs(0, capacity).unwrap();
            let run = solver
                .solve_chained(&p, root.as_ref(), seed.as_ref())
                .expect("chained solve");
            let (cold, _) = solver.solve_with_stats(&p).expect("cold solve");
            assert_close(run.solution.objective, cold.objective);
            assert!(p.is_feasible(&run.solution.values, 1e-6));
            assert_eq!(run.chained, root.is_some());
            if run.chained {
                assert!(
                    run.stats.warm_solves >= 1,
                    "a chained root must count as a warm solve"
                );
            }
            assert!(run.root_state.is_some(), "feasible solves keep the root");
            root = run.root_state;
            seed = Some(run.solution);
        }
    }

    #[test]
    fn relaxing_sweeps_keep_seeds_feasible_and_reenter_roots_cheaply() {
        // Sweeping the capacity *up* keeps the previous optimum feasible, so
        // every chained point starts seeded; a point whose right-hand side
        // did not move at all re-enters its root with zero pivots (the dual
        // simplex has nothing to repair).  The seed bounds the search — it
        // cannot collapse trees whose LP bound sits above the integer
        // optimum, but the answer must stay exactly the cold one.
        let mut p = branching_instance();
        let solver = BranchBound::new();
        let mut root = None;
        let mut seed: Option<Solution> = None;
        let mut prev_objective = f64::NEG_INFINITY;
        let mut prev_capacity = f64::NAN;
        for capacity in [3.0, 6.0, 9.0, 9.0, 12.0, 17.0, 40.0, 40.0] {
            p.set_rhs(0, capacity).unwrap();
            let run = solver
                .solve_chained(&p, root.as_ref(), seed.as_ref())
                .expect("chained solve");
            let (cold, _) = solver.solve_with_stats(&p).expect("cold solve");
            assert_close(run.solution.objective, cold.objective);
            assert_eq!(
                run.stats.seeded,
                seed.is_some(),
                "relaxed seeds stay feasible"
            );
            assert!(
                run.solution.objective >= prev_objective - 1e-9,
                "relaxing a budget never hurts"
            );
            if capacity == prev_capacity {
                assert_eq!(
                    run.stats.root_pivots, 0,
                    "an unmoved right-hand side needs no root repair"
                );
            }
            prev_objective = run.solution.objective;
            prev_capacity = capacity;
            root = run.root_state;
            seed = Some(run.solution);
        }
    }

    #[test]
    fn chained_root_state_survives_infeasible_points() {
        // An infeasible sweep point returns an error; the caller keeps the
        // previous root and the chain continues unharmed.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_binary("x");
        let y = p.add_binary("y");
        p.add_constraint(LinearExpr::from_terms([(x, 1.0), (y, 1.0)]), Cmp::Le, 2.0);
        p.add_constraint(LinearExpr::from_terms([(x, 1.0), (y, 1.0)]), Cmp::Ge, 1.0);
        p.set_objective(LinearExpr::from_terms([(x, 3.0), (y, 2.0)]));
        let solver = BranchBound::new();
        let first = solver.solve_chained(&p, None, None).expect("feasible");
        let root = first.root_state.expect("root state");
        p.set_rhs(0, 0.0).unwrap();
        assert_eq!(
            solver.solve_chained(&p, Some(&root), None).err(),
            Some(SolveError::Infeasible)
        );
        p.set_rhs(0, 1.0).unwrap();
        let resumed = solver
            .solve_chained(&p, Some(&root), None)
            .expect("feasible");
        assert_close(resumed.solution.objective, 3.0);
    }

    #[test]
    fn warm_start_matches_cold_start_and_pivots_less_per_node() {
        let p = branching_instance();
        let warm = BranchBound::new();
        let cold = BranchBound {
            warm_start: false,
            ..BranchBound::default()
        };
        let (ws, wstats) = warm.solve_with_stats(&p).unwrap();
        let (cs, cstats) = cold.solve_with_stats(&p).unwrap();
        assert_close(ws.objective, cs.objective);
        assert!(wstats.warm_solves > 0, "branching must warm-start children");
        assert_eq!(cstats.warm_solves, 0);
        // Per-node pivot cost: warm-started children must be strictly
        // cheaper than the cold nodes of the cold run.
        let warm_per_node = wstats.warm_pivots as f64 / wstats.warm_solves as f64;
        let cold_per_node = cstats.cold_pivots as f64 / cstats.cold_solves as f64;
        assert!(
            warm_per_node < cold_per_node,
            "warm {warm_per_node:.2} pivots/node vs cold {cold_per_node:.2}"
        );
    }
}
