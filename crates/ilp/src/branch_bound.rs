//! Branch-and-bound 0-1 ILP solver over the simplex relaxation.
//!
//! Branching fixes one fractional binary variable to 0 and to 1 in turn; the
//! LP relaxation of each node provides the bound used for pruning.  Three
//! search-quality mechanisms sit on top of the plain tree walk:
//!
//! * **Node selection** ([`NodeSelection`]): by default the open list is a
//!   priority queue ordered by the parent's LP bound (*best-bound* search),
//!   combined with a **plunging** dive — after branching, the child on the
//!   rounded side is explored immediately, depth-first, so integer
//!   incumbents appear as early as under DFS and the frontier stays small;
//!   only the "far" children enter the queue.  Best-bound order expands the
//!   node that could still beat the incumbent by the most, which on the
//!   degenerate placement trees prunes far more than LIFO order does.
//!   Nodes are re-checked against the incumbent when popped, so stale queue
//!   entries cost nothing but their memory.
//! * **Pseudo-cost branching**: instead of the most-fractional rule, each
//!   binary variable keeps a running average of how much the LP bound
//!   degraded per unit of bound movement in each direction, seeded from the
//!   variable's |objective coefficient| so the very first branchings already
//!   prefer high-impact blocks.  The branching score is the product of the
//!   estimated up- and down-degradations.
//! * **Cover cuts and presolve** (the `cuts` module): the placement model's
//!   budget rows are knapsacks, so before the tree starts a presolve pass
//!   fixes trivially flash-/RAM-resident blocks and tightens coefficients,
//!   and at the root (and optionally shallow nodes) violated lifted cover
//!   inequalities are appended as rows.  Cuts and tightened rows go to a
//!   **solve-local copy** of the problem — the caller's problem, its row
//!   indices, and the pre-cut root state used for sweep chaining are never
//!   disturbed — and states snapshotted before a cut existed are upgraded
//!   via [`crate::SimplexSolver::resolve_appended_owned`] when expanded.
//!
//! Child relaxations are **warm-started**: a branch fixing only tightens one
//! variable's bounds, which leaves the parent's optimal basis dual feasible,
//! so each child is re-solved with the dual simplex from the parent's
//! [`LpState`] instead of a cold two-phase solve.  Best-bound order expands
//! nodes out of creation order, but the snapshots don't care: each carries
//! its full bound state, and row growth is healed by appending the missing
//! rows.  [`BranchBoundStats`] reports the pivot counts of every kind of
//! solve.

use std::cmp::Ordering;
use std::collections::{BTreeSet, BinaryHeap};
use std::rc::Rc;
use std::time::{Duration, Instant};

use crate::basis::LpState;
use crate::cuts::{self, PresolveResult};
use crate::expr::{LinearExpr, Var};
use crate::problem::{Cmp, Problem, Sense, Solution, SolveError};
use crate::simplex::{SimplexOutcome, SimplexSolver};

/// Statistics about a branch-and-bound run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BranchBoundStats {
    /// Number of nodes whose relaxation was solved.
    pub nodes_explored: usize,
    /// Number of nodes pruned by bound (before or after their LP solve).
    pub nodes_pruned: usize,
    /// Whether the **node budget** was exhausted (the returned solution is
    /// then the best incumbent, not necessarily optimal).  LP iteration
    /// limits are tracked separately in
    /// [`lp_iteration_limited`](BranchBoundStats::lp_iteration_limited).
    pub budget_exhausted: bool,
    /// Number of nodes whose *LP* hit the simplex iteration limit.  Those
    /// subtrees are skipped, so a nonzero count means the incumbent may be
    /// suboptimal even when the node budget was never exhausted.
    pub lp_iteration_limited: usize,
    /// Total simplex pivots across every LP solve of the run (node
    /// relaxations and cut re-solves alike).
    pub lp_pivots: usize,
    /// Pivots the **root** relaxation alone took (a cold two-phase solve,
    /// or a dual-simplex re-entry for chained sweeps — see
    /// [`BranchBound::solve_chained`]).  Cut-plane re-solves at the root are
    /// *not* counted here (see [`cut_pivots`](BranchBoundStats::cut_pivots));
    /// after a chain abort and fallback, this is the pivot count of the
    /// final (cold) root only.
    pub root_pivots: usize,
    /// Whether the search started from a feasible incumbent seeded **by the
    /// caller** (see [`BranchBound::solve_chained`]).  An abort/fallback
    /// retry re-seeded from the aborted attempt's own incumbent does not
    /// set this.
    pub seeded: bool,
    /// Nodes solved cold (two-phase solve from scratch).
    pub cold_solves: usize,
    /// Pivots spent in cold solves.
    pub cold_pivots: usize,
    /// Nodes warm-started with the dual simplex from the parent basis.
    pub warm_solves: usize,
    /// Pivots spent in warm-started solves.
    pub warm_pivots: usize,
    /// Pivots spent re-solving after cut rows were appended (root and
    /// shallow-node cut loops).  `lp_pivots = warm + cold + cut` pivots.
    pub cut_pivots: usize,
    /// Rows appended to the solve-local problem by the cut machinery:
    /// lifted cover cuts plus tightened knapsack copies from presolve.
    pub cuts_added: usize,
    /// Variables fixed by the presolve pass before the tree started.
    pub presolve_fixed: usize,
    /// Wall-clock time of the solve in milliseconds.  After an abort and
    /// fallback this covers **both** attempts.
    pub wall_ms: f64,
    /// Whether the solve was cut short by [`BranchBound::time_limit`].  The
    /// returned solution (if any) is then the best incumbent, not
    /// necessarily optimal — the wall-clock analogue of
    /// [`budget_exhausted`](BranchBoundStats::budget_exhausted), kept
    /// separate so deadline-driven degradation (inherently timing-dependent)
    /// is distinguishable from deterministic node-budget exhaustion.
    pub time_limit_hit: bool,
    /// Whether a fault-injection failpoint (the `fault-injection` cargo
    /// feature) perturbed this solve.  Always `false` in normal builds;
    /// consumers use it to keep injected-degraded answers out of memo
    /// tables and bit-identity comparisons.
    pub injected: bool,
}

/// The outcome of one chained branch-and-bound solve (see
/// [`BranchBound::solve_chained`]): the incumbent, the search statistics,
/// and the solved state of the **root** relaxation, which the next solve in
/// a sweep chain warm-starts from after the problem's right-hand sides move.
#[derive(Debug, Clone)]
pub struct ChainedSolve {
    /// The best integer solution found.
    pub solution: Solution,
    /// Search statistics of this solve.
    pub stats: BranchBoundStats,
    /// The solved root relaxation, for chaining into the next solve
    /// (`None` only if the root LP produced no reusable state).  Captured
    /// **before** any cut rows are appended, so its dimensions always match
    /// the caller's problem and survive into the next sweep point.
    pub root_state: Option<LpState>,
    /// Whether the root relaxation was warm-started from a previous chained
    /// state rather than solved cold.
    pub chained: bool,
}

/// How the open list orders nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeSelection {
    /// Priority queue on the parent LP bound: always expand the open node
    /// whose bound leaves the most room to beat the incumbent.  Combined
    /// with the plunging dive this is the default.
    BestBound,
    /// LIFO stack (classic DFS).  With the dive always taking the rounded
    /// child first, this reproduces the pre-best-bound search order exactly;
    /// kept for benchmarking and differential tests.
    DepthFirst,
}

/// A 0-1 ILP solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BranchBound {
    /// LP solver used for the relaxations.
    pub lp: SimplexSolver,
    /// Maximum number of branch-and-bound nodes to explore.
    pub max_nodes: usize,
    /// Integrality tolerance.
    pub tolerance: f64,
    /// Warm-start child nodes with the dual simplex from the parent basis
    /// (on by default; disable to benchmark against cold solves).
    pub warm_start: bool,
    /// Bounded-regret guard for chained solves
    /// ([`BranchBound::solve_chained`]): when a *chained* root's search tree
    /// exceeds this many nodes, the attempt is abandoned and the point
    /// re-solved from a cold root (the seed is kept).  The placement models
    /// are degenerate enough that alternate optimal root vertices can
    /// partition the space very differently; this caps how much an unlucky
    /// chained vertex can cost over the cold solve, while small trees —
    /// where chaining pays — keep the full saving.  The effective cap is
    /// `min(chain_fallback_nodes, max_nodes)`, so node-budget exhaustion
    /// under a chained root always gets its cold restart; `usize::MAX`
    /// disables the guard entirely (a chained tree may then exhaust
    /// `max_nodes` without a cold retry).  Plain (non-chained) solves never
    /// use it.
    pub chain_fallback_nodes: usize,
    /// Node selection strategy (default [`NodeSelection::BestBound`]).
    pub node_selection: NodeSelection,
    /// Separate and append lifted cover cuts from knapsack rows (default
    /// on).
    pub cuts: bool,
    /// Maximum node depth at which cut separation still runs (the root is
    /// depth 0; cuts stay global, so deeper separation only trades LP size
    /// for bound quality).
    pub cut_depth: usize,
    /// Ceiling on the number of rows the cut machinery may append per solve
    /// (cover cuts plus tightened knapsack copies).
    pub max_cuts: usize,
    /// Run the knapsack presolve pass (variable fixing + coefficient
    /// tightening) before the search (default on).
    pub presolve: bool,
    /// Wall-clock budget for one solve, checked before every node
    /// expansion.  When it expires the search stops and returns the best
    /// incumbent with [`BranchBoundStats::time_limit_hit`] set (or
    /// [`SolveError::BudgetExhausted`] if no integer solution was found
    /// yet).  `None` (the default) disables the check.  A solve interrupted
    /// by the time limit is **not deterministic** — callers that need
    /// reproducible results must leave this unset and rely on `max_nodes`.
    pub time_limit: Option<Duration>,
}

impl Default for BranchBound {
    fn default() -> Self {
        BranchBound {
            lp: SimplexSolver::default(),
            max_nodes: 20_000,
            tolerance: 1e-6,
            warm_start: true,
            chain_fallback_nodes: 512,
            node_selection: NodeSelection::BestBound,
            cuts: true,
            cut_depth: 2,
            max_cuts: 24,
            presolve: true,
            time_limit: None,
        }
    }
}

/// What one [`BranchBound::solve_inner`] pass concluded: a finished solve,
/// or a chained attempt abandoned at its node cap (the bounded-regret
/// guard), carrying the effort spent *and the best incumbent found* so the
/// retry can account for the first and be seeded by the second.
enum InnerOutcome {
    Done(Box<ChainedSolve>),
    ChainAborted(BranchBoundStats, Option<Solution>),
}

/// The branching step that created a node, kept for pseudo-cost updates.
#[derive(Clone, Copy)]
struct BranchStep {
    /// The variable branched on.
    var: Var,
    /// Its fractional LP value at the parent.
    frac: f64,
    /// Whether this child fixed the variable up to 1 (else down to 0).
    up: bool,
}

/// One open node of the search tree.
struct Node {
    /// All fixings accumulated along the path from the root (the root node
    /// itself carries the presolve fixings).
    fixings: Vec<(Var, f64)>,
    /// The solved state of the parent's relaxation, shared with the sibling.
    parent_state: Option<Rc<LpState>>,
    /// The parent's LP objective — an optimistic bound for this subtree,
    /// used both for best-bound ordering and for pruning stale nodes
    /// without solving their LP.
    bound: f64,
    /// Depth in the tree (root = 0).
    depth: usize,
    /// The branching that created this node (`None` at the root).
    branch: Option<BranchStep>,
}

/// Heap entry for best-bound order: `key` is the bound normalized so larger
/// is better; ties break toward the **newest** node (largest `seq`), which
/// keeps degenerate plateaus DFS-like instead of breadth-first.
struct OpenNode {
    key: f64,
    seq: u64,
    node: Node,
}

impl PartialEq for OpenNode {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for OpenNode {}
impl PartialOrd for OpenNode {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OpenNode {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key
            .partial_cmp(&other.key)
            .unwrap_or(Ordering::Equal)
            .then(self.seq.cmp(&other.seq))
    }
}

/// The open list: a LIFO stack or a best-bound priority queue.
enum OpenList {
    Dfs(Vec<Node>),
    Best(BinaryHeap<OpenNode>),
}

impl OpenList {
    fn push(&mut self, node: Node, key: f64, seq: u64) {
        match self {
            OpenList::Dfs(stack) => stack.push(node),
            OpenList::Best(heap) => heap.push(OpenNode { key, seq, node }),
        }
    }

    fn pop(&mut self) -> Option<Node> {
        match self {
            OpenList::Dfs(stack) => stack.pop(),
            OpenList::Best(heap) => heap.pop().map(|e| e.node),
        }
    }
}

/// Per-variable pseudo-costs: running `(sum, count)` of LP-bound degradation
/// per unit of bound movement, one pair per direction, seeded from the
/// objective coefficients.
struct PseudoCosts {
    down: Vec<(f64, usize)>,
    up: Vec<(f64, usize)>,
}

impl PseudoCosts {
    fn seeded(problem: &Problem) -> PseudoCosts {
        let n = problem.num_vars();
        let mut down = vec![(0.0, 1usize); n];
        let mut up = vec![(0.0, 1usize); n];
        for (v, c) in problem.objective().terms() {
            down[v.index()].0 = c.abs();
            up[v.index()].0 = c.abs();
        }
        PseudoCosts { down, up }
    }

    /// Branching score of variable `j` at fractional value `val`: product of
    /// the estimated bound degradations of the two children.
    fn score(&self, j: usize, val: f64) -> f64 {
        let down_avg = self.down[j].0 / self.down[j].1 as f64;
        let up_avg = self.up[j].0 / self.up[j].1 as f64;
        (down_avg * val).max(1e-9) * (up_avg * (1.0 - val)).max(1e-9)
    }

    /// Fold an observed degradation into the branched direction's average.
    fn record(&mut self, step: BranchStep, degradation: f64, tol: f64) {
        let dist = if step.up { 1.0 - step.frac } else { step.frac }.max(tol);
        let entry = if step.up {
            &mut self.up[step.var.index()]
        } else {
            &mut self.down[step.var.index()]
        };
        entry.0 += degradation / dist;
        entry.1 += 1;
    }
}

/// Ceiling on the total memory the search frontier may hold in warm-start
/// tableau snapshots (each is shared by the two children of a node).  Nodes
/// pushed beyond the budget carry no state and re-solve cold — correctness
/// is unaffected, only the warm-start saving for those nodes.
const WARM_STATE_MEMORY_BUDGET: usize = 64 << 20;

/// Minimum violation for a cover cut to be worth appending.
const COVER_VIOLATION_THRESHOLD: f64 = 1e-4;

/// Ceiling on separate-and-resolve rounds per node.
const MAX_CUT_ROUNDS: usize = 8;

/// Approximate heap footprint of one [`LpState`] snapshot.
fn state_bytes(state: &LpState) -> usize {
    let (rows, cols) = (state.num_rows(), state.num_cols());
    8 * (rows * cols + 2 * rows + 4 * cols)
}

/// Fold the effort of an abandoned chained attempt into the retry's stats
/// (additive counters only — `root_pivots` stays the final root's count and
/// `seeded` is handled by the caller).
fn merge_aborted_attempt(stats: &mut BranchBoundStats, aborted: &BranchBoundStats) {
    stats.nodes_explored += aborted.nodes_explored;
    stats.nodes_pruned += aborted.nodes_pruned;
    stats.lp_pivots += aborted.lp_pivots;
    stats.lp_iteration_limited += aborted.lp_iteration_limited;
    stats.cold_solves += aborted.cold_solves;
    stats.cold_pivots += aborted.cold_pivots;
    stats.warm_solves += aborted.warm_solves;
    stats.warm_pivots += aborted.warm_pivots;
    stats.cut_pivots += aborted.cut_pivots;
    stats.cuts_added += aborted.cuts_added;
    stats.wall_ms += aborted.wall_ms;
    stats.time_limit_hit |= aborted.time_limit_hit;
    stats.injected |= aborted.injected;
}

fn is_integral(solution: &Solution, binaries: &[Var], tol: f64) -> bool {
    binaries.iter().all(|v| {
        let val = solution.value(*v);
        (val - val.round()).abs() <= tol
    })
}

impl BranchBound {
    /// A solver with default budgets.
    pub fn new() -> BranchBound {
        BranchBound::default()
    }

    /// Solve the problem to optimality (within the node budget).
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Infeasible`] or [`SolveError::Unbounded`] when
    /// the problem has no optimal solution, [`SolveError::BudgetExhausted`]
    /// when the node budget or a node's LP iteration limit ran out before
    /// any integer-feasible solution was found (the message says which), and
    /// [`SolveError::InvalidModel`] for malformed models.
    pub fn solve(&self, problem: &Problem) -> Result<Solution, SolveError> {
        self.solve_with_stats(problem).map(|(s, _)| s)
    }

    /// Solve and also report search statistics.
    ///
    /// # Errors
    ///
    /// See [`BranchBound::solve`].
    pub fn solve_with_stats(
        &self,
        problem: &Problem,
    ) -> Result<(Solution, BranchBoundStats), SolveError> {
        match self.solve_inner(problem, None, None, false, None) {
            Ok(InnerOutcome::Done(run)) => Ok((run.solution, run.stats)),
            Ok(InnerOutcome::ChainAborted(..)) => unreachable!("an uncapped solve cannot abort"),
            Err((e, _)) => Err(e),
        }
    }

    /// Solve as part of a **sweep chain**: when `warm_root` is the root
    /// state of a previous solve of the *same problem structure* (only
    /// right-hand sides may have changed in between, via
    /// [`crate::Problem::set_rhs`]), the root relaxation is re-entered with
    /// the dual simplex from that state instead of a cold two-phase solve —
    /// the same warm-start saving branch-and-bound already applies per node,
    /// applied *across* solves.  Re-entry resets any presolve fixings the
    /// carried state was solved under and applies the current point's
    /// fixings instead, so presolve and chaining compose.  The returned
    /// [`ChainedSolve::root_state`] feeds the next link of the chain.
    ///
    /// `seed` is a candidate integer solution — typically the previous sweep
    /// point's optimum.  If it is feasible under the current right-hand
    /// sides (always the case when a budget *relaxes*), it becomes the
    /// initial incumbent, so the search starts with a proven bound and
    /// prunes everything the budget change did not improve; when the new
    /// optimum equals the seed, the solve reduces to the root relaxation
    /// proving optimality.  An infeasible seed is ignored.  Seeded
    /// incumbents compose with best-bound order: the seed's objective
    /// prunes queue entries at pop time before their LP is ever solved.
    ///
    /// With `warm_root: None` and `seed: None` (or `warm_start` disabled)
    /// this is exactly [`BranchBound::solve_with_stats`] plus the
    /// root-state capture.
    ///
    /// # Errors
    ///
    /// See [`BranchBound::solve`]; additionally, a `warm_root` whose
    /// dimensions do not match `problem` is an
    /// [`SolveError::InvalidModel`].
    pub fn solve_chained(
        &self,
        problem: &Problem,
        warm_root: Option<&LpState>,
        seed: Option<&Solution>,
    ) -> Result<ChainedSolve, SolveError> {
        self.solve_chained_stats(problem, warm_root, seed)
            .map_err(|(e, _)| e)
    }

    /// [`BranchBound::solve_chained`], but a failed solve also reports the
    /// search statistics of the attempt — the node/pivot counts and wall
    /// time spent before the budget (node, LP-iteration or wall-clock) ran
    /// out.  Degradation layers that fall back to a heuristic after
    /// [`SolveError::BudgetExhausted`] use this to keep their effort
    /// accounting truthful instead of reporting the failed attempt as free.
    ///
    /// # Errors
    ///
    /// See [`BranchBound::solve_chained`]; every error carries the stats of
    /// the work done up to the failure (for a chained attempt that aborted
    /// and failed on the cold retry, the stats cover both attempts).  The
    /// stats ride boxed so the error variant stays pointer-sized.
    pub fn solve_chained_stats(
        &self,
        problem: &Problem,
        warm_root: Option<&LpState>,
        seed: Option<&Solution>,
    ) -> Result<ChainedSolve, (SolveError, Box<BranchBoundStats>)> {
        #[cfg(feature = "fault-injection")]
        {
            if crate::fault::should_fire(crate::fault::FaultSite::IlpPanic) {
                panic!(
                    "{} branch-and-bound panic mid-solve",
                    crate::fault::INJECTED_MARKER
                );
            }
            if crate::fault::should_fire(crate::fault::FaultSite::IlpSpuriousExhaustion) {
                let stats = BranchBoundStats {
                    budget_exhausted: true,
                    injected: true,
                    ..BranchBoundStats::default()
                };
                return Err((
                    SolveError::BudgetExhausted(format!(
                        "{} spurious node-budget exhaustion",
                        crate::fault::INJECTED_MARKER
                    )),
                    Box::new(stats),
                ));
            }
        }
        if self.warm_start && warm_root.is_some() {
            match self.solve_inner(problem, warm_root, seed, true, self.chain_cap())? {
                InnerOutcome::Done(run) => return Ok(*run),
                InnerOutcome::ChainAborted(aborted, aborted_incumbent) => {
                    // The chained vertex partitioned the space badly; pay
                    // the bounded abort cost and re-solve from a cold root.
                    // The retry is seeded with the better of the caller's
                    // seed and whatever incumbent the aborted attempt found.
                    let retry_seed: Option<&Solution> = match (&aborted_incumbent, seed) {
                        (Some(inc), Some(s)) => {
                            Some(if problem.is_better(inc.objective, s.objective) {
                                inc
                            } else {
                                s
                            })
                        }
                        (Some(inc), None) => Some(inc),
                        (None, s) => s,
                    };
                    // The wasted effort stays in the stats — pivot
                    // accounting must cover the failed attempt too, on the
                    // error path as much as on success.  The aborted root's
                    // pivots are already inside lp/warm pivots;
                    // `root_pivots` stays the *final* root's count (the
                    // retry recorded it), and `seeded` reports the caller's
                    // seed, not the internal re-seed.
                    let mut run = match self.solve_inner(problem, None, retry_seed, true, None) {
                        Ok(InnerOutcome::Done(run)) => run,
                        Ok(InnerOutcome::ChainAborted(..)) => {
                            unreachable!("an uncapped solve cannot abort")
                        }
                        Err((e, mut stats)) => {
                            merge_aborted_attempt(&mut stats, &aborted);
                            stats.seeded = aborted.seeded;
                            return Err((e, stats));
                        }
                    };
                    merge_aborted_attempt(&mut run.stats, &aborted);
                    run.stats.seeded = aborted.seeded;
                    return Ok(*run);
                }
            }
        }
        match self.solve_inner(problem, warm_root, seed, true, None)? {
            InnerOutcome::Done(run) => Ok(*run),
            InnerOutcome::ChainAborted(..) => unreachable!("an uncapped solve cannot abort"),
        }
    }

    /// The effective bounded-regret cap for a chained attempt: clamped to
    /// `max_nodes` so a chained tree can never silently eat the whole node
    /// budget without its cold restart; `usize::MAX` disables the guard.
    fn chain_cap(&self) -> Option<usize> {
        (self.chain_fallback_nodes != usize::MAX)
            .then(|| self.chain_fallback_nodes.min(self.max_nodes))
    }

    /// The shared search loop.  `capture_root` keeps a clone of the solved
    /// root relaxation state for sweep chaining (skipped for the plain
    /// entry points, which have no use for it); `chain_cap` aborts the
    /// search once that many nodes were explored (the bounded-regret guard
    /// of [`BranchBound::solve_chained`]).
    fn solve_inner(
        &self,
        problem: &Problem,
        warm_root: Option<&LpState>,
        seed: Option<&Solution>,
        capture_root: bool,
        chain_cap: Option<usize>,
    ) -> Result<InnerOutcome, (SolveError, Box<BranchBoundStats>)> {
        let started = Instant::now();
        problem.check().map_err(|e| (e, Box::default()))?;
        let mut stats = BranchBoundStats::default();
        // Stamp the wall time into the stats of whichever error path fires.
        let fail = |mut stats: BranchBoundStats, e: SolveError| {
            stats.wall_ms = started.elapsed().as_secs_f64() * 1e3;
            (e, Box::new(stats))
        };
        let mut root_state: Option<LpState> = None;
        let chained = warm_root.is_some() && self.warm_start;
        let binaries = problem.binary_vars();
        let key_sign = match problem.sense() {
            Sense::Maximize => 1.0,
            Sense::Minimize => -1.0,
        };

        // Knapsack analysis: presolve fixings/tightenings and the rows cover
        // separation will scan.  Everything derived here is valid only at
        // the problem's *current* right-hand sides, which is fine — it lives
        // and dies with this solve.
        let knap = if self.presolve || self.cuts {
            cuts::knapsack_rows(problem, self.tolerance)
        } else {
            Vec::new()
        };
        let pre = if self.presolve {
            cuts::presolve(problem, &knap, self.tolerance)
        } else {
            PresolveResult::default()
        };
        if pre.infeasible {
            return Err(fail(stats, SolveError::Infeasible));
        }
        stats.presolve_fixed = pre.num_fixed();
        let sep_sources: Vec<(Vec<(Var, f64)>, f64)> = if self.cuts {
            knap.iter()
                .map(|r| {
                    let rhs = problem.rhs(r.row).unwrap_or(f64::INFINITY);
                    (r.terms.clone(), rhs)
                })
                .chain(pre.tightened.iter().map(|(e, b)| (e.terms().collect(), *b)))
                .collect()
        } else {
            Vec::new()
        };
        let mut seen_cuts: BTreeSet<(Vec<usize>, usize)> = BTreeSet::new();
        // Cuts and tightened rows are appended to this lazily created copy;
        // the caller's problem keeps its row layout for RHS chaining.
        let mut work: Option<Problem> = None;
        let mut tightened_appended = false;

        // A feasible seed becomes the initial incumbent: its objective is a
        // proven bound, so the search only explores what the moved
        // right-hand sides actually improved.  (The objective is
        // re-evaluated — RHS changes never alter it, but the seed may come
        // from an arbitrary caller.)
        let mut incumbent: Option<Solution> = seed
            .filter(|s| problem.is_feasible(&s.values, self.tolerance))
            .map(|s| Solution {
                values: s.values.clone(),
                objective: problem.objective_value(&s.values),
            });
        stats.seeded = incumbent.is_some();

        let mut pc = PseudoCosts::seeded(problem);
        let mut open = match self.node_selection {
            NodeSelection::DepthFirst => OpenList::Dfs(Vec::new()),
            NodeSelection::BestBound => OpenList::Best(BinaryHeap::new()),
        };
        let mut seq = 0u64;
        // The dive slot: the rounded-side child explored immediately after
        // its parent (plunging).  The root starts here.
        let mut dive: Option<Node> = Some(Node {
            fixings: pre.fixings.clone(),
            parent_state: None,
            bound: problem.worst_objective(),
            depth: 0,
            branch: None,
        });

        // Frontier entries currently holding a warm-start state (each state
        // is shared by the two sibling entries), to bound retained memory.
        let mut retained_entries = 0usize;

        while let Some(mut node) = dive.take().or_else(|| open.pop()) {
            if node.parent_state.is_some() {
                retained_entries -= 1;
            }
            // Best-bound queues hold nodes long after their bound went
            // stale; prune against the current incumbent before paying for
            // an LP solve.  (The root is exempt: its "bound" is a sentinel.)
            if node.depth > 0 {
                if let Some(best) = &incumbent {
                    let margin = self.tolerance * best.objective.abs().max(1.0);
                    let improves = problem.is_better(node.bound, best.objective)
                        && (node.bound - best.objective).abs() > margin;
                    if !improves {
                        stats.nodes_pruned += 1;
                        continue;
                    }
                }
            }
            // The wall-clock budget outranks every other stopping rule: an
            // expired deadline ends the search immediately, chained or not,
            // returning whatever incumbent exists.
            if let Some(limit) = self.time_limit {
                if started.elapsed() >= limit {
                    stats.time_limit_hit = true;
                    break;
                }
            }
            if let Some(cap) = chain_cap {
                if stats.nodes_explored >= cap {
                    stats.wall_ms = started.elapsed().as_secs_f64() * 1e3;
                    return Ok(InnerOutcome::ChainAborted(stats, incumbent));
                }
            }
            if stats.nodes_explored >= self.max_nodes {
                stats.budget_exhausted = true;
                break;
            }
            stats.nodes_explored += 1;

            let warm_state = if self.warm_start {
                node.parent_state.take()
            } else {
                None
            };
            let result = if node.depth == 0 && chained {
                // The chained root: same rows and columns as the previous
                // sweep point, only right-hand sides (and possibly presolve
                // fixings) moved — re-enter with the dual simplex from the
                // previous root basis, against the *original* problem so the
                // captured state stays chainable.
                let warm_root = warm_root.expect("chained implies a warm root");
                stats.warm_solves += 1;
                let r = self.lp.reenter(problem, warm_root, &node.fixings);
                stats.warm_pivots += r.pivots;
                r
            } else {
                let cur: &Problem = work.as_ref().unwrap_or(problem);
                match warm_state {
                    Some(state) => {
                        // Only the final fixing is new relative to the
                        // parent's state; everything earlier is already baked
                        // in.  The sibling explored first still shares the Rc
                        // (clone); the second child is the last user and
                        // takes the state without copying the tableau.  A
                        // snapshot that predates newer cut rows is upgraded
                        // by appending them before the dual repair.
                        let last = *node.fixings.last().expect("warm node has a fixing");
                        let state = Rc::try_unwrap(state).unwrap_or_else(|rc| (*rc).clone());
                        stats.warm_solves += 1;
                        let r = if state.num_rows() < cur.num_constraints() {
                            self.lp.resolve_appended_owned(cur, state, &[last])
                        } else {
                            self.lp.resolve_owned(cur, state, &[last])
                        };
                        stats.warm_pivots += r.pivots;
                        r
                    }
                    None => {
                        stats.cold_solves += 1;
                        let r = self.lp.solve_tracked(cur, &node.fixings);
                        stats.cold_pivots += r.pivots;
                        r
                    }
                }
            };
            stats.lp_pivots += result.pivots;
            if node.depth == 0 {
                stats.root_pivots = result.pivots;
                if capture_root {
                    root_state = result.state.clone();
                }
            }

            let (mut relaxed, mut state) = match result.outcome {
                SimplexOutcome::Optimal(s) => (s, result.state),
                SimplexOutcome::Infeasible => continue,
                SimplexOutcome::Unbounded => {
                    // The relaxation being unbounded at the root means the
                    // ILP itself is unbounded (binaries alone cannot bound
                    // a continuous ray).
                    if node.depth == 0 {
                        return Err(fail(stats, SolveError::Unbounded));
                    }
                    continue;
                }
                SimplexOutcome::IterationLimit => {
                    // An LP that ran out of pivots is not node-budget
                    // exhaustion: count it separately and skip the subtree.
                    stats.lp_iteration_limited += 1;
                    continue;
                }
                SimplexOutcome::InvalidModel(why) => {
                    // `problem.check()` passed, so this indicates solver-side
                    // state corruption; surface it rather than mask it.
                    return Err(fail(stats, SolveError::InvalidModel(why)));
                }
            };

            // Pseudo-cost update: how much did this child's bound degrade
            // per unit of the branching move?
            if let Some(step) = node.branch {
                let degradation = match problem.sense() {
                    Sense::Maximize => node.bound - relaxed.objective,
                    Sense::Minimize => relaxed.objective - node.bound,
                }
                .max(0.0);
                pc.record(step, degradation, self.tolerance);
            }

            // Cutting-plane loop at shallow depths: append violated lifted
            // cover cuts (and, once, the presolve-tightened rows) to the
            // solve-local problem and dual-repair the node state over the
            // new rows.  Cuts are globally valid at these budgets, so they
            // strengthen every later node too.
            if node.depth <= self.cut_depth
                && (self.cuts || (self.presolve && node.depth == 0))
                && state.is_some()
            {
                let mut subtree_done = false;
                for _ in 0..MAX_CUT_ROUNDS {
                    if is_integral(&relaxed, &binaries, self.tolerance) {
                        break;
                    }
                    let append_tightened = node.depth == 0
                        && self.presolve
                        && !tightened_appended
                        && !pre.tightened.is_empty();
                    let mut fresh: Vec<(Vec<Var>, f64)> = Vec::new();
                    if self.cuts && stats.cuts_added < self.max_cuts {
                        let budget = self.max_cuts - stats.cuts_added;
                        for (terms, rhs) in &sep_sources {
                            if fresh.len() >= budget {
                                break;
                            }
                            if let Some((vars, cut_rhs)) = cuts::separate_cover(
                                terms,
                                *rhs,
                                &relaxed.values,
                                COVER_VIOLATION_THRESHOLD,
                            ) {
                                let key = (
                                    vars.iter().map(|v| v.index()).collect::<Vec<_>>(),
                                    cut_rhs as usize,
                                );
                                if seen_cuts.insert(key) {
                                    fresh.push((vars, cut_rhs));
                                }
                            }
                        }
                    }
                    if !append_tightened && fresh.is_empty() {
                        break;
                    }
                    let w = work.get_or_insert_with(|| problem.clone());
                    if append_tightened {
                        for (expr, rhs) in &pre.tightened {
                            w.add_constraint(expr.clone(), Cmp::Le, *rhs);
                            stats.cuts_added += 1;
                        }
                        tightened_appended = true;
                    }
                    for (vars, cut_rhs) in fresh {
                        w.add_constraint(
                            LinearExpr::from_terms(vars.iter().map(|v| (*v, 1.0))),
                            Cmp::Le,
                            cut_rhs,
                        );
                        stats.cuts_added += 1;
                    }
                    let st = state.take().expect("cut loop requires a state");
                    let r = self.lp.resolve_appended_owned(w, st, &[]);
                    stats.cut_pivots += r.pivots;
                    stats.lp_pivots += r.pivots;
                    match r.outcome {
                        SimplexOutcome::Optimal(s) => {
                            relaxed = s;
                            state = r.state;
                        }
                        SimplexOutcome::Infeasible | SimplexOutcome::Unbounded => {
                            // Cuts never exclude an integer point, so an
                            // infeasible cut LP proves this subtree holds no
                            // integer solution.
                            subtree_done = true;
                            break;
                        }
                        SimplexOutcome::IterationLimit => {
                            stats.lp_iteration_limited += 1;
                            subtree_done = true;
                            break;
                        }
                        SimplexOutcome::InvalidModel(why) => {
                            return Err(fail(stats, SolveError::InvalidModel(why)));
                        }
                    }
                }
                if subtree_done {
                    continue;
                }
            }

            // Bound: prune unless the relaxation strictly improves on the
            // incumbent.  Ties must be pruned too — the placement models are
            // massively degenerate, and exploring equal-bound nodes can only
            // rediscover equally good solutions at exponential cost.
            if let Some(best) = &incumbent {
                let margin = self.tolerance * best.objective.abs().max(1.0);
                let improves = problem.is_better(relaxed.objective, best.objective)
                    && (relaxed.objective - best.objective).abs() > margin;
                if !improves {
                    stats.nodes_pruned += 1;
                    continue;
                }
            }

            // Pseudo-cost branching: among the fractional binaries, pick the
            // one whose estimated two-sided bound degradation is largest
            // (ties fall to the lowest index, as iteration order is
            // ascending and the comparison strict).
            let mut choice: Option<(Var, f64, f64)> = None;
            for &v in &binaries {
                let val = relaxed.value(v);
                if (val - val.round()).abs() <= self.tolerance {
                    continue;
                }
                let score = pc.score(v.index(), val);
                if choice.is_none_or(|(_, _, best)| score > best) {
                    choice = Some((v, val, score));
                }
            }

            match choice {
                None => {
                    // Integer feasible: candidate incumbent.
                    let mut values = relaxed.values.clone();
                    for v in &binaries {
                        let idx = v.index();
                        values[idx] = values[idx].round();
                    }
                    let objective = problem.objective_value(&values);
                    let candidate = Solution { values, objective };
                    let better = incumbent
                        .as_ref()
                        .is_none_or(|best| problem.is_better(objective, best.objective));
                    if better {
                        incumbent = Some(candidate);
                    }
                }
                Some((v, val, _)) => {
                    let rounded = val.round().clamp(0.0, 1.0);
                    let other = 1.0 - rounded;
                    // Hand the solved state to both children unless warm
                    // starts are disabled or the frontier already retains
                    // its memory budget's worth of snapshots — beyond that,
                    // children re-solve cold.
                    let state = self.warm_start.then_some(state).flatten().map(Rc::new);
                    let bytes = state.as_deref().map_or(0, state_bytes);
                    let state = if state.is_some()
                        && (retained_entries + 2) * (bytes / 2) <= WARM_STATE_MEMORY_BUDGET
                    {
                        retained_entries += 2;
                        state
                    } else {
                        None
                    };
                    let bound = relaxed.objective;
                    // The far child joins the open list; the near (rounded)
                    // child goes straight into the dive slot.
                    let mut far = node.fixings.clone();
                    far.push((v, other));
                    seq += 1;
                    open.push(
                        Node {
                            fixings: far,
                            parent_state: state.clone(),
                            bound,
                            depth: node.depth + 1,
                            branch: Some(BranchStep {
                                var: v,
                                frac: val,
                                up: other > 0.5,
                            }),
                        },
                        key_sign * bound,
                        seq,
                    );
                    let mut near = node.fixings;
                    near.push((v, rounded));
                    dive = Some(Node {
                        fixings: near,
                        parent_state: state,
                        bound,
                        depth: node.depth + 1,
                        branch: Some(BranchStep {
                            var: v,
                            frac: val,
                            up: rounded > 0.5,
                        }),
                    });
                }
            }
        }

        stats.wall_ms = started.elapsed().as_secs_f64() * 1e3;
        match incumbent {
            Some(solution) => Ok(InnerOutcome::Done(Box::new(ChainedSolve {
                solution,
                stats,
                root_state,
                chained,
            }))),
            None if stats.budget_exhausted
                || stats.lp_iteration_limited > 0
                || stats.time_limit_hit =>
            {
                let mut reasons = Vec::new();
                if stats.budget_exhausted {
                    reasons.push(format!("node budget of {} exhausted", self.max_nodes));
                }
                if stats.lp_iteration_limited > 0 {
                    reasons.push(format!(
                        "LP iteration limit hit at {} node(s)",
                        stats.lp_iteration_limited
                    ));
                }
                if stats.time_limit_hit {
                    reasons.push(format!(
                        "wall-clock limit of {:?} expired",
                        self.time_limit.unwrap_or_default()
                    ));
                }
                Err((
                    SolveError::BudgetExhausted(format!(
                        "no integer solution found: {}",
                        reasons.join("; ")
                    )),
                    Box::new(stats),
                ))
            }
            None => Err((SolveError::Infeasible, Box::new(stats))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinearExpr;
    use crate::problem::{Cmp, Sense};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-5, "{a} vs {b}");
    }

    #[test]
    fn knapsack_small() {
        // Items (value, weight): (10,5), (7,4), (4,3), capacity 9 → pick 1 & 2 = 17.
        let values = [10.0, 7.0, 4.0];
        let weights = [5.0, 4.0, 3.0];
        let mut p = Problem::new(Sense::Maximize);
        let xs: Vec<Var> = (0..3).map(|i| p.add_binary(format!("x{i}"))).collect();
        p.add_constraint(
            LinearExpr::from_terms(xs.iter().copied().zip(weights.iter().copied())),
            Cmp::Le,
            9.0,
        );
        p.set_objective(LinearExpr::from_terms(
            xs.iter().copied().zip(values.iter().copied()),
        ));
        let sol = BranchBound::new().solve(&p).unwrap();
        assert_close(sol.objective, 17.0);
        assert!(sol.is_set(xs[0]));
        assert!(sol.is_set(xs[1]));
        assert!(!sol.is_set(xs[2]));
    }

    /// The `knapsack_small` model, returned with its variables.
    fn small_knapsack() -> (Problem, Vec<Var>) {
        let values = [10.0, 7.0, 4.0];
        let weights = [5.0, 4.0, 3.0];
        let mut p = Problem::new(Sense::Maximize);
        let xs: Vec<Var> = (0..3).map(|i| p.add_binary(format!("x{i}"))).collect();
        p.add_constraint(
            LinearExpr::from_terms(xs.iter().copied().zip(weights.iter().copied())),
            Cmp::Le,
            9.0,
        );
        p.set_objective(LinearExpr::from_terms(
            xs.iter().copied().zip(values.iter().copied()),
        ));
        (p, xs)
    }

    #[test]
    fn expired_time_limit_without_incumbent_reports_stats() {
        let (p, _) = small_knapsack();
        let mut solver = BranchBound::new();
        solver.time_limit = Some(Duration::ZERO);
        let (err, stats) = solver.solve_chained_stats(&p, None, None).unwrap_err();
        assert!(
            matches!(err, SolveError::BudgetExhausted(ref why) if why.contains("wall-clock")),
            "unexpected error: {err:?}"
        );
        assert!(stats.time_limit_hit);
        assert!(
            !stats.budget_exhausted,
            "time and node budgets are distinct"
        );
        assert_eq!(stats.nodes_explored, 0, "the search never opened a node");
        assert!(!stats.seeded);
    }

    #[test]
    fn expired_time_limit_returns_the_seeded_incumbent() {
        let (p, xs) = small_knapsack();
        // Feasible but suboptimal: item 2 alone (weight 3, value 4).
        let seed = Solution {
            values: vec![0.0, 0.0, 1.0],
            objective: 4.0,
        };
        let mut solver = BranchBound::new();
        solver.time_limit = Some(Duration::ZERO);
        let run = solver.solve_chained(&p, None, Some(&seed)).unwrap();
        assert_close(run.solution.objective, 4.0);
        assert!(run.solution.is_set(xs[2]));
        assert!(run.stats.time_limit_hit);
        assert!(run.stats.seeded);
        assert_eq!(run.stats.nodes_explored, 0);
    }

    #[test]
    fn generous_time_limit_changes_nothing() {
        let (p, _) = small_knapsack();
        let mut solver = BranchBound::new();
        solver.time_limit = Some(Duration::from_secs(3600));
        let run = solver.solve_chained(&p, None, None).unwrap();
        assert_close(run.solution.objective, 17.0);
        assert!(!run.stats.time_limit_hit);
        let plain = BranchBound::new().solve(&p).unwrap();
        assert_eq!(run.solution.values, plain.values);
    }

    #[test]
    fn budget_exhausted_error_carries_the_attempt_stats() {
        let (p, _) = small_knapsack();
        let mut solver = BranchBound::new();
        solver.max_nodes = 0;
        let (err, stats) = solver.solve_chained_stats(&p, None, None).unwrap_err();
        assert!(matches!(err, SolveError::BudgetExhausted(_)));
        assert!(stats.budget_exhausted);
        assert!(!stats.time_limit_hit);
        assert!(stats.wall_ms >= 0.0);
    }

    #[test]
    fn pure_lp_passes_through() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_continuous("x", 0.0, None);
        p.add_constraint(LinearExpr::var(x), Cmp::Ge, 2.0);
        p.set_objective(LinearExpr::var(x));
        let sol = BranchBound::new().solve(&p).unwrap();
        assert_close(sol.value(x), 2.0);
    }

    #[test]
    fn infeasible_integer_problem() {
        // x + y = 1.5 with x, y binary is LP-feasible but has no integer point.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_binary("x");
        let y = p.add_binary("y");
        p.add_constraint(LinearExpr::from_terms([(x, 1.0), (y, 1.0)]), Cmp::Eq, 1.5);
        p.set_objective(LinearExpr::from_terms([(x, 1.0), (y, 1.0)]));
        assert_eq!(BranchBound::new().solve(&p), Err(SolveError::Infeasible));
    }

    #[test]
    fn equality_selection() {
        // Exactly two of four items, minimize cost.
        let costs = [5.0, 1.0, 3.0, 2.0];
        let mut p = Problem::new(Sense::Minimize);
        let xs: Vec<Var> = (0..4).map(|i| p.add_binary(format!("x{i}"))).collect();
        p.add_constraint(
            LinearExpr::from_terms(xs.iter().map(|v| (*v, 1.0))),
            Cmp::Eq,
            2.0,
        );
        p.set_objective(LinearExpr::from_terms(
            xs.iter().copied().zip(costs.iter().copied()),
        ));
        let sol = BranchBound::new().solve(&p).unwrap();
        assert_close(sol.objective, 3.0);
        assert!(sol.is_set(xs[1]) && sol.is_set(xs[3]));
    }

    #[test]
    fn mixed_integer_problem() {
        // max 2x + 3b s.t. x + 4b <= 5, x <= 3, b binary → b=1, x=1? obj=5 vs b=0,x=3 obj=6.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_continuous("x", 0.0, Some(3.0));
        let b = p.add_binary("b");
        p.add_constraint(LinearExpr::from_terms([(x, 1.0), (b, 4.0)]), Cmp::Le, 5.0);
        p.set_objective(LinearExpr::from_terms([(x, 2.0), (b, 3.0)]));
        let sol = BranchBound::new().solve(&p).unwrap();
        assert_close(sol.objective, 6.0);
        assert!(!sol.is_set(b));
        assert_close(sol.value(x), 3.0);
    }

    #[test]
    fn stats_are_reported() {
        let mut p = Problem::new(Sense::Maximize);
        let xs: Vec<Var> = (0..6).map(|i| p.add_binary(format!("x{i}"))).collect();
        p.add_constraint(
            LinearExpr::from_terms(xs.iter().map(|v| (*v, 1.0))),
            Cmp::Le,
            3.0,
        );
        p.set_objective(LinearExpr::from_terms(
            xs.iter().enumerate().map(|(i, v)| (*v, 1.0 + i as f64)),
        ));
        let (sol, stats) = BranchBound::new().solve_with_stats(&p).unwrap();
        assert_close(sol.objective, 4.0 + 5.0 + 6.0);
        assert!(stats.nodes_explored >= 1);
        assert!(!stats.budget_exhausted);
        assert_eq!(stats.lp_iteration_limited, 0);
        assert_eq!(
            stats.warm_solves + stats.cold_solves,
            stats.nodes_explored,
            "every explored node is either warm or cold"
        );
        assert_eq!(
            stats.lp_pivots,
            stats.warm_pivots + stats.cold_pivots + stats.cut_pivots,
            "every pivot is a warm, cold or cut-repair pivot"
        );
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let mut p = Problem::new(Sense::Maximize);
        let xs: Vec<Var> = (0..10).map(|i| p.add_binary(format!("x{i}"))).collect();
        p.add_constraint(
            LinearExpr::from_terms(xs.iter().map(|v| (*v, 1.0))),
            Cmp::Le,
            5.0,
        );
        p.set_objective(LinearExpr::from_terms(xs.iter().map(|v| (*v, 1.0))));
        let solver = BranchBound {
            max_nodes: 0,
            ..BranchBound::default()
        };
        match solver.solve(&p) {
            Err(SolveError::BudgetExhausted(msg)) => {
                assert!(msg.contains("node budget"), "message was: {msg}");
                assert!(!msg.contains("LP iteration"), "no LP limit was hit: {msg}");
            }
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
    }

    #[test]
    fn lp_iteration_limit_is_not_conflated_with_node_budget() {
        // Regression: a single node's LP hitting its pivot budget used to be
        // reported as "no integer solution within N nodes".  The LP limit
        // and the node budget are now tracked and reported separately.
        let mut p = Problem::new(Sense::Maximize);
        let xs: Vec<Var> = (0..8).map(|i| p.add_binary(format!("x{i}"))).collect();
        let weights = [3.0, 5.0, 2.0, 7.0, 4.0, 1.0, 6.0, 2.5];
        p.add_constraint(
            LinearExpr::from_terms(xs.iter().copied().zip(weights.iter().copied())),
            Cmp::Le,
            11.0,
        );
        p.add_constraint(
            LinearExpr::from_terms(xs.iter().map(|v| (*v, 1.0))),
            Cmp::Ge,
            2.0,
        );
        p.set_objective(LinearExpr::from_terms(
            xs.iter().enumerate().map(|(i, v)| (*v, 2.0 + i as f64)),
        ));
        let solver = BranchBound {
            lp: SimplexSolver {
                max_iterations: 1,
                ..SimplexSolver::default()
            },
            ..BranchBound::default()
        };
        match solver.solve_with_stats(&p) {
            Err(SolveError::BudgetExhausted(msg)) => {
                assert!(msg.contains("LP iteration"), "message was: {msg}");
                assert!(!msg.contains("node budget"), "message was: {msg}");
            }
            other => panic!("expected BudgetExhausted from LP limits, got {other:?}"),
        }
    }

    #[test]
    fn solution_respects_all_constraints() {
        let mut p = Problem::new(Sense::Maximize);
        let xs: Vec<Var> = (0..8).map(|i| p.add_binary(format!("x{i}"))).collect();
        let weights = [3.0, 5.0, 2.0, 7.0, 4.0, 1.0, 6.0, 2.5];
        let values = [4.0, 6.0, 3.0, 8.0, 5.0, 1.0, 7.0, 3.5];
        p.add_constraint(
            LinearExpr::from_terms(xs.iter().copied().zip(weights.iter().copied())),
            Cmp::Le,
            12.0,
        );
        // Pairwise exclusion: x0 + x1 <= 1.
        p.add_constraint(
            LinearExpr::from_terms([(xs[0], 1.0), (xs[1], 1.0)]),
            Cmp::Le,
            1.0,
        );
        p.set_objective(LinearExpr::from_terms(
            xs.iter().copied().zip(values.iter().copied()),
        ));
        let sol = BranchBound::new().solve(&p).unwrap();
        assert!(p.is_feasible(&sol.values, 1e-6));
    }

    /// A selection instance big enough that branching happens.
    fn branching_instance() -> Problem {
        let mut p = Problem::new(Sense::Maximize);
        let xs: Vec<Var> = (0..12).map(|i| p.add_binary(format!("x{i}"))).collect();
        let weights = [3.0, 5.0, 2.0, 7.0, 4.0, 1.0, 6.0, 2.5, 3.5, 4.5, 1.5, 5.5];
        let values = [4.0, 6.0, 3.0, 8.0, 5.0, 1.0, 7.0, 3.5, 4.2, 5.1, 2.2, 6.3];
        p.add_constraint(
            LinearExpr::from_terms(xs.iter().copied().zip(weights.iter().copied())),
            Cmp::Le,
            17.0,
        );
        p.add_constraint(
            LinearExpr::from_terms([(xs[0], 1.0), (xs[3], 1.0), (xs[6], 1.0)]),
            Cmp::Le,
            2.0,
        );
        p.set_objective(LinearExpr::from_terms(
            xs.iter().copied().zip(values.iter().copied()),
        ));
        p
    }

    #[test]
    fn chained_sweep_matches_cold_per_budget_solves() {
        // Sweep the knapsack capacity row: each chained solve must match a
        // cold solve of the same mutated problem exactly, and the chained
        // roots must be warm (no cold re-solve of the root relaxation).
        let mut p = branching_instance();
        let solver = BranchBound::new();
        let mut root = None;
        let mut seed = None;
        for capacity in [17.0, 12.0, 9.0, 6.0, 3.0, 0.0, 14.0] {
            p.set_rhs(0, capacity).unwrap();
            let run = solver
                .solve_chained(&p, root.as_ref(), seed.as_ref())
                .expect("chained solve");
            let (cold, _) = solver.solve_with_stats(&p).expect("cold solve");
            assert_close(run.solution.objective, cold.objective);
            assert!(p.is_feasible(&run.solution.values, 1e-6));
            assert_eq!(run.chained, root.is_some());
            if run.chained {
                assert!(
                    run.stats.warm_solves >= 1,
                    "a chained root must count as a warm solve"
                );
            }
            assert!(run.root_state.is_some(), "feasible solves keep the root");
            root = run.root_state;
            seed = Some(run.solution);
        }
    }

    #[test]
    fn relaxing_sweeps_keep_seeds_feasible_and_reenter_roots_cheaply() {
        // Sweeping the capacity *up* keeps the previous optimum feasible, so
        // every chained point starts seeded; a point whose right-hand side
        // did not move at all re-enters its root with zero pivots (the dual
        // simplex has nothing to repair).  The seed bounds the search — it
        // cannot collapse trees whose LP bound sits above the integer
        // optimum, but the answer must stay exactly the cold one.
        let mut p = branching_instance();
        let solver = BranchBound::new();
        let mut root = None;
        let mut seed: Option<Solution> = None;
        let mut prev_objective = f64::NEG_INFINITY;
        let mut prev_capacity = f64::NAN;
        for capacity in [3.0, 6.0, 9.0, 9.0, 12.0, 17.0, 40.0, 40.0] {
            p.set_rhs(0, capacity).unwrap();
            let run = solver
                .solve_chained(&p, root.as_ref(), seed.as_ref())
                .expect("chained solve");
            let (cold, _) = solver.solve_with_stats(&p).expect("cold solve");
            assert_close(run.solution.objective, cold.objective);
            assert_eq!(
                run.stats.seeded,
                seed.is_some(),
                "relaxed seeds stay feasible"
            );
            assert!(
                run.solution.objective >= prev_objective - 1e-9,
                "relaxing a budget never hurts"
            );
            if capacity == prev_capacity {
                assert_eq!(
                    run.stats.root_pivots, 0,
                    "an unmoved right-hand side needs no root repair"
                );
            }
            prev_objective = run.solution.objective;
            prev_capacity = capacity;
            root = run.root_state;
            seed = Some(run.solution);
        }
    }

    #[test]
    fn chained_root_state_survives_infeasible_points() {
        // An infeasible sweep point returns an error; the caller keeps the
        // previous root and the chain continues unharmed.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_binary("x");
        let y = p.add_binary("y");
        p.add_constraint(LinearExpr::from_terms([(x, 1.0), (y, 1.0)]), Cmp::Le, 2.0);
        p.add_constraint(LinearExpr::from_terms([(x, 1.0), (y, 1.0)]), Cmp::Ge, 1.0);
        p.set_objective(LinearExpr::from_terms([(x, 3.0), (y, 2.0)]));
        let solver = BranchBound::new();
        let first = solver.solve_chained(&p, None, None).expect("feasible");
        let root = first.root_state.expect("root state");
        p.set_rhs(0, 0.0).unwrap();
        assert_eq!(
            solver.solve_chained(&p, Some(&root), None).err(),
            Some(SolveError::Infeasible)
        );
        p.set_rhs(0, 1.0).unwrap();
        let resumed = solver
            .solve_chained(&p, Some(&root), None)
            .expect("feasible");
        assert_close(resumed.solution.objective, 3.0);
    }

    #[test]
    fn warm_start_matches_cold_start_and_pivots_less_per_node() {
        let p = branching_instance();
        let warm = BranchBound::new();
        let cold = BranchBound {
            warm_start: false,
            ..BranchBound::default()
        };
        let (ws, wstats) = warm.solve_with_stats(&p).unwrap();
        let (cs, cstats) = cold.solve_with_stats(&p).unwrap();
        assert_close(ws.objective, cs.objective);
        assert!(wstats.warm_solves > 0, "branching must warm-start children");
        assert_eq!(cstats.warm_solves, 0);
        // Per-node pivot cost: warm-started children must be strictly
        // cheaper than the cold nodes of the cold run.
        let warm_per_node = wstats.warm_pivots as f64 / wstats.warm_solves as f64;
        let cold_per_node = cstats.cold_pivots as f64 / cstats.cold_solves as f64;
        assert!(
            warm_per_node < cold_per_node,
            "warm {warm_per_node:.2} pivots/node vs cold {cold_per_node:.2}"
        );
    }

    #[test]
    fn best_bound_and_depth_first_agree_on_the_optimum() {
        let p = branching_instance();
        let best = BranchBound::new();
        let dfs = BranchBound {
            node_selection: NodeSelection::DepthFirst,
            ..BranchBound::default()
        };
        let a = best.solve(&p).unwrap();
        let b = dfs.solve(&p).unwrap();
        assert_close(a.objective, b.objective);
    }

    #[test]
    fn presolve_fixes_are_reported_and_do_not_change_the_optimum() {
        // The 30-weight item overflows the budget alone: presolve fixes it
        // to 0 before the tree starts.
        let mut p = Problem::new(Sense::Maximize);
        let xs: Vec<Var> = (0..5).map(|i| p.add_binary(format!("x{i}"))).collect();
        let weights = [30.0, 5.0, 4.0, 3.0, 2.0];
        let values = [100.0, 6.0, 5.0, 4.0, 3.0];
        p.add_constraint(
            LinearExpr::from_terms(xs.iter().copied().zip(weights.iter().copied())),
            Cmp::Le,
            10.0,
        );
        p.set_objective(LinearExpr::from_terms(
            xs.iter().copied().zip(values.iter().copied()),
        ));
        let (sol, stats) = BranchBound::new().solve_with_stats(&p).unwrap();
        let plain = BranchBound {
            presolve: false,
            cuts: false,
            ..BranchBound::default()
        };
        let bare = plain.solve(&p).unwrap();
        assert_close(sol.objective, bare.objective);
        assert!(!sol.is_set(xs[0]));
        assert!(stats.presolve_fixed >= 1, "the overflow fixing is reported");
    }

    #[test]
    fn chain_cap_clamps_to_the_node_budget() {
        // Regression: a fallback threshold at or above max_nodes used to
        // disable the bounded-regret guard entirely, so a bad chained root
        // could silently eat the whole node budget with no cold restart.
        let clamped = BranchBound {
            chain_fallback_nodes: 512,
            max_nodes: 100,
            ..BranchBound::default()
        };
        assert_eq!(clamped.chain_cap(), Some(100));
        let normal = BranchBound {
            chain_fallback_nodes: 512,
            max_nodes: 20_000,
            ..BranchBound::default()
        };
        assert_eq!(normal.chain_cap(), Some(512));
        let disabled = BranchBound {
            chain_fallback_nodes: usize::MAX,
            max_nodes: 100,
            ..BranchBound::default()
        };
        assert_eq!(disabled.chain_cap(), None);
    }

    #[test]
    fn aborted_chain_fallback_reports_only_the_final_root_pivots() {
        // Regression: the fallback used to *add* the aborted attempt's root
        // pivots onto the retry's, so root_pivots described no real root.
        // Cuts and presolve are off so the fractional root guarantees the
        // tree needs a second node and the cap of 1 forces the abort.
        let mut p = branching_instance();
        let solver = BranchBound {
            chain_fallback_nodes: 1,
            cuts: false,
            presolve: false,
            ..BranchBound::default()
        };
        let first = solver.solve_chained(&p, None, None).unwrap();
        let root = first.root_state.expect("root state");
        p.set_rhs(0, 12.0).unwrap();
        let chained = solver.solve_chained(&p, Some(&root), None).unwrap();
        let plain = solver.solve_chained(&p, None, None).unwrap();
        assert_close(chained.solution.objective, plain.solution.objective);
        assert_eq!(
            chained.stats.root_pivots, plain.stats.root_pivots,
            "root_pivots must be the final (cold) root's count alone"
        );
        assert!(
            chained.stats.nodes_explored > plain.stats.nodes_explored,
            "the aborted attempt's nodes still count toward the totals"
        );
    }

    #[test]
    fn fallback_preserves_the_callers_seeding_and_reports_wall_time() {
        let mut p = branching_instance();
        p.set_rhs(0, 12.0).unwrap();
        let solver = BranchBound {
            chain_fallback_nodes: 3,
            cuts: false,
            presolve: false,
            ..BranchBound::default()
        };
        let first = solver.solve_chained(&p, None, None).unwrap();
        let root = first.root_state.clone().expect("root state");
        let seed = first.solution.clone();
        // Relaxing 12 → 17 keeps the seed feasible; with a cap of 3 the
        // chained attempt may abort and retry, and the retry internally
        // re-seeds itself from the aborted incumbent — but `seeded` must
        // keep reporting the *caller's* seed either way.
        p.set_rhs(0, 17.0).unwrap();
        let seeded = solver.solve_chained(&p, Some(&root), Some(&seed)).unwrap();
        assert!(seeded.stats.seeded, "the caller's seed survives a fallback");
        assert!(seeded.stats.wall_ms > 0.0);
        let unseeded = solver.solve_chained(&p, Some(&root), None).unwrap();
        assert!(
            !unseeded.stats.seeded,
            "an internal re-seed must not report as caller-seeded"
        );
        assert!(unseeded.stats.wall_ms > 0.0);
    }
}
