//! Branch-and-bound 0-1 ILP solver over the simplex relaxation.
//!
//! Branching fixes one fractional binary variable to 0 and to 1 in turn; the
//! LP relaxation of each node provides the bound used for pruning.  The
//! search is depth-first with the "most fractional variable" branching rule,
//! exploring the rounded value first so that good incumbents appear early.

use crate::expr::Var;
use crate::problem::{Problem, Solution, SolveError};
use crate::simplex::{SimplexOutcome, SimplexSolver};

/// Statistics about a branch-and-bound run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BranchBoundStats {
    /// Number of nodes whose relaxation was solved.
    pub nodes_explored: usize,
    /// Number of nodes pruned by bound.
    pub nodes_pruned: usize,
    /// Whether the node budget was exhausted (the returned solution is then
    /// the best incumbent, not necessarily optimal).
    pub budget_exhausted: bool,
}

/// A 0-1 ILP solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BranchBound {
    /// LP solver used for the relaxations.
    pub lp: SimplexSolver,
    /// Maximum number of branch-and-bound nodes to explore.
    pub max_nodes: usize,
    /// Integrality tolerance.
    pub tolerance: f64,
}

impl Default for BranchBound {
    fn default() -> Self {
        BranchBound {
            lp: SimplexSolver::default(),
            max_nodes: 20_000,
            tolerance: 1e-6,
        }
    }
}

impl BranchBound {
    /// A solver with default budgets.
    pub fn new() -> BranchBound {
        BranchBound::default()
    }

    /// Solve the problem to optimality (within the node budget).
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Infeasible`] or [`SolveError::Unbounded`] when
    /// the problem has no optimal solution, [`SolveError::BudgetExhausted`]
    /// when the node budget ran out before any integer-feasible solution was
    /// found, and [`SolveError::InvalidModel`] for malformed models.
    pub fn solve(&self, problem: &Problem) -> Result<Solution, SolveError> {
        self.solve_with_stats(problem).map(|(s, _)| s)
    }

    /// Solve and also report search statistics.
    ///
    /// # Errors
    ///
    /// See [`BranchBound::solve`].
    pub fn solve_with_stats(
        &self,
        problem: &Problem,
    ) -> Result<(Solution, BranchBoundStats), SolveError> {
        problem.check()?;
        let mut stats = BranchBoundStats::default();
        let mut incumbent: Option<Solution> = None;

        // Each stack entry is a set of fixings to apply on top of the problem.
        let mut stack: Vec<Vec<(Var, f64)>> = vec![Vec::new()];

        while let Some(fixings) = stack.pop() {
            if stats.nodes_explored >= self.max_nodes {
                stats.budget_exhausted = true;
                break;
            }
            stats.nodes_explored += 1;

            let outcome = self.lp.solve_relaxation(problem, &fixings);
            let relaxed = match outcome {
                SimplexOutcome::Optimal(s) => s,
                SimplexOutcome::Infeasible => continue,
                SimplexOutcome::Unbounded => {
                    // The relaxation being unbounded at the root means the
                    // ILP itself is unbounded (binaries alone cannot bound
                    // a continuous ray).
                    if fixings.is_empty() {
                        return Err(SolveError::Unbounded);
                    }
                    continue;
                }
                SimplexOutcome::IterationLimit => {
                    stats.budget_exhausted = true;
                    continue;
                }
            };

            // Bound: prune unless the relaxation strictly improves on the
            // incumbent.  Ties must be pruned too — the placement models are
            // massively degenerate, and exploring equal-bound nodes can only
            // rediscover equally good solutions at exponential cost.
            if let Some(best) = &incumbent {
                let margin = self.tolerance * best.objective.abs().max(1.0);
                let improves = problem.is_better(relaxed.objective, best.objective)
                    && (relaxed.objective - best.objective).abs() > margin;
                if !improves {
                    stats.nodes_pruned += 1;
                    continue;
                }
            }

            // Find the most fractional binary variable.
            let mut branch_var: Option<Var> = None;
            let mut most_fractional = self.tolerance;
            for v in problem.binary_vars() {
                let val = relaxed.value(v);
                let frac = (val - val.round()).abs();
                if frac > most_fractional {
                    most_fractional = frac;
                    branch_var = Some(v);
                }
            }

            match branch_var {
                None => {
                    // Integer feasible: candidate incumbent.
                    let mut values = relaxed.values.clone();
                    for v in problem.binary_vars() {
                        let idx = v.index();
                        values[idx] = values[idx].round();
                    }
                    let objective = problem.objective_value(&values);
                    let candidate = Solution { values, objective };
                    let better = incumbent
                        .as_ref()
                        .is_none_or(|best| problem.is_better(objective, best.objective));
                    if better {
                        incumbent = Some(candidate);
                    }
                }
                Some(v) => {
                    let val = relaxed.value(v);
                    let rounded = val.round().clamp(0.0, 1.0);
                    let other = 1.0 - rounded;
                    // Explore the rounded branch first (pushed last).
                    let mut far = fixings.clone();
                    far.push((v, other));
                    stack.push(far);
                    let mut near = fixings;
                    near.push((v, rounded));
                    stack.push(near);
                }
            }
        }

        match incumbent {
            Some(sol) => Ok((sol, stats)),
            None if stats.budget_exhausted => Err(SolveError::BudgetExhausted(format!(
                "no integer solution within {} nodes",
                self.max_nodes
            ))),
            None => Err(SolveError::Infeasible),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinearExpr;
    use crate::problem::{Cmp, Sense};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-5, "{a} vs {b}");
    }

    #[test]
    fn knapsack_small() {
        // Items (value, weight): (10,5), (7,4), (4,3), capacity 9 → pick 1 & 2 = 17.
        let values = [10.0, 7.0, 4.0];
        let weights = [5.0, 4.0, 3.0];
        let mut p = Problem::new(Sense::Maximize);
        let xs: Vec<Var> = (0..3).map(|i| p.add_binary(format!("x{i}"))).collect();
        p.add_constraint(
            LinearExpr::from_terms(xs.iter().copied().zip(weights.iter().copied())),
            Cmp::Le,
            9.0,
        );
        p.set_objective(LinearExpr::from_terms(
            xs.iter().copied().zip(values.iter().copied()),
        ));
        let sol = BranchBound::new().solve(&p).unwrap();
        assert_close(sol.objective, 17.0);
        assert!(sol.is_set(xs[0]));
        assert!(sol.is_set(xs[1]));
        assert!(!sol.is_set(xs[2]));
    }

    #[test]
    fn pure_lp_passes_through() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_continuous("x", 0.0, None);
        p.add_constraint(LinearExpr::var(x), Cmp::Ge, 2.0);
        p.set_objective(LinearExpr::var(x));
        let sol = BranchBound::new().solve(&p).unwrap();
        assert_close(sol.value(x), 2.0);
    }

    #[test]
    fn infeasible_integer_problem() {
        // x + y = 1.5 with x, y binary is LP-feasible but has no integer point.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_binary("x");
        let y = p.add_binary("y");
        p.add_constraint(LinearExpr::from_terms([(x, 1.0), (y, 1.0)]), Cmp::Eq, 1.5);
        p.set_objective(LinearExpr::from_terms([(x, 1.0), (y, 1.0)]));
        assert_eq!(BranchBound::new().solve(&p), Err(SolveError::Infeasible));
    }

    #[test]
    fn equality_selection() {
        // Exactly two of four items, minimize cost.
        let costs = [5.0, 1.0, 3.0, 2.0];
        let mut p = Problem::new(Sense::Minimize);
        let xs: Vec<Var> = (0..4).map(|i| p.add_binary(format!("x{i}"))).collect();
        p.add_constraint(
            LinearExpr::from_terms(xs.iter().map(|v| (*v, 1.0))),
            Cmp::Eq,
            2.0,
        );
        p.set_objective(LinearExpr::from_terms(
            xs.iter().copied().zip(costs.iter().copied()),
        ));
        let sol = BranchBound::new().solve(&p).unwrap();
        assert_close(sol.objective, 3.0);
        assert!(sol.is_set(xs[1]) && sol.is_set(xs[3]));
    }

    #[test]
    fn mixed_integer_problem() {
        // max 2x + 3b s.t. x + 4b <= 5, x <= 3, b binary → b=1, x=1? obj=5 vs b=0,x=3 obj=6.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_continuous("x", 0.0, Some(3.0));
        let b = p.add_binary("b");
        p.add_constraint(LinearExpr::from_terms([(x, 1.0), (b, 4.0)]), Cmp::Le, 5.0);
        p.set_objective(LinearExpr::from_terms([(x, 2.0), (b, 3.0)]));
        let sol = BranchBound::new().solve(&p).unwrap();
        assert_close(sol.objective, 6.0);
        assert!(!sol.is_set(b));
        assert_close(sol.value(x), 3.0);
    }

    #[test]
    fn stats_are_reported() {
        let mut p = Problem::new(Sense::Maximize);
        let xs: Vec<Var> = (0..6).map(|i| p.add_binary(format!("x{i}"))).collect();
        p.add_constraint(
            LinearExpr::from_terms(xs.iter().map(|v| (*v, 1.0))),
            Cmp::Le,
            3.0,
        );
        p.set_objective(LinearExpr::from_terms(
            xs.iter().enumerate().map(|(i, v)| (*v, 1.0 + i as f64)),
        ));
        let (sol, stats) = BranchBound::new().solve_with_stats(&p).unwrap();
        assert_close(sol.objective, 4.0 + 5.0 + 6.0);
        assert!(stats.nodes_explored >= 1);
        assert!(!stats.budget_exhausted);
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let mut p = Problem::new(Sense::Maximize);
        let xs: Vec<Var> = (0..10).map(|i| p.add_binary(format!("x{i}"))).collect();
        p.add_constraint(
            LinearExpr::from_terms(xs.iter().map(|v| (*v, 1.0))),
            Cmp::Le,
            5.0,
        );
        p.set_objective(LinearExpr::from_terms(xs.iter().map(|v| (*v, 1.0))));
        let solver = BranchBound {
            max_nodes: 0,
            ..BranchBound::default()
        };
        assert!(matches!(
            solver.solve(&p),
            Err(SolveError::BudgetExhausted(_))
        ));
    }

    #[test]
    fn solution_respects_all_constraints() {
        let mut p = Problem::new(Sense::Maximize);
        let xs: Vec<Var> = (0..8).map(|i| p.add_binary(format!("x{i}"))).collect();
        let weights = [3.0, 5.0, 2.0, 7.0, 4.0, 1.0, 6.0, 2.5];
        let values = [4.0, 6.0, 3.0, 8.0, 5.0, 1.0, 7.0, 3.5];
        p.add_constraint(
            LinearExpr::from_terms(xs.iter().copied().zip(weights.iter().copied())),
            Cmp::Le,
            12.0,
        );
        // Pairwise exclusion: x0 + x1 <= 1.
        p.add_constraint(
            LinearExpr::from_terms([(xs[0], 1.0), (xs[1], 1.0)]),
            Cmp::Le,
            1.0,
        );
        p.set_objective(LinearExpr::from_terms(
            xs.iter().copied().zip(values.iter().copied()),
        ));
        let sol = BranchBound::new().solve(&p).unwrap();
        assert!(p.is_feasible(&sol.values, 1e-6));
    }
}
