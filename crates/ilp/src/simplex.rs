//! A dense bounded-variable simplex solver for the LP relaxation.
//!
//! Variable bounds `l ≤ x ≤ u` are handled **natively** in the ratio test
//! (nonbasic variables may rest at either bound and can "bound-flip" without
//! a pivot), so binary upper bounds and branch-and-bound fixings generate no
//! tableau rows and no artificial columns: the tableau has exactly one row
//! per constraint.  For the paper's placement models this shrinks every
//! relaxation solve by roughly 3× in rows compared with the earlier
//! formulation that added one `x ≤ u` row per binary.
//!
//! The solver is still deliberately dense and straightforward — the
//! flash/RAM placement models are a few hundred variables and constraints —
//! with Dantzig pricing and an anti-cycling fallback to Bland's rule that is
//! triggered by *detected degeneracy* (a long run of zero-progress pivots)
//! and resets whenever the objective moves, so a long phase 1 can never
//! leave phase 2 stuck in slow Bland mode.
//!
//! Two entry points matter to callers:
//!
//! * [`SimplexSolver::solve_tracked`] — a cold two-phase solve that returns
//!   the optimal [`LpState`] alongside the solution, and
//! * [`SimplexSolver::resolve_with_fixings`] — a **dual simplex** re-solve
//!   from a previously solved state after tightening variable bounds, used
//!   by branch-and-bound to warm-start child nodes.

use crate::basis::LpState;
use crate::expr::Var;
use crate::problem::{Cmp, Problem, Sense, Solution, VarKind};

/// Result of an LP relaxation solve.
#[derive(Debug, Clone, PartialEq)]
pub enum SimplexOutcome {
    /// An optimal solution of the relaxation.
    Optimal(Solution),
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
    /// The iteration budget was exhausted before reaching optimality.
    IterationLimit,
    /// The model is structurally malformed (an expression references an
    /// undefined variable, or a bound is not a number).  Distinct from
    /// [`SimplexOutcome::Infeasible`]: an invalid model indicates a bug in
    /// the caller, not an over-constrained model.
    InvalidModel(String),
}

impl SimplexOutcome {
    /// The solution, if the outcome is optimal.
    pub fn solution(self) -> Option<Solution> {
        match self {
            SimplexOutcome::Optimal(s) => Some(s),
            _ => None,
        }
    }
}

/// Outcome of a tracked LP solve: the result, the pivot count, and — when
/// optimal — the solved state for warm starts.
#[derive(Debug, Clone)]
pub struct LpResult {
    /// What the solve concluded.
    pub outcome: SimplexOutcome,
    /// Number of basis changes performed (bound flips excluded).
    pub pivots: usize,
    /// The solved tableau state, present when the outcome is optimal.
    pub state: Option<LpState>,
}

impl LpResult {
    fn plain(outcome: SimplexOutcome, pivots: usize) -> LpResult {
        LpResult {
            outcome,
            pivots,
            state: None,
        }
    }
}

/// Configuration of the simplex solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimplexSolver {
    /// Maximum number of iterations (pivots and bound flips) per solve.
    pub max_iterations: usize,
    /// Numerical tolerance.
    pub tolerance: f64,
}

impl Default for SimplexSolver {
    fn default() -> Self {
        SimplexSolver {
            max_iterations: 50_000,
            tolerance: 1e-7,
        }
    }
}

/// Consecutive degenerate (zero-progress) iterations before the pricing
/// falls back to Bland's rule.  Any progress resets the counter, so the
/// anti-cycling mode is entered per detected stall — never inherited from an
/// earlier phase.
const DEGENERACY_STREAK: usize = 64;

enum PhaseResult {
    Optimal,
    Unbounded,
    IterationLimit,
}

impl SimplexSolver {
    /// Create a solver with default limits.
    pub fn new() -> SimplexSolver {
        SimplexSolver::default()
    }

    /// Solve the LP relaxation of `problem` (binary variables relaxed to
    /// `[0,1]`), optionally with extra fixings `(var, value)` used by
    /// branch-and-bound.  Fixings are applied as degenerate bounds
    /// (`lower = upper = value`), never as rows.
    pub fn solve_relaxation(&self, problem: &Problem, fixings: &[(Var, f64)]) -> SimplexOutcome {
        self.solve_tracked(problem, fixings).outcome
    }

    /// Like [`SimplexSolver::solve_relaxation`], but also returns the pivot
    /// count and (on optimality) the solved [`LpState`] for warm starts.
    pub fn solve_tracked(&self, problem: &Problem, fixings: &[(Var, f64)]) -> LpResult {
        if let Err(e) = problem.check() {
            return LpResult::plain(SimplexOutcome::InvalidModel(e.to_string()), 0);
        }
        let n = problem.num_vars();

        // Native bounds per structural variable.
        let mut lo = vec![0.0f64; n];
        let mut up = vec![f64::INFINITY; n];
        for (i, def) in problem.vars().iter().enumerate() {
            match def.kind {
                VarKind::Binary => {
                    lo[i] = 0.0;
                    up[i] = 1.0;
                }
                VarKind::Continuous { lower, upper } => {
                    if !lower.is_finite() {
                        return LpResult::plain(
                            SimplexOutcome::InvalidModel(format!(
                                "variable {} has a non-finite lower bound",
                                def.name
                            )),
                            0,
                        );
                    }
                    if upper.is_some_and(f64::is_nan) {
                        return LpResult::plain(
                            SimplexOutcome::InvalidModel(format!(
                                "variable {} has a NaN upper bound",
                                def.name
                            )),
                            0,
                        );
                    }
                    lo[i] = lower;
                    up[i] = upper.unwrap_or(f64::INFINITY);
                }
            }
        }
        for (v, val) in fixings {
            if v.index() >= n {
                return LpResult::plain(
                    SimplexOutcome::InvalidModel(format!(
                        "fixing references {v} but only {n} variables are defined"
                    )),
                    0,
                );
            }
            if !val.is_finite() {
                return LpResult::plain(
                    SimplexOutcome::InvalidModel(format!("fixing of {v} to {val} is not finite")),
                    0,
                );
            }
            lo[v.index()] = *val;
            up[v.index()] = *val;
        }
        for i in 0..n {
            if lo[i] > up[i] + self.tolerance {
                return LpResult::plain(SimplexOutcome::Infeasible, 0);
            }
        }

        let state = self.build_state(problem, lo, up);
        self.solve_state(problem, state)
    }

    /// Re-solve from a previously solved state after tightening bounds: each
    /// `(var, value)` fixing sets `lower = upper = value`.  The parent's
    /// reduced costs stay dual feasible under bound changes, so the **dual
    /// simplex** restores primal feasibility from the parent basis — usually
    /// in a handful of pivots instead of a full cold solve.
    pub fn resolve_with_fixings(
        &self,
        problem: &Problem,
        parent: &LpState,
        fixings: &[(Var, f64)],
    ) -> LpResult {
        self.resolve_owned(problem, parent.clone(), fixings)
    }

    /// Like [`SimplexSolver::resolve_with_fixings`], but consumes the state,
    /// sparing the tableau copy when the caller is its last user (as
    /// branch-and-bound is for the second child of every node).
    pub fn resolve_owned(
        &self,
        problem: &Problem,
        mut st: LpState,
        fixings: &[(Var, f64)],
    ) -> LpResult {
        if let Err(e) = self.apply_fixings(&mut st, fixings) {
            return *e;
        }
        self.repair_and_extract(problem, st)
    }

    /// Tighten `(var, value)` fixings into a state's bounds, moving nonbasic
    /// variables onto their new degenerate bound (the basic values absorb
    /// the shift).  Shared by every warm-restart entry point.
    fn apply_fixings(&self, st: &mut LpState, fixings: &[(Var, f64)]) -> Result<(), Box<LpResult>> {
        for (v, val) in fixings {
            let j = v.index();
            if j >= st.n {
                return Err(Box::new(LpResult::plain(
                    SimplexOutcome::InvalidModel(format!(
                        "fixing references {v} but the state has {} variables",
                        st.n
                    )),
                    0,
                )));
            }
            if !val.is_finite() {
                return Err(Box::new(LpResult::plain(
                    SimplexOutcome::InvalidModel(format!("fixing of {v} to {val} is not finite")),
                    0,
                )));
            }
            let old = st.value_of(j);
            st.lo[j] = *val;
            st.up[j] = *val;
            if !st.is_basic(j) {
                let delta = *val - old;
                if delta != 0.0 {
                    for (xb, row) in st.xb.iter_mut().zip(&st.a) {
                        *xb -= row[j] * delta;
                    }
                }
                st.at_upper[j] = false;
            }
        }
        Ok(())
    }

    /// Re-enter a chained state whose *variable bounds* may be stale: reset
    /// every structural column to its native bound from the problem, apply
    /// the given fixings on top, absorb any right-hand-side deltas, and
    /// dual-repair.
    ///
    /// This is the frontier-chaining entry point.  A root state carried from
    /// one sweep point to the next may have been solved with presolve
    /// fixings that are **no longer valid** at the new budgets (a block that
    /// was trivially flash-resident can fit again after the budget relaxes),
    /// so unlike [`SimplexSolver::resolve_with_rhs`] this resets the bound
    /// state first instead of trusting it.  Nonbasic columns are moved to
    /// the native bound nearest their current resting value, which keeps the
    /// shift — and therefore the dual-repair work — minimal.
    pub fn reenter(&self, problem: &Problem, parent: &LpState, fixings: &[(Var, f64)]) -> LpResult {
        self.reenter_owned(problem, parent.clone(), fixings)
    }

    /// Like [`SimplexSolver::reenter`], but consumes the state.
    pub fn reenter_owned(
        &self,
        problem: &Problem,
        mut st: LpState,
        fixings: &[(Var, f64)],
    ) -> LpResult {
        if problem.num_vars() != st.n || problem.num_constraints() != st.num_rows() {
            return LpResult::plain(
                SimplexOutcome::InvalidModel(format!(
                    "reenter: problem has {} vars × {} constraints but the state \
                     was solved for {} × {}",
                    problem.num_vars(),
                    problem.num_constraints(),
                    st.n,
                    st.num_rows()
                )),
                0,
            );
        }
        // Reset structural bounds to their native values.
        for (j, def) in problem.vars().iter().enumerate() {
            let (nlo, nup) = match def.kind {
                VarKind::Binary => (0.0, 1.0),
                VarKind::Continuous { lower, upper } => {
                    if !lower.is_finite() || upper.is_some_and(f64::is_nan) {
                        return LpResult::plain(
                            SimplexOutcome::InvalidModel(format!(
                                "variable {} has a non-finite bound",
                                def.name
                            )),
                            0,
                        );
                    }
                    (lower, upper.unwrap_or(f64::INFINITY))
                }
            };
            if st.lo[j] == nlo && st.up[j] == nup {
                continue;
            }
            let old = st.value_of(j);
            st.lo[j] = nlo;
            st.up[j] = nup;
            if !st.is_basic(j) {
                // Rest at the native bound nearest the old value.
                let to_upper = nup.is_finite() && (nup - old).abs() < (old - nlo).abs();
                let target = if to_upper { nup } else { nlo };
                let delta = target - old;
                if delta != 0.0 {
                    for (xb, row) in st.xb.iter_mut().zip(&st.a) {
                        *xb -= row[j] * delta;
                    }
                }
                st.at_upper[j] = to_upper;
            }
        }
        if let Err(e) = self.apply_fixings(&mut st, fixings) {
            return *e;
        }
        // Absorb right-hand-side deltas exactly as resolve_with_rhs does.
        for (row, c) in problem.constraints().iter().enumerate() {
            let delta = c.rhs - st.rhs[row];
            if !delta.is_finite() {
                return LpResult::plain(
                    SimplexOutcome::InvalidModel(format!(
                        "constraint {row} right-hand side {} is not finite",
                        c.rhs
                    )),
                    0,
                );
            }
            if delta != 0.0 {
                let slack = st.n + row;
                for (xb, a_row) in st.xb.iter_mut().zip(&st.a) {
                    *xb += delta * a_row[slack];
                }
                st.rhs[row] = c.rhs;
            }
        }
        self.repair_and_extract(problem, st)
    }

    /// Warm re-solve from a state that predates rows appended to the
    /// problem: apply the fixings, upgrade the state with the missing
    /// trailing rows (see `LpState::append_rows`), and dual-repair.
    ///
    /// This is how branch-and-bound keeps warm-starting after cutting planes
    /// are added mid-search: a node snapshotted before a cut existed is
    /// expanded against the cut-augmented problem by appending the new rows
    /// — each enters with its slack basic and zero reduced cost, so dual
    /// feasibility survives and the dual simplex re-optimizes from the
    /// parent basis instead of a cold two-phase solve.
    pub fn resolve_appended_owned(
        &self,
        problem: &Problem,
        mut st: LpState,
        fixings: &[(Var, f64)],
    ) -> LpResult {
        if problem.num_vars() != st.n || problem.num_constraints() < st.num_rows() {
            return LpResult::plain(
                SimplexOutcome::InvalidModel(format!(
                    "resolve_appended: problem has {} vars × {} constraints but the \
                     state was solved for {} × {} — rows may only be appended",
                    problem.num_vars(),
                    problem.num_constraints(),
                    st.n,
                    st.num_rows()
                )),
                0,
            );
        }
        if let Err(e) = self.apply_fixings(&mut st, fixings) {
            return *e;
        }
        let missing: Vec<(Vec<f64>, f64, f64, f64)> = problem.constraints()[st.num_rows()..]
            .iter()
            .map(|c| {
                let mut coeffs = vec![0.0; st.n];
                for (v, k) in c.expr.terms() {
                    coeffs[v.index()] += k;
                }
                let (slo, sup) = match c.op {
                    Cmp::Le => (0.0, f64::INFINITY),
                    Cmp::Ge => (f64::NEG_INFINITY, 0.0),
                    Cmp::Eq => (0.0, 0.0),
                };
                (coeffs, c.rhs, slo, sup)
            })
            .collect();
        st.append_rows(&missing);
        self.repair_and_extract(problem, st)
    }

    /// Re-solve from a previously solved state of the **same problem
    /// structure** after its constraint right-hand sides were mutated in
    /// place (see [`crate::Problem::set_rhs`]).  The deltas are computed
    /// against the right-hand sides recorded in the state, so the caller
    /// only mutates the problem and hands back the old state.
    ///
    /// An RHS change moves the basic variables by `B⁻¹·Δb` (read off the
    /// slack columns of the tableau) and leaves the reduced costs untouched,
    /// so — exactly as for bound tightenings — the parent basis stays dual
    /// feasible and the **dual simplex** repairs primal feasibility in a few
    /// pivots instead of a cold two-phase solve.  This is the re-entry path
    /// the frontier sweeps chain: adjacent sweep points differ only in the
    /// budget rows' right-hand sides.
    pub fn resolve_with_rhs(&self, problem: &Problem, parent: &LpState) -> LpResult {
        self.resolve_rhs_owned(problem, parent.clone())
    }

    /// Like [`SimplexSolver::resolve_with_rhs`], but consumes the state,
    /// sparing the tableau copy when the caller is its last user.
    pub fn resolve_rhs_owned(&self, problem: &Problem, mut st: LpState) -> LpResult {
        if problem.num_vars() != st.n || problem.num_constraints() != st.num_rows() {
            return LpResult::plain(
                SimplexOutcome::InvalidModel(format!(
                    "resolve_with_rhs: problem has {} vars × {} constraints but the \
                     state was solved for {} × {} — only right-hand sides may change \
                     between chained solves",
                    problem.num_vars(),
                    problem.num_constraints(),
                    st.n,
                    st.num_rows()
                )),
                0,
            );
        }
        for (row, c) in problem.constraints().iter().enumerate() {
            let delta = c.rhs - st.rhs[row];
            if !delta.is_finite() {
                return LpResult::plain(
                    SimplexOutcome::InvalidModel(format!(
                        "constraint {row} right-hand side {} is not finite",
                        c.rhs
                    )),
                    0,
                );
            }
            if delta == 0.0 {
                continue;
            }
            // In the initial tableau the unit column of row `row` is its
            // slack column (up to the build-time row sign, which cancels
            // against the same sign on the right-hand side), so the current
            // slack column *is* `B⁻¹·e_row` and the basic values shift by
            // `delta` times it.
            let slack = st.n + row;
            for (xb, a_row) in st.xb.iter_mut().zip(&st.a) {
                *xb += delta * a_row[slack];
            }
            st.rhs[row] = c.rhs;
        }
        self.repair_and_extract(problem, st)
    }

    /// Shared warm-restart tail: dual simplex to repair primal feasibility,
    /// primal cleanup, then extraction.
    fn repair_and_extract(&self, problem: &Problem, mut st: LpState) -> LpResult {
        let mut iterations = 0usize;
        let mut pivots = 0usize;
        match self.dual_phase(&mut st, &mut iterations, &mut pivots) {
            PhaseResult::Optimal => {}
            PhaseResult::Unbounded => {
                return LpResult::plain(SimplexOutcome::Infeasible, pivots);
            }
            PhaseResult::IterationLimit => {
                return LpResult::plain(SimplexOutcome::IterationLimit, pivots);
            }
        }
        // Primal cleanup: a no-op when the dual solve kept optimality, but it
        // absorbs reduced-cost drift accumulated over long warm-start chains.
        match self.primal_phase(&mut st, None, &mut iterations, &mut pivots) {
            PhaseResult::Optimal => {}
            PhaseResult::Unbounded => {
                return LpResult::plain(SimplexOutcome::Unbounded, pivots);
            }
            PhaseResult::IterationLimit => {
                return LpResult::plain(SimplexOutcome::IterationLimit, pivots);
            }
        }
        let solution = self.extract(problem, &st);
        LpResult {
            outcome: SimplexOutcome::Optimal(solution),
            pivots,
            state: Some(st),
        }
    }

    /// Build the initial tableau state: one row per constraint, one slack per
    /// row (bounded to encode `≤` / `≥` / `=`), and an artificial column only
    /// for rows whose slack cannot absorb the initial residual.
    fn build_state(&self, problem: &Problem, mut lo: Vec<f64>, mut up: Vec<f64>) -> LpState {
        let n = problem.num_vars();
        let m = problem.num_constraints();
        let slack_start = n;

        // Dense constraint rows over structural variables.
        let mut rows: Vec<Vec<f64>> = Vec::with_capacity(m);
        for c in problem.constraints() {
            let mut coeffs = vec![0.0; n];
            for (v, k) in c.expr.terms() {
                coeffs[v.index()] += k;
            }
            rows.push(coeffs);
        }

        // Slack bounds per comparison operator: a·x + s = rhs with
        //   ≤ : s ∈ [0, ∞)      ≥ : s ∈ (−∞, 0]      = : s ∈ [0, 0].
        for c in problem.constraints() {
            let (slo, sup) = match c.op {
                Cmp::Le => (0.0, f64::INFINITY),
                Cmp::Ge => (f64::NEG_INFINITY, 0.0),
                Cmp::Eq => (0.0, 0.0),
            };
            lo.push(slo);
            up.push(sup);
        }

        // Start every structural variable nonbasic at its (finite) lower
        // bound and compute each row's residual; rows whose slack can hold
        // the residual start with the slack basic, the rest get an
        // artificial column.
        let residuals: Vec<f64> = problem
            .constraints()
            .iter()
            .zip(&rows)
            .map(|(c, coeffs)| {
                let dot: f64 = coeffs.iter().zip(&lo).map(|(k, l)| k * l).sum();
                c.rhs - dot
            })
            .collect();
        let needs_artificial: Vec<bool> = residuals
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let s = slack_start + i;
                *r < lo[s] - self.tolerance || *r > up[s] + self.tolerance
            })
            .collect();
        let num_art = needs_artificial.iter().filter(|b| **b).count();
        let artificial_start = n + m;
        let cols = artificial_start + num_art;

        let mut a = vec![vec![0.0; cols]; m];
        let mut xb = vec![0.0; m];
        let mut basis = vec![0usize; m];
        let mut at_upper = vec![false; cols];
        let mut next_art = artificial_start;
        for (i, coeffs) in rows.into_iter().enumerate() {
            a[i][..n].copy_from_slice(&coeffs);
            let s = slack_start + i;
            a[i][s] = 1.0;
            if needs_artificial[i] {
                // Park the slack at the bound nearest the residual and give
                // the artificial the (positive) remainder.
                let clamped = residuals[i].max(lo[s]).min(up[s]);
                at_upper[s] = (clamped - up[s]).abs() <= (clamped - lo[s]).abs();
                let remainder = residuals[i] - clamped;
                let sigma = if remainder >= 0.0 { 1.0 } else { -1.0 };
                if sigma < 0.0 {
                    for v in a[i].iter_mut() {
                        *v = -*v;
                    }
                }
                a[i][next_art] = 1.0;
                xb[i] = remainder.abs();
                basis[i] = next_art;
                lo.push(0.0);
                up.push(f64::INFINITY);
                next_art += 1;
            } else {
                xb[i] = residuals[i];
                basis[i] = s;
            }
        }
        debug_assert_eq!(lo.len(), cols);

        let mut row_of = vec![usize::MAX; cols];
        for (i, &b) in basis.iter().enumerate() {
            row_of[b] = i;
        }

        // Phase-2 reduced costs: the objective in minimization form.  The
        // initial basis (slacks and artificials) has zero objective cost, so
        // the reduced costs start as the cost vector itself.
        let sign = match problem.sense() {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        };
        let mut d = vec![0.0; cols];
        for (v, k) in problem.objective().terms() {
            d[v.index()] += sign * k;
        }

        LpState {
            a,
            xb,
            basis,
            row_of,
            at_upper,
            lo,
            up,
            d,
            rhs: problem.constraints().iter().map(|c| c.rhs).collect(),
            n,
            artificial_start,
            cols,
        }
    }

    /// Run the two primal phases on a freshly built state and extract the
    /// solution.
    fn solve_state(&self, problem: &Problem, mut st: LpState) -> LpResult {
        let mut iterations = 0usize;
        let mut pivots = 0usize;

        if st.num_artificials() > 0 {
            // Phase-1 reduced costs: minimize the sum of artificials.  The
            // artificial rows are identity on their artificial, so the
            // reduced cost of column j is 1[j artificial] − Σ_art-rows a[r][j].
            let mut d1 = vec![0.0; st.cols];
            d1[st.artificial_start..].fill(1.0);
            for (row, &b) in st.basis.iter().enumerate() {
                if b >= st.artificial_start {
                    for (dj, aj) in d1.iter_mut().zip(&st.a[row]) {
                        *dj -= aj;
                    }
                }
            }
            match self.primal_phase(&mut st, Some(&mut d1), &mut iterations, &mut pivots) {
                PhaseResult::Optimal => {}
                // The phase-1 objective is bounded below by zero, so an
                // "unbounded" answer is a numerical failure: report the
                // model as infeasible rather than returning garbage.
                PhaseResult::Unbounded => {
                    return LpResult::plain(SimplexOutcome::Infeasible, pivots);
                }
                PhaseResult::IterationLimit => {
                    return LpResult::plain(SimplexOutcome::IterationLimit, pivots);
                }
            }
            let infeasibility: f64 = st
                .basis
                .iter()
                .zip(&st.xb)
                .filter(|(b, _)| **b >= st.artificial_start)
                .map(|(_, v)| *v)
                .sum();
            if infeasibility > self.tolerance * 10.0 {
                return LpResult::plain(SimplexOutcome::Infeasible, pivots);
            }
            // Drive every still-basic artificial (at level zero) out of the
            // basis with a degenerate pivot so later phases can never
            // re-inflate it.  A row whose structural and slack coefficients
            // are all ~0 is redundant and may keep its artificial.
            for row in 0..st.num_rows() {
                if st.basis[row] >= st.artificial_start {
                    let col = (0..st.artificial_start)
                        .find(|&j| !st.is_basic(j) && st.a[row][j].abs() > self.tolerance);
                    if let Some(col) = col {
                        let value = st.value_of(col);
                        self.do_pivot(&mut st, row, col, value, false, None);
                        pivots += 1;
                    }
                }
            }
            // Pin the artificials so no later bound flip can move them.
            for j in st.artificial_start..st.cols {
                st.up[j] = 0.0;
            }
        }

        match self.primal_phase(&mut st, None, &mut iterations, &mut pivots) {
            PhaseResult::Optimal => {}
            PhaseResult::Unbounded => return LpResult::plain(SimplexOutcome::Unbounded, pivots),
            PhaseResult::IterationLimit => {
                return LpResult::plain(SimplexOutcome::IterationLimit, pivots);
            }
        }

        let solution = self.extract(problem, &st);
        LpResult {
            outcome: SimplexOutcome::Optimal(solution),
            pivots,
            state: Some(st),
        }
    }

    /// One primal simplex phase.  With `d1 = Some(..)` the pricing uses the
    /// phase-1 infeasibility costs (and keeps both cost rows updated);
    /// otherwise it uses the phase-2 reduced costs in `st.d`.  Artificial
    /// columns are never allowed to enter.
    ///
    /// Anti-cycling is per *detected stall*: after [`DEGENERACY_STREAK`]
    /// consecutive zero-progress iterations the pricing switches to Bland's
    /// rule, and any progress switches it back — the threshold is never
    /// carried over from a previous phase.
    fn primal_phase(
        &self,
        st: &mut LpState,
        mut d1: Option<&mut Vec<f64>>,
        iterations: &mut usize,
        pivots: &mut usize,
    ) -> PhaseResult {
        let mut degenerate_streak = 0usize;
        loop {
            if *iterations >= self.max_iterations {
                return PhaseResult::IterationLimit;
            }
            *iterations += 1;
            let use_bland = degenerate_streak >= DEGENERACY_STREAK;

            // Entering column: nonbasic, non-fixed, profitable to move off
            // its bound (increase from lower when d < 0, decrease from upper
            // when d > 0 — minimization form).
            let enter = {
                let cost: &[f64] = match &d1 {
                    Some(d) => d,
                    None => &st.d,
                };
                let mut enter: Option<(usize, f64)> = None;
                for (j, &dj) in cost.iter().enumerate().take(st.artificial_start) {
                    if st.is_basic(j) || st.up[j] - st.lo[j] <= self.tolerance {
                        continue;
                    }
                    let eligible = (!st.at_upper[j] && dj < -self.tolerance)
                        || (st.at_upper[j] && dj > self.tolerance);
                    if !eligible {
                        continue;
                    }
                    if use_bland {
                        enter = Some((j, dj));
                        break;
                    }
                    if enter.is_none_or(|(_, best)| dj.abs() > best.abs()) {
                        enter = Some((j, dj));
                    }
                }
                enter
            };
            let Some((enter, _)) = enter else {
                return PhaseResult::Optimal;
            };
            let t = if st.at_upper[enter] { -1.0 } else { 1.0 };

            // Ratio test: the entering variable moves by Δ ≥ 0 in direction
            // `t`; each basic variable blocks at the bound it drifts toward,
            // and the entering variable itself blocks at its opposite bound
            // (a bound flip — no pivot needed).
            let mut limit = st.up[enter] - st.lo[enter];
            let mut leave: Option<(usize, bool)> = None;
            for row in 0..st.num_rows() {
                let w = t * st.a[row][enter];
                let b = st.basis[row];
                let (room, hits_upper) = if w > self.tolerance {
                    (st.xb[row] - st.lo[b], false)
                } else if w < -self.tolerance {
                    (st.up[b] - st.xb[row], true)
                } else {
                    continue;
                };
                if room.is_infinite() {
                    continue;
                }
                let ratio = room.max(0.0) / w.abs();
                let strictly_better = ratio < limit - self.tolerance;
                let tie = (ratio - limit).abs() <= self.tolerance;
                let tie_break = tie
                    && match leave {
                        None => false, // tie with the bound-flip limit: keep the flip
                        Some((lr, _)) => {
                            if use_bland {
                                st.basis[row] < st.basis[lr]
                            } else {
                                st.a[row][enter].abs() > st.a[lr][enter].abs()
                            }
                        }
                    };
                if strictly_better || tie_break {
                    limit = ratio;
                    leave = Some((row, hits_upper));
                }
            }

            if limit.is_infinite() {
                return PhaseResult::Unbounded;
            }
            let progress = limit > self.tolerance;
            match leave {
                None => {
                    // Bound flip: the entering variable runs to its other
                    // bound; only the basic values move.
                    for (xb, row) in st.xb.iter_mut().zip(&st.a) {
                        *xb -= t * limit * row[enter];
                    }
                    st.at_upper[enter] = !st.at_upper[enter];
                }
                Some((row, hits_upper)) => {
                    let new_value = st.value_of(enter) + t * limit;
                    self.do_pivot(st, row, enter, new_value, hits_upper, d1.as_deref_mut());
                    *pivots += 1;
                }
            }
            if progress {
                degenerate_streak = 0;
            } else {
                degenerate_streak += 1;
            }
        }
    }

    /// The dual simplex: repair primal feasibility after bound tightenings
    /// while preserving dual feasibility of the reduced costs.
    fn dual_phase(
        &self,
        st: &mut LpState,
        iterations: &mut usize,
        pivots: &mut usize,
    ) -> PhaseResult {
        // Same degeneracy-triggered anti-cycling as the primal phases: a
        // streak of zero-progress (ratio ≈ 0) pivots switches both choices
        // to lowest-index Bland selection until the dual objective moves.
        let mut degenerate_streak = 0usize;
        loop {
            if *iterations >= self.max_iterations {
                return PhaseResult::IterationLimit;
            }
            *iterations += 1;
            let use_bland = degenerate_streak >= DEGENERACY_STREAK;

            // Leaving row: the basic variable with the largest bound
            // violation (under Bland: the violated row with the smallest
            // basis column); it will leave at the violated bound.
            let mut leave: Option<(usize, f64, bool)> = None;
            let mut worst = self.tolerance * 10.0;
            for row in 0..st.num_rows() {
                let b = st.basis[row];
                let below = st.lo[b] - st.xb[row];
                let above = st.xb[row] - st.up[b];
                let (violation, target, at_upper) = if below > above {
                    (below, st.lo[b], false)
                } else {
                    (above, st.up[b], true)
                };
                if violation <= self.tolerance * 10.0 {
                    continue;
                }
                let better = if use_bland {
                    leave.is_none_or(|(lr, _, _)| b < st.basis[lr])
                } else {
                    violation > worst
                };
                if better {
                    worst = violation;
                    leave = Some((row, target, at_upper));
                }
            }
            let Some((row, target, above)) = leave else {
                return PhaseResult::Optimal;
            };

            // Entering column via the dual ratio test: among the nonbasic
            // columns whose movement can push the leaving variable toward
            // its bound, the one whose reduced cost reaches zero first —
            // that keeps every other reduced cost dual feasible.  Ties go
            // to the larger pivot element for stability, or to the smaller
            // column index in Bland mode.
            let mut enter: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for j in 0..st.artificial_start {
                if st.is_basic(j) || st.up[j] - st.lo[j] <= self.tolerance {
                    continue;
                }
                let a = st.a[row][j];
                if a.abs() <= self.tolerance {
                    continue;
                }
                let pushes = if above {
                    (!st.at_upper[j] && a > 0.0) || (st.at_upper[j] && a < 0.0)
                } else {
                    (!st.at_upper[j] && a < 0.0) || (st.at_upper[j] && a > 0.0)
                };
                if !pushes {
                    continue;
                }
                let ratio = (st.d[j] / a).abs();
                let strictly_better = ratio < best_ratio - self.tolerance;
                let tie = (ratio - best_ratio).abs() <= self.tolerance;
                let tie_break = tie
                    && enter.is_some_and(|e| {
                        if use_bland {
                            j < e
                        } else {
                            a.abs() > st.a[row][e].abs()
                        }
                    });
                if strictly_better || tie_break {
                    best_ratio = ratio;
                    enter = Some(j);
                }
            }
            // No column can move the violated basic variable toward its
            // bound: the tightened bounds admit no feasible point.
            let Some(enter) = enter else {
                return PhaseResult::Unbounded;
            };

            if best_ratio > self.tolerance {
                degenerate_streak = 0;
            } else {
                degenerate_streak += 1;
            }
            let change = (st.xb[row] - target) / st.a[row][enter];
            let new_value = st.value_of(enter) + change;
            self.do_pivot(st, row, enter, new_value, above, None);
            *pivots += 1;
        }
    }

    /// Perform a pivot: update the basic values, swap the basis bookkeeping,
    /// eliminate the entering column, and update the reduced-cost rows.
    ///
    /// `new_value` is the value the entering variable takes; `leaves_at_upper`
    /// records at which bound the leaving variable comes to rest.
    fn do_pivot(
        &self,
        st: &mut LpState,
        row: usize,
        enter: usize,
        new_value: f64,
        leaves_at_upper: bool,
        d1: Option<&mut Vec<f64>>,
    ) {
        let change = new_value - st.value_of(enter);
        if change != 0.0 {
            for r in 0..st.num_rows() {
                if r != row {
                    st.xb[r] -= change * st.a[r][enter];
                }
            }
        }
        st.xb[row] = new_value;

        let leaving = st.basis[row];
        st.at_upper[leaving] = leaves_at_upper;
        st.row_of[leaving] = usize::MAX;
        st.basis[row] = enter;
        st.row_of[enter] = row;
        st.at_upper[enter] = false;

        let pivot = st.a[row][enter];
        debug_assert!(pivot.abs() > self.tolerance);
        let inv = 1.0 / pivot;
        for v in st.a[row].iter_mut() {
            *v *= inv;
        }
        let (before, rest) = st.a.split_at_mut(row);
        let (pivot_row, after) = rest.split_first_mut().expect("pivot row exists");
        for other in before.iter_mut().chain(after.iter_mut()) {
            let factor = other[enter];
            if factor != 0.0 {
                for (o, p) in other.iter_mut().zip(pivot_row.iter()) {
                    *o -= factor * p;
                }
            }
        }
        let f2 = st.d[enter];
        if f2 != 0.0 {
            for (dj, p) in st.d.iter_mut().zip(pivot_row.iter()) {
                *dj -= f2 * p;
            }
        }
        if let Some(d1) = d1 {
            let f1 = d1[enter];
            if f1 != 0.0 {
                for (dj, p) in d1.iter_mut().zip(pivot_row.iter()) {
                    *dj -= f1 * p;
                }
            }
        }
    }

    /// Read the structural values out of a solved state.
    fn extract(&self, problem: &Problem, st: &LpState) -> Solution {
        let mut values = vec![0.0; st.n];
        for (j, v) in values.iter_mut().enumerate() {
            // Clamp tolerance-level drift back into the variable's bounds.
            *v = st.value_of(j).max(st.lo[j]).min(st.up[j]);
        }
        let objective = problem.objective_value(&values);
        Solution { values, objective }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinearExpr;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-5, "{a} vs {b}");
    }

    #[test]
    fn maximization_with_two_constraints() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  => x=2, y=6, obj=36.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_continuous("x", 0.0, None);
        let y = p.add_continuous("y", 0.0, None);
        p.add_constraint(LinearExpr::var(x), Cmp::Le, 4.0);
        p.add_constraint(LinearExpr::from_terms([(y, 2.0)]), Cmp::Le, 12.0);
        p.add_constraint(LinearExpr::from_terms([(x, 3.0), (y, 2.0)]), Cmp::Le, 18.0);
        p.set_objective(LinearExpr::from_terms([(x, 3.0), (y, 5.0)]));
        let sol = SimplexSolver::new()
            .solve_relaxation(&p, &[])
            .solution()
            .unwrap();
        assert_close(sol.value(x), 2.0);
        assert_close(sol.value(y), 6.0);
        assert_close(sol.objective, 36.0);
    }

    #[test]
    fn minimization_with_ge_constraints() {
        // min 2x + 3y s.t. x + y >= 10, x >= 2, y >= 3 => x=7, y=3, obj=23.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_continuous("x", 0.0, None);
        let y = p.add_continuous("y", 0.0, None);
        p.add_constraint(LinearExpr::from_terms([(x, 1.0), (y, 1.0)]), Cmp::Ge, 10.0);
        p.add_constraint(LinearExpr::var(x), Cmp::Ge, 2.0);
        p.add_constraint(LinearExpr::var(y), Cmp::Ge, 3.0);
        p.set_objective(LinearExpr::from_terms([(x, 2.0), (y, 3.0)]));
        let sol = SimplexSolver::new()
            .solve_relaxation(&p, &[])
            .solution()
            .unwrap();
        assert_close(sol.objective, 23.0);
        assert_close(sol.value(x), 7.0);
        assert_close(sol.value(y), 3.0);
    }

    #[test]
    fn equality_constraints_are_respected() {
        // min x + y s.t. x + y = 5, x - y = 1 => x=3, y=2.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_continuous("x", 0.0, None);
        let y = p.add_continuous("y", 0.0, None);
        p.add_constraint(LinearExpr::from_terms([(x, 1.0), (y, 1.0)]), Cmp::Eq, 5.0);
        p.add_constraint(LinearExpr::from_terms([(x, 1.0), (y, -1.0)]), Cmp::Eq, 1.0);
        p.set_objective(LinearExpr::from_terms([(x, 1.0), (y, 1.0)]));
        let sol = SimplexSolver::new()
            .solve_relaxation(&p, &[])
            .solution()
            .unwrap();
        assert_close(sol.value(x), 3.0);
        assert_close(sol.value(y), 2.0);
    }

    #[test]
    fn infeasible_system_is_reported() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_continuous("x", 0.0, None);
        p.add_constraint(LinearExpr::var(x), Cmp::Ge, 5.0);
        p.add_constraint(LinearExpr::var(x), Cmp::Le, 1.0);
        p.set_objective(LinearExpr::var(x));
        assert_eq!(
            SimplexSolver::new().solve_relaxation(&p, &[]),
            SimplexOutcome::Infeasible
        );
    }

    #[test]
    fn unbounded_problem_is_reported() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_continuous("x", 0.0, None);
        p.set_objective(LinearExpr::var(x));
        assert_eq!(
            SimplexSolver::new().solve_relaxation(&p, &[]),
            SimplexOutcome::Unbounded
        );
    }

    #[test]
    fn binary_relaxation_and_upper_bounds() {
        // max x + y with x binary, y ≤ 0.3: relaxation picks x = 1, y = 0.3.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_binary("x");
        let y = p.add_continuous("y", 0.0, Some(0.3));
        p.set_objective(LinearExpr::from_terms([(x, 1.0), (y, 1.0)]));
        let sol = SimplexSolver::new()
            .solve_relaxation(&p, &[])
            .solution()
            .unwrap();
        assert_close(sol.value(x), 1.0);
        assert_close(sol.value(y), 0.3);
    }

    #[test]
    fn fixings_pin_variables() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_binary("x");
        let y = p.add_binary("y");
        p.add_constraint(LinearExpr::from_terms([(x, 1.0), (y, 1.0)]), Cmp::Le, 1.0);
        p.set_objective(LinearExpr::from_terms([(x, 2.0), (y, 1.0)]));
        let sol = SimplexSolver::new()
            .solve_relaxation(&p, &[(x, 0.0)])
            .solution()
            .unwrap();
        assert_close(sol.value(x), 0.0);
        assert_close(sol.value(y), 1.0);
    }

    #[test]
    fn nonzero_lower_bounds_are_shifted_correctly() {
        // min x + y with x ≥ 2, y ≥ 1.5, x + y ≥ 5 → obj 5 at e.g. (3.5, 1.5).
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_continuous("x", 2.0, None);
        let y = p.add_continuous("y", 1.5, None);
        p.add_constraint(LinearExpr::from_terms([(x, 1.0), (y, 1.0)]), Cmp::Ge, 5.0);
        p.set_objective(LinearExpr::from_terms([(x, 1.0), (y, 1.0)]));
        let sol = SimplexSolver::new()
            .solve_relaxation(&p, &[])
            .solution()
            .unwrap();
        assert_close(sol.objective, 5.0);
        assert!(sol.value(x) >= 2.0 - 1e-7);
        assert!(sol.value(y) >= 1.5 - 1e-7);
    }

    #[test]
    fn negative_rhs_rows_are_normalized() {
        // x - y <= -1 (i.e. y >= x + 1), minimize y with x >= 0 → x=0, y=1.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_continuous("x", 0.0, None);
        let y = p.add_continuous("y", 0.0, None);
        p.add_constraint(LinearExpr::from_terms([(x, 1.0), (y, -1.0)]), Cmp::Le, -1.0);
        p.set_objective(LinearExpr::var(y));
        let sol = SimplexSolver::new()
            .solve_relaxation(&p, &[])
            .solution()
            .unwrap();
        assert_close(sol.value(y), 1.0);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Several redundant constraints through the same vertex.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_continuous("x", 0.0, None);
        let y = p.add_continuous("y", 0.0, None);
        p.add_constraint(LinearExpr::from_terms([(x, 1.0), (y, 1.0)]), Cmp::Le, 1.0);
        p.add_constraint(LinearExpr::from_terms([(x, 2.0), (y, 2.0)]), Cmp::Le, 2.0);
        p.add_constraint(LinearExpr::from_terms([(x, 1.0)]), Cmp::Le, 1.0);
        p.add_constraint(LinearExpr::from_terms([(y, 1.0)]), Cmp::Le, 1.0);
        p.set_objective(LinearExpr::from_terms([(x, 1.0), (y, 1.0)]));
        let sol = SimplexSolver::new()
            .solve_relaxation(&p, &[])
            .solution()
            .unwrap();
        assert_close(sol.objective, 1.0);
    }

    #[test]
    fn empty_objective_is_fine() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_continuous("x", 0.0, Some(3.0));
        p.add_constraint(LinearExpr::var(x), Cmp::Ge, 1.0);
        let sol = SimplexSolver::new()
            .solve_relaxation(&p, &[])
            .solution()
            .unwrap();
        assert!(sol.value(x) >= 1.0 - 1e-7);
        assert_close(sol.objective, 0.0);
    }

    // ------------------------------------------------------------------
    // Bounded-variable specifics.
    // ------------------------------------------------------------------

    #[test]
    fn bounds_generate_no_rows_or_artificials() {
        // Three bounded variables, one constraint: the tableau must have
        // exactly one row and no artificial columns.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_binary("x");
        let y = p.add_binary("y");
        let z = p.add_continuous("z", 0.5, Some(2.0));
        p.add_constraint(
            LinearExpr::from_terms([(x, 1.0), (y, 1.0), (z, 1.0)]),
            Cmp::Le,
            2.0,
        );
        p.set_objective(LinearExpr::from_terms([(x, 3.0), (y, 2.0), (z, 1.0)]));
        let result = SimplexSolver::new().solve_tracked(&p, &[]);
        let state = result.state.expect("optimal");
        assert_eq!(state.num_rows(), 1);
        assert_eq!(state.num_artificials(), 0);
    }

    #[test]
    fn fixings_generate_no_rows_or_artificials() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_binary("x");
        let y = p.add_binary("y");
        p.add_constraint(LinearExpr::from_terms([(x, 1.0), (y, 1.0)]), Cmp::Le, 2.0);
        p.set_objective(LinearExpr::from_terms([(x, 1.0), (y, 3.0)]));
        let result = SimplexSolver::new().solve_tracked(&p, &[(x, 1.0), (y, 0.0)]);
        let state = result.state.expect("optimal");
        assert_eq!(state.num_rows(), 1);
        assert_eq!(state.num_artificials(), 0);
        let sol = result.outcome.solution().unwrap();
        assert_close(sol.value(x), 1.0);
        assert_close(sol.value(y), 0.0);
    }

    #[test]
    fn pure_bound_problem_flips_to_upper() {
        // No constraints at all: the optimum is found purely by bound flips.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_continuous("x", -1.0, Some(2.5));
        let y = p.add_binary("y");
        p.set_objective(LinearExpr::from_terms([(x, 1.0), (y, 4.0)]));
        let result = SimplexSolver::new().solve_tracked(&p, &[]);
        let sol = result.outcome.solution().unwrap();
        assert_close(sol.value(x), 2.5);
        assert_close(sol.value(y), 1.0);
        assert_eq!(result.pivots, 0, "bound flips are not pivots");
    }

    #[test]
    fn invalid_model_is_not_reported_as_infeasible() {
        // Regression: an objective referencing an undefined variable used to
        // come back as `Infeasible`, masking the caller's bug.
        let mut p = Problem::new(Sense::Maximize);
        let _x = p.add_binary("x");
        p.set_objective(LinearExpr::from_terms([(Var(9), 1.0)]));
        assert!(matches!(
            SimplexSolver::new().solve_relaxation(&p, &[]),
            SimplexOutcome::InvalidModel(_)
        ));
        // An out-of-range fixing is a caller bug too.
        let mut q = Problem::new(Sense::Maximize);
        let x = q.add_binary("x");
        q.set_objective(LinearExpr::var(x));
        assert!(matches!(
            SimplexSolver::new().solve_relaxation(&q, &[(Var(3), 1.0)]),
            SimplexOutcome::InvalidModel(_)
        ));
        // Non-finite fixings are invalid on the cold and the warm path alike
        // (a NaN bound would otherwise be silently ignored by comparisons).
        assert!(matches!(
            SimplexSolver::new().solve_relaxation(&q, &[(x, f64::NAN)]),
            SimplexOutcome::InvalidModel(_)
        ));
        let state = SimplexSolver::new().solve_tracked(&q, &[]).state.unwrap();
        assert!(matches!(
            SimplexSolver::new()
                .resolve_with_fixings(&q, &state, &[(x, f64::NAN)])
                .outcome,
            SimplexOutcome::InvalidModel(_)
        ));
    }

    #[test]
    fn contradictory_bounds_are_infeasible() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_continuous("x", 2.0, Some(1.0));
        p.set_objective(LinearExpr::var(x));
        assert_eq!(
            SimplexSolver::new().solve_relaxation(&p, &[]),
            SimplexOutcome::Infeasible
        );
    }

    #[test]
    fn warm_restart_matches_cold_solve_with_fixing() {
        // Solve, then fix a variable both ways; the dual-simplex re-solve
        // must agree with a cold solve of the fixed problem.
        let mut p = Problem::new(Sense::Maximize);
        let xs: Vec<Var> = (0..6).map(|i| p.add_binary(format!("x{i}"))).collect();
        let weights = [3.0, 5.0, 2.0, 7.0, 4.0, 1.0];
        let values = [4.0, 6.0, 3.0, 8.0, 5.0, 1.5];
        p.add_constraint(
            LinearExpr::from_terms(xs.iter().copied().zip(weights.iter().copied())),
            Cmp::Le,
            11.0,
        );
        p.add_constraint(
            LinearExpr::from_terms([(xs[0], 1.0), (xs[3], 1.0)]),
            Cmp::Le,
            1.0,
        );
        p.set_objective(LinearExpr::from_terms(
            xs.iter().copied().zip(values.iter().copied()),
        ));
        let solver = SimplexSolver::new();
        let root = solver.solve_tracked(&p, &[]);
        let state = root.state.expect("root optimal");
        for v in &xs {
            for val in [0.0, 1.0] {
                let warm = solver.resolve_with_fixings(&p, &state, &[(*v, val)]);
                let cold = solver.solve_tracked(&p, &[(*v, val)]);
                match (warm.outcome, cold.outcome) {
                    (SimplexOutcome::Optimal(w), SimplexOutcome::Optimal(c)) => {
                        assert_close(w.objective, c.objective);
                    }
                    (SimplexOutcome::Infeasible, SimplexOutcome::Infeasible) => {}
                    (w, c) => panic!("warm {w:?} disagrees with cold {c:?}"),
                }
            }
        }
    }

    #[test]
    fn warm_restart_chain_tracks_nested_fixings() {
        // Fix variables one at a time along a chain of warm restarts and
        // check each level against a cold solve with the full fixing set.
        let mut p = Problem::new(Sense::Minimize);
        let xs: Vec<Var> = (0..5).map(|i| p.add_binary(format!("x{i}"))).collect();
        p.add_constraint(
            LinearExpr::from_terms(xs.iter().map(|v| (*v, 1.0))),
            Cmp::Ge,
            2.0,
        );
        p.add_constraint(
            LinearExpr::from_terms([(xs[1], 2.0), (xs[2], 1.0), (xs[4], 3.0)]),
            Cmp::Le,
            4.0,
        );
        p.set_objective(LinearExpr::from_terms(
            xs.iter().enumerate().map(|(i, v)| (*v, 1.0 + i as f64)),
        ));
        let solver = SimplexSolver::new();
        let mut state = solver.solve_tracked(&p, &[]).state.expect("root optimal");
        let mut fixings: Vec<(Var, f64)> = Vec::new();
        for (v, val) in [(xs[0], 1.0), (xs[2], 1.0), (xs[4], 0.0)] {
            fixings.push((v, val));
            let warm = solver.resolve_with_fixings(&p, &state, &[(v, val)]);
            let cold = solver.solve_tracked(&p, &fixings);
            let w = warm.outcome.solution().expect("warm optimal");
            let c = cold.outcome.solution().expect("cold optimal");
            assert_close(w.objective, c.objective);
            state = warm.state.expect("warm state");
        }
    }

    #[test]
    fn infeasible_fixing_is_detected_by_dual_simplex() {
        // x + y = 1: fixing both to 0 leaves no feasible point.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_binary("x");
        let y = p.add_binary("y");
        p.add_constraint(LinearExpr::from_terms([(x, 1.0), (y, 1.0)]), Cmp::Eq, 1.0);
        p.set_objective(LinearExpr::from_terms([(x, 1.0), (y, 2.0)]));
        let solver = SimplexSolver::new();
        let root = solver.solve_tracked(&p, &[]);
        let state = root.state.expect("root optimal");
        let step1 = solver.resolve_with_fixings(&p, &state, &[(x, 0.0)]);
        let s1 = step1.outcome.solution().expect("still feasible");
        assert_close(s1.value(y), 1.0);
        let step2 = solver.resolve_with_fixings(&p, step1.state.as_ref().unwrap(), &[(y, 0.0)]);
        assert_eq!(step2.outcome, SimplexOutcome::Infeasible);
    }

    #[test]
    fn rhs_resolve_matches_cold_solves_along_a_chain() {
        // A knapsack-style LP: sweep the capacity row's right-hand side up
        // and down through a chain of warm restarts; every link must agree
        // with a cold solve of the mutated problem.
        let mut p = Problem::new(Sense::Maximize);
        let xs: Vec<Var> = (0..6).map(|i| p.add_binary(format!("x{i}"))).collect();
        let weights = [3.0, 5.0, 2.0, 7.0, 4.0, 1.0];
        let values = [4.0, 6.0, 3.0, 8.0, 5.0, 1.5];
        p.add_constraint(
            LinearExpr::from_terms(xs.iter().copied().zip(weights.iter().copied())),
            Cmp::Le,
            11.0,
        );
        p.add_constraint(
            LinearExpr::from_terms(xs.iter().map(|v| (*v, 1.0))),
            Cmp::Ge,
            1.0,
        );
        p.set_objective(LinearExpr::from_terms(
            xs.iter().copied().zip(values.iter().copied()),
        ));
        let solver = SimplexSolver::new();
        let mut state = solver.solve_tracked(&p, &[]).state.expect("root optimal");
        for capacity in [4.0, 22.0, 1.0, 9.5, 2.0] {
            p.set_rhs(0, capacity).unwrap();
            let warm = solver.resolve_with_rhs(&p, &state);
            let cold = solver.solve_tracked(&p, &[]);
            let w = warm.outcome.solution().expect("warm optimal");
            let c = cold.outcome.solution().expect("cold optimal");
            assert_close(w.objective, c.objective);
            state = warm.state.expect("warm state");
            assert_eq!(state.solved_rhs()[0], capacity);
        }
    }

    #[test]
    fn rhs_resolve_detects_infeasibility() {
        // x + y ≤ c with x + y ≥ 1: dropping c below 1 has no feasible point.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_binary("x");
        let y = p.add_binary("y");
        p.add_constraint(LinearExpr::from_terms([(x, 1.0), (y, 1.0)]), Cmp::Le, 2.0);
        p.add_constraint(LinearExpr::from_terms([(x, 1.0), (y, 1.0)]), Cmp::Ge, 1.0);
        p.set_objective(LinearExpr::from_terms([(x, 1.0), (y, 2.0)]));
        let solver = SimplexSolver::new();
        let state = solver.solve_tracked(&p, &[]).state.expect("optimal");
        p.set_rhs(0, 0.5).unwrap();
        let warm = solver.resolve_with_rhs(&p, &state);
        assert_eq!(warm.outcome, SimplexOutcome::Infeasible);
    }

    #[test]
    fn rhs_resolve_rejects_structural_changes() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_binary("x");
        p.add_constraint(LinearExpr::var(x), Cmp::Le, 1.0);
        p.set_objective(LinearExpr::var(x));
        let solver = SimplexSolver::new();
        let state = solver.solve_tracked(&p, &[]).state.expect("optimal");
        // Adding a row (or a variable) invalidates the chained state.
        let y = p.add_binary("y");
        p.add_constraint(LinearExpr::var(y), Cmp::Le, 1.0);
        assert!(matches!(
            solver.resolve_with_rhs(&p, &state).outcome,
            SimplexOutcome::InvalidModel(_)
        ));
    }

    #[test]
    fn beale_cycling_example_terminates() {
        // Beale's classic cycling instance for Dantzig pricing; the
        // degeneracy-triggered switch to Bland's rule must break the cycle.
        // min -0.75a + 150b - 0.02c + 6d
        //   s.t. 0.25a - 60b - 0.04c + 9d <= 0
        //        0.5a - 90b - 0.02c + 3d <= 0
        //        c <= 1     (native bound)
        // Optimum: -0.05 at a = 0.04/0.8... (objective value is what matters).
        let mut p = Problem::new(Sense::Minimize);
        let a = p.add_continuous("a", 0.0, None);
        let b = p.add_continuous("b", 0.0, None);
        let c = p.add_continuous("c", 0.0, Some(1.0));
        let d = p.add_continuous("d", 0.0, None);
        p.add_constraint(
            LinearExpr::from_terms([(a, 0.25), (b, -60.0), (c, -0.04), (d, 9.0)]),
            Cmp::Le,
            0.0,
        );
        p.add_constraint(
            LinearExpr::from_terms([(a, 0.5), (b, -90.0), (c, -0.02), (d, 3.0)]),
            Cmp::Le,
            0.0,
        );
        p.set_objective(LinearExpr::from_terms([
            (a, -0.75),
            (b, 150.0),
            (c, -0.02),
            (d, 6.0),
        ]));
        let sol = SimplexSolver::new()
            .solve_relaxation(&p, &[])
            .solution()
            .expect("must not cycle forever");
        assert_close(sol.objective, -0.05);
    }

    #[test]
    fn anti_cycling_is_not_inherited_across_phases() {
        // Regression for the shared Bland threshold: a problem whose phase 1
        // needs many pivots (25 equality rows → 25 artificials) must still
        // solve phase 2 promptly with Dantzig pricing.  With the old
        // cross-phase counter a small iteration budget pushed phase 2 into
        // permanent Bland mode; now the whole solve fits comfortably.
        let k = 25usize;
        let mut p = Problem::new(Sense::Maximize);
        let fixed: Vec<Var> = (0..k)
            .map(|i| p.add_continuous(format!("f{i}"), 0.0, None))
            .collect();
        let free: Vec<Var> = (0..k)
            .map(|i| p.add_continuous(format!("y{i}"), 0.0, None))
            .collect();
        let mut obj = LinearExpr::new();
        for (i, v) in fixed.iter().enumerate() {
            // f_i = const > 0: the initial slack basis cannot satisfy an
            // equality with a positive residual, forcing one artificial
            // (and so at least one phase-1 pivot) per row.
            p.add_constraint(LinearExpr::var(*v), Cmp::Eq, 2.0 + i as f64);
            obj.add_term(*v, 0.1);
        }
        for (i, v) in free.iter().enumerate() {
            p.add_constraint(LinearExpr::var(*v), Cmp::Le, 1.0 + i as f64);
            obj.add_term(*v, 1.0 + (i % 7) as f64);
        }
        p.set_objective(obj);
        let result = SimplexSolver::new().solve_tracked(&p, &[]);
        assert!(
            matches!(result.outcome, SimplexOutcome::Optimal(_)),
            "expected optimal, got {:?}",
            result.outcome
        );
        // Phase 1 needs ≈k pivots and phase 2 ≈k more; anything close to the
        // iteration budget would mean pricing got stuck in Bland mode.
        assert!(
            result.pivots <= 4 * k,
            "solve took {} pivots for k = {k}",
            result.pivots
        );
    }
}
