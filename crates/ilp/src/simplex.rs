//! A dense two-phase simplex solver for the LP relaxation.
//!
//! The solver is deliberately straightforward: the flash/RAM placement
//! models are small (a few hundred variables and constraints), so a dense
//! tableau with Dantzig pricing — falling back to Bland's rule if cycling is
//! suspected — is fast enough and easy to trust.  Binary variables are
//! relaxed to the interval `[0, 1]`.

use crate::expr::Var;
use crate::problem::{Cmp, Problem, Sense, Solution, VarKind};

/// Result of an LP relaxation solve.
#[derive(Debug, Clone, PartialEq)]
pub enum SimplexOutcome {
    /// An optimal solution of the relaxation.
    Optimal(Solution),
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
    /// The iteration budget was exhausted before reaching optimality.
    IterationLimit,
}

impl SimplexOutcome {
    /// The solution, if the outcome is optimal.
    pub fn solution(self) -> Option<Solution> {
        match self {
            SimplexOutcome::Optimal(s) => Some(s),
            _ => None,
        }
    }
}

/// Configuration of the simplex solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimplexSolver {
    /// Maximum number of pivots across both phases.
    pub max_iterations: usize,
    /// Numerical tolerance.
    pub tolerance: f64,
}

impl Default for SimplexSolver {
    fn default() -> Self {
        SimplexSolver {
            max_iterations: 50_000,
            tolerance: 1e-7,
        }
    }
}

struct Tableau {
    /// `rows × cols` coefficient matrix.
    a: Vec<Vec<f64>>,
    /// Right-hand side per row.
    b: Vec<f64>,
    /// Phase-1 reduced-cost row (sum of artificials).
    cost1: Vec<f64>,
    /// Phase-2 reduced-cost row (real objective, in minimization form).
    cost2: Vec<f64>,
    /// Phase-1 objective value (negated running total).
    obj1: f64,
    /// Phase-2 objective value (negated running total).
    obj2: f64,
    /// Basis variable per row.
    basis: Vec<usize>,
    /// First artificial column index (artificials occupy `artificial_start..cols`).
    artificial_start: usize,
    cols: usize,
}

impl SimplexSolver {
    /// Create a solver with default limits.
    pub fn new() -> SimplexSolver {
        SimplexSolver::default()
    }

    /// Solve the LP relaxation of `problem` (binary variables relaxed to
    /// `[0,1]`), optionally with extra equality fixings `(var, value)` used
    /// by branch-and-bound.
    pub fn solve_relaxation(&self, problem: &Problem, fixings: &[(Var, f64)]) -> SimplexOutcome {
        if problem.check().is_err() {
            return SimplexOutcome::Infeasible;
        }
        let n = problem.num_vars();

        // Lower bound per structural variable (for shifting), upper bound rows.
        let mut lower = vec![0.0f64; n];
        let mut upper: Vec<Option<f64>> = vec![None; n];
        for (i, def) in problem.vars().iter().enumerate() {
            match def.kind {
                VarKind::Binary => {
                    lower[i] = 0.0;
                    upper[i] = Some(1.0);
                }
                VarKind::Continuous {
                    lower: lo,
                    upper: up,
                } => {
                    lower[i] = lo;
                    upper[i] = up;
                }
            }
        }

        // Branch-and-bound fixings become degenerate bounds (lower = upper =
        // value) rather than equality rows: no artificial variable is needed,
        // so the fixing can never be silently violated by later pivots.
        for (v, val) in fixings {
            lower[v.index()] = *val;
            upper[v.index()] = Some(*val);
        }

        // Build the row list: (coefficients over structural vars, cmp, rhs).
        let mut rows: Vec<(Vec<f64>, Cmp, f64)> = Vec::new();
        for c in problem.constraints() {
            let mut coeffs = vec![0.0; n];
            for (v, k) in c.expr.terms() {
                coeffs[v.index()] += k;
            }
            // Shift by lower bounds: expr(x) = expr(x' + lower) = expr(x') + expr(lower)
            let shift: f64 = coeffs.iter().zip(&lower).map(|(k, lo)| k * lo).sum();
            rows.push((coeffs, c.op, c.rhs - shift));
        }
        // Upper-bound rows: x'_i ≤ upper_i - lower_i.
        for i in 0..n {
            if let Some(u) = upper[i] {
                let mut coeffs = vec![0.0; n];
                coeffs[i] = 1.0;
                rows.push((coeffs, Cmp::Le, u - lower[i]));
            }
        }
        // Objective in minimization form over shifted variables.
        let mut c_min = vec![0.0f64; n];
        for (v, k) in problem.objective().terms() {
            c_min[v.index()] += k;
        }
        let sign = match problem.sense() {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        };
        for c in c_min.iter_mut() {
            *c *= sign;
        }

        let mut tab = self.build_tableau(n, &rows, &c_min);

        // Phase 1: drive artificials to zero.
        let mut iterations = 0usize;
        if tab.artificial_start < tab.cols {
            match self.run_phase(&mut tab, true, &mut iterations) {
                PhaseResult::Optimal => {}
                PhaseResult::Unbounded => return SimplexOutcome::Infeasible,
                PhaseResult::IterationLimit => return SimplexOutcome::IterationLimit,
            }
            if tab.obj1 > self.tolerance * 10.0 {
                return SimplexOutcome::Infeasible;
            }
            // Drive every artificial that is still basic (at level zero) out
            // of the basis.  Phase 2 bars artificial *columns* from entering
            // but a basic artificial's value can still be changed by pivots
            // on other columns, silently violating the constraint it guards.
            // A row whose structural and slack coefficients are all ~0 is a
            // redundant constraint: no later pivot can touch it, so it may
            // keep its artificial basis variable.
            for row in 0..tab.b.len() {
                if tab.basis[row] >= tab.artificial_start {
                    let col =
                        (0..tab.artificial_start).find(|&j| tab.a[row][j].abs() > self.tolerance);
                    if let Some(col) = col {
                        self.pivot(&mut tab, row, col);
                    }
                }
            }
        }

        // Phase 2: optimize the real objective, artificials barred.
        match self.run_phase(&mut tab, false, &mut iterations) {
            PhaseResult::Optimal => {}
            PhaseResult::Unbounded => return SimplexOutcome::Unbounded,
            PhaseResult::IterationLimit => return SimplexOutcome::IterationLimit,
        }

        // Extract the solution: shifted structural values + lower bounds.
        let mut values = lower;
        for (row, &bv) in tab.basis.iter().enumerate() {
            if bv < n {
                values[bv] += tab.b[row];
            }
        }
        let objective = problem.objective_value(&values);
        SimplexOutcome::Optimal(Solution { values, objective })
    }

    fn build_tableau(&self, n: usize, rows: &[(Vec<f64>, Cmp, f64)], c_min: &[f64]) -> Tableau {
        let m = rows.len();
        // Count slack/surplus and artificial columns.
        let mut num_slack = 0usize;
        let mut num_art = 0usize;
        for (_, op, rhs) in rows {
            let rhs_nonneg = *rhs >= 0.0;
            match (op, rhs_nonneg) {
                (Cmp::Le, true) | (Cmp::Ge, false) => num_slack += 1,
                (Cmp::Le, false) | (Cmp::Ge, true) => {
                    num_slack += 1;
                    num_art += 1;
                }
                (Cmp::Eq, _) => num_art += 1,
            }
        }
        let cols = n + num_slack + num_art;
        let artificial_start = n + num_slack;
        let mut a = vec![vec![0.0; cols]; m];
        let mut b = vec![0.0; m];
        let mut basis = vec![0usize; m];
        let mut next_slack = n;
        let mut next_art = artificial_start;

        for (row, (coeffs, op, rhs)) in rows.iter().enumerate() {
            let (mut coeffs, mut op, mut rhs) = (coeffs.clone(), *op, *rhs);
            if rhs < 0.0 {
                // Normalize so rhs ≥ 0.
                for c in coeffs.iter_mut() {
                    *c = -*c;
                }
                rhs = -rhs;
                op = match op {
                    Cmp::Le => Cmp::Ge,
                    Cmp::Ge => Cmp::Le,
                    Cmp::Eq => Cmp::Eq,
                };
            }
            a[row][..n].copy_from_slice(&coeffs);
            b[row] = rhs;
            match op {
                Cmp::Le => {
                    a[row][next_slack] = 1.0;
                    basis[row] = next_slack;
                    next_slack += 1;
                }
                Cmp::Ge => {
                    a[row][next_slack] = -1.0;
                    next_slack += 1;
                    a[row][next_art] = 1.0;
                    basis[row] = next_art;
                    next_art += 1;
                }
                Cmp::Eq => {
                    a[row][next_art] = 1.0;
                    basis[row] = next_art;
                    next_art += 1;
                }
            }
        }

        // Phase-2 cost row: reduced costs start as c (basis columns are slack
        // or artificial, which have zero phase-2 cost), objective 0.
        let mut cost2 = vec![0.0; cols];
        cost2[..n].copy_from_slice(c_min);
        let obj2 = 0.0;

        // Phase-1 cost row: sum of artificial variables.  Reduced costs are
        // obtained by subtracting the rows whose basis variable is artificial.
        let mut cost1 = vec![0.0; cols];
        cost1[artificial_start..].fill(1.0);
        let mut obj1 = 0.0;
        for (row, &bv) in basis.iter().enumerate() {
            if bv >= artificial_start {
                for j in 0..cols {
                    cost1[j] -= a[row][j];
                }
                obj1 += b[row];
            }
        }

        Tableau {
            a,
            b,
            cost1,
            cost2,
            obj1,
            obj2,
            basis,
            artificial_start,
            cols,
        }
    }

    fn run_phase(&self, tab: &mut Tableau, phase1: bool, iterations: &mut usize) -> PhaseResult {
        let bland_threshold = self.max_iterations / 2;
        loop {
            if *iterations >= self.max_iterations {
                return PhaseResult::IterationLimit;
            }
            *iterations += 1;
            let use_bland = *iterations > bland_threshold;

            // Choose an entering column with negative reduced cost.
            let cost = if phase1 { &tab.cost1 } else { &tab.cost2 };
            let allowed_cols = if phase1 {
                tab.cols
            } else {
                tab.artificial_start
            };
            let mut entering: Option<usize> = None;
            let mut best = -self.tolerance;
            for (j, &c) in cost.iter().enumerate().take(allowed_cols) {
                if c < -self.tolerance {
                    if use_bland {
                        entering = Some(j);
                        break;
                    }
                    if c < best {
                        best = c;
                        entering = Some(j);
                    }
                }
            }
            let Some(enter) = entering else {
                return PhaseResult::Optimal;
            };

            // Ratio test.
            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for row in 0..tab.b.len() {
                let coef = tab.a[row][enter];
                if coef > self.tolerance {
                    let ratio = tab.b[row] / coef;
                    let better = ratio < best_ratio - self.tolerance
                        || (use_bland
                            && (ratio - best_ratio).abs() <= self.tolerance
                            && leave.is_none_or(|l| tab.basis[row] < tab.basis[l]));
                    if better {
                        best_ratio = ratio;
                        leave = Some(row);
                    }
                }
            }
            let Some(leave) = leave else {
                return PhaseResult::Unbounded;
            };

            self.pivot(tab, leave, enter);
        }
    }

    fn pivot(&self, tab: &mut Tableau, row: usize, col: usize) {
        let pivot = tab.a[row][col];
        debug_assert!(pivot.abs() > self.tolerance);
        // Normalize the pivot row.
        for j in 0..tab.cols {
            tab.a[row][j] /= pivot;
        }
        tab.b[row] /= pivot;
        // Eliminate the column from the other rows and the cost rows.
        for r in 0..tab.b.len() {
            if r != row {
                let factor = tab.a[r][col];
                if factor.abs() > 0.0 {
                    for j in 0..tab.cols {
                        tab.a[r][j] -= factor * tab.a[row][j];
                    }
                    tab.b[r] -= factor * tab.b[row];
                }
            }
        }
        let f1 = tab.cost1[col];
        if f1.abs() > 0.0 {
            for j in 0..tab.cols {
                tab.cost1[j] -= f1 * tab.a[row][j];
            }
            // Entering x_col at level b[row] changes the objective by
            // (reduced cost) × level.
            tab.obj1 += f1 * tab.b[row];
        }
        let f2 = tab.cost2[col];
        if f2.abs() > 0.0 {
            for j in 0..tab.cols {
                tab.cost2[j] -= f2 * tab.a[row][j];
            }
            tab.obj2 += f2 * tab.b[row];
        }
        tab.basis[row] = col;
    }
}

enum PhaseResult {
    Optimal,
    Unbounded,
    IterationLimit,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinearExpr;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-5, "{a} vs {b}");
    }

    #[test]
    fn maximization_with_two_constraints() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  => x=2, y=6, obj=36.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_continuous("x", 0.0, None);
        let y = p.add_continuous("y", 0.0, None);
        p.add_constraint(LinearExpr::var(x), Cmp::Le, 4.0);
        p.add_constraint(LinearExpr::from_terms([(y, 2.0)]), Cmp::Le, 12.0);
        p.add_constraint(LinearExpr::from_terms([(x, 3.0), (y, 2.0)]), Cmp::Le, 18.0);
        p.set_objective(LinearExpr::from_terms([(x, 3.0), (y, 5.0)]));
        let sol = SimplexSolver::new()
            .solve_relaxation(&p, &[])
            .solution()
            .unwrap();
        assert_close(sol.value(x), 2.0);
        assert_close(sol.value(y), 6.0);
        assert_close(sol.objective, 36.0);
    }

    #[test]
    fn minimization_with_ge_constraints() {
        // min 2x + 3y s.t. x + y >= 10, x >= 2, y >= 3 => x=7, y=3, obj=23.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_continuous("x", 0.0, None);
        let y = p.add_continuous("y", 0.0, None);
        p.add_constraint(LinearExpr::from_terms([(x, 1.0), (y, 1.0)]), Cmp::Ge, 10.0);
        p.add_constraint(LinearExpr::var(x), Cmp::Ge, 2.0);
        p.add_constraint(LinearExpr::var(y), Cmp::Ge, 3.0);
        p.set_objective(LinearExpr::from_terms([(x, 2.0), (y, 3.0)]));
        let sol = SimplexSolver::new()
            .solve_relaxation(&p, &[])
            .solution()
            .unwrap();
        assert_close(sol.objective, 23.0);
        assert_close(sol.value(x), 7.0);
        assert_close(sol.value(y), 3.0);
    }

    #[test]
    fn equality_constraints_are_respected() {
        // min x + y s.t. x + y = 5, x - y = 1 => x=3, y=2.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_continuous("x", 0.0, None);
        let y = p.add_continuous("y", 0.0, None);
        p.add_constraint(LinearExpr::from_terms([(x, 1.0), (y, 1.0)]), Cmp::Eq, 5.0);
        p.add_constraint(LinearExpr::from_terms([(x, 1.0), (y, -1.0)]), Cmp::Eq, 1.0);
        p.set_objective(LinearExpr::from_terms([(x, 1.0), (y, 1.0)]));
        let sol = SimplexSolver::new()
            .solve_relaxation(&p, &[])
            .solution()
            .unwrap();
        assert_close(sol.value(x), 3.0);
        assert_close(sol.value(y), 2.0);
    }

    #[test]
    fn infeasible_system_is_reported() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_continuous("x", 0.0, None);
        p.add_constraint(LinearExpr::var(x), Cmp::Ge, 5.0);
        p.add_constraint(LinearExpr::var(x), Cmp::Le, 1.0);
        p.set_objective(LinearExpr::var(x));
        assert_eq!(
            SimplexSolver::new().solve_relaxation(&p, &[]),
            SimplexOutcome::Infeasible
        );
    }

    #[test]
    fn unbounded_problem_is_reported() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_continuous("x", 0.0, None);
        p.set_objective(LinearExpr::var(x));
        assert_eq!(
            SimplexSolver::new().solve_relaxation(&p, &[]),
            SimplexOutcome::Unbounded
        );
    }

    #[test]
    fn binary_relaxation_and_upper_bounds() {
        // max x + y with x binary, y ≤ 0.3: relaxation picks x = 1, y = 0.3.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_binary("x");
        let y = p.add_continuous("y", 0.0, Some(0.3));
        p.set_objective(LinearExpr::from_terms([(x, 1.0), (y, 1.0)]));
        let sol = SimplexSolver::new()
            .solve_relaxation(&p, &[])
            .solution()
            .unwrap();
        assert_close(sol.value(x), 1.0);
        assert_close(sol.value(y), 0.3);
    }

    #[test]
    fn fixings_pin_variables() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_binary("x");
        let y = p.add_binary("y");
        p.add_constraint(LinearExpr::from_terms([(x, 1.0), (y, 1.0)]), Cmp::Le, 1.0);
        p.set_objective(LinearExpr::from_terms([(x, 2.0), (y, 1.0)]));
        let sol = SimplexSolver::new()
            .solve_relaxation(&p, &[(x, 0.0)])
            .solution()
            .unwrap();
        assert_close(sol.value(x), 0.0);
        assert_close(sol.value(y), 1.0);
    }

    #[test]
    fn nonzero_lower_bounds_are_shifted_correctly() {
        // min x + y with x ≥ 2, y ≥ 1.5, x + y ≥ 5 → obj 5 at e.g. (3.5, 1.5).
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_continuous("x", 2.0, None);
        let y = p.add_continuous("y", 1.5, None);
        p.add_constraint(LinearExpr::from_terms([(x, 1.0), (y, 1.0)]), Cmp::Ge, 5.0);
        p.set_objective(LinearExpr::from_terms([(x, 1.0), (y, 1.0)]));
        let sol = SimplexSolver::new()
            .solve_relaxation(&p, &[])
            .solution()
            .unwrap();
        assert_close(sol.objective, 5.0);
        assert!(sol.value(x) >= 2.0 - 1e-7);
        assert!(sol.value(y) >= 1.5 - 1e-7);
    }

    #[test]
    fn negative_rhs_rows_are_normalized() {
        // x - y <= -1 (i.e. y >= x + 1), minimize y with x >= 0 → x=0, y=1.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_continuous("x", 0.0, None);
        let y = p.add_continuous("y", 0.0, None);
        p.add_constraint(LinearExpr::from_terms([(x, 1.0), (y, -1.0)]), Cmp::Le, -1.0);
        p.set_objective(LinearExpr::var(y));
        let sol = SimplexSolver::new()
            .solve_relaxation(&p, &[])
            .solution()
            .unwrap();
        assert_close(sol.value(y), 1.0);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Several redundant constraints through the same vertex.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_continuous("x", 0.0, None);
        let y = p.add_continuous("y", 0.0, None);
        p.add_constraint(LinearExpr::from_terms([(x, 1.0), (y, 1.0)]), Cmp::Le, 1.0);
        p.add_constraint(LinearExpr::from_terms([(x, 2.0), (y, 2.0)]), Cmp::Le, 2.0);
        p.add_constraint(LinearExpr::from_terms([(x, 1.0)]), Cmp::Le, 1.0);
        p.add_constraint(LinearExpr::from_terms([(y, 1.0)]), Cmp::Le, 1.0);
        p.set_objective(LinearExpr::from_terms([(x, 1.0), (y, 1.0)]));
        let sol = SimplexSolver::new()
            .solve_relaxation(&p, &[])
            .solution()
            .unwrap();
        assert_close(sol.objective, 1.0);
    }

    #[test]
    fn empty_objective_is_fine() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_continuous("x", 0.0, Some(3.0));
        p.add_constraint(LinearExpr::var(x), Cmp::Ge, 1.0);
        let sol = SimplexSolver::new()
            .solve_relaxation(&p, &[])
            .solution()
            .unwrap();
        assert!(sol.value(x) >= 1.0 - 1e-7);
        assert_close(sol.objective, 0.0);
    }
}
