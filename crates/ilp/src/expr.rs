//! Linear expressions over problem variables.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

/// A variable handle returned by [`Problem`](crate::Problem) when a variable
/// is added.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub usize);

impl Var {
    /// The variable's column index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A linear expression `Σ cᵢ·xᵢ + constant`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinearExpr {
    terms: BTreeMap<Var, f64>,
    constant: f64,
}

impl LinearExpr {
    /// The zero expression.
    pub fn new() -> LinearExpr {
        LinearExpr::default()
    }

    /// A constant expression.
    pub fn constant(c: f64) -> LinearExpr {
        LinearExpr {
            terms: BTreeMap::new(),
            constant: c,
        }
    }

    /// An expression consisting of a single variable with coefficient 1.
    pub fn var(v: Var) -> LinearExpr {
        LinearExpr::from_terms([(v, 1.0)])
    }

    /// Build an expression from `(variable, coefficient)` pairs.  Repeated
    /// variables have their coefficients summed.
    pub fn from_terms<I: IntoIterator<Item = (Var, f64)>>(terms: I) -> LinearExpr {
        let mut e = LinearExpr::new();
        for (v, c) in terms {
            e.add_term(v, c);
        }
        e
    }

    /// Add `coeff · var` to the expression.
    pub fn add_term(&mut self, var: Var, coeff: f64) -> &mut Self {
        let entry = self.terms.entry(var).or_insert(0.0);
        *entry += coeff;
        if entry.abs() < 1e-12 {
            self.terms.remove(&var);
        }
        self
    }

    /// Add a constant to the expression.
    pub fn add_constant(&mut self, c: f64) -> &mut Self {
        self.constant += c;
        self
    }

    /// The constant part.
    pub fn constant_part(&self) -> f64 {
        self.constant
    }

    /// The coefficient of a variable (0 if absent).
    pub fn coeff(&self, var: Var) -> f64 {
        self.terms.get(&var).copied().unwrap_or(0.0)
    }

    /// Iterate over `(variable, coefficient)` pairs in variable order.
    pub fn terms(&self) -> impl Iterator<Item = (Var, f64)> + '_ {
        self.terms.iter().map(|(v, c)| (*v, *c))
    }

    /// Number of variables with non-zero coefficients.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Whether the expression has no variable terms.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// Evaluate the expression for a full assignment of variable values
    /// (indexed by variable number).
    pub fn evaluate(&self, values: &[f64]) -> f64 {
        self.constant
            + self
                .terms
                .iter()
                .map(|(v, c)| c * values.get(v.index()).copied().unwrap_or(0.0))
                .sum::<f64>()
    }

    /// Multiply the whole expression by a scalar.
    pub fn scaled(mut self, k: f64) -> LinearExpr {
        for c in self.terms.values_mut() {
            *c *= k;
        }
        self.constant *= k;
        self.terms.retain(|_, c| c.abs() >= 1e-12);
        self
    }

    /// The largest variable index mentioned, if any.
    pub fn max_var(&self) -> Option<usize> {
        self.terms.keys().next_back().map(|v| v.index())
    }
}

impl From<Var> for LinearExpr {
    fn from(v: Var) -> LinearExpr {
        LinearExpr::var(v)
    }
}

impl Add for LinearExpr {
    type Output = LinearExpr;
    fn add(mut self, rhs: LinearExpr) -> LinearExpr {
        for (v, c) in rhs.terms {
            self.add_term(v, c);
        }
        self.constant += rhs.constant;
        self
    }
}

impl AddAssign for LinearExpr {
    fn add_assign(&mut self, rhs: LinearExpr) {
        for (v, c) in rhs.terms {
            self.add_term(v, c);
        }
        self.constant += rhs.constant;
    }
}

impl Sub for LinearExpr {
    type Output = LinearExpr;
    fn sub(self, rhs: LinearExpr) -> LinearExpr {
        self + rhs.scaled(-1.0)
    }
}

impl Mul<f64> for LinearExpr {
    type Output = LinearExpr;
    fn mul(self, k: f64) -> LinearExpr {
        self.scaled(k)
    }
}

impl fmt::Display for LinearExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, c) in &self.terms {
            if first {
                write!(f, "{c}·{v}")?;
                first = false;
            } else if *c >= 0.0 {
                write!(f, " + {c}·{v}")?;
            } else {
                write!(f, " - {}·{v}", -c)?;
            }
        }
        if self.constant != 0.0 || first {
            if first {
                write!(f, "{}", self.constant)?;
            } else if self.constant >= 0.0 {
                write!(f, " + {}", self.constant)?;
            } else {
                write!(f, " - {}", -self.constant)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn building_and_evaluating() {
        let x = Var(0);
        let y = Var(1);
        let e = LinearExpr::from_terms([(x, 2.0), (y, -1.0), (x, 0.5)]);
        assert_eq!(e.coeff(x), 2.5);
        assert_eq!(e.coeff(y), -1.0);
        assert_eq!(e.coeff(Var(7)), 0.0);
        assert_eq!(e.evaluate(&[2.0, 4.0]), 1.0);
    }

    #[test]
    fn zero_coefficients_are_dropped() {
        let x = Var(0);
        let mut e = LinearExpr::var(x);
        e.add_term(x, -1.0);
        assert_eq!(e.num_terms(), 0);
        assert!(e.is_constant());
    }

    #[test]
    fn arithmetic_operators() {
        let x = Var(0);
        let y = Var(1);
        let a = LinearExpr::from_terms([(x, 1.0)]) + LinearExpr::from_terms([(y, 2.0)]);
        let b = a.clone() - LinearExpr::from_terms([(x, 1.0)]);
        assert_eq!(b.coeff(x), 0.0);
        assert_eq!(b.coeff(y), 2.0);
        let c = a * 3.0;
        assert_eq!(c.coeff(x), 3.0);
        assert_eq!(c.coeff(y), 6.0);
    }

    #[test]
    fn constants_accumulate() {
        let mut e = LinearExpr::constant(2.0);
        e.add_constant(1.5);
        assert_eq!(e.constant_part(), 3.5);
        assert_eq!(e.evaluate(&[]), 3.5);
    }

    #[test]
    fn display_is_readable() {
        let e = LinearExpr::from_terms([(Var(0), 1.0), (Var(1), -2.0)]);
        let s = e.to_string();
        assert!(s.contains("x0"));
        assert!(s.contains("- 2"));
    }

    #[test]
    fn max_var_tracks_largest_index() {
        assert_eq!(LinearExpr::new().max_var(), None);
        let e = LinearExpr::from_terms([(Var(3), 1.0), (Var(11), 2.0)]);
        assert_eq!(e.max_var(), Some(11));
    }
}
