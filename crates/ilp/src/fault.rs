//! Deterministic fault injection: a seeded [`FaultPlan`] consulted at named
//! failpoints threaded through the solver stack.
//!
//! Only compiled with the `fault-injection` cargo feature, so release hot
//! paths carry none of this.  The design rules:
//!
//! * **Decide-by-counter, no wall clock.**  Every failpoint keeps a
//!   plan-wide atomic hit counter; whether the *n*-th arrival at a site
//!   fires is a pure function of `(seed, site, n, rate)`
//!   ([`FaultPlan::decide`]).  Two runs that reach a site the same number
//!   of times observe exactly the same firing pattern, regardless of which
//!   threads did the reaching.
//! * **Thread-scoped installation.**  A plan is [`install`]ed into a
//!   thread-local slot; failpoints consult the calling thread's slot and
//!   are inert (a single thread-local read) on threads without a plan.
//!   The placement server installs its plan on worker threads only, so
//!   sequential oracle re-solves on test threads are fault-free by
//!   construction.
//! * **Budgeted sites.**  A site can be capped to a maximum number of
//!   fires ([`FaultPlan::site_budget`]) so targeted tests can inject
//!   exactly one panic and then watch the system recover.
//!
//! The failpoint catalog lives in [`FaultSite`]; the sites themselves are
//! planted in `BranchBound::solve_chained_stats` (this crate),
//! `PlacementSession::solve_point` (flashram-core) and the serve worker
//! loop (flashram-serve).

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The failpoint catalog: every named site a [`FaultPlan`] can fire at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// `ilp`: panic in the middle of a branch-and-bound solve (after the
    /// model's budget rows were already retargeted — the session holding
    /// the solver is genuinely half-mutated when this fires).
    IlpPanic,
    /// `ilp`: spurious [`SolveError::BudgetExhausted`] returned from a
    /// branch-and-bound solve without exploring a single node, exercising
    /// the degradation ladder below the real node budget.
    ///
    /// [`SolveError::BudgetExhausted`]: crate::SolveError::BudgetExhausted
    IlpSpuriousExhaustion,
    /// `core`: error out of `PlacementSession`'s point resolve before the
    /// solver is even invoked.
    CorePointError,
    /// `serve`: force-evict the least-recently-used idle cache entry after
    /// a worker releases its claim, simulating an eviction racing the next
    /// admission for the same key.
    ServeEvictRace,
    /// `serve`: worker panic immediately after claiming a batch (before
    /// the lazy session build).
    ServeClaimPanic,
    /// `serve`: delay a worker between draining its coalesced batch and
    /// solving it, perturbing the schedule (and, with a delay longer than
    /// the watchdog deadline, simulating a wedged worker).
    ServeCoalesceDelay,
}

impl FaultSite {
    /// Every site, in a fixed order (the counter-array layout).
    pub const ALL: [FaultSite; 6] = [
        FaultSite::IlpPanic,
        FaultSite::IlpSpuriousExhaustion,
        FaultSite::CorePointError,
        FaultSite::ServeEvictRace,
        FaultSite::ServeClaimPanic,
        FaultSite::ServeCoalesceDelay,
    ];

    /// The snake_case name used in logs, reports and `BENCH_serve.json`.
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::IlpPanic => "ilp_panic",
            FaultSite::IlpSpuriousExhaustion => "ilp_spurious_exhaustion",
            FaultSite::CorePointError => "core_point_error",
            FaultSite::ServeEvictRace => "serve_evict_race",
            FaultSite::ServeClaimPanic => "serve_claim_panic",
            FaultSite::ServeCoalesceDelay => "serve_coalesce_delay",
        }
    }

    fn idx(self) -> usize {
        match self {
            FaultSite::IlpPanic => 0,
            FaultSite::IlpSpuriousExhaustion => 1,
            FaultSite::CorePointError => 2,
            FaultSite::ServeEvictRace => 3,
            FaultSite::ServeClaimPanic => 4,
            FaultSite::ServeCoalesceDelay => 5,
        }
    }
}

/// Prefix every injected panic/error message carries, so containment
/// layers (and humans reading logs) can tell injected failures from real
/// ones.
pub const INJECTED_MARKER: &str = "injected fault:";

#[derive(Debug)]
struct SiteState {
    rate_per_mille: u16,
    /// Maximum number of fires (`u64::MAX` = unlimited).
    budget: u64,
    hits: AtomicU64,
    fired: AtomicU64,
}

#[derive(Debug)]
struct PlanInner {
    seed: u64,
    delay: Duration,
    sites: [SiteState; 6],
}

/// Per-site accounting snapshot (see [`FaultPlan::snapshot`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteSnapshot {
    /// The site.
    pub site: FaultSite,
    /// How many times execution reached the site.
    pub hits: u64,
    /// How many of those arrivals fired the fault.
    pub fired: u64,
}

/// A seeded, shareable fault schedule.  Cloning shares the counters, so a
/// plan handed to a server and kept by the test observes the same
/// accounting.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    inner: Arc<PlanInner>,
}

impl FaultPlan {
    /// A plan firing every site at `rate_per_mille` (0 = never, 1000 =
    /// always), decided per hit by [`FaultPlan::decide`].
    pub fn new(seed: u64, rate_per_mille: u16) -> FaultPlan {
        FaultPlan {
            inner: Arc::new(PlanInner {
                seed,
                delay: Duration::from_millis(2),
                sites: std::array::from_fn(|_| SiteState {
                    rate_per_mille,
                    budget: u64::MAX,
                    hits: AtomicU64::new(0),
                    fired: AtomicU64::new(0),
                }),
            }),
        }
    }

    /// Override one site's firing rate.
    ///
    /// # Panics
    ///
    /// Panics if the plan was already cloned (configure before sharing).
    pub fn site_rate(mut self, site: FaultSite, rate_per_mille: u16) -> FaultPlan {
        let inner = Arc::get_mut(&mut self.inner).expect("configure the plan before cloning it");
        inner.sites[site.idx()].rate_per_mille = rate_per_mille;
        self
    }

    /// Cap one site to at most `max_fires` total fires (for targeted
    /// inject-once-then-recover tests).
    ///
    /// # Panics
    ///
    /// Panics if the plan was already cloned (configure before sharing).
    pub fn site_budget(mut self, site: FaultSite, max_fires: u64) -> FaultPlan {
        let inner = Arc::get_mut(&mut self.inner).expect("configure the plan before cloning it");
        inner.sites[site.idx()].budget = max_fires;
        self
    }

    /// Set the sleep injected by [`FaultSite::ServeCoalesceDelay`]
    /// (default 2 ms; a delay past the server's watchdog deadline
    /// simulates a wedged worker).
    ///
    /// # Panics
    ///
    /// Panics if the plan was already cloned (configure before sharing).
    pub fn delay(mut self, delay: Duration) -> FaultPlan {
        let inner = Arc::get_mut(&mut self.inner).expect("configure the plan before cloning it");
        inner.delay = delay;
        self
    }

    /// The seed the plan was built from.
    pub fn seed(&self) -> u64 {
        self.inner.seed
    }

    /// The pure decision function: does the `hit`-th arrival (0-based) at
    /// `site` fire under `(seed, rate_per_mille)`?  [`FaultPlan::should_fire`]
    /// is exactly this applied to the site's atomic hit counter, so the
    /// firing pattern of a run is fully determined by how often each site
    /// was reached — never by wall clock or thread identity.
    pub fn decide(seed: u64, site: FaultSite, hit: u64, rate_per_mille: u16) -> bool {
        if rate_per_mille == 0 {
            return false;
        }
        if rate_per_mille >= 1000 {
            return true;
        }
        let mut x = seed
            ^ (site.idx() as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ hit.wrapping_mul(0xd1b5_4a32_d192_ed03);
        // splitmix64 finalizer.
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        x % 1000 < rate_per_mille as u64
    }

    /// Count one arrival at `site` and report whether it fires.
    pub fn should_fire(&self, site: FaultSite) -> bool {
        let state = &self.inner.sites[site.idx()];
        let hit = state.hits.fetch_add(1, Ordering::SeqCst);
        if !FaultPlan::decide(self.inner.seed, site, hit, state.rate_per_mille) {
            return false;
        }
        state
            .fired
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |fired| {
                (fired < state.budget).then_some(fired + 1)
            })
            .is_ok()
    }

    /// How many times execution reached `site`.
    pub fn hits(&self, site: FaultSite) -> u64 {
        self.inner.sites[site.idx()].hits.load(Ordering::SeqCst)
    }

    /// How many times `site` fired.
    pub fn fired(&self, site: FaultSite) -> u64 {
        self.inner.sites[site.idx()].fired.load(Ordering::SeqCst)
    }

    /// Total fires across every site.
    pub fn total_fired(&self) -> u64 {
        FaultSite::ALL.iter().map(|&s| self.fired(s)).sum()
    }

    /// The per-site accounting, in [`FaultSite::ALL`] order.
    pub fn snapshot(&self) -> Vec<SiteSnapshot> {
        FaultSite::ALL
            .iter()
            .map(|&site| SiteSnapshot {
                site,
                hits: self.hits(site),
                fired: self.fired(site),
            })
            .collect()
    }

    /// The configured [`FaultSite::ServeCoalesceDelay`] sleep.
    pub fn coalesce_delay(&self) -> Duration {
        self.inner.delay
    }
}

thread_local! {
    static ACTIVE: RefCell<Option<FaultPlan>> = const { RefCell::new(None) };
}

/// Clears the calling thread's installed plan when dropped (see
/// [`install`]).
#[derive(Debug)]
pub struct InstallGuard {
    _priv: (),
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        ACTIVE.with(|slot| slot.borrow_mut().take());
    }
}

/// Install `plan` on the calling thread: failpoints reached from this
/// thread consult it until the returned guard drops.  Installing over an
/// existing plan replaces it.
pub fn install(plan: FaultPlan) -> InstallGuard {
    ACTIVE.with(|slot| *slot.borrow_mut() = Some(plan));
    InstallGuard { _priv: () }
}

/// The failpoint primitive: count one arrival at `site` against the
/// calling thread's installed plan.  `false` (without counting anything)
/// on threads with no plan.
pub fn should_fire(site: FaultSite) -> bool {
    ACTIVE.with(|slot| {
        slot.borrow()
            .as_ref()
            .is_some_and(|plan| plan.should_fire(site))
    })
}

/// The calling thread's configured coalesce delay, if a plan is installed.
pub fn injected_delay() -> Option<Duration> {
    ACTIVE.with(|slot| slot.borrow().as_ref().map(FaultPlan::coalesce_delay))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decide_is_pure_and_rate_bounded() {
        for &site in &FaultSite::ALL {
            for hit in 0..256 {
                assert!(!FaultPlan::decide(7, site, hit, 0), "rate 0 never fires");
                assert!(
                    FaultPlan::decide(7, site, hit, 1000),
                    "rate 1000 always fires"
                );
                assert_eq!(
                    FaultPlan::decide(7, site, hit, 250),
                    FaultPlan::decide(7, site, hit, 250),
                    "decisions are deterministic"
                );
            }
        }
    }

    #[test]
    fn should_fire_matches_the_decision_prefix() {
        let plan = FaultPlan::new(0xC4A05, 300);
        let observed: Vec<bool> = (0..200)
            .map(|_| plan.should_fire(FaultSite::IlpPanic))
            .collect();
        let expected: Vec<bool> = (0..200)
            .map(|hit| FaultPlan::decide(0xC4A05, FaultSite::IlpPanic, hit, 300))
            .collect();
        assert_eq!(observed, expected);
        assert_eq!(plan.hits(FaultSite::IlpPanic), 200);
        assert_eq!(
            plan.fired(FaultSite::IlpPanic),
            expected.iter().filter(|&&f| f).count() as u64
        );
        assert_eq!(plan.hits(FaultSite::CorePointError), 0, "sites independent");
    }

    #[test]
    fn budget_caps_total_fires() {
        let plan = FaultPlan::new(1, 1000).site_budget(FaultSite::ServeClaimPanic, 2);
        let fires: usize = (0..10)
            .filter(|_| plan.should_fire(FaultSite::ServeClaimPanic))
            .count();
        assert_eq!(fires, 2);
        assert_eq!(plan.hits(FaultSite::ServeClaimPanic), 10);
        assert_eq!(plan.fired(FaultSite::ServeClaimPanic), 2);
    }

    #[test]
    fn thread_local_install_scopes_the_plan() {
        assert!(!should_fire(FaultSite::IlpPanic), "no plan: inert");
        let plan = FaultPlan::new(9, 1000);
        {
            let _guard = install(plan.clone());
            assert!(should_fire(FaultSite::IlpPanic));
        }
        assert!(!should_fire(FaultSite::IlpPanic), "guard dropped: inert");
        assert_eq!(
            plan.hits(FaultSite::IlpPanic),
            1,
            "only the installed hit counted"
        );
    }
}
