//! Linear programming and 0-1 integer linear programming.
//!
//! The paper formulates the choice of basic blocks to move from flash to RAM
//! as an integer linear program and solves it with GLPK.  GLPK is not
//! available to this reproduction, so this crate provides the solving
//! machinery in-repo:
//!
//! * a [`Problem`] builder for linear models over continuous and binary
//!   variables ([`problem`]),
//! * a dense **bounded-variable simplex** solver for the LP relaxation —
//!   variable bounds live in the ratio test, not in extra rows ([`simplex`]),
//! * a **branch-and-bound** 0-1 ILP solver built on top of it, which
//!   warm-starts every child node with the dual simplex from the parent's
//!   optimal basis ([`branch_bound`], [`basis`]),
//! * an **exhaustive** enumerator for small instances, used both to validate
//!   branch-and-bound in tests and to generate the full trade-off space of
//!   Figure 6 ([`exhaustive`]), and
//! * a **greedy** improvement heuristic used as a baseline and as a fallback
//!   when the node budget is exhausted ([`greedy`]).
//!
//! # Example
//!
//! Maximize `3x + 2y` subject to `x + y ≤ 4`, `x ≤ 2.5` with `y` binary:
//!
//! ```
//! use flashram_ilp::{Problem, Sense, LinearExpr, Cmp, BranchBound};
//!
//! let mut p = Problem::new(Sense::Maximize);
//! let x = p.add_continuous("x", 0.0, Some(2.5));
//! let y = p.add_binary("y");
//! p.add_constraint(LinearExpr::from_terms([(x, 1.0), (y, 1.0)]), Cmp::Le, 4.0);
//! p.set_objective(LinearExpr::from_terms([(x, 3.0), (y, 2.0)]));
//! let sol = BranchBound::new().solve(&p).expect("solvable");
//! assert!((sol.value(x) - 2.5).abs() < 1e-6);
//! assert!((sol.value(y) - 1.0).abs() < 1e-6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod basis;
pub mod branch_bound;
pub(crate) mod cuts;
pub mod exhaustive;
pub mod expr;
#[cfg(feature = "fault-injection")]
pub mod fault;
pub mod greedy;
pub mod problem;
pub mod simplex;

pub use basis::{Basis, LpState};
pub use branch_bound::{BranchBound, BranchBoundStats, ChainedSolve, NodeSelection};
pub use exhaustive::ExhaustiveSolver;
pub use expr::{LinearExpr, Var};
#[cfg(feature = "fault-injection")]
pub use fault::{FaultPlan, FaultSite};
pub use greedy::GreedySolver;
pub use problem::{Cmp, Problem, Sense, Solution, SolveError, VarKind};
pub use simplex::{LpResult, SimplexOutcome, SimplexSolver};
