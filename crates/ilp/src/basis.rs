//! Simplex basis bookkeeping and the warm-start state.
//!
//! The bounded-variable simplex in [`crate::simplex`] works on an [`LpState`]:
//! the dense tableau `B⁻¹A`, the values of the basic variables, the
//! nonbasic-at-upper flags and the active column bounds.  Branch-and-bound
//! keeps the `LpState` of every solved relaxation and re-solves child nodes
//! from it with the dual simplex instead of a cold two-phase solve — a bound
//! change never disturbs the reduced costs, so the parent's optimal basis
//! stays dual feasible and typically needs only a handful of pivots to
//! restore primal feasibility.

/// A compact snapshot of a simplex basis: which column is basic in each row,
/// and at which bound every nonbasic column rests.
///
/// Columns `0..num_structural` are the problem's variables; the following
/// columns are the per-constraint slacks, then any phase-1 artificials.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Basis {
    /// The basic column of each tableau row.
    pub basic_cols: Vec<usize>,
    /// Per column, whether a nonbasic column sits at its upper bound
    /// (meaningless for basic columns).
    pub at_upper: Vec<bool>,
    /// Number of structural (problem) variables.
    pub num_structural: usize,
}

/// The full state of a solved (or in-progress) LP: tableau, basis, bounds.
///
/// Cloning an `LpState` and tightening a variable's bounds, then running the
/// dual simplex, is how branch-and-bound warm-starts child nodes.  The state
/// is opaque outside the crate apart from the size accessors and
/// [`LpState::basis`].
#[derive(Debug, Clone, PartialEq)]
pub struct LpState {
    /// Dense tableau `B⁻¹A`, `rows × cols`.
    pub(crate) a: Vec<Vec<f64>>,
    /// Current value of the basic variable of each row.
    pub(crate) xb: Vec<f64>,
    /// Basic column per row.
    pub(crate) basis: Vec<usize>,
    /// Row in which a column is basic (`usize::MAX` when nonbasic).
    pub(crate) row_of: Vec<usize>,
    /// Whether a nonbasic column sits at its upper bound.
    pub(crate) at_upper: Vec<bool>,
    /// Lower bound per column (structural, slack and artificial).
    pub(crate) lo: Vec<f64>,
    /// Upper bound per column (`f64::INFINITY` when absent).
    pub(crate) up: Vec<f64>,
    /// Phase-2 reduced costs (minimization form), maintained across pivots.
    pub(crate) d: Vec<f64>,
    /// The constraint right-hand sides this state was last solved against
    /// (one per row, in the problem's row order and original sign).  Kept so
    /// [`crate::SimplexSolver::resolve_with_rhs`] can compute the deltas to a
    /// problem whose right-hand sides were mutated in place.
    pub(crate) rhs: Vec<f64>,
    /// Number of structural variables (columns `0..n`).
    pub(crate) n: usize,
    /// First artificial column (`cols` when the solve needed none).
    pub(crate) artificial_start: usize,
    /// Total number of columns.
    pub(crate) cols: usize,
}

impl LpState {
    /// Number of tableau rows — one per constraint of the source problem:
    /// variable bounds and branch fixings do **not** create rows.
    pub fn num_rows(&self) -> usize {
        self.xb.len()
    }

    /// Number of structural (problem) variables.
    pub fn num_structural(&self) -> usize {
        self.n
    }

    /// Number of phase-1 artificial columns the solve needed.
    pub fn num_artificials(&self) -> usize {
        self.cols - self.artificial_start
    }

    /// Total number of tableau columns (structurals + slacks + artificials).
    pub fn num_cols(&self) -> usize {
        self.cols
    }

    /// The constraint right-hand sides this state was last solved against,
    /// one per row.  After
    /// [`resolve_with_rhs`](crate::SimplexSolver::resolve_with_rhs) this
    /// matches the problem's current right-hand sides.
    pub fn solved_rhs(&self) -> &[f64] {
        &self.rhs
    }

    /// A compact snapshot of the current basis.
    pub fn basis(&self) -> Basis {
        Basis {
            basic_cols: self.basis.clone(),
            at_upper: self.at_upper.clone(),
            num_structural: self.n,
        }
    }

    /// The current value of a column: its basic value if basic, otherwise
    /// the bound it rests at.
    pub(crate) fn value_of(&self, col: usize) -> f64 {
        let row = self.row_of[col];
        if row != usize::MAX {
            self.xb[row]
        } else if self.at_upper[col] {
            self.up[col]
        } else {
            self.lo[col]
        }
    }

    /// Whether a column is basic.
    pub(crate) fn is_basic(&self, col: usize) -> bool {
        self.row_of[col] != usize::MAX
    }

    /// Append constraint rows to a solved state, preserving every layout
    /// invariant the warm-start paths rely on — in particular that the slack
    /// of row `r` is column `n + r`, which
    /// [`resolve_with_rhs`](crate::SimplexSolver::resolve_with_rhs) reads as
    /// `B⁻¹·e_r`.
    ///
    /// Each entry is `(structural coefficients, rhs, slack lower, slack
    /// upper)`.  The new slack columns are spliced in *before* the artificial
    /// block (so they land exactly at `n + old_rows ..`), every basis
    /// reference into the artificial block shifts accordingly, and each new
    /// tableau row is eliminated against the current basic columns so it is
    /// expressed in `B⁻¹A` form like the existing rows.  The new row's slack
    /// enters the basis at value `rhs − a·x` for the current point `x`; when
    /// that violates the slack's bounds (the row cuts the current point off)
    /// the state is primal infeasible but still **dual feasible** — its
    /// reduced costs are untouched because the new slacks cost zero — so a
    /// dual-simplex repair restores optimality.  This is what lets
    /// branch-and-bound add cutting planes mid-search and keep warm-starting:
    /// states snapshotted *before* a cut was added are upgraded with this
    /// method when a node is expanded out of order.
    pub(crate) fn append_rows(&mut self, rows: &[(Vec<f64>, f64, f64, f64)]) {
        let k = rows.len();
        if k == 0 {
            return;
        }
        let insert = self.artificial_start;
        let old_rows = self.num_rows();

        // Splice k zero columns (the new slacks) in front of the artificials.
        for row in &mut self.a {
            row.splice(insert..insert, std::iter::repeat_n(0.0, k));
        }
        self.lo
            .splice(insert..insert, rows.iter().map(|&(_, _, slo, _)| slo));
        self.up
            .splice(insert..insert, rows.iter().map(|&(_, _, _, sup)| sup));
        self.at_upper
            .splice(insert..insert, std::iter::repeat_n(false, k));
        self.d.splice(insert..insert, std::iter::repeat_n(0.0, k));
        self.row_of
            .splice(insert..insert, std::iter::repeat_n(usize::MAX, k));
        for b in &mut self.basis {
            if *b >= insert {
                *b += k;
            }
        }
        self.artificial_start += k;
        self.cols += k;
        // Re-point the shifted artificial columns.
        for (row, &b) in self.basis.iter().enumerate() {
            self.row_of[b] = row;
        }

        // Build each new row in B⁻¹A form with its slack basic.
        for (i, (coeffs, rhs, _, _)) in rows.iter().enumerate() {
            debug_assert_eq!(coeffs.len(), self.n);
            let slack_col = insert + i;
            // Slack value at the current point, from the *original* row.
            let dot: f64 = coeffs
                .iter()
                .enumerate()
                .map(|(j, &c)| c * self.value_of(j))
                .sum();
            let xb_new = rhs - dot;

            let mut full = vec![0.0; self.cols];
            full[..self.n].copy_from_slice(coeffs);
            full[slack_col] = 1.0;
            // Eliminate against the existing basic columns: each is a unit
            // column across the old rows, so one pass suffices.  The new
            // rows' own slacks never appear in older rows, so new rows need
            // no elimination against each other.
            for r in 0..old_rows + i {
                let b = self.basis[r];
                let factor = full[b];
                if factor != 0.0 {
                    for (f, p) in full.iter_mut().zip(&self.a[r]) {
                        *f -= factor * p;
                    }
                }
            }
            self.a.push(full);
            self.xb.push(xb_new);
            self.basis.push(slack_col);
            self.row_of[slack_col] = old_rows + i;
            self.rhs.push(*rhs);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::expr::LinearExpr;
    use crate::problem::{Cmp, Problem, Sense};
    use crate::simplex::SimplexSolver;

    #[test]
    fn state_dimensions_match_the_problem() {
        // Two constraints, two vars with native bounds: 2 rows, 4 columns
        // (2 structural + 2 slacks), no artificials.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_continuous("x", 0.0, Some(4.0));
        let y = p.add_binary("y");
        p.add_constraint(LinearExpr::from_terms([(x, 1.0), (y, 1.0)]), Cmp::Le, 3.0);
        p.add_constraint(LinearExpr::from_terms([(x, 1.0), (y, -1.0)]), Cmp::Le, 2.0);
        p.set_objective(LinearExpr::from_terms([(x, 1.0), (y, 1.0)]));
        let result = SimplexSolver::new().solve_tracked(&p, &[]);
        let state = result.state.expect("optimal state");
        assert_eq!(state.num_rows(), 2);
        assert_eq!(state.num_structural(), 2);
        assert_eq!(state.num_artificials(), 0);
        assert_eq!(state.num_cols(), 4);
        let basis = state.basis();
        assert_eq!(basis.basic_cols.len(), 2);
        assert_eq!(basis.num_structural, 2);
    }
}
