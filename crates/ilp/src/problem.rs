//! Model container: variables, constraints, objective.

use std::fmt;

use crate::expr::{LinearExpr, Var};

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// Minimize the objective.
    Minimize,
    /// Maximize the objective.
    Maximize,
}

/// Comparison operator of a constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `expr ≤ rhs`
    Le,
    /// `expr ≥ rhs`
    Ge,
    /// `expr = rhs`
    Eq,
}

impl fmt::Display for Cmp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cmp::Le => write!(f, "<="),
            Cmp::Ge => write!(f, ">="),
            Cmp::Eq => write!(f, "="),
        }
    }
}

/// Kind and bounds of a variable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum VarKind {
    /// Continuous variable with a lower bound and an optional upper bound.
    Continuous {
        /// Lower bound (may be 0 for the usual non-negative variables).
        lower: f64,
        /// Optional upper bound.
        upper: Option<f64>,
    },
    /// 0/1 integer variable.
    Binary,
}

/// Definition of one variable.
#[derive(Debug, Clone, PartialEq)]
pub struct VarDef {
    /// Human-readable name, used in diagnostics.
    pub name: String,
    /// Kind and bounds.
    pub kind: VarKind,
}

/// A linear constraint `expr op rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// Left-hand-side expression (its constant part is folded into `rhs`).
    pub expr: LinearExpr,
    /// Comparison operator.
    pub op: Cmp,
    /// Right-hand-side constant.
    pub rhs: f64,
}

impl Constraint {
    /// Check whether an assignment satisfies the constraint, up to `tol`.
    pub fn satisfied(&self, values: &[f64], tol: f64) -> bool {
        let lhs = self.expr.evaluate(values);
        match self.op {
            Cmp::Le => lhs <= self.rhs + tol,
            Cmp::Ge => lhs >= self.rhs - tol,
            Cmp::Eq => (lhs - self.rhs).abs() <= tol,
        }
    }
}

/// Errors returned by the solvers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// No feasible assignment exists.
    Infeasible,
    /// The problem is unbounded in the optimization direction.
    Unbounded,
    /// The solver hit its iteration or node budget before completing.
    /// The payload describes which budget was exhausted.
    BudgetExhausted(String),
    /// The model is malformed (e.g. an expression references a variable that
    /// was never added).
    InvalidModel(String),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Infeasible => write!(f, "problem is infeasible"),
            SolveError::Unbounded => write!(f, "problem is unbounded"),
            SolveError::BudgetExhausted(what) => write!(f, "solver budget exhausted: {what}"),
            SolveError::InvalidModel(why) => write!(f, "invalid model: {why}"),
        }
    }
}

impl std::error::Error for SolveError {}

/// A solved assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Value per variable, indexed by variable number.
    pub values: Vec<f64>,
    /// Objective value of the assignment (in the problem's own sense).
    pub objective: f64,
}

impl Solution {
    /// Value of a variable.
    pub fn value(&self, var: Var) -> f64 {
        self.values.get(var.index()).copied().unwrap_or(0.0)
    }

    /// Whether a binary variable is set (value ≥ 0.5).
    pub fn is_set(&self, var: Var) -> bool {
        self.value(var) >= 0.5
    }
}

/// A linear model: variables, linear constraints and a linear objective.
#[derive(Debug, Clone, PartialEq)]
pub struct Problem {
    sense: Sense,
    vars: Vec<VarDef>,
    constraints: Vec<Constraint>,
    objective: LinearExpr,
}

impl Problem {
    /// Create an empty problem with the given optimization sense.
    pub fn new(sense: Sense) -> Problem {
        Problem {
            sense,
            vars: Vec::new(),
            constraints: Vec::new(),
            objective: LinearExpr::new(),
        }
    }

    /// The optimization sense.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Add a continuous variable with bounds `[lower, upper]`.
    pub fn add_continuous(
        &mut self,
        name: impl Into<String>,
        lower: f64,
        upper: Option<f64>,
    ) -> Var {
        self.vars.push(VarDef {
            name: name.into(),
            kind: VarKind::Continuous { lower, upper },
        });
        Var(self.vars.len() - 1)
    }

    /// Add a 0/1 variable.
    pub fn add_binary(&mut self, name: impl Into<String>) -> Var {
        self.vars.push(VarDef {
            name: name.into(),
            kind: VarKind::Binary,
        });
        Var(self.vars.len() - 1)
    }

    /// Add the constraint `expr op rhs`.  Any constant part of `expr` is
    /// folded into the right-hand side.
    pub fn add_constraint(&mut self, expr: LinearExpr, op: Cmp, rhs: f64) {
        let c = expr.constant_part();
        let expr = expr - LinearExpr::constant(c);
        self.constraints.push(Constraint {
            expr,
            op,
            rhs: rhs - c,
        });
    }

    /// Set the objective expression.
    pub fn set_objective(&mut self, objective: LinearExpr) {
        self.objective = objective;
    }

    /// Overwrite the right-hand side of constraint `index` in place, leaving
    /// its expression and operator untouched.
    ///
    /// This is the mutation the frontier sweeps are built on: a budget
    /// constraint like `Σ S_b·r_b ≤ R_spare` keeps its row and coefficients
    /// across sweep points, only the bound moves.  A solved
    /// [`LpState`](crate::basis::LpState) taken *before* the mutation can be re-solved
    /// against the new right-hand side with
    /// [`SimplexSolver::resolve_with_rhs`](crate::SimplexSolver::resolve_with_rhs)
    /// — an RHS change never disturbs the reduced costs, so the dual simplex
    /// repairs the old optimal basis in a handful of pivots.
    ///
    /// Note that [`Problem::add_constraint`] folds the expression's constant
    /// part into the stored right-hand side; `set_rhs` sets the *stored*
    /// value directly, so callers that built the row from an expression with
    /// a constant part must fold it themselves.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::InvalidModel`] when `index` is out of range or
    /// `rhs` is not finite.
    pub fn set_rhs(&mut self, index: usize, rhs: f64) -> Result<(), SolveError> {
        if !rhs.is_finite() {
            return Err(SolveError::InvalidModel(format!(
                "constraint {index} right-hand side set to non-finite {rhs}"
            )));
        }
        match self.constraints.get_mut(index) {
            Some(c) => {
                c.rhs = rhs;
                Ok(())
            }
            None => Err(SolveError::InvalidModel(format!(
                "set_rhs on constraint {index} but only {} constraints exist",
                self.constraints.len()
            ))),
        }
    }

    /// The right-hand side of constraint `index` (`None` when out of range).
    pub fn rhs(&self, index: usize) -> Option<f64> {
        self.constraints.get(index).map(|c| c.rhs)
    }

    /// The objective expression.
    pub fn objective(&self) -> &LinearExpr {
        &self.objective
    }

    /// The constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// The variable definitions.
    pub fn vars(&self) -> &[VarDef] {
        &self.vars
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// The binary variables of the problem.
    pub fn binary_vars(&self) -> Vec<Var> {
        self.vars
            .iter()
            .enumerate()
            .filter(|(_, d)| d.kind == VarKind::Binary)
            .map(|(i, _)| Var(i))
            .collect()
    }

    /// Check the structural validity of the model: every expression must
    /// only mention defined variables.
    pub fn check(&self) -> Result<(), SolveError> {
        let n = self.vars.len();
        let check_expr = |e: &LinearExpr, what: &str| -> Result<(), SolveError> {
            if let Some(m) = e.max_var() {
                if m >= n {
                    return Err(SolveError::InvalidModel(format!(
                        "{what} references x{m} but only {n} variables are defined"
                    )));
                }
            }
            Ok(())
        };
        check_expr(&self.objective, "objective")?;
        for (i, c) in self.constraints.iter().enumerate() {
            check_expr(&c.expr, &format!("constraint {i}"))?;
        }
        Ok(())
    }

    /// Whether an assignment satisfies every constraint and every variable
    /// bound (binaries must be within `tol` of 0 or 1).
    pub fn is_feasible(&self, values: &[f64], tol: f64) -> bool {
        if values.len() < self.vars.len() {
            return false;
        }
        for (i, d) in self.vars.iter().enumerate() {
            let v = values[i];
            match d.kind {
                VarKind::Binary => {
                    if !(v >= -tol && v <= 1.0 + tol) || ((v - v.round()).abs() > tol) {
                        return false;
                    }
                }
                VarKind::Continuous { lower, upper } => {
                    if v < lower - tol {
                        return false;
                    }
                    if let Some(u) = upper {
                        if v > u + tol {
                            return false;
                        }
                    }
                }
            }
        }
        self.constraints.iter().all(|c| c.satisfied(values, tol))
    }

    /// Evaluate the objective for an assignment.
    pub fn objective_value(&self, values: &[f64]) -> f64 {
        self.objective.evaluate(values)
    }

    /// Compare two objective values in the problem's sense: returns `true`
    /// when `a` is strictly better than `b`.
    pub fn is_better(&self, a: f64, b: f64) -> bool {
        match self.sense {
            Sense::Minimize => a < b,
            Sense::Maximize => a > b,
        }
    }

    /// The worst possible objective value in the problem's sense (used to
    /// initialize incumbents).
    pub fn worst_objective(&self) -> f64 {
        match self.sense {
            Sense::Minimize => f64::INFINITY,
            Sense::Maximize => f64::NEG_INFINITY,
        }
    }
}

impl fmt::Display for Problem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sense = match self.sense {
            Sense::Minimize => "minimize",
            Sense::Maximize => "maximize",
        };
        writeln!(f, "{sense} {}", self.objective)?;
        writeln!(f, "subject to")?;
        for c in &self.constraints {
            writeln!(f, "  {} {} {}", c.expr, c.op, c.rhs)?;
        }
        for (i, v) in self.vars.iter().enumerate() {
            match v.kind {
                VarKind::Binary => writeln!(f, "  x{i} ({}) in {{0, 1}}", v.name)?,
                VarKind::Continuous { lower, upper } => match upper {
                    Some(u) => writeln!(f, "  {lower} <= x{i} ({}) <= {u}", v.name)?,
                    None => writeln!(f, "  x{i} ({}) >= {lower}", v.name)?,
                },
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn building_a_problem() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_continuous("x", 0.0, None);
        let y = p.add_binary("y");
        p.add_constraint(LinearExpr::from_terms([(x, 1.0), (y, 2.0)]), Cmp::Ge, 2.0);
        p.set_objective(LinearExpr::from_terms([(x, 1.0), (y, 1.0)]));
        assert_eq!(p.num_vars(), 2);
        assert_eq!(p.num_constraints(), 1);
        assert_eq!(p.binary_vars(), vec![y]);
        assert!(p.check().is_ok());
    }

    #[test]
    fn constants_fold_into_rhs() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_continuous("x", 0.0, None);
        let mut e = LinearExpr::var(x);
        e.add_constant(3.0);
        p.add_constraint(e, Cmp::Le, 5.0);
        assert_eq!(p.constraints()[0].rhs, 2.0);
        assert_eq!(p.constraints()[0].expr.constant_part(), 0.0);
    }

    #[test]
    fn feasibility_checks_bounds_and_integrality() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_continuous("x", 0.0, Some(2.0));
        let y = p.add_binary("y");
        p.add_constraint(LinearExpr::from_terms([(x, 1.0), (y, 1.0)]), Cmp::Le, 2.5);
        assert!(p.is_feasible(&[1.0, 1.0], 1e-9));
        assert!(!p.is_feasible(&[3.0, 0.0], 1e-9), "x above upper bound");
        assert!(!p.is_feasible(&[1.0, 0.4], 1e-9), "y fractional");
        assert!(!p.is_feasible(&[2.0, 1.0], 1e-9), "constraint violated");
        assert!(!p.is_feasible(&[1.0], 1e-9), "missing values");
    }

    #[test]
    fn invalid_model_is_detected() {
        let mut p = Problem::new(Sense::Maximize);
        let _x = p.add_binary("x");
        p.set_objective(LinearExpr::from_terms([(Var(5), 1.0)]));
        assert!(matches!(p.check(), Err(SolveError::InvalidModel(_))));
    }

    #[test]
    fn sense_comparisons() {
        let pmin = Problem::new(Sense::Minimize);
        let pmax = Problem::new(Sense::Maximize);
        assert!(pmin.is_better(1.0, 2.0));
        assert!(!pmin.is_better(2.0, 1.0));
        assert!(pmax.is_better(2.0, 1.0));
        assert_eq!(pmin.worst_objective(), f64::INFINITY);
        assert_eq!(pmax.worst_objective(), f64::NEG_INFINITY);
    }

    #[test]
    fn solution_accessors() {
        let s = Solution {
            values: vec![0.0, 1.0, 0.3],
            objective: 7.0,
        };
        assert_eq!(s.value(Var(1)), 1.0);
        assert!(s.is_set(Var(1)));
        assert!(!s.is_set(Var(0)));
        assert_eq!(s.value(Var(9)), 0.0);
    }

    #[test]
    fn display_contains_sense_and_vars() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_binary("pick");
        p.set_objective(LinearExpr::var(x));
        let text = p.to_string();
        assert!(text.contains("minimize"));
        assert!(text.contains("pick"));
    }
}
