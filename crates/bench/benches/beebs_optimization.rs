//! Criterion bench regenerating the Figure 5 rows (one representative
//! benchmark per group to keep `cargo bench` runtimes sane) and printing the
//! measured percentage changes.

use criterion::{criterion_group, criterion_main, Criterion};
use flashram_beebs::Benchmark;
use flashram_bench::run_benchmark;
use flashram_mcu::Board;
use flashram_minicc::OptLevel;

fn bench_beebs(c: &mut Criterion) {
    let board = Board::stm32vldiscovery();
    for name in ["int_matmult", "fdct", "crc32", "float_matmult"] {
        let bench = Benchmark::by_name(name).unwrap();
        let result = run_benchmark(&board, &bench, OptLevel::O2, 1.5);
        println!(
            "\n{name} @O2: energy {:+.1}%, time {:+.1}%, power {:+.1}% ({} blocks in RAM)",
            result.energy_change_pct(),
            result.time_change_pct(),
            result.power_change_pct(),
            result.blocks_in_ram
        );
        c.bench_function(&format!("optimize_and_measure/{name}"), |b| {
            b.iter(|| std::hint::black_box(run_benchmark(&board, &bench, OptLevel::O2, 1.5)))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_beebs
}
criterion_main!(benches);
