//! Criterion bench regenerating the Figure 9 period sweep for `fdct`.

use criterion::{criterion_group, criterion_main, Criterion};
use flashram_bench::case_study_series;
use flashram_mcu::Board;
use flashram_minicc::OptLevel;

fn bench_case_study(c: &mut Criterion) {
    let board = Board::stm32vldiscovery();
    let multiples = [1.0, 2.0, 4.0, 8.0, 16.0];
    let series = case_study_series(&board, &["fdct"], OptLevel::O2, &multiples);
    let s = &series[0];
    println!(
        "\nfdct case study: k_e = {:.3}, k_t = {:.3}, best battery extension {:.1}%",
        s.measurement.k_e(),
        s.measurement.k_t(),
        (s.best_extension - 1.0) * 100.0
    );
    for (t, pct) in &s.series {
        println!("  T = {t:7.4} s -> {pct:5.1}% of baseline energy");
    }
    c.bench_function("case_study/fdct", |b| {
        b.iter(|| {
            std::hint::black_box(case_study_series(
                &board,
                &["fdct"],
                OptLevel::O2,
                &multiples,
            ))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_case_study
}
criterion_main!(benches);
