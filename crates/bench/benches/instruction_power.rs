//! Criterion bench regenerating the Figure 1 series (per-instruction power
//! in flash vs RAM).  The measured quantity is the harness runtime; the
//! interesting output is printed once at the start.

use criterion::{criterion_group, criterion_main, Criterion};
use flashram_bench::figure1_series;
use flashram_mcu::Board;

fn bench_figure1(c: &mut Criterion) {
    let board = Board::stm32vldiscovery();
    let series = figure1_series(&board);
    println!("\nFigure 1 series (mW):");
    for row in &series {
        println!(
            "  {:<12} flash {:6.2}  ram {:6.2}",
            row.label, row.flash_mw, row.ram_mw
        );
    }
    c.bench_function("figure1_instruction_power", |b| {
        b.iter(|| std::hint::black_box(figure1_series(&board)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_figure1
}
criterion_main!(benches);
