//! Criterion bench for the placement ILP itself: model construction plus
//! branch-and-bound solve time per benchmark (the cost a compiler would pay
//! to run this pass at link time).

use criterion::{criterion_group, criterion_main, Criterion};
use flashram_beebs::Benchmark;
use flashram_bench::solve_placement_once;
use flashram_mcu::Board;
use flashram_minicc::OptLevel;

fn bench_solver(c: &mut Criterion) {
    let board = Board::stm32vldiscovery();
    for name in ["fdct", "sha", "dijkstra"] {
        let bench = Benchmark::by_name(name).unwrap();
        let selected = solve_placement_once(&board, &bench, OptLevel::O2);
        println!("\n{name}: ILP selects {selected} blocks for RAM");
        c.bench_function(&format!("placement_ilp/{name}"), |b| {
            b.iter(|| std::hint::black_box(solve_placement_once(&board, &bench, OptLevel::O2)))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_solver
}
criterion_main!(benches);
