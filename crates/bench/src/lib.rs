//! Experiment harnesses that regenerate the paper's tables and figures.
//!
//! Each public function corresponds to one experiment of the evaluation
//! (Section 6 and Section 7); the binaries in `src/bin/` print the resulting
//! series as text tables, and the Criterion benches in `benches/` wrap the
//! same harnesses so `cargo bench` re-runs every experiment.
//!
//! | Paper artifact | Harness | Binary |
//! |---|---|---|
//! | Figure 1 (per-instruction power, flash vs RAM) | [`figure1_series`] | `fig1_instruction_power` |
//! | Figure 4 (instrumentation costs) | [`figure4_table`] | `fig4_instrumentation_costs` |
//! | Figure 5 + Section 6 averages | [`beebs_sweep`] | `fig5_beebs_results`, `table_averages` |
//! | Figure 6 (trade-off space) | [`tradeoff_space`] | `fig6_tradeoff_space` |
//! | Figure 9 + Section 7 numbers | [`case_study_series`] | `fig9_case_study` |
//! | Solver performance (warm vs cold B&B) | [`solver_perf`] | `solver_perf` → `BENCH_solver.json` |
//! | Simulator throughput (batched vs sequential) | [`sim_perf`] | `sim_perf` → `BENCH_sim.json` |
//! | Cross-device frontier matrix (device database) | [`device_matrix`] | `device_matrix` → `BENCH_device.json` |
//!
//! One trajectory file lives outside this crate: the placement *service*
//! stress harness (`flashram-serve`'s `stress` binary) regenerates
//! `BENCH_serve.json` — server throughput, latency percentiles, cache-hit
//! and degradation rates — alongside the three tracked here.
//!
//! The sweeps run on [`BatchRunner`], the `flashram-mcu` worker pool, so a
//! ten-kernel × five-level sweep saturates every core while returning
//! results bit-identical to (and ordered like) a sequential loop; compiled
//! kernels come from the `flashram-beebs` fixture cache
//! ([`Benchmark::compile_cached`]), so nothing is compiled twice per
//! process.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use flashram_beebs::Benchmark;
use flashram_core::{
    evaluate_placement, extract_params, measure_case_study, period_sweep, CaseStudyMeasurement,
    DeviceMatrix, DevicePoint, FrequencySource, ModelConfig, OptimizerConfig, PlacementModel,
    PlacementScope, PlacementSession, RamOptimizer, SweepStats,
};
use flashram_device::DEVICE_DB;
use flashram_ilp::{BranchBound, BranchBoundStats, ExhaustiveSolver};
use flashram_ir::{
    BlockId, BlockRef, FuncId, GlobalData, MachineBlock, MachineFunction, MachineProgram, Section,
};
use flashram_isa::{Cond, Inst, MemWidth, Reg, TermKind, Terminator};
use flashram_mcu::{BatchRunner, Board, Engine, PowerModel, RunConfig, TierStats};
use flashram_minicc::OptLevel;

/// One bar pair of Figure 1: the average power of a tight loop of one
/// instruction kind, executed from flash and from RAM.
#[derive(Debug, Clone, PartialEq)]
pub struct InstructionPower {
    /// Label used in the figure (`store`, `load`, `add`, `nop`, `branch`,
    /// `flash load`).
    pub label: String,
    /// Average power when the loop runs from flash (mW).
    pub flash_mw: f64,
    /// Average power when the loop runs from RAM (mW).
    pub ram_mw: f64,
}

/// Build the Figure 1 micro-benchmarks (a loop of sixteen identical
/// instructions) and measure them from flash and from RAM.
pub fn figure1_series(board: &Board) -> Vec<InstructionPower> {
    let kinds: Vec<(&str, Vec<Inst>)> = vec![
        (
            "store",
            vec![Inst::Store {
                rs: Reg::R1,
                base: Reg::R7,
                offset: 0,
                width: MemWidth::Word,
            }],
        ),
        (
            "ram load",
            vec![Inst::Load {
                rd: Reg::R1,
                base: Reg::R7,
                offset: 0,
                width: MemWidth::Word,
            }],
        ),
        (
            "add",
            vec![Inst::AddImm {
                rd: Reg::R1,
                rn: Reg::R1,
                imm: 1,
            }],
        ),
        ("nop", vec![Inst::Nop]),
        ("branch", vec![]),
        (
            "flash load",
            vec![Inst::Load {
                rd: Reg::R1,
                base: Reg::R6,
                offset: 0,
                width: MemWidth::Word,
            }],
        ),
    ];
    let mut out = Vec::new();
    for (label, body) in kinds {
        let flash = measure_instruction_loop(board, &body, Section::Flash);
        let ram = measure_instruction_loop(board, &body, Section::Ram);
        out.push(InstructionPower {
            label: label.to_string(),
            flash_mw: flash,
            ram_mw: ram,
        });
    }
    out
}

/// The Figure 1 report exactly as the `fig1_instruction_power` binary
/// prints it, shared with the figure-regeneration golden test.
pub fn figure1_text(board: &Board) -> String {
    let series = figure1_series(board);
    let mut out = String::from("Figure 1 — average power per instruction type (mW)\n");
    out.push_str(&format!(
        "{:<14} {:>10} {:>10}\n",
        "instruction", "flash", "ram"
    ));
    for row in &series {
        out.push_str(&format!(
            "{:<14} {:>10.2} {:>10.2}\n",
            row.label, row.flash_mw, row.ram_mw
        ));
    }
    let avg_gap: f64 = series
        .iter()
        .filter(|r| r.label != "flash load")
        .map(|r| r.flash_mw - r.ram_mw)
        .sum::<f64>()
        / (series.len() - 1) as f64;
    out.push_str(&format!(
        "\naverage flash-RAM power gap (excluding flash-load): {avg_gap:.2} mW\n"
    ));
    out
}

/// Build and run a 16-instruction loop placed in the given section,
/// returning the measured average power in milliwatts.
fn measure_instruction_loop(board: &Board, body: &[Inst], section: Section) -> f64 {
    // Globals: one word in RAM (r7 points at it), one word in flash (r6).
    let globals = vec![
        GlobalData {
            name: "ram_word".into(),
            bytes: vec![1, 0, 0, 0],
            mutable: true,
        },
        GlobalData {
            name: "flash_word".into(),
            bytes: vec![2, 0, 0, 0],
            mutable: false,
        },
    ];
    let mut loop_insts = Vec::new();
    for _ in 0..16 {
        if body.is_empty() {
            // The "branch" variant: approximate a branch-dominated loop with
            // register moves so the loop's own branch dominates.
            loop_insts.push(Inst::MovReg {
                rd: Reg::R2,
                rm: Reg::R1,
            });
        } else {
            loop_insts.extend_from_slice(body);
        }
    }
    loop_insts.push(Inst::SubImm {
        rd: Reg::R0,
        rn: Reg::R0,
        imm: 1,
    });
    loop_insts.push(Inst::CmpImm {
        rn: Reg::R0,
        imm: 0,
    });

    let entry = MachineBlock::new(
        vec![
            Inst::MovImm {
                rd: Reg::R0,
                imm: 4000,
            },
            Inst::MovImm {
                rd: Reg::R1,
                imm: 0,
            },
            Inst::LdrLit {
                rd: Reg::R7,
                value: flashram_isa::inst::LitValue::Symbol(flashram_isa::SymbolId(0)),
            },
            Inst::LdrLit {
                rd: Reg::R6,
                value: flashram_isa::inst::LitValue::Symbol(flashram_isa::SymbolId(1)),
            },
        ],
        Terminator::FallThrough { target: BlockId(1) },
    );
    let mut loop_block = MachineBlock::new(
        loop_insts,
        Terminator::CondBranch {
            cond: Cond::Ne,
            target: BlockId(1),
            fallthrough: BlockId(2),
        },
    );
    loop_block.section = section;
    let exit = MachineBlock::new(vec![], Terminator::Return);
    let func = MachineFunction {
        name: "main".into(),
        blocks: vec![entry, loop_block, exit],
        frame_size: 0,
        num_params: 0,
        is_library: false,
    };
    let program = MachineProgram {
        functions: vec![func],
        globals,
        entry: FuncId(0),
    };
    board
        .run_with_config(
            &program,
            &RunConfig {
                max_cycles: 50_000_000,
            },
        )
        .expect("instruction-power microbenchmark must run")
        .avg_power_mw
}

/// One row of the Figure 4 table: a terminator kind and the byte/cycle cost
/// of its direct and instrumented forms.
#[derive(Debug, Clone, PartialEq)]
pub struct InstrumentationRow {
    /// Terminator kind name.
    pub kind: String,
    /// Direct form size in bytes.
    pub direct_bytes: u32,
    /// Direct form taken-path cycles.
    pub direct_cycles: u64,
    /// Instrumented form size in bytes.
    pub indirect_bytes: u32,
    /// Instrumented form taken-path cycles.
    pub indirect_cycles: u64,
}

/// The Figure 4 table rendered exactly as the `fig4_instrumentation_costs`
/// binary prints it.
///
/// Kept as a function so the figure-regeneration golden test
/// (`tests/figure_goldens.rs`) asserts the very string the binary emits —
/// the first of the ROADMAP's figure goldens.
pub fn figure4_text() -> String {
    let mut out = String::from("Figure 4 — instrumentation sequences and their costs\n");
    out.push_str(&format!(
        "{:<26} {:>12} {:>12} {:>14} {:>14} {:>8} {:>8}\n",
        "terminator", "bytes", "cycles", "instr bytes", "instr cycles", "K_b", "T_b"
    ));
    for row in figure4_table() {
        out.push_str(&format!(
            "{:<26} {:>12} {:>12} {:>14} {:>14} {:>8} {:>8}\n",
            row.kind,
            row.direct_bytes,
            row.direct_cycles,
            row.indirect_bytes,
            row.indirect_cycles,
            row.indirect_bytes - row.direct_bytes,
            row.indirect_cycles - row.direct_cycles,
        ));
    }
    out
}

/// The Figure 4 instrumentation-cost table.
pub fn figure4_table() -> Vec<InstrumentationRow> {
    [
        ("unconditional branch", TermKind::Uncond),
        ("conditional branch", TermKind::Cond),
        ("short conditional branch", TermKind::ShortCond),
        ("fall through", TermKind::FallThrough),
    ]
    .into_iter()
    .map(|(name, kind)| {
        let ind = kind.indirect_form();
        InstrumentationRow {
            kind: name.to_string(),
            direct_bytes: kind.size_bytes(),
            direct_cycles: kind.taken_cycles(),
            indirect_bytes: ind.size_bytes(),
            indirect_cycles: ind.taken_cycles(),
        }
    })
    .collect()
}

/// The measured effect of the optimization on one benchmark at one level.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkResult {
    /// Benchmark name.
    pub benchmark: String,
    /// Optimization level.
    pub level: OptLevel,
    /// Baseline (all code in flash) energy in mJ.
    pub base_energy_mj: f64,
    /// Baseline execution time in seconds.
    pub base_time_s: f64,
    /// Baseline average power in mW.
    pub base_power_mw: f64,
    /// Optimized energy in mJ (static frequency estimate).
    pub opt_energy_mj: f64,
    /// Optimized execution time in seconds.
    pub opt_time_s: f64,
    /// Optimized average power in mW.
    pub opt_power_mw: f64,
    /// Optimized energy when actual (profiled) frequencies are used.
    pub profiled_energy_mj: f64,
    /// Optimized time when actual frequencies are used.
    pub profiled_time_s: f64,
    /// Number of blocks moved to RAM (static-estimate run).
    pub blocks_in_ram: usize,
}

impl BenchmarkResult {
    /// Percentage change in energy (negative = saving).
    pub fn energy_change_pct(&self) -> f64 {
        100.0 * (self.opt_energy_mj - self.base_energy_mj) / self.base_energy_mj
    }

    /// Percentage change in execution time (positive = slower).
    pub fn time_change_pct(&self) -> f64 {
        100.0 * (self.opt_time_s - self.base_time_s) / self.base_time_s
    }

    /// Percentage change in average power (negative = lower power).
    pub fn power_change_pct(&self) -> f64 {
        100.0 * (self.opt_power_mw - self.base_power_mw) / self.base_power_mw
    }

    /// Percentage change in energy for the profile-guided variant.
    pub fn profiled_energy_change_pct(&self) -> f64 {
        100.0 * (self.profiled_energy_mj - self.base_energy_mj) / self.base_energy_mj
    }
}

/// Run the optimization on one benchmark at one level and measure the
/// result, with both the static frequency estimate and profiled frequencies.
pub fn run_benchmark(
    board: &Board,
    bench: &Benchmark,
    level: OptLevel,
    x_limit: f64,
) -> BenchmarkResult {
    let program = bench.compile_cached(level).expect("benchmark compiles");
    let base = board.run(&program).expect("baseline runs");

    let optimizer = RamOptimizer::with_config(OptimizerConfig {
        x_limit,
        ..OptimizerConfig::default()
    });
    let placement = optimizer
        .optimize(&program, board)
        .expect("placement succeeds");
    let opt = board
        .run(&placement.program)
        .expect("optimized program runs");
    assert_eq!(
        base.return_value, opt.return_value,
        "{}: optimization changed the program result",
        bench.name
    );

    let profiled = optimizer
        .optimize_with_profile(&program, board)
        .expect("profile-guided placement succeeds");
    let prof = board.run(&profiled.program).expect("profiled program runs");
    assert_eq!(base.return_value, prof.return_value);

    BenchmarkResult {
        benchmark: bench.name.to_string(),
        level,
        base_energy_mj: base.energy_mj,
        base_time_s: base.time_s,
        base_power_mw: base.avg_power_mw,
        opt_energy_mj: opt.energy_mj,
        opt_time_s: opt.time_s,
        opt_power_mw: opt.avg_power_mw,
        profiled_energy_mj: prof.energy_mj,
        profiled_time_s: prof.time_s,
        blocks_in_ram: placement.selected.len(),
    }
}

/// Run the whole suite over the given levels (Figure 5 uses O2 and Os; the
/// Section 6 averages use all five).
///
/// The `(benchmark, level)` cells run in parallel on a [`BatchRunner`] over
/// a clone of `board`; the result order is the sequential one (suite order,
/// then level order) regardless of scheduling.
pub fn beebs_sweep(board: &Board, levels: &[OptLevel], x_limit: f64) -> Vec<BenchmarkResult> {
    let jobs = sweep_jobs(levels);
    BatchRunner::new(board.clone()).map(&jobs, |board, (bench, level)| {
        run_benchmark(board, bench, *level, x_limit)
    })
}

/// The `(benchmark, level)` cross product every sweep iterates, in the
/// canonical order: suite order (Figure 5's), then level order.  Shared by
/// [`beebs_sweep`] and [`sim_perf`] so their row orders cannot diverge.
fn sweep_jobs(levels: &[OptLevel]) -> Vec<(Benchmark, OptLevel)> {
    Benchmark::all()
        .into_iter()
        .flat_map(|bench| levels.iter().map(move |&level| (bench, level)))
        .collect()
}

/// Aggregate averages over a sweep (the Section 6 headline numbers).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepAverages {
    /// Average percentage change in energy.
    pub energy_pct: f64,
    /// Average percentage change in power.
    pub power_pct: f64,
    /// Average percentage change in execution time.
    pub time_pct: f64,
}

/// Compute the average percentage changes over a sweep.
pub fn averages(results: &[BenchmarkResult]) -> SweepAverages {
    let n = results.len().max(1) as f64;
    SweepAverages {
        energy_pct: results
            .iter()
            .map(BenchmarkResult::energy_change_pct)
            .sum::<f64>()
            / n,
        power_pct: results
            .iter()
            .map(BenchmarkResult::power_change_pct)
            .sum::<f64>()
            / n,
        time_pct: results
            .iter()
            .map(BenchmarkResult::time_change_pct)
            .sum::<f64>()
            / n,
    }
}

/// One point of the Figure 6 trade-off space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TradeoffPoint {
    /// Model-estimated energy (objective units).
    pub energy: f64,
    /// Model-estimated weighted cycles.
    pub cycles: f64,
    /// RAM used by the placement in bytes.
    pub ram_bytes: u32,
}

impl TradeoffPoint {
    fn from_estimate(est: &flashram_core::PlacementEstimate) -> TradeoffPoint {
        TradeoffPoint {
            energy: est.energy,
            cycles: est.cycles,
            ram_bytes: est.ram_bytes,
        }
    }
}

/// One solver sample of a constraint sweep: the chosen point when the
/// solve succeeded, an explicit infeasibility/error marker when it did not,
/// and the search statistics either way, so figures can annotate sweep
/// points instead of silently dropping them.
#[derive(Debug, Clone, PartialEq)]
pub struct TradeoffSample {
    /// The solver's choice (`None` when the point did not solve).
    pub point: Option<TradeoffPoint>,
    /// Blocks the placement moved to RAM.
    pub blocks_in_ram: usize,
    /// Branch-and-bound statistics of the solve (`None` when it failed
    /// before producing any).
    pub stats: Option<BranchBoundStats>,
    /// The point's constraints admit no placement at all (e.g. `X_limit`
    /// below 1).
    pub infeasible: bool,
    /// A non-infeasibility solver failure, as text.
    pub error: Option<String>,
    /// Whether this point's root relaxation chained the previous point's
    /// basis (dual-simplex warm start) instead of solving cold.
    pub chained: bool,
}

impl TradeoffSample {
    fn from_result(
        result: Result<flashram_core::SweepPoint, flashram_ilp::SolveError>,
    ) -> TradeoffSample {
        match result {
            Ok(point) => TradeoffSample {
                point: Some(TradeoffPoint::from_estimate(&point.predicted)),
                blocks_in_ram: point.selected.len(),
                stats: Some(point.stats),
                infeasible: false,
                error: None,
                chained: point.chained,
            },
            Err(flashram_ilp::SolveError::Infeasible) => TradeoffSample {
                point: None,
                blocks_in_ram: 0,
                stats: None,
                infeasible: true,
                error: None,
                chained: false,
            },
            Err(e) => TradeoffSample {
                point: None,
                blocks_in_ram: 0,
                stats: None,
                infeasible: false,
                error: Some(e.to_string()),
                chained: false,
            },
        }
    }
}

/// One step of the exact energy/RAM Pareto staircase.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierStep {
    /// Minimum RAM budget (bytes, as charged by the model's Eq. 7 row) at
    /// which this placement becomes optimal.
    pub min_ram_bytes: u32,
    /// Blocks the placement moves to RAM.
    pub blocks_in_ram: usize,
    /// The step's model estimate.
    pub point: TradeoffPoint,
}

/// Exhaustive subset enumeration beyond this many blocks would allocate
/// `2^k` points; `tradeoff_space` clamps `k` here and reports the clamp in
/// [`TradeoffSpace::enumerated_k`] instead of letting `1 << k` wrap.
pub const MAX_ENUMERATED_BLOCKS: usize = 16;

/// The Figure 6 data for one benchmark: the space of possible placements of
/// the most significant blocks, plus the solver's trajectory as the RAM and
/// time constraints are swept and the exact Pareto staircase of the
/// energy/RAM trade-off.
///
/// All solver samples come from a single [`PlacementSession`]: the model is
/// built once and every sweep point re-solves it with moved budget
/// right-hand sides, warm-starting from the previous point's basis.
#[derive(Debug, Clone, PartialEq)]
pub struct TradeoffSpace {
    /// Benchmark name.
    pub benchmark: String,
    /// Sampled placement points (`2^enumerated_k` combinations of the
    /// hottest blocks).
    pub points: Vec<TradeoffPoint>,
    /// The `k` the subset enumeration actually used: the requested `k`
    /// clamped to the candidate-block count and
    /// [`MAX_ENUMERATED_BLOCKS`] (a truncation note, not a silent wrap).
    pub enumerated_k: usize,
    /// The `k` the caller asked for.
    pub requested_k: usize,
    /// Solver samples while relaxing `R_spare` (bytes, sample).
    pub ram_sweep: Vec<(u32, TradeoffSample)>,
    /// Solver samples while relaxing `X_limit` (factor, sample).
    pub time_sweep: Vec<(f64, TradeoffSample)>,
    /// The exact Pareto staircase of the energy/RAM trade-off under the
    /// relaxed time bound: every distinct optimal placement between a zero
    /// budget and the board's spare RAM.
    pub frontier: Vec<FrontierStep>,
    /// Whether every staircase step was solved to proven optimality.
    pub frontier_exact: bool,
    /// The all-in-flash baseline point.
    pub baseline: TradeoffPoint,
    /// Cumulative solver effort across all sweep points of this space.
    pub sweep_stats: SweepStats,
}

/// Enumerate the placement space of the `k` most significant blocks of a
/// benchmark and record the solver's trajectory while constraints relax,
/// plus the exact Pareto staircase — all on one warm-started
/// [`PlacementSession`].
pub fn tradeoff_space(
    board: &Board,
    bench: &Benchmark,
    level: OptLevel,
    k: usize,
) -> TradeoffSpace {
    let program = bench.compile_cached(level).expect("benchmark compiles");
    let params = flashram_core::extract_params(&program, &FrequencySource::default());
    let spare = board.spare_ram(&program).expect("program fits");
    let (e_flash, e_ram) = board.power.model_coefficients();
    let config = ModelConfig {
        x_limit: 10.0,
        r_spare: spare,
        e_flash,
        e_ram,
    };

    // The k blocks with the largest energy leverage (frequency × cycles),
    // with k clamped so the subset enumeration cannot overflow its shift
    // (the old `1u32 << k` was UB-adjacent for k ≥ 32).
    let mut ranked: Vec<(BlockRef, u64)> = params
        .blocks
        .iter()
        .map(|(r, p)| (*r, p.frequency * p.cycles))
        .collect();
    ranked.sort_by_key(|(_, w)| std::cmp::Reverse(*w));
    let enumerated_k = k.min(ranked.len()).min(MAX_ENUMERATED_BLOCKS);
    let chosen: Vec<BlockRef> = ranked.iter().take(enumerated_k).map(|(r, _)| *r).collect();

    // Enumerate all subsets of the chosen blocks.
    let mut points = Vec::with_capacity(1usize << chosen.len());
    for mask in 0u64..(1u64 << chosen.len()) {
        let subset: Vec<BlockRef> = chosen
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1u64 << i) != 0)
            .map(|(_, r)| *r)
            .collect();
        let est = evaluate_placement(&params, &subset, &config);
        points.push(TradeoffPoint::from_estimate(&est));
    }
    let baseline_est = evaluate_placement(&params, &[], &config);
    let baseline = TradeoffPoint {
        energy: baseline_est.energy,
        cycles: baseline_est.cycles,
        ram_bytes: 0,
    };

    // One session for every solver sample: built once, retargeted per point.
    let mut session = PlacementSession::from_params(params, &config);

    // Solver trajectory: relax the RAM constraint (generous time bound).
    let mut budgets: Vec<u32> = [32u32, 64, 128, 256, 512, 1024, spare]
        .iter()
        .map(|b| (*b).min(spare))
        .collect();
    budgets.dedup();
    let ram_sweep = session
        .sweep_ram(&budgets, 10.0)
        .into_iter()
        .map(|(b, r)| (b, TradeoffSample::from_result(r)))
        .collect();

    // Solver trajectory: relax the time constraint (generous RAM bound).
    let time_sweep = session
        .sweep_time(&[1.0, 1.05, 1.1, 1.2, 1.4, 1.8, 2.5], spare)
        .into_iter()
        .map(|(x, r)| (x, TradeoffSample::from_result(r)))
        .collect();

    // The exact staircase under the relaxed time bound.
    let frontier_result = session.enumerate_frontier(10.0, spare);
    let (frontier, frontier_exact) = match frontier_result {
        Ok(f) => (
            f.points
                .iter()
                .map(|p| FrontierStep {
                    min_ram_bytes: p.model_ram_used,
                    blocks_in_ram: p.selected.len(),
                    point: TradeoffPoint::from_estimate(&p.predicted),
                })
                .collect(),
            f.exact,
        ),
        Err(_) => (Vec::new(), false),
    };

    TradeoffSpace {
        benchmark: bench.name.to_string(),
        points,
        enumerated_k,
        requested_k: k,
        ram_sweep,
        time_sweep,
        frontier,
        frontier_exact,
        baseline,
        sweep_stats: session.stats(),
    }
}

/// The Figure 6 report rendered exactly as the `fig6_tradeoff_space` binary
/// prints it, kept as a function so the figure-regeneration golden
/// (`tests/figure_goldens.rs`) asserts the very string the binary emits.
///
/// Everything in it is deterministic: the model estimates come from integer
/// block parameters, and the solver is a deterministic search, so the
/// golden comparison is exact (see the golden test for the tolerance
/// policy on intentional solver changes).
pub fn figure6_text(board: &Board, names: &[&str], level: OptLevel, k: usize) -> String {
    let mut out = String::new();
    for name in names {
        let bench = Benchmark::by_name(name).expect("known benchmark");
        let space = tradeoff_space(board, &bench, level, k);
        out.push_str(&format!(
            "Figure 6 — placement trade-off space for {name} (model units)\n"
        ));
        out.push_str(&format!(
            "  {} enumerated placements of the {} hottest blocks\n",
            space.points.len(),
            space.enumerated_k
        ));
        let min_e = space
            .points
            .iter()
            .map(|p| p.energy)
            .fold(f64::INFINITY, f64::min);
        let max_e = space.points.iter().map(|p| p.energy).fold(0.0f64, f64::max);
        let min_c = space
            .points
            .iter()
            .map(|p| p.cycles)
            .fold(f64::INFINITY, f64::min);
        let max_c = space.points.iter().map(|p| p.cycles).fold(0.0f64, f64::max);
        out.push_str(&format!("  energy range: {min_e:.3e} .. {max_e:.3e}\n"));
        out.push_str(&format!("  cycle range:  {min_c:.3e} .. {max_c:.3e}\n"));
        out.push_str(&format!(
            "  all blocks in flash: energy {:.3e}, cycles {:.3e}\n",
            space.baseline.energy, space.baseline.cycles
        ));

        out.push_str("  constraining RAM (X_limit relaxed):\n");
        out.push_str(&format!(
            "    {:>10} {:>14} {:>14} {:>10} {:>7} {:>6}\n",
            "R_spare", "energy", "cycles", "ram bytes", "blocks", "root"
        ));
        for (budget, sample) in &space.ram_sweep {
            out.push_str(&render_sample(&format!("{budget:>10}"), sample));
        }
        out.push_str("  constraining time (R_spare relaxed):\n");
        out.push_str(&format!(
            "    {:>10} {:>14} {:>14} {:>10} {:>7} {:>6}\n",
            "X_limit", "energy", "cycles", "ram bytes", "blocks", "root"
        ));
        for (x, sample) in &space.time_sweep {
            out.push_str(&render_sample(&format!("{x:>10.2}"), sample));
        }

        out.push_str(&format!(
            "  exact Pareto staircase (energy vs RAM, X_limit relaxed): {} steps{}\n",
            space.frontier.len(),
            if space.frontier_exact {
                ""
            } else {
                " (not proven optimal)"
            }
        ));
        out.push_str(&format!(
            "    {:>10} {:>14} {:>14} {:>10} {:>7}\n",
            "min RAM", "energy", "cycles", "ram bytes", "blocks"
        ));
        for step in &space.frontier {
            out.push_str(&format!(
                "    {:>10} {:>14.4e} {:>14.4e} {:>10} {:>7}\n",
                step.min_ram_bytes,
                step.point.energy,
                step.point.cycles,
                step.point.ram_bytes,
                step.blocks_in_ram
            ));
        }
        out.push_str(&format!(
            "  solver: {} points, {} chained roots, {} nodes, {} LP pivots\n\n",
            space.sweep_stats.points_solved,
            space.sweep_stats.chained_roots,
            space.sweep_stats.nodes_explored,
            space.sweep_stats.lp_pivots
        ));
    }
    out
}

fn render_sample(setting: &str, sample: &TradeoffSample) -> String {
    match (&sample.point, sample.infeasible, &sample.error) {
        (Some(p), _, _) => format!(
            "    {setting} {:>14.4e} {:>14.4e} {:>10} {:>7} {:>6}\n",
            p.energy,
            p.cycles,
            p.ram_bytes,
            sample.blocks_in_ram,
            if sample.chained { "warm" } else { "cold" }
        ),
        (None, true, _) => format!(
            "    {setting} {:>14} {:>14} {:>10} {:>7} {:>6}\n",
            "infeasible", "-", "-", "-", "-"
        ),
        (None, _, err) => format!(
            "    {setting} failed: {}\n",
            err.as_deref().unwrap_or("unknown solver error")
        ),
    }
}

/// The Figure 9 series for one benchmark: measured case-study factors and
/// the per-period energy percentages over a period sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseStudySeries {
    /// Benchmark name.
    pub benchmark: String,
    /// Measured active-region characteristics.
    pub measurement: CaseStudyMeasurement,
    /// `(period seconds, energy % of baseline)` points.
    pub series: Vec<(f64, f64)>,
    /// Battery-life extension at the shortest period of the sweep.
    pub best_extension: f64,
}

/// Run the Section 7 case study for the given benchmarks.
pub fn case_study_series(
    board: &Board,
    names: &[&str],
    level: OptLevel,
    period_multiples: &[f64],
) -> Vec<CaseStudySeries> {
    let sleep = PowerModel::stm32f100().sleep_mw;
    BatchRunner::new(board.clone()).map(names, |board, name| {
        let bench = Benchmark::by_name(name).expect("known benchmark");
        let program = bench.compile_cached(level).expect("benchmark compiles");
        let placement = RamOptimizer::new()
            .optimize(&program, board)
            .expect("placement");
        let measurement =
            measure_case_study(board, &program, &placement.program).expect("simulation");
        let series = period_sweep(&measurement, period_multiples, sleep);
        let best_extension = measurement.battery_life_extension(&flashram_mcu::SleepScenario {
            period_s: measurement.base_time_s * period_multiples[0].max(1.01),
            sleep_power_mw: sleep,
        });
        CaseStudySeries {
            benchmark: name.to_string(),
            measurement,
            series,
            best_extension,
        }
    })
}

/// The Figure 9 / Section 7 report exactly as the `fig9_case_study` binary
/// prints it, shared with the figure-regeneration golden test.
pub fn figure9_text(
    board: &Board,
    names: &[&str],
    level: OptLevel,
    period_multiples: &[f64],
) -> String {
    let series = case_study_series(board, names, level, period_multiples);
    let mut out =
        String::from("Section 7 / Figure 9 — periodic sensing case study (P_sleep = 3.5 mW)\n");
    for s in &series {
        let m = &s.measurement;
        out.push_str(&format!("\n{}:\n", s.benchmark));
        out.push_str(&format!(
            "  E0 = {:.4} mJ, T_A = {:.4} s, k_e = {:.3}, k_t = {:.3}\n",
            m.base_energy_mj,
            m.base_time_s,
            m.k_e(),
            m.k_t()
        ));
        out.push_str(&format!(
            "  battery-life extension at the shortest period: {:.1}%\n",
            (s.best_extension - 1.0) * 100.0
        ));
        out.push_str(&format!(
            "  {:>12} {:>18}\n",
            "period T (s)", "energy after opt (%)"
        ));
        for (t, pct) in &s.series {
            out.push_str(&format!("  {:>12.4} {:>18.1}\n", t, pct));
        }
    }
    out.push_str(
        "\n(For comparison, the paper's fdct measurement was E0 = 16.9 mJ, T_A = 1.18 s,\n",
    );
    out.push_str(" k_e = 0.825, k_t = 1.33, giving up to 25% period-energy saving and up to 32%\n");
    out.push_str(" longer battery life.)\n");
    out
}

/// The numbers of one branch-and-bound run over a placement model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverRunNumbers {
    /// Search statistics of the run.
    pub stats: BranchBoundStats,
    /// Wall-clock time of the solve in milliseconds.
    pub wall_ms: f64,
    /// Objective value reached.
    pub objective: f64,
}

impl SolverRunNumbers {
    /// Average simplex pivots per warm-started node (`None` if no node was
    /// warm-started).
    pub fn pivots_per_warm_node(&self) -> Option<f64> {
        (self.stats.warm_solves > 0)
            .then(|| self.stats.warm_pivots as f64 / self.stats.warm_solves as f64)
    }

    /// Average simplex pivots per cold-solved node (`None` if no node was
    /// solved cold).
    pub fn pivots_per_cold_node(&self) -> Option<f64> {
        (self.stats.cold_solves > 0)
            .then(|| self.stats.cold_pivots as f64 / self.stats.cold_solves as f64)
    }
}

/// One row of the solver performance smoke: the placement ILP of one BEEBS
/// benchmark under one constraint configuration, solved with warm-started
/// branch-and-bound and, for comparison, with every node re-solved cold.
#[derive(Debug, Clone, PartialEq)]
pub struct SolverPerfRow {
    /// Benchmark name.
    pub benchmark: String,
    /// RAM budget the model was built with.
    pub r_spare: u32,
    /// Execution-time bound the model was built with.
    pub x_limit: f64,
    /// Number of ILP variables (3 per candidate block).
    pub vars: usize,
    /// Number of ILP constraints (and therefore tableau rows — variable
    /// bounds and branch fixings add none).
    pub constraints: usize,
    /// The warm-started run (the default solver configuration).
    pub warm: SolverRunNumbers,
    /// The cold-start run (`warm_start: false`).
    pub cold: SolverRunNumbers,
}

impl SolverPerfRow {
    /// Relative objective disagreement between the two runs (should be ~0).
    pub fn objective_delta(&self) -> f64 {
        (self.warm.objective - self.cold.objective).abs() / self.cold.objective.abs().max(1.0)
    }
}

fn time_solve(
    model: &PlacementModel,
    warm_start: bool,
) -> Result<SolverRunNumbers, flashram_ilp::SolveError> {
    let solver = BranchBound {
        warm_start,
        ..BranchBound::default()
    };
    let start = std::time::Instant::now();
    let (solution, stats) = model.solve_with(&solver)?;
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    Ok(SolverRunNumbers {
        stats,
        wall_ms,
        objective: solution.objective,
    })
}

/// Solve every BEEBS placement model twice — warm-started and cold — and
/// report nodes, pivots and wall time for both (the `BENCH_solver.json`
/// trajectory series).
///
/// Each benchmark is measured under two configurations: the default budgets
/// (whatever RAM the board leaves spare, `X_limit` 1.5), where the
/// relaxations are integral and the solve finishes at the root, and a tight
/// configuration (96 bytes of RAM, `X_limit` 1.1) that forces fractional
/// relaxations and therefore real branching, which is where warm starts pay.
///
/// A configuration whose solve fails (e.g. node-budget exhaustion with no
/// incumbent) produces no row; the failure is described in the second
/// element so callers can report it without losing the solved rows.
pub fn solver_perf(board: &Board, level: OptLevel) -> (Vec<SolverPerfRow>, Vec<String>) {
    let mut rows = Vec::new();
    let mut errors = Vec::new();
    for bench in Benchmark::all() {
        let program = bench.compile_cached(level).expect("benchmark compiles");
        let params = extract_params(&program, &FrequencySource::default());
        let spare = board.spare_ram(&program).expect("program fits");
        let (e_flash, e_ram) = board.power.model_coefficients();
        for (r_spare, x_limit) in [(spare, 1.5), (96.min(spare), 1.1)] {
            let config = ModelConfig {
                x_limit,
                r_spare,
                e_flash,
                e_ram,
            };
            let model = PlacementModel::build(&params, &config);
            let solved = time_solve(&model, true).and_then(|w| Ok((w, time_solve(&model, false)?)));
            match solved {
                Ok((warm, cold)) => rows.push(SolverPerfRow {
                    benchmark: bench.name.to_string(),
                    r_spare,
                    x_limit,
                    vars: model.problem.num_vars(),
                    constraints: model.problem.num_constraints(),
                    warm,
                    cold,
                }),
                Err(e) => errors.push(format!(
                    "{} (ram {r_spare}, x_limit {x_limit}): {e}",
                    bench.name
                )),
            }
        }
    }
    (rows, errors)
}

/// Cumulative effort of one whole constraint sweep (all points together).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPerfNumbers {
    /// Simplex pivots across every point of the sweep (roots and B&B
    /// nodes).
    pub lp_pivots: usize,
    /// Pivots spent on the points' **root** relaxations alone.  This is the
    /// number cross-point chaining attacks: a chained root re-enters with
    /// the dual simplex in a handful of pivots where a cold root re-pivots
    /// the two-phase solve from nothing.  (Total pivots also include the
    /// branch-and-bound subtree, whose shape varies with the root vertex
    /// the LP lands on, so on heavily degenerate points the totals are the
    /// noisier of the two numbers.)
    pub root_pivots: usize,
    /// Branch-and-bound nodes across every point.
    pub nodes: usize,
    /// Points whose root relaxation was warm-started from the previous
    /// point's basis (always 0 for the cold mode).
    pub chained_roots: usize,
    /// Wall-clock time of the whole sweep in milliseconds.
    pub wall_ms: f64,
}

/// One row of the sweep-performance comparison: one constraint sweep over
/// one benchmark's placement model, run **warm** (one [`PlacementSession`],
/// points chained through RHS mutation and dual-simplex root re-entry) and
/// **cold** (a freshly built model and cold root per point — the way
/// `tradeoff_space` worked before the frontier engine).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPerfRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Which constraint the sweep relaxes: `"ram"` (budget sweep under a
    /// relaxed time bound) or `"time"` (`X_limit` sweep under the full RAM
    /// budget) — the two Figure 6 axes.
    pub axis: &'static str,
    /// Number of sweep points.
    pub points: usize,
    /// The chained sweep.
    pub warm: SweepPerfNumbers,
    /// The per-point cold solves.
    pub cold: SweepPerfNumbers,
    /// Largest relative objective disagreement between the two modes over
    /// all points (should be ~0).
    pub max_objective_delta: f64,
    /// Whether every point of both sweeps reached proven optimality.  When
    /// a node budget truncated some search, the two modes may legitimately
    /// return different incumbents and their pivot totals reflect different
    /// trees, so the strict acceptance checks only apply to proven rows.
    pub proven: bool,
}

/// Grids for the two Figure 6 sweep axes over one benchmark's model, in the
/// **relaxing** direction (ascending budgets, ascending time bounds): that
/// is both how the paper presents the sweeps and the direction in which the
/// previous point's optimum stays feasible, so it seeds the next point's
/// incumbent (see [`flashram_ilp::BranchBound::solve_chained`]).
fn sweep_grids(spare: u32) -> (Vec<u32>, Vec<f64>) {
    let mut budgets: Vec<u32> = [
        16, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768, 1024, 2048, spare,
    ]
    .into_iter()
    .filter(|b| *b <= spare)
    .collect();
    budgets.dedup();
    let x_limits = vec![
        1.0, 1.02, 1.05, 1.08, 1.1, 1.15, 1.2, 1.3, 1.4, 1.6, 1.8, 2.0, 2.5, 3.0, 5.0, 10.0,
    ];
    (budgets, x_limits)
}

/// Run one sweep twice (chained session vs cold per-point rebuilds) and
/// fold the comparison into a [`SweepPerfRow`].
fn sweep_perf_row(
    benchmark: &str,
    axis: &'static str,
    params: &flashram_core::ProgramParams,
    config: &ModelConfig,
    points: &[(u32, f64)],
    errors: &mut Vec<String>,
) -> Option<SweepPerfRow> {
    // Warm: one session, every root after the first chained.
    let mut session = PlacementSession::from_params(params.clone(), config);
    let start = std::time::Instant::now();
    let warm_points: Vec<_> = points
        .iter()
        .map(|&(r_spare, x_limit)| session.solve_point(r_spare, x_limit))
        .collect();
    let warm_wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let stats = session.stats();
    let warm = SweepPerfNumbers {
        lp_pivots: stats.lp_pivots,
        root_pivots: stats.root_pivots,
        nodes: stats.nodes_explored,
        chained_roots: stats.chained_roots,
        wall_ms: warm_wall_ms,
    };

    // Cold: rebuild the model and solve from scratch at every point.
    let mut cold = SweepPerfNumbers {
        lp_pivots: 0,
        root_pivots: 0,
        nodes: 0,
        chained_roots: 0,
        wall_ms: 0.0,
    };
    let mut max_objective_delta = 0.0f64;
    let mut proven = warm_points
        .iter()
        .all(|p| p.as_ref().is_ok_and(|p| p.proven));
    let start = std::time::Instant::now();
    for (&(r_spare, x_limit), warm_point) in points.iter().zip(&warm_points) {
        let cfg = ModelConfig {
            r_spare,
            x_limit,
            ..config.clone()
        };
        let model = PlacementModel::build(params, &cfg);
        match (
            BranchBound::new().solve_with_stats(&model.problem),
            warm_point,
        ) {
            (Ok((solution, stats)), Ok(point)) => {
                cold.lp_pivots += stats.lp_pivots;
                cold.root_pivots += stats.root_pivots;
                cold.nodes += stats.nodes_explored;
                proven &= !stats.budget_exhausted && stats.lp_iteration_limited == 0;
                let delta = (solution.objective - point.objective).abs()
                    / solution.objective.abs().max(1.0);
                max_objective_delta = max_objective_delta.max(delta);
            }
            (cold_result, warm_result) => {
                errors.push(format!(
                    "{benchmark} ({axis} sweep, ram {r_spare}, x_limit {x_limit}): \
                     cold {:?} vs warm {:?}",
                    cold_result.as_ref().map(|(s, _)| s.objective),
                    warm_result.as_ref().map(|p| p.objective),
                ));
                return None;
            }
        }
    }
    cold.wall_ms = start.elapsed().as_secs_f64() * 1e3;

    Some(SweepPerfRow {
        benchmark: benchmark.to_string(),
        axis,
        points: points.len(),
        warm,
        cold,
        max_objective_delta,
        proven,
    })
}

/// Sweep every BEEBS placement model along both Figure 6 axes twice — once
/// chained on a [`PlacementSession`], once cold per point — and report the
/// pivot/node/wall-time totals of both (the `BENCH_solver.json` `sweep`
/// section).
///
/// The RAM axis relaxes the time bound and descends the budget grid; the
/// time axis keeps the full budget and tightens `X_limit`.  A benchmark
/// whose sweep fails in either mode produces no row for that axis; the
/// failure is described in the second element.
pub fn solver_sweep_perf(board: &Board, level: OptLevel) -> (Vec<SweepPerfRow>, Vec<String>) {
    let mut rows = Vec::new();
    let mut errors = Vec::new();
    for bench in Benchmark::all() {
        let program = bench.compile_cached(level).expect("benchmark compiles");
        let params = extract_params(&program, &FrequencySource::default());
        let spare = board.spare_ram(&program).expect("program fits");
        let (e_flash, e_ram) = board.power.model_coefficients();
        let (budgets, x_limits) = sweep_grids(spare);

        // One reference config for both axes; the per-point budgets come
        // from the points list via `set_budgets`, not from this literal.
        let config = ModelConfig {
            x_limit: 10.0,
            r_spare: spare,
            e_flash,
            e_ram,
        };
        let ram_points: Vec<(u32, f64)> = budgets.iter().map(|&b| (b, 10.0)).collect();
        rows.extend(sweep_perf_row(
            bench.name,
            "ram",
            &params,
            &config,
            &ram_points,
            &mut errors,
        ));

        let time_points: Vec<(u32, f64)> = x_limits.iter().map(|&x| (spare, x)).collect();
        rows.extend(sweep_perf_row(
            bench.name,
            "time",
            &params,
            &config,
            &time_points,
            &mut errors,
        ));
    }
    (rows, errors)
}

/// The Section 6 averages block rendered exactly as the
/// `fig5_beebs_results` binary prints it (per optimization level, then the
/// overall mean), shared with the figure-regeneration golden test.
pub fn figure5_averages_text(results: &[BenchmarkResult]) -> String {
    let mut out = String::from("Section 6 averages (percent change vs baseline)\n");
    out.push_str(&format!(
        "{:<8} {:>10} {:>10} {:>10}\n",
        "level", "energy %", "power %", "time %"
    ));
    let mut levels: Vec<OptLevel> = Vec::new();
    for r in results {
        if !levels.contains(&r.level) {
            levels.push(r.level);
        }
    }
    for level in levels {
        let subset: Vec<BenchmarkResult> = results
            .iter()
            .filter(|r| r.level == level)
            .cloned()
            .collect();
        let avg = averages(&subset);
        out.push_str(&format!(
            "{:<8} {:>10.2} {:>10.2} {:>10.2}\n",
            level.to_string(),
            avg.energy_pct,
            avg.power_pct,
            avg.time_pct
        ));
    }
    let all = averages(results);
    out.push_str(&format!(
        "{:<8} {:>10.2} {:>10.2} {:>10.2}\n",
        "all", all.energy_pct, all.power_pct, all.time_pct
    ));
    out
}

/// Render the solver performance rows (per-model warm-vs-cold solves plus
/// the budget-sweep comparison) as the `BENCH_solver.json` document
/// (hand-rolled: the build environment has no serde).
pub fn solver_perf_json(rows: &[SolverPerfRow], sweep: &[SweepPerfRow]) -> String {
    fn run(r: &SolverRunNumbers) -> String {
        format!(
            concat!(
                "{{\"nodes_explored\": {}, \"nodes_pruned\": {}, ",
                "\"lp_pivots\": {}, \"root_pivots\": {}, ",
                "\"warm_solves\": {}, \"warm_pivots\": {}, ",
                "\"cold_solves\": {}, \"cold_pivots\": {}, ",
                "\"budget_exhausted\": {}, \"lp_iteration_limited\": {}, ",
                "\"wall_ms\": {:.3}, \"objective\": {:.6}}}"
            ),
            r.stats.nodes_explored,
            r.stats.nodes_pruned,
            r.stats.lp_pivots,
            r.stats.root_pivots,
            r.stats.warm_solves,
            r.stats.warm_pivots,
            r.stats.cold_solves,
            r.stats.cold_pivots,
            r.stats.budget_exhausted,
            r.stats.lp_iteration_limited,
            r.wall_ms,
            r.objective,
        )
    }
    let mut out = String::from("{\n  \"benchmarks\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "    {{\"benchmark\": \"{}\", \"r_spare\": {}, \"x_limit\": {}, ",
                "\"vars\": {}, \"constraints\": {}, ",
                "\"warm\": {}, \"cold\": {}}}{}\n"
            ),
            row.benchmark,
            row.r_spare,
            row.x_limit,
            row.vars,
            row.constraints,
            run(&row.warm),
            run(&row.cold),
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n  \"sweep\": [\n");
    for (i, row) in sweep.iter().enumerate() {
        let numbers = |n: &SweepPerfNumbers| {
            format!(
                concat!(
                    "{{\"lp_pivots\": {}, \"root_pivots\": {}, \"nodes\": {}, ",
                    "\"chained_roots\": {}, \"wall_ms\": {:.3}}}"
                ),
                n.lp_pivots, n.root_pivots, n.nodes, n.chained_roots, n.wall_ms,
            )
        };
        out.push_str(&format!(
            concat!(
                "    {{\"benchmark\": \"{}\", \"axis\": \"{}\", \"points\": {}, ",
                "\"warm\": {}, \"cold\": {}, ",
                "\"total_pivots_warm\": {}, \"total_pivots_cold\": {}, ",
                "\"total_pivots_delta\": {}, ",
                "\"max_objective_delta\": {:.2e}, ",
                "\"proven\": {}}}{}\n"
            ),
            row.benchmark,
            row.axis,
            row.points,
            numbers(&row.warm),
            numbers(&row.cold),
            row.warm.lp_pivots,
            row.cold.lp_pivots,
            row.warm.lp_pivots as i64 - row.cold.lp_pivots as i64,
            row.max_objective_delta,
            row.proven,
            if i + 1 < sweep.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Build and solve the placement ILP for one benchmark, returning the number
/// of blocks selected (used by the solver Criterion bench).
pub fn solve_placement_once(board: &Board, bench: &Benchmark, level: OptLevel) -> usize {
    let program = bench.compile_cached(level).expect("benchmark compiles");
    RamOptimizer::new()
        .optimize(&program, board)
        .expect("placement succeeds")
        .selected
        .len()
}

/// The exhaustive solver, re-exported for verification binaries.
pub fn exhaustive_solver() -> ExhaustiveSolver {
    ExhaustiveSolver::new()
}

/// One row of the future-work experiment: the measured effect of the
/// application-only pass (the paper's prototype) versus the whole-program
/// ("linker level") pass that may also relocate library code.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkerModeComparison {
    /// Benchmark name.
    pub benchmark: String,
    /// Energy change of the application-only pass, percent (negative = saving).
    pub app_only_energy_pct: f64,
    /// Energy change of the whole-program pass, percent.
    pub whole_program_energy_pct: f64,
    /// Power change of the application-only pass, percent.
    pub app_only_power_pct: f64,
    /// Power change of the whole-program pass, percent.
    pub whole_program_power_pct: f64,
    /// How many more blocks the whole-program pass moved into RAM.
    pub extra_blocks_in_ram: usize,
}

/// Run both placement scopes on the named benchmarks and measure them
/// (the paper's future-work section, quantified).
///
/// Each scope solves its own model (the candidate set differs, so the two
/// are structurally different and cannot share one chain); the solve goes
/// through [`RamOptimizer::optimize`], which since the frontier engine is
/// the degenerate one-point [`PlacementSession`] — including the greedy
/// fallback when a (larger, whole-program) model exhausts the node budget.
pub fn linker_mode_comparison(
    board: &Board,
    names: &[&str],
    level: OptLevel,
    x_limit: f64,
) -> Vec<LinkerModeComparison> {
    BatchRunner::new(board.clone()).map(names, |board, name| {
        let bench = Benchmark::by_name(name).expect("known benchmark");
        let program = bench.compile_cached(level).expect("benchmark compiles");
        let base = board.run(&program).expect("baseline runs");
        let pct = |after: f64, before: f64| 100.0 * (after - before) / before;

        let mut energy = [0.0f64; 2];
        let mut power = [0.0f64; 2];
        let mut blocks = [0usize; 2];
        for (i, scope) in [
            PlacementScope::ApplicationOnly,
            PlacementScope::WholeProgram,
        ]
        .into_iter()
        .enumerate()
        {
            let placement = RamOptimizer::with_config(OptimizerConfig {
                x_limit,
                scope,
                ..OptimizerConfig::default()
            })
            .optimize(&program, board)
            .expect("placement succeeds");
            let run = board
                .run(&placement.program)
                .expect("optimized program runs");
            assert_eq!(
                base.return_value, run.return_value,
                "{name}: semantics changed"
            );
            energy[i] = pct(run.energy_mj, base.energy_mj);
            power[i] = pct(run.avg_power_mw, base.avg_power_mw);
            blocks[i] = placement.selected.len();
        }
        LinkerModeComparison {
            benchmark: bench.name.to_string(),
            app_only_energy_pct: energy[0],
            whole_program_energy_pct: energy[1],
            app_only_power_pct: power[0],
            whole_program_power_pct: power[1],
            extra_blocks_in_ram: blocks[1].saturating_sub(blocks[0]),
        }
    })
}

/// The measured outcome of one cost-model variant in the ablation study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AblationOutcome {
    /// Measured energy change, percent (negative = saving).
    pub energy_pct: f64,
    /// Measured execution-time change, percent.
    pub time_pct: f64,
    /// Measured average-power change, percent.
    pub power_pct: f64,
    /// Blocks the variant placed in RAM.
    pub blocks_in_ram: usize,
}

/// Ablation results for one benchmark: the full Section 4 model against the
/// two simplifications it improves on.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationResult {
    /// Benchmark name.
    pub benchmark: String,
    /// The full model (cycle metric + instrumentation costs).
    pub full: AblationOutcome,
    /// `C_b` replaced by the block's instruction count (the Steinke-style
    /// metric the paper argues against for the Cortex-M3).
    pub instruction_metric: AblationOutcome,
    /// Instrumentation costs `K_b`/`T_b` forced to zero (no clustering
    /// pressure).
    pub no_instrumentation_cost: AblationOutcome,
}

/// Run the cost-model ablation on the named benchmarks.
pub fn model_ablation(
    board: &Board,
    names: &[&str],
    level: OptLevel,
    x_limit: f64,
) -> Vec<AblationResult> {
    BatchRunner::new(board.clone()).map(names, |board, name| {
        let bench = Benchmark::by_name(name).expect("known benchmark");
        let program = bench.compile_cached(level).expect("benchmark compiles");
        let base = board.run(&program).expect("baseline runs");
        let spare = board.spare_ram(&program).expect("program fits");
        let (e_flash, e_ram) = board.power.model_coefficients();
        let config = ModelConfig {
            x_limit,
            r_spare: spare,
            e_flash,
            e_ram,
        };
        let params = extract_params(&program, &FrequencySource::default());

        let measure = |params: &flashram_core::ProgramParams| -> AblationOutcome {
            let model = PlacementModel::build(params, &config);
            let solution = flashram_ilp::BranchBound::new()
                .solve(&model.problem)
                .expect("solvable");
            let selected = model.selected_blocks(&solution);
            let transformed = flashram_core::apply_placement(&program, &selected);
            let run = board.run(&transformed).expect("transformed program runs");
            assert_eq!(
                base.return_value, run.return_value,
                "{name}: semantics changed"
            );
            AblationOutcome {
                energy_pct: 100.0 * (run.energy_mj - base.energy_mj) / base.energy_mj,
                time_pct: 100.0 * (run.time_s - base.time_s) / base.time_s,
                power_pct: 100.0 * (run.avg_power_mw - base.avg_power_mw) / base.avg_power_mw,
                blocks_in_ram: selected.len(),
            }
        };

        let full = measure(&params);

        // Variant 1: instruction count instead of cycles for C_b.
        let mut inst_params = params.clone();
        for (r, p) in inst_params.blocks.iter_mut() {
            p.cycles = program.block(*r).insts.len() as u64 + 1;
        }
        let instruction_metric = measure(&inst_params);

        // Variant 2: instrumentation considered free by the model.
        let mut free_params = params.clone();
        for p in free_params.blocks.values_mut() {
            p.instr_bytes = 0;
            p.instr_cycles = 0;
        }
        let no_instrumentation_cost = measure(&free_params);

        AblationResult {
            benchmark: bench.name.to_string(),
            full,
            instruction_metric,
            no_instrumentation_cost,
        }
    })
}

/// One simulated program of the [`sim_perf`] sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SimPerfRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Optimization level the kernel was compiled at.
    pub level: OptLevel,
    /// Cycles the run took on the simulated board.
    pub cycles: u64,
    /// Energy of the run in millijoules.
    pub energy_mj: f64,
    /// The kernel's checksum (must match between sequential and batched).
    pub return_value: i32,
    /// Best-of-rounds wall milliseconds for this kernel per engine,
    /// aligned index-for-index with [`SimPerfReport::engines`].
    pub engine_wall_ms: Vec<f64>,
}

impl SimPerfRow {
    /// Simulated megacycles/s this kernel achieved on the engine at index
    /// `i` of [`SimPerfReport::engines`].
    pub fn engine_mcycles_per_s(&self, i: usize) -> f64 {
        SimPerfReport::mcycles_per_s(self.cycles, self.engine_wall_ms[i])
    }
}

/// Aggregate outcome for one execution engine across the [`sim_perf`]
/// sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct EnginePerf {
    /// Which engine this row measures.
    pub engine: Engine,
    /// Sum of the per-kernel best-of-rounds wall times, milliseconds.
    pub wall_ms: f64,
    /// Whether every run's result was bit-identical to the reference
    /// interpreter's (trivially true for the reference itself).
    pub bit_identical: bool,
}

/// The simulator-throughput comparison written to `BENCH_sim.json`.
///
/// Timed passes over the same sweep for every execution engine — the
/// IR-walking reference interpreter, the decoded engine, the threaded
/// dispatcher and the tiered superblock engine — plus the decoded engine
/// on the [`BatchRunner`] worker pool.  Per-kernel wall times are the
/// minimum over five interleaved rounds with a rotated pass order.
#[derive(Debug, Clone, PartialEq)]
pub struct SimPerfReport {
    /// Worker threads the batched run used.
    pub threads: usize,
    /// Total simulated cycles across the sweep.
    pub total_cycles: u64,
    /// Wall time of the one-by-one reference-interpreter loop, milliseconds.
    pub reference_wall_ms: f64,
    /// Wall time of the one-by-one decoded-engine loop, milliseconds.
    pub sequential_wall_ms: f64,
    /// Wall time of the batched decoded run, milliseconds.
    pub batched_wall_ms: f64,
    /// Whether the decoded results were bit-identical to the reference
    /// interpreter's **and** the batched results bit-identical to the
    /// sequential decoded ones (cycles, energy bits, checksum, profile,
    /// layout).
    pub bit_identical: bool,
    /// Per-engine aggregates, in [`Engine::ALL`] order (reference first).
    pub engines: Vec<EnginePerf>,
    /// Tier statistics summed over the superblock engine's sweep: how many
    /// loop heads went hot, how many superblocks were built, and how much
    /// of the retired work ran inside them.
    pub tier: TierStats,
    /// Per-program rows, in sweep order.
    pub rows: Vec<SimPerfRow>,
}

impl SimPerfReport {
    /// Batched throughput over sequential decoded throughput (> 1 means the
    /// pool paid off; expect ≈ the worker count on an idle multi-core host
    /// and ≈ 1 on a single-core one, where the runner executes inline).
    pub fn speedup(&self) -> f64 {
        if self.batched_wall_ms <= 0.0 {
            return 1.0;
        }
        self.sequential_wall_ms / self.batched_wall_ms
    }

    /// Decoded single-thread throughput over reference single-thread
    /// throughput — the decode-once/run-many payoff.
    pub fn decode_speedup(&self) -> f64 {
        if self.sequential_wall_ms <= 0.0 {
            return 1.0;
        }
        self.reference_wall_ms / self.sequential_wall_ms
    }

    /// Single-thread speedup of the engine at index `i` of [`engines`]
    /// over the reference interpreter.
    ///
    /// [`engines`]: Self::engines
    pub fn engine_speedup(&self, i: usize) -> f64 {
        if self.engines[i].wall_ms <= 0.0 {
            return 1.0;
        }
        self.reference_wall_ms / self.engines[i].wall_ms
    }

    /// Simulated megacycles/s of the engine at index `i` of [`engines`].
    ///
    /// [`engines`]: Self::engines
    pub fn engine_mcycles_per_s(&self, i: usize) -> f64 {
        Self::mcycles_per_s(self.total_cycles, self.engines[i].wall_ms)
    }

    /// The fastest bit-identical non-reference engine (index into
    /// [`engines`] and its speedup over the reference) — the headline
    /// "dispatch floor" number.
    ///
    /// [`engines`]: Self::engines
    pub fn best_engine(&self) -> (usize, f64) {
        let mut best = (0, 1.0);
        for (i, e) in self.engines.iter().enumerate() {
            if e.engine != Engine::Reference && e.bit_identical {
                let s = self.engine_speedup(i);
                if s > best.1 {
                    best = (i, s);
                }
            }
        }
        best
    }

    /// Simulated megacycles per wall-clock second for the batched run.
    pub fn batched_mcycles_per_s(&self) -> f64 {
        Self::mcycles_per_s(self.total_cycles, self.batched_wall_ms)
    }

    /// Simulated megacycles per wall-clock second for the sequential
    /// decoded run.
    pub fn decoded_mcycles_per_s(&self) -> f64 {
        Self::mcycles_per_s(self.total_cycles, self.sequential_wall_ms)
    }

    /// Simulated megacycles per wall-clock second for the reference
    /// interpreter.
    pub fn reference_mcycles_per_s(&self) -> f64 {
        Self::mcycles_per_s(self.total_cycles, self.reference_wall_ms)
    }

    fn mcycles_per_s(cycles: u64, wall_ms: f64) -> f64 {
        if wall_ms <= 0.0 {
            0.0
        } else {
            cycles as f64 / 1e3 / wall_ms
        }
    }
}

/// Measure simulator throughput: run every BEEBS kernel at every given
/// level on each execution engine ([`Engine::ALL`]) and on a
/// [`BatchRunner`], and compare wall times and results.
///
/// The result check is exact, not approximate: the deterministic counter
/// fold means every engine must reproduce the reference cycles, energy
/// *bits*, checksum, profile and layout, and a batched run must reproduce
/// the sequential ones; the report records a per-engine verdict plus the
/// combined `bit_identical` flag.  Compilation goes through the fixture
/// cache and decoding/threading preparation is untimed — the engines'
/// contract is prepare-once/run-many, so the timed loops measure the
/// per-run cost only.  An untimed warm-up pass per engine runs first so
/// page faults and allocator growth land outside the measurements.
pub fn sim_perf(board: &Board, levels: &[OptLevel]) -> SimPerfReport {
    let jobs = sweep_jobs(levels);
    let programs: Vec<_> = jobs
        .iter()
        .map(|(bench, level)| bench.compile_cached(*level).expect("benchmark compiles"))
        .collect();

    // Prepare once, untimed: the decoded program feeds both the decoded
    // and superblock engines, the threaded program carries its handler
    // table.  This also warms every program image.
    let decoded_programs: Vec<_> = programs
        .iter()
        .map(|p| board.decode(p).expect("kernel decodes"))
        .collect();
    let threaded_programs: Vec<_> = programs
        .iter()
        .map(|p| board.prepare_threaded(p).expect("kernel decodes"))
        .collect();
    let config = RunConfig::default();
    let run_engine = |engine: Engine, i: usize| match engine {
        Engine::Reference => board.run_reference(&programs[i]),
        Engine::Decoded => board.run_decoded(&decoded_programs[i], &config),
        Engine::Threaded => board.run_threaded(&threaded_programs[i], &config),
        Engine::Superblock => board.run_superblock(&threaded_programs[i], &config),
    };
    for engine in [Engine::Decoded, Engine::Threaded, Engine::Superblock] {
        for i in 0..programs.len() {
            let _ = run_engine(engine, i).expect("kernel runs");
        }
    }

    // Five interleaved rounds with a rotated pass order, keeping each
    // (kernel, engine) cell's best wall time.  A fixed order
    // systematically penalizes whichever engine runs later (shared and
    // quota-throttled hosts slow down under sustained load — the source
    // of the phantom sub-1.0 "batched slowdown" this file used to report
    // at one thread); rotating gives every engine an early slot and
    // taking minima cancels the drift.  Results are deterministic, so any
    // round's outputs serve for the bit-identity comparison.
    let runner = BatchRunner::new(board.clone());
    let n = programs.len();
    let mut cell_wall_ms = vec![vec![f64::MAX; n]; Engine::ALL.len()];
    let mut outputs: Vec<Vec<flashram_mcu::RunResult>> = vec![Vec::new(); Engine::ALL.len()];
    let mut batched_wall_ms = f64::MAX;
    let mut batched = Vec::new();
    let time_engine = |e: usize, cells: &mut [f64], out: &mut Vec<_>| {
        out.clear();
        for (i, cell) in cells.iter_mut().enumerate() {
            let start = std::time::Instant::now();
            let run = run_engine(Engine::ALL[e], i).expect("kernel runs");
            *cell = cell.min(start.elapsed().as_secs_f64() * 1e3);
            out.push(run);
        }
    };
    let time_batched = |best: &mut f64, out: &mut Vec<_>| {
        let start = std::time::Instant::now();
        *out = runner.map(&decoded_programs, |board, d| {
            board
                .run_decoded(d, &RunConfig::default())
                .expect("kernel runs")
        });
        *best = best.min(start.elapsed().as_secs_f64() * 1e3);
    };
    // Five passes per round: the four engines plus the batched sweep.
    let passes = Engine::ALL.len() + 1;
    for round in 0..5 {
        for p in 0..passes {
            match (round + p) % passes {
                e if e < Engine::ALL.len() => time_engine(e, &mut cell_wall_ms[e], &mut outputs[e]),
                _ => time_batched(&mut batched_wall_ms, &mut batched),
            }
        }
    }

    let engines: Vec<EnginePerf> = Engine::ALL
        .iter()
        .enumerate()
        .map(|(e, &engine)| EnginePerf {
            engine,
            wall_ms: cell_wall_ms[e].iter().sum(),
            bit_identical: outputs[e]
                .iter()
                .zip(&outputs[0])
                .all(|(run, r)| run.bits_eq(r)),
        })
        .collect();
    let superblock_index = Engine::ALL
        .iter()
        .position(|e| *e == Engine::Superblock)
        .expect("superblock engine is in ALL");
    let tier = outputs[superblock_index]
        .iter()
        .map(|run| run.tier.expect("superblock engine reports tier stats"))
        .fold(TierStats::default(), |mut acc, t| {
            acc.chunks += t.chunks;
            acc.hot_heads += t.hot_heads;
            acc.superblocks_built += t.superblocks_built;
            acc.superblocks_rejected += t.superblocks_rejected;
            acc.superblock_entries += t.superblock_entries;
            acc.superblock_iterations += t.superblock_iterations;
            acc.interpreted_ops += t.interpreted_ops;
            acc.superblock_ops += t.superblock_ops;
            acc
        });

    let sequential = &outputs[1];
    let bit_identical = engines.iter().all(|e| e.bit_identical)
        && sequential.iter().zip(&batched).all(|(s, b)| s.bits_eq(b));

    let rows = jobs
        .iter()
        .enumerate()
        .zip(sequential)
        .map(|((i, (bench, level)), run)| SimPerfRow {
            benchmark: bench.name.to_string(),
            level: *level,
            cycles: run.cycles(),
            energy_mj: run.energy_mj,
            return_value: run.return_value,
            engine_wall_ms: cell_wall_ms.iter().map(|cells| cells[i]).collect(),
        })
        .collect::<Vec<_>>();

    SimPerfReport {
        threads: runner.threads(),
        total_cycles: rows.iter().map(|r| r.cycles).sum(),
        reference_wall_ms: engines[0].wall_ms,
        sequential_wall_ms: engines[1].wall_ms,
        batched_wall_ms,
        bit_identical,
        engines,
        tier,
        rows,
    }
}

/// Render a [`SimPerfReport`] as the `BENCH_sim.json` document
/// (hand-rolled: the build environment has no serde).
pub fn sim_perf_json(report: &SimPerfReport) -> String {
    let (best, best_speedup) = report.best_engine();
    let mut out = String::from("{\n");
    out.push_str(&format!(
        concat!(
            "  \"threads\": {},\n  \"programs\": {},\n",
            "  \"total_cycles\": {},\n",
            "  \"reference_wall_ms\": {:.3},\n",
            "  \"sequential_wall_ms\": {:.3},\n  \"batched_wall_ms\": {:.3},\n",
            "  \"reference_mcycles_per_s\": {:.1},\n",
            "  \"decoded_mcycles_per_s\": {:.1},\n",
            "  \"decode_speedup\": {:.3},\n",
            "  \"speedup\": {:.3},\n  \"batched_mcycles_per_s\": {:.1},\n",
            "  \"bit_identical\": {},\n",
            "  \"best_engine\": \"{}\",\n  \"best_engine_speedup\": {:.3},\n",
            "  \"engines\": [\n"
        ),
        report.threads,
        report.rows.len(),
        report.total_cycles,
        report.reference_wall_ms,
        report.sequential_wall_ms,
        report.batched_wall_ms,
        report.reference_mcycles_per_s(),
        report.decoded_mcycles_per_s(),
        report.decode_speedup(),
        report.speedup(),
        report.batched_mcycles_per_s(),
        report.bit_identical,
        report.engines[best].engine,
        best_speedup,
    ));
    for (i, e) in report.engines.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "    {{\"engine\": \"{}\", \"wall_ms\": {:.3}, ",
                "\"mcycles_per_s\": {:.1}, \"speedup\": {:.3}, ",
                "\"bit_identical\": {}}}{}\n"
            ),
            e.engine,
            e.wall_ms,
            report.engine_mcycles_per_s(i),
            report.engine_speedup(i),
            e.bit_identical,
            if i + 1 < report.engines.len() {
                ","
            } else {
                ""
            },
        ));
    }
    let t = &report.tier;
    out.push_str(&format!(
        concat!(
            "  ],\n  \"tier\": {{\"chunks\": {}, \"hot_heads\": {}, ",
            "\"superblocks_built\": {}, \"superblocks_rejected\": {}, ",
            "\"superblock_entries\": {}, \"superblock_iterations\": {}, ",
            "\"interpreted_ops\": {}, \"superblock_ops\": {}}},\n",
            "  \"runs\": [\n"
        ),
        t.chunks,
        t.hot_heads,
        t.superblocks_built,
        t.superblocks_rejected,
        t.superblock_entries,
        t.superblock_iterations,
        t.interpreted_ops,
        t.superblock_ops,
    ));
    for (i, row) in report.rows.iter().enumerate() {
        let per_engine = report
            .engines
            .iter()
            .enumerate()
            .map(|(e, perf)| format!("\"{}\": {:.1}", perf.engine, row.engine_mcycles_per_s(e)))
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            concat!(
                "    {{\"benchmark\": \"{}\", \"level\": \"{}\", \"cycles\": {}, ",
                "\"energy_mj\": {:.6}, \"return_value\": {}, ",
                "\"engine_mcycles_per_s\": {{{}}}}}{}\n"
            ),
            row.benchmark,
            row.level,
            row.cycles,
            row.energy_mj,
            row.return_value,
            per_engine,
            if i + 1 < report.rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// One `(kernel, device)` cell of the cross-device placement matrix: the
/// outcome of enumerating that kernel's exact energy/RAM frontier on that
/// device-database entry.
#[derive(Debug, Clone)]
pub struct DeviceMatrixRow {
    /// BEEBS kernel name.
    pub benchmark: &'static str,
    /// Device-database key.
    pub device: &'static str,
    /// Steps on the device's exact Pareto staircase.
    pub frontier_points: usize,
    /// Spare RAM the kernel leaves on the device, in bytes (the budget
    /// ceiling of the enumeration).
    pub spare_ram: u32,
    /// All-in-flash baseline energy in millijoules (objective scaled by the
    /// device's cycle period, so the column is comparable across devices).
    pub baseline_energy_mj: f64,
    /// Energy of the device's energy-optimal staircase step (mJ).
    pub best_energy_mj: f64,
    /// RAM bytes the Eq. 7 budget row charges the optimal step for.
    pub best_ram_bytes: u32,
    /// The blocks the optimal step moves to RAM.
    pub best_selected: Vec<BlockRef>,
    /// The blocks selected under the shared tight probe budget
    /// ([`TIGHT_PROBE_RAM`] bytes) — where the per-device block *ranking*
    /// shows, because the budget forces a choice.
    pub tight_selected: Vec<BlockRef>,
    /// Branch-and-bound nodes spent enumerating the staircase.
    pub nodes_explored: usize,
    /// Simplex pivots spent enumerating the staircase.
    pub lp_pivots: usize,
    /// Whether every step was solved to proven optimality.
    pub exact: bool,
}

impl DeviceMatrixRow {
    /// Energy the optimal placement saves relative to all-in-flash, in
    /// percent.
    pub fn saving_pct(&self) -> f64 {
        if self.baseline_energy_mj == 0.0 {
            return 0.0;
        }
        100.0 * (1.0 - self.best_energy_mj / self.baseline_energy_mj)
    }
}

/// One kernel's cross-device outcome: a row per database device plus the
/// merged device-dominant Pareto set.
#[derive(Debug, Clone)]
pub struct DeviceMatrixKernel {
    /// BEEBS kernel name.
    pub benchmark: &'static str,
    /// Per-device rows, in device-database order.
    pub rows: Vec<DeviceMatrixRow>,
    /// The device-dominant Pareto set over `(RAM budget, energy in mJ)`:
    /// which part to pick at each budget, merged across the database.
    pub pareto: Vec<DevicePoint>,
}

impl DeviceMatrixKernel {
    /// Whether the wait-state part `stm32f401` picks a different block set
    /// than the zero-wait-state `stm32f100` — at the unconstrained optimum
    /// or under the [`TIGHT_PROBE_RAM`] probe budget.
    pub fn f401_diverges(&self) -> bool {
        let row = |dev: &str| self.rows.iter().find(|r| r.device == dev);
        match (row("stm32f100"), row("stm32f401")) {
            (Some(a), Some(b)) => {
                a.best_selected != b.best_selected || a.tight_selected != b.tight_selected
            }
            _ => false,
        }
    }
}

/// The RAM budget (bytes) of the tight divergence probe: small enough that
/// no kernel fits every profitable block, so the solver must *rank* blocks
/// — and the ranking is where wait states and per-device energy tables
/// change the answer.  (At the unconstrained optimum every device simply
/// takes every profitable block, and the sets coincide.)
pub const TIGHT_PROBE_RAM: u32 = 128;

/// Enumerate the exact energy/RAM frontier of each named BEEBS kernel on
/// every entry of the device database, fanning the per-device enumerations
/// over a worker pool ([`DeviceMatrix::enumerate`]), plus one extra solve
/// per device at the [`TIGHT_PROBE_RAM`] budget.  An empty `names` slice
/// selects the whole suite.
///
/// The second element collects acceptance failures: kernels that fail to
/// compile, devices the program does not fit or whose staircase was
/// truncated, and — the property the device model exists to show — the
/// wait-state part `stm32f401` picking the *same* block set as the
/// zero-wait-state `stm32f100` on every kernel, at the optimum and under
/// the tight probe (wait states make RAM moves shed fetch stalls, so
/// constrained placements must measurably differ).
pub fn device_matrix(
    names: &[&str],
    level: OptLevel,
    x_limit: f64,
) -> (Vec<DeviceMatrixKernel>, Vec<String>) {
    let devices = DEVICE_DB.all();
    let benches: Vec<Benchmark> = if names.is_empty() {
        Benchmark::all()
    } else {
        names
            .iter()
            .map(|n| Benchmark::by_name(n).unwrap_or_else(|| panic!("unknown benchmark {n}")))
            .collect()
    };
    let runner = BatchRunner::new(Board::stm32vldiscovery());
    let config = OptimizerConfig {
        x_limit,
        ..OptimizerConfig::default()
    };
    let mut kernels = Vec::new();
    let mut failures = Vec::new();
    for bench in &benches {
        let program = match bench.compile_cached(level) {
            Ok(p) => p,
            Err(e) => {
                failures.push(format!("{}: compile failed: {e}", bench.name));
                continue;
            }
        };
        let matrix = DeviceMatrix::enumerate(&program, devices, &config, &runner);
        for (device, err) in &matrix.skipped {
            failures.push(format!("{} on {device}: {err}", bench.name));
        }
        let mut rows = Vec::new();
        for df in &matrix.frontiers {
            let Some(best) = df.best() else {
                failures.push(format!("{} on {}: empty frontier", bench.name, df.device));
                continue;
            };
            if !df.frontier.exact {
                failures.push(format!(
                    "{} on {}: staircase truncated (not proven exact)",
                    bench.name, df.device
                ));
            }
            let desc = DEVICE_DB
                .get(df.device)
                .expect("frontier device is registered");
            let tight_selected = PlacementSession::new(&program, &Board::new(desc), &config)
                .map_err(|e| e.to_string())
                .and_then(|mut s| {
                    s.solve_point(TIGHT_PROBE_RAM.min(df.spare_ram), x_limit)
                        .map(|p| p.selected)
                        .map_err(|e| e.to_string())
                })
                .unwrap_or_else(|e| {
                    failures.push(format!(
                        "{} on {}: tight probe failed: {e}",
                        bench.name, df.device
                    ));
                    Vec::new()
                });
            rows.push(DeviceMatrixRow {
                benchmark: bench.name,
                device: df.device,
                frontier_points: df.frontier.points.len(),
                spare_ram: df.spare_ram,
                baseline_energy_mj: df.frontier.baseline.energy * df.cycle_time_s,
                best_energy_mj: df.energy_mj(best),
                best_ram_bytes: best.model_ram_used,
                best_selected: best.selected.clone(),
                tight_selected,
                nodes_explored: df.stats.nodes_explored,
                lp_pivots: df.stats.lp_pivots,
                exact: df.frontier.exact,
            });
        }
        kernels.push(DeviceMatrixKernel {
            benchmark: bench.name,
            rows,
            pareto: matrix.pareto,
        });
    }
    let diverging = kernels.iter().filter(|k| k.f401_diverges()).count();
    if !kernels.is_empty() && diverging == 0 {
        failures.push(
            "wait-state part stm32f401 chose the same block set as zero-wait \
             stm32f100 on every kernel, at the optimum and under the tight probe"
                .to_string(),
        );
    }
    (kernels, failures)
}

/// Render the cross-device matrix as the text table the `device_matrix`
/// binary prints (and the `device_matrix` golden pins for a kernel subset).
pub fn device_matrix_text(kernels: &[DeviceMatrixKernel]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<14} {:<11} {:>4} {:>7} {:>12} {:>12} {:>7} {:>6} {:>6} {:>5} {:>6}\n",
        "benchmark",
        "device",
        "pts",
        "spare",
        "base mJ",
        "best mJ",
        "save%",
        "ram",
        "blocks",
        "tight",
        "exact"
    ));
    for k in kernels {
        for r in &k.rows {
            out.push_str(&format!(
                "{:<14} {:<11} {:>4} {:>7} {:>12.6} {:>12.6} {:>7.2} {:>6} {:>6} {:>5} {:>6}\n",
                r.benchmark,
                r.device,
                r.frontier_points,
                r.spare_ram,
                r.baseline_energy_mj,
                r.best_energy_mj,
                r.saving_pct(),
                r.best_ram_bytes,
                r.best_selected.len(),
                r.tight_selected.len(),
                if r.exact { "yes" } else { "no" },
            ));
        }
        let steps: Vec<String> = k
            .pareto
            .iter()
            .map(|p| format!("{} @{}B {:.6}mJ", p.device, p.min_ram_bytes, p.energy_mj))
            .collect();
        out.push_str(&format!("  pareto: {}\n", steps.join(" -> ")));
        out.push_str(&format!(
            "  f401 vs f100 block set (opt or tight probe) differs: {}\n",
            if k.f401_diverges() { "yes" } else { "no" }
        ));
    }
    out
}

/// Render the cross-device matrix as the `BENCH_device.json` document
/// (hand-rolled: the build environment has no serde).
pub fn device_matrix_json(kernels: &[DeviceMatrixKernel], failures: &[String]) -> String {
    let mut out = String::from("{\n  \"devices\": [");
    for (i, desc) in DEVICE_DB.all().iter().enumerate() {
        out.push_str(&format!(
            "{}\"{}\"",
            if i > 0 { ", " } else { "" },
            desc.key
        ));
    }
    out.push_str("],\n  \"kernels\": [\n");
    for (i, k) in kernels.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"benchmark\": \"{}\", \"devices\": [\n",
            k.benchmark
        ));
        for (j, r) in k.rows.iter().enumerate() {
            out.push_str(&format!(
                concat!(
                    "      {{\"device\": \"{}\", \"frontier_points\": {}, ",
                    "\"spare_ram\": {}, \"baseline_energy_mj\": {:.9}, ",
                    "\"best_energy_mj\": {:.9}, \"saving_pct\": {:.3}, ",
                    "\"best_ram_bytes\": {}, \"best_blocks\": {}, ",
                    "\"tight_blocks\": {}, ",
                    "\"nodes_explored\": {}, \"lp_pivots\": {}, \"exact\": {}}}{}\n"
                ),
                r.device,
                r.frontier_points,
                r.spare_ram,
                r.baseline_energy_mj,
                r.best_energy_mj,
                r.saving_pct(),
                r.best_ram_bytes,
                r.best_selected.len(),
                r.tight_selected.len(),
                r.nodes_explored,
                r.lp_pivots,
                r.exact,
                if j + 1 < k.rows.len() { "," } else { "" },
            ));
        }
        out.push_str(&format!(
            "    ], \"f401_diverges\": {}, \"pareto\": [\n",
            k.f401_diverges()
        ));
        for (j, p) in k.pareto.iter().enumerate() {
            out.push_str(&format!(
                "      {{\"device\": \"{}\", \"min_ram_bytes\": {}, \"energy_mj\": {:.9}}}{}\n",
                p.device,
                p.min_ram_bytes,
                p.energy_mj,
                if j + 1 < k.pareto.len() { "," } else { "" },
            ));
        }
        out.push_str(&format!(
            "    ]}}{}\n",
            if i + 1 < kernels.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"failures\": [\n");
    for (i, f) in failures.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\"{}\n",
            f.replace('"', "'"),
            if i + 1 < failures.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_matrix_covers_the_database_and_renders() {
        let (kernels, failures) = device_matrix(&["fdct"], OptLevel::O2, 1.5);
        assert_eq!(failures, Vec::<String>::new());
        assert_eq!(kernels.len(), 1);
        let k = &kernels[0];
        assert_eq!(k.rows.len(), DEVICE_DB.all().len());
        for r in &k.rows {
            assert!(r.exact, "{}: staircase must be exact", r.device);
            assert!(r.frontier_points > 0);
            assert!(
                r.best_energy_mj < r.baseline_energy_mj,
                "{}: the optimal placement must save energy",
                r.device
            );
            assert!(!r.tight_selected.is_empty());
        }
        // The merged Pareto set is non-decreasing in RAM and strictly
        // decreasing in energy, and the wait-state part must pick a
        // different block set than the zero-wait reference on fdct.
        for w in k.pareto.windows(2) {
            assert!(w[0].min_ram_bytes <= w[1].min_ram_bytes);
            assert!(w[0].energy_mj > w[1].energy_mj);
        }
        assert!(k.f401_diverges(), "fdct must diverge under the tight probe");
        let text = device_matrix_text(&kernels);
        assert!(text.contains("stm32f401"));
        assert!(text.contains("pareto:"));
        let json = device_matrix_json(&kernels, &failures);
        assert!(json.contains("\"benchmark\": \"fdct\""));
        assert!(json.contains("\"device\": \"stm32l151\""));
        assert!(json.contains("\"f401_diverges\": true"));
        assert!(json.contains("\"exact\": true"));
    }

    #[test]
    fn sim_perf_report_is_bit_identical_and_renders() {
        let board = Board::stm32vldiscovery();
        let report = sim_perf(&board, &[OptLevel::O2]);
        assert_eq!(report.rows.len(), Benchmark::all().len());
        assert!(
            report.bit_identical,
            "decoded must match reference bits and batched must match sequential bits"
        );
        assert!(report.total_cycles > 0);
        assert!(report.decode_speedup() > 0.0);
        assert_eq!(report.engines.len(), Engine::ALL.len());
        assert!(
            report.engines.iter().all(|e| e.bit_identical),
            "every engine must match the reference: {:?}",
            report.engines
        );
        assert!(
            report.tier.superblocks_built > 0 && report.tier.superblock_iterations > 0,
            "the superblock tier must engage on BEEBS: {:?}",
            report.tier
        );
        let (best, best_speedup) = report.best_engine();
        assert!(report.engines[best].engine != Engine::Reference);
        assert!(best_speedup > 0.0);
        let json = sim_perf_json(&report);
        assert!(json.contains("\"bit_identical\": true"));
        assert!(json.contains("\"decode_speedup\""));
        assert!(json.contains("\"reference_mcycles_per_s\""));
        assert!(json.contains("\"decoded_mcycles_per_s\""));
        assert!(json.contains("\"best_engine\""));
        assert!(json.contains("\"engine\": \"superblock\""));
        assert!(json.contains("\"superblocks_built\""));
        assert!(json.contains("\"engine_mcycles_per_s\""));
        assert!(json.contains("\"benchmark\": \"int_matmult\""));
    }

    #[test]
    fn figure4_text_matches_the_table() {
        let text = figure4_text();
        assert!(text.starts_with("Figure 4"));
        for row in figure4_table() {
            assert!(text.contains(&row.kind), "missing row {}", row.kind);
        }
    }

    #[test]
    fn figure1_reproduces_the_flash_ram_gap() {
        let board = Board::stm32vldiscovery();
        let series = figure1_series(&board);
        assert_eq!(series.len(), 6);
        for row in &series {
            if row.label == "flash load" {
                // Loads that hit flash from RAM-resident code stay expensive.
                assert!(
                    row.ram_mw > row.flash_mw * 0.85,
                    "{}: {} vs {}",
                    row.label,
                    row.ram_mw,
                    row.flash_mw
                );
            } else {
                assert!(
                    row.ram_mw < row.flash_mw * 0.8,
                    "{}: RAM should be much cheaper ({} vs {})",
                    row.label,
                    row.ram_mw,
                    row.flash_mw
                );
            }
        }
    }

    #[test]
    fn figure4_table_matches_the_isa_costs() {
        let table = figure4_table();
        assert_eq!(table.len(), 4);
        let uncond = &table[0];
        assert_eq!((uncond.indirect_bytes, uncond.indirect_cycles), (4, 4));
        let cond = &table[1];
        assert_eq!((cond.indirect_bytes, cond.indirect_cycles), (8, 7));
    }

    #[test]
    fn single_benchmark_run_shows_the_paper_shape() {
        let board = Board::stm32vldiscovery();
        let bench = Benchmark::by_name("int_matmult").unwrap();
        let r = run_benchmark(&board, &bench, OptLevel::O2, 1.5);
        assert!(r.power_change_pct() < 0.0, "power must drop: {r:?}");
        assert!(
            r.energy_change_pct() < 5.0,
            "energy should not blow up: {r:?}"
        );
        assert!(
            r.time_change_pct() >= -1.0,
            "time should not improve: {r:?}"
        );
        assert!(r.blocks_in_ram > 0);
    }

    #[test]
    fn tradeoff_space_contains_the_solver_choices() {
        let board = Board::stm32vldiscovery();
        let bench = Benchmark::by_name("fdct").unwrap();
        let space = tradeoff_space(&board, &bench, OptLevel::O2, 6);
        assert_eq!(space.points.len(), 64);
        assert_eq!(space.enumerated_k, 6);
        assert!(!space.ram_sweep.is_empty());
        assert!(!space.time_sweep.is_empty());
        // Every sweep point solved (the sampled grids are all feasible).
        // The first point has nothing to chain from; later points chain
        // unless the bounded-regret guard fell back to a cold root, so at
        // least some must have chained.
        for (i, (_, s)) in space.ram_sweep.iter().enumerate() {
            assert!(!s.infeasible && s.error.is_none(), "ram point {i} failed");
            assert!(s.stats.is_some());
            if i == 0 {
                assert!(!s.chained, "the first point solves cold");
            }
        }
        for (_, s) in &space.time_sweep {
            assert!(s.point.is_some(), "time sweep points are feasible");
        }
        let chained_samples = space
            .ram_sweep
            .iter()
            .map(|(_, s)| s)
            .chain(space.time_sweep.iter().map(|(_, s)| s))
            .filter(|s| s.chained)
            .count();
        assert!(
            chained_samples > 0,
            "the session must chain roots across sweep points"
        );
        // Relaxing RAM monotonically improves (or keeps) the model energy.
        for w in space.ram_sweep.windows(2) {
            let (a, b) = (w[0].1.point.unwrap(), w[1].1.point.unwrap());
            assert!(b.energy <= a.energy + 1e-6);
        }
        // Every solver point is at least as good as the baseline.
        for (_, s) in &space.ram_sweep {
            assert!(s.point.unwrap().energy <= space.baseline.energy + 1e-6);
        }
        // The exact staircase is strictly monotone and at least as rich as
        // the distinct energies of the sampled grid.
        assert!(space.frontier_exact);
        assert!(!space.frontier.is_empty());
        for w in space.frontier.windows(2) {
            assert!(w[0].min_ram_bytes < w[1].min_ram_bytes);
            assert!(w[0].point.energy > w[1].point.energy);
        }
        assert_eq!(space.frontier[0].min_ram_bytes, 0);
        // The session counted every solved point (the frontier descent may
        // solve a few more than it keeps, for dominated tie placements).
        assert!(
            space.sweep_stats.points_solved
                >= space.ram_sweep.len() + space.time_sweep.len() + space.frontier.len()
        );
        assert!(
            (1..space.sweep_stats.points_solved).contains(&space.sweep_stats.chained_roots),
            "chained {} of {} points",
            space.sweep_stats.chained_roots,
            space.sweep_stats.points_solved
        );
    }

    #[test]
    fn tradeoff_space_clamps_the_enumeration_width() {
        // Regression for the `1u32 << k` overflow: an absurd k is clamped
        // to MAX_ENUMERATED_BLOCKS (or the candidate count) and reported,
        // never shifted past the word width.
        let board = Board::stm32vldiscovery();
        let bench = Benchmark::by_name("crc32").unwrap();
        let space = tradeoff_space(&board, &bench, OptLevel::O2, 64);
        assert_eq!(space.requested_k, 64);
        assert!(space.enumerated_k <= MAX_ENUMERATED_BLOCKS);
        assert_eq!(space.points.len(), 1usize << space.enumerated_k);
    }
}
