//! Regenerates Figure 9 and the Section 7 numbers: the periodic-sensing
//! case study, where the device wakes every `T` seconds to run a benchmark
//! and sleeps in between.  The report text lives in
//! [`flashram_bench::figure9_text`], shared with the figure golden test.

use flashram_bench::figure9_text;
use flashram_mcu::Board;
use flashram_minicc::OptLevel;

fn main() {
    let board = Board::stm32vldiscovery();
    let multiples = [1.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 16.0];
    print!(
        "{}",
        figure9_text(
            &board,
            &["fdct", "int_matmult", "2dfir"],
            OptLevel::O2,
            &multiples,
        )
    );
}
