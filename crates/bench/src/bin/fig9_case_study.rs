//! Regenerates Figure 9 and the Section 7 numbers: the periodic-sensing
//! case study, where the device wakes every `T` seconds to run a benchmark
//! and sleeps in between.

use flashram_bench::case_study_series;
use flashram_mcu::Board;
use flashram_minicc::OptLevel;

fn main() {
    let board = Board::stm32vldiscovery();
    let multiples = [1.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 16.0];
    let series = case_study_series(
        &board,
        &["fdct", "int_matmult", "2dfir"],
        OptLevel::O2,
        &multiples,
    );

    println!("Section 7 / Figure 9 — periodic sensing case study (P_sleep = 3.5 mW)");
    for s in &series {
        let m = &s.measurement;
        println!("\n{}:", s.benchmark);
        println!(
            "  E0 = {:.4} mJ, T_A = {:.4} s, k_e = {:.3}, k_t = {:.3}",
            m.base_energy_mj,
            m.base_time_s,
            m.k_e(),
            m.k_t()
        );
        println!(
            "  battery-life extension at the shortest period: {:.1}%",
            (s.best_extension - 1.0) * 100.0
        );
        println!("  {:>12} {:>18}", "period T (s)", "energy after opt (%)");
        for (t, pct) in &s.series {
            println!("  {:>12.4} {:>18.1}", t, pct);
        }
    }

    println!("\n(For comparison, the paper's fdct measurement was E0 = 16.9 mJ, T_A = 1.18 s,");
    println!(" k_e = 0.825, k_t = 1.33, giving up to 25% period-energy saving and up to 32%");
    println!(" longer battery life.)");
}
