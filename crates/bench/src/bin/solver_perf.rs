//! Solver performance smoke: solve every BEEBS placement ILP with the
//! warm-started branch-and-bound and with cold per-node re-solves, sweep
//! every model over a RAM-budget grid chained vs cold-per-budget, print the
//! comparisons, and write the numbers to `BENCH_solver.json` so the
//! solver's perf trajectory can be tracked across commits.
//!
//! Exits nonzero when a solver acceptance check fails (objective mismatch
//! between warm and cold modes, warm-started nodes not pivoting strictly
//! less than cold solves, or a chained sweep not pivoting strictly less
//! than its cold per-budget counterpart); pass `--no-fail` to report
//! without failing (used by CI, where the numbers are informational).

use flashram_bench::{solver_perf, solver_perf_json, solver_sweep_perf};
use flashram_mcu::Board;
use flashram_minicc::OptLevel;

fn main() {
    let no_fail = std::env::args().any(|a| a == "--no-fail");
    let board = Board::stm32vldiscovery();
    let (rows, errors) = solver_perf(&board, OptLevel::O2);

    println!(
        "{:<16} {:>6} {:>5} {:>5} {:>5} | {:>6} {:>8} {:>9} {:>9} | {:>6} {:>8} {:>9}",
        "benchmark",
        "ram",
        "x_lim",
        "vars",
        "rows",
        "nodes",
        "pivots",
        "piv/warm",
        "warm ms",
        "nodes",
        "pivots",
        "cold ms"
    );
    let mut failures: Vec<String> = errors;
    for row in &rows {
        let per_warm = row.warm.pivots_per_warm_node();
        println!(
            "{:<16} {:>6} {:>5} {:>5} {:>5} | {:>6} {:>8} {:>9} {:>9.2} | {:>6} {:>8} {:>9.2}",
            row.benchmark,
            row.r_spare,
            row.x_limit,
            row.vars,
            row.constraints,
            row.warm.stats.nodes_explored,
            row.warm.stats.lp_pivots,
            per_warm.map_or_else(|| "-".to_string(), |p| format!("{p:.1}")),
            row.warm.wall_ms,
            row.cold.stats.nodes_explored,
            row.cold.stats.lp_pivots,
            row.cold.wall_ms,
        );
        for (label, numbers) in [("warm", &row.warm), ("cold", &row.cold)] {
            if numbers.stats.budget_exhausted || numbers.stats.lp_iteration_limited > 0 {
                failures.push(format!(
                    "{} ({label}): incumbent not proven optimal \
                     (budget_exhausted={}, lp_iteration_limited={})",
                    row.benchmark,
                    numbers.stats.budget_exhausted,
                    numbers.stats.lp_iteration_limited
                ));
            }
        }
        if row.objective_delta() > 1e-6 {
            failures.push(format!(
                "{}: warm objective {} differs from cold {}",
                row.benchmark, row.warm.objective, row.cold.objective
            ));
        }
        if let (Some(warm), Some(cold)) = (per_warm, row.cold.pivots_per_cold_node()) {
            if warm >= cold {
                failures.push(format!(
                    "{}: warm-started nodes pivot {warm:.2}×/node, not strictly \
                     fewer than cold {cold:.2}×/node",
                    row.benchmark
                ));
            }
        }
    }

    let total_warm: usize = rows.iter().map(|r| r.warm.stats.lp_pivots).sum();
    let total_cold: usize = rows.iter().map(|r| r.cold.stats.lp_pivots).sum();
    println!("total LP pivots: warm-started {total_warm}, cold {total_cold}");

    // The frontier-engine comparison: whole constraint sweeps (both
    // Figure 6 axes) chained on one session vs solved cold per point.
    let (sweep_rows, sweep_errors) = solver_sweep_perf(&board, OptLevel::O2);
    failures.extend(sweep_errors);
    println!();
    println!(
        "{:<16} {:>5} {:>4} | {:>8} {:>8} {:>6} {:>9} | {:>8} {:>8} {:>6} {:>9}",
        "sweep",
        "axis",
        "pts",
        "pivots",
        "root piv",
        "nodes",
        "warm ms",
        "pivots",
        "root piv",
        "nodes",
        "cold ms"
    );
    for row in &sweep_rows {
        println!(
            "{:<16} {:>5} {:>4} | {:>8} {:>8} {:>6} {:>9.2} | {:>8} {:>8} {:>6} {:>9.2}",
            row.benchmark,
            row.axis,
            row.points,
            row.warm.lp_pivots,
            row.warm.root_pivots,
            row.warm.nodes,
            row.warm.wall_ms,
            row.cold.lp_pivots,
            row.cold.root_pivots,
            row.cold.nodes,
            row.cold.wall_ms,
        );
        if !row.proven {
            // Truncated searches may return different (both heuristic)
            // incumbents and incomparable trees; report, don't fail.
            eprintln!(
                "note: {} {} sweep had node-budget-truncated points; \
                 strict checks skipped",
                row.benchmark, row.axis
            );
            continue;
        }
        if row.max_objective_delta > 1e-6 {
            failures.push(format!(
                "{} ({} sweep): chained objective drifts {:.2e} from cold \
                 per-point solves",
                row.benchmark, row.axis, row.max_objective_delta
            ));
        }
        if row.warm.root_pivots >= row.cold.root_pivots {
            failures.push(format!(
                "{} ({} sweep): chained roots spent {} pivots, not strictly \
                 fewer than the {} of cold roots",
                row.benchmark, row.axis, row.warm.root_pivots, row.cold.root_pivots
            ));
        }
        // Per-kernel total-pivot regression check: on proven rows a chained
        // sweep must never pivot more than the cold per-point baseline.
        if row.warm.lp_pivots > row.cold.lp_pivots {
            failures.push(format!(
                "{} ({} sweep): chained sweep spent {} total pivots, more than \
                 the {} of cold per-point solves",
                row.benchmark, row.axis, row.warm.lp_pivots, row.cold.lp_pivots
            ));
        }
    }
    let sweep_warm: usize = sweep_rows.iter().map(|r| r.warm.lp_pivots).sum();
    let sweep_cold: usize = sweep_rows.iter().map(|r| r.cold.lp_pivots).sum();
    let root_warm: usize = sweep_rows.iter().map(|r| r.warm.root_pivots).sum();
    let root_cold: usize = sweep_rows.iter().map(|r| r.cold.root_pivots).sum();
    println!(
        "total sweep LP pivots: chained {sweep_warm} ({root_warm} in roots), \
         cold per-point {sweep_cold} ({root_cold} in roots)"
    );
    // The aggregate acceptance check covers proven rows only, consistent
    // with the per-row policy: truncated searches have incomparable trees.
    let proven = |rows: &[flashram_bench::SweepPerfRow]| -> (usize, usize) {
        rows.iter().filter(|r| r.proven).fold((0, 0), |(w, c), r| {
            (w + r.warm.lp_pivots, c + r.cold.lp_pivots)
        })
    };
    let (proven_warm, proven_cold) = proven(&sweep_rows);
    if proven_warm >= proven_cold {
        failures.push(format!(
            "aggregate chained sweeps spent {proven_warm} pivots over proven \
             rows, not fewer than the {proven_cold} of cold per-point solves"
        ));
    }

    let json = solver_perf_json(&rows, &sweep_rows);
    let path = "BENCH_solver.json";
    std::fs::write(path, json).expect("write BENCH_solver.json");
    println!("wrote {path}");

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        if !no_fail {
            std::process::exit(1);
        }
        eprintln!("(--no-fail: reporting only)");
    }
}
