//! Solver performance smoke: solve every BEEBS placement ILP with the
//! warm-started branch-and-bound and with cold per-node re-solves, print the
//! comparison, and write the numbers to `BENCH_solver.json` so the solver's
//! perf trajectory can be tracked across commits.
//!
//! Exits nonzero when a solver acceptance check fails (objective mismatch
//! between the two modes, or warm-started nodes not pivoting strictly less
//! than cold solves); pass `--no-fail` to report without failing (used by
//! CI, where the numbers are informational).

use flashram_bench::{solver_perf, solver_perf_json};
use flashram_mcu::Board;
use flashram_minicc::OptLevel;

fn main() {
    let no_fail = std::env::args().any(|a| a == "--no-fail");
    let board = Board::stm32vldiscovery();
    let (rows, errors) = solver_perf(&board, OptLevel::O2);

    println!(
        "{:<16} {:>6} {:>5} {:>5} {:>5} | {:>6} {:>8} {:>9} {:>9} | {:>6} {:>8} {:>9}",
        "benchmark",
        "ram",
        "x_lim",
        "vars",
        "rows",
        "nodes",
        "pivots",
        "piv/warm",
        "warm ms",
        "nodes",
        "pivots",
        "cold ms"
    );
    let mut failures: Vec<String> = errors;
    for row in &rows {
        let per_warm = row.warm.pivots_per_warm_node();
        println!(
            "{:<16} {:>6} {:>5} {:>5} {:>5} | {:>6} {:>8} {:>9} {:>9.2} | {:>6} {:>8} {:>9.2}",
            row.benchmark,
            row.r_spare,
            row.x_limit,
            row.vars,
            row.constraints,
            row.warm.stats.nodes_explored,
            row.warm.stats.lp_pivots,
            per_warm.map_or_else(|| "-".to_string(), |p| format!("{p:.1}")),
            row.warm.wall_ms,
            row.cold.stats.nodes_explored,
            row.cold.stats.lp_pivots,
            row.cold.wall_ms,
        );
        for (label, numbers) in [("warm", &row.warm), ("cold", &row.cold)] {
            if numbers.stats.budget_exhausted || numbers.stats.lp_iteration_limited > 0 {
                failures.push(format!(
                    "{} ({label}): incumbent not proven optimal \
                     (budget_exhausted={}, lp_iteration_limited={})",
                    row.benchmark,
                    numbers.stats.budget_exhausted,
                    numbers.stats.lp_iteration_limited
                ));
            }
        }
        if row.objective_delta() > 1e-6 {
            failures.push(format!(
                "{}: warm objective {} differs from cold {}",
                row.benchmark, row.warm.objective, row.cold.objective
            ));
        }
        if let (Some(warm), Some(cold)) = (per_warm, row.cold.pivots_per_cold_node()) {
            if warm >= cold {
                failures.push(format!(
                    "{}: warm-started nodes pivot {warm:.2}×/node, not strictly \
                     fewer than cold {cold:.2}×/node",
                    row.benchmark
                ));
            }
        }
    }

    let total_warm: usize = rows.iter().map(|r| r.warm.stats.lp_pivots).sum();
    let total_cold: usize = rows.iter().map(|r| r.cold.stats.lp_pivots).sum();
    println!("total LP pivots: warm-started {total_warm}, cold {total_cold}");

    let json = solver_perf_json(&rows);
    let path = "BENCH_solver.json";
    std::fs::write(path, json).expect("write BENCH_solver.json");
    println!("wrote {path}");

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        if !no_fail {
            std::process::exit(1);
        }
        eprintln!("(--no-fail: reporting only)");
    }
}
