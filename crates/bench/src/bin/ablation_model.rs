//! Ablation study of the cost model's two refinements over the prior
//! scratchpad-allocation formulation (Steinke et al.), as called out in
//! Section 4 of the paper:
//!
//! 1. using **cycle counts** rather than instruction counts as the cost
//!    metric, and
//! 2. modelling the **instrumentation cost** of memory-crossing branches,
//!    which is what makes the solver "cluster" adjacent blocks into RAM.
//!
//! Each variant drives the same solver and transformation; only the model
//! parameters change.  The measured outcome shows what each refinement buys.

use flashram_bench::model_ablation;
use flashram_mcu::Board;
use flashram_minicc::OptLevel;

fn main() {
    let board = Board::stm32vldiscovery();
    let names = ["int_matmult", "fdct", "sha", "dijkstra", "crc32"];
    let rows = model_ablation(&board, &names, OptLevel::O2, 1.5);

    println!("Model ablation at O2 (measured % change vs all-in-flash baseline)");
    println!(
        "{:<16} {:>22} {:>22} {:>22}",
        "", "full model", "instruction-count C_b", "no instrumentation cost"
    );
    println!(
        "{:<16} {:>10} {:>11} {:>10} {:>11} {:>10} {:>11}",
        "benchmark", "energy %", "time %", "energy %", "time %", "energy %", "time %"
    );
    for r in &rows {
        println!(
            "{:<16} {:>10.1} {:>11.1} {:>10.1} {:>11.1} {:>10.1} {:>11.1}",
            r.benchmark,
            r.full.energy_pct,
            r.full.time_pct,
            r.instruction_metric.energy_pct,
            r.instruction_metric.time_pct,
            r.no_instrumentation_cost.energy_pct,
            r.no_instrumentation_cost.time_pct,
        );
    }
    println!();
    println!("the full model should match or beat both ablated variants on energy while keeping");
    println!("the time overhead within the configured X_limit; ignoring instrumentation costs in");
    println!(
        "particular tends to scatter isolated blocks into RAM and pay for it in extra cycles."
    );
}
