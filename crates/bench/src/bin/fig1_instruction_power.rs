//! Regenerates Figure 1: average power per instruction type when executing
//! from flash and from RAM.  The report text lives in
//! [`flashram_bench::figure1_text`], shared with the figure golden test.

use flashram_bench::figure1_text;
use flashram_mcu::Board;

fn main() {
    let board = Board::stm32vldiscovery();
    print!("{}", figure1_text(&board));
}
