//! Regenerates Figure 1: average power per instruction type when executing
//! from flash and from RAM.

use flashram_bench::figure1_series;
use flashram_mcu::Board;

fn main() {
    let board = Board::stm32vldiscovery();
    let series = figure1_series(&board);
    println!("Figure 1 — average power per instruction type (mW)");
    println!("{:<14} {:>10} {:>10}", "instruction", "flash", "ram");
    for row in &series {
        println!(
            "{:<14} {:>10.2} {:>10.2}",
            row.label, row.flash_mw, row.ram_mw
        );
    }
    let avg_gap: f64 = series
        .iter()
        .filter(|r| r.label != "flash load")
        .map(|r| r.flash_mw - r.ram_mw)
        .sum::<f64>()
        / (series.len() - 1) as f64;
    println!("\naverage flash-RAM power gap (excluding flash-load): {avg_gap:.2} mW");
}
