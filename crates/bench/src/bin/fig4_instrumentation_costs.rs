//! Regenerates the Figure 4 table: byte and cycle costs of the direct
//! terminators and of the long-range indirect sequences the transformation
//! substitutes.
//!
//! The printed text is produced by [`flashram_bench::figure4_text`] and is
//! asserted against the committed golden in `tests/figure_goldens.rs` —
//! change both together.

use flashram_bench::figure4_text;

fn main() {
    print!("{}", figure4_text());
}
