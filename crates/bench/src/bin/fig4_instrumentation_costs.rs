//! Regenerates the Figure 4 table: byte and cycle costs of the direct
//! terminators and of the long-range indirect sequences the transformation
//! substitutes.

use flashram_bench::figure4_table;

fn main() {
    println!("Figure 4 — instrumentation sequences and their costs");
    println!(
        "{:<26} {:>12} {:>12} {:>14} {:>14} {:>8} {:>8}",
        "terminator", "bytes", "cycles", "instr bytes", "instr cycles", "K_b", "T_b"
    );
    for row in figure4_table() {
        println!(
            "{:<26} {:>12} {:>12} {:>14} {:>14} {:>8} {:>8}",
            row.kind,
            row.direct_bytes,
            row.direct_cycles,
            row.indirect_bytes,
            row.indirect_cycles,
            row.indirect_bytes - row.direct_bytes,
            row.indirect_cycles - row.direct_cycles,
        );
    }
}
