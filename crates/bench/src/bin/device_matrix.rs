//! Cross-device placement matrix: enumerate the exact energy/RAM frontier
//! of every BEEBS kernel on every entry of the device database, print the
//! per-(kernel, device) optimal placements and the merged device-dominant
//! Pareto sets, and write the numbers to `BENCH_device.json` so the
//! cross-device trajectory can be tracked across commits.
//!
//! Exits nonzero when an acceptance check fails (a kernel not fitting a
//! device, a truncated staircase, or the wait-state part picking the same
//! optimal block set as the zero-wait reference part on every kernel);
//! pass `--no-fail` to report without failing (used by CI, where the
//! numbers are informational).  Positional arguments restrict the run to
//! the named kernels (used to regenerate the `device_matrix` golden).

use flashram_bench::{device_matrix, device_matrix_json, device_matrix_text};
use flashram_minicc::OptLevel;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let no_fail = args.iter().any(|a| a == "--no-fail");
    let names: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let (kernels, failures) = device_matrix(&names, OptLevel::O2, 1.5);

    print!("{}", device_matrix_text(&kernels));

    let diverging: Vec<&str> = kernels
        .iter()
        .filter(|k| k.f401_diverges())
        .map(|k| k.benchmark)
        .collect();
    println!(
        "kernels where stm32f401 wait states shift the optimal block set \
         vs stm32f100: {}/{} ({})",
        diverging.len(),
        kernels.len(),
        diverging.join(", ")
    );

    let json = device_matrix_json(&kernels, &failures);
    let path = "BENCH_device.json";
    std::fs::write(path, json).expect("write BENCH_device.json");
    println!("wrote {path}");

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        if !no_fail {
            std::process::exit(1);
        }
        eprintln!("(--no-fail: reporting only)");
    }
}
