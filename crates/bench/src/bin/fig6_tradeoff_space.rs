//! Regenerates Figure 6: the trade-off space of possible placements for
//! `int_matmult` and `fdct`, with the solver's trajectory as the RAM and
//! time constraints are relaxed and the exact Pareto staircase of the
//! energy/RAM trade-off.
//!
//! All solver samples run on the frontier sweep engine
//! (`flashram_core::PlacementSession`): one model per benchmark, every
//! sweep point warm-started from the previous one.  The printed report is
//! [`flashram_bench::figure6_text`], which the figure-regeneration golden
//! test asserts verbatim (`tests/figure_goldens.rs`).

use flashram_bench::figure6_text;
use flashram_mcu::Board;
use flashram_minicc::OptLevel;

fn main() {
    let board = Board::stm32vldiscovery();
    print!(
        "{}",
        figure6_text(&board, &["int_matmult", "fdct"], OptLevel::O2, 10)
    );
}
