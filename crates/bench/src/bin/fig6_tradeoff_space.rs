//! Regenerates Figure 6: the trade-off space of possible placements for
//! `int_matmult` and `fdct`, with the solver's trajectory as the RAM and
//! time constraints are relaxed.

use flashram_beebs::Benchmark;
use flashram_bench::tradeoff_space;
use flashram_mcu::Board;
use flashram_minicc::OptLevel;

fn main() {
    let board = Board::stm32vldiscovery();
    for name in ["int_matmult", "fdct"] {
        let bench = Benchmark::by_name(name).expect("known benchmark");
        let space = tradeoff_space(&board, &bench, OptLevel::O2, 10);
        println!("Figure 6 — placement trade-off space for {name} (model units)");
        println!(
            "  {} enumerated placements of the 10 hottest blocks",
            space.points.len()
        );
        let min_e = space
            .points
            .iter()
            .map(|p| p.energy)
            .fold(f64::INFINITY, f64::min);
        let max_e = space.points.iter().map(|p| p.energy).fold(0.0f64, f64::max);
        let min_c = space
            .points
            .iter()
            .map(|p| p.cycles)
            .fold(f64::INFINITY, f64::min);
        let max_c = space.points.iter().map(|p| p.cycles).fold(0.0f64, f64::max);
        println!("  energy range: {min_e:.3e} .. {max_e:.3e}");
        println!("  cycle range:  {min_c:.3e} .. {max_c:.3e}");
        println!(
            "  all blocks in flash: energy {:.3e}, cycles {:.3e}",
            space.baseline.energy, space.baseline.cycles
        );

        println!("  constraining RAM (X_limit relaxed):");
        println!(
            "    {:>10} {:>14} {:>14} {:>10}",
            "R_spare", "energy", "cycles", "ram bytes"
        );
        for (budget, p) in &space.ram_sweep {
            println!(
                "    {:>10} {:>14.4e} {:>14.4e} {:>10}",
                budget, p.energy, p.cycles, p.ram_bytes
            );
        }
        println!("  constraining time (R_spare relaxed):");
        println!(
            "    {:>10} {:>14} {:>14} {:>10}",
            "X_limit", "energy", "cycles", "ram bytes"
        );
        for (x, p) in &space.time_sweep {
            println!(
                "    {:>10.2} {:>14.4e} {:>14.4e} {:>10}",
                x, p.energy, p.cycles, p.ram_bytes
            );
        }
        println!();
    }
}
