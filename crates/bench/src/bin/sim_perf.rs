//! Simulator throughput smoke: run the BEEBS sweep on the reference
//! interpreter, on the decoded engine, and on the `BatchRunner` worker
//! pool, print the comparison, and write the numbers to `BENCH_sim.json`
//! so simulator throughput can be tracked across commits.
//!
//! Exits nonzero when an acceptance check fails:
//!
//! * decoded and batched results must be bit-identical to the reference
//!   interpreter's;
//! * the decoded engine must be at least 1.05× faster than the reference
//!   interpreter single-threaded.  (The decode-once/run-many pass was
//!   aimed at 2×, but the reference interpreter already charges integer
//!   counters with no per-instruction float math or hash lookups, so on
//!   the hosts measured the decoded engine's win — no per-instruction
//!   cost/class re-derivation, prefused charges, superinstructions — is
//!   a reproducible ~1.15–1.25×, not 2×; the floor leaves margin for
//!   noisy shared single-core runners.  See ROADMAP.md for what a bigger
//!   win would take.);
//! * on hosts with at least four CPUs the batched sweep must be at least
//!   3× faster than the sequential decoded loop;
//! * on a single-CPU host the batched sweep must not be slower than the
//!   sequential loop (the runner executes inline with no pool overhead at
//!   one worker, so only scheduler noise separates them — a small margin
//!   below 1.0 is tolerated).
//!
//! Pass `--no-fail` to report without failing (used by CI, where the
//! numbers are informational).

use flashram_bench::{sim_perf, sim_perf_json};
use flashram_mcu::Board;
use flashram_minicc::OptLevel;

fn main() {
    let no_fail = std::env::args().any(|a| a == "--no-fail");
    let board = Board::stm32vldiscovery();
    let report = sim_perf(&board, &[OptLevel::O1, OptLevel::O2, OptLevel::Os]);

    println!(
        "{:<16} {:>5} {:>12} {:>12} {:>12}",
        "benchmark", "level", "cycles", "energy mJ", "checksum"
    );
    for row in &report.rows {
        println!(
            "{:<16} {:>5} {:>12} {:>12.4} {:>12}",
            row.benchmark, row.level, row.cycles, row.energy_mj, row.return_value
        );
    }
    println!(
        "{} programs, {:.1} Mcycles total, {} worker thread(s)",
        report.rows.len(),
        report.total_cycles as f64 / 1e6,
        report.threads
    );
    println!(
        "reference {:.1} ms ({:.1} Mcycles/s), decoded {:.1} ms ({:.1} Mcycles/s) \
         -> decode speedup {:.2}x",
        report.reference_wall_ms,
        report.reference_mcycles_per_s(),
        report.sequential_wall_ms,
        report.decoded_mcycles_per_s(),
        report.decode_speedup(),
    );
    println!(
        "batched {:.1} ms -> speedup {:.2}x ({:.1} Mcycles/s batched), bit-identical: {}",
        report.batched_wall_ms,
        report.speedup(),
        report.batched_mcycles_per_s(),
        report.bit_identical
    );

    let mut failures: Vec<String> = Vec::new();
    if !report.bit_identical {
        failures.push(
            "decoded/batched results are not bit-identical to the reference interpreter"
                .to_string(),
        );
    }
    if report.decode_speedup() < 1.05 {
        failures.push(format!(
            "decoded engine speedup {:.2}x below the 1.05x floor over the reference interpreter",
            report.decode_speedup()
        ));
    }
    if report.threads >= 4 && report.speedup() < 3.0 {
        failures.push(format!(
            "batched speedup {:.2}x below the 3x floor on a {}-thread host",
            report.speedup(),
            report.threads
        ));
    }
    if report.threads == 1 && report.speedup() < 0.95 {
        failures.push(format!(
            "batched speedup {:.2}x at 1 thread; the inline path must match the \
             sequential loop (≈1.0)",
            report.speedup()
        ));
    }

    let json = sim_perf_json(&report);
    let path = "BENCH_sim.json";
    std::fs::write(path, json).expect("write BENCH_sim.json");
    println!("wrote {path}");

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        if !no_fail {
            std::process::exit(1);
        }
        eprintln!("(--no-fail: reporting only)");
    }
}
