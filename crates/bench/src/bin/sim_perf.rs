//! Simulator throughput smoke: run the BEEBS sweep one-by-one and on the
//! `BatchRunner` worker pool, print the comparison, and write the numbers to
//! `BENCH_sim.json` so simulator throughput can be tracked across commits.
//!
//! Exits nonzero when an acceptance check fails: batched results must be
//! bit-identical to sequential ones, and on hosts with at least four CPUs
//! the batched sweep must be at least 3× faster than the sequential loop
//! (on smaller hosts the speedup is reported but not enforced — a
//! single-core runner cannot exhibit parallel speedup).  Pass `--no-fail`
//! to report without failing (used by CI, where the numbers are
//! informational).

use flashram_bench::{sim_perf, sim_perf_json};
use flashram_mcu::Board;
use flashram_minicc::OptLevel;

fn main() {
    let no_fail = std::env::args().any(|a| a == "--no-fail");
    let board = Board::stm32vldiscovery();
    let report = sim_perf(&board, &[OptLevel::O1, OptLevel::O2, OptLevel::Os]);

    println!(
        "{:<16} {:>5} {:>12} {:>12} {:>12}",
        "benchmark", "level", "cycles", "energy mJ", "checksum"
    );
    for row in &report.rows {
        println!(
            "{:<16} {:>5} {:>12} {:>12.4} {:>12}",
            row.benchmark, row.level, row.cycles, row.energy_mj, row.return_value
        );
    }
    println!(
        "{} programs, {:.1} Mcycles total, {} worker thread(s)",
        report.rows.len(),
        report.total_cycles as f64 / 1e6,
        report.threads
    );
    println!(
        "sequential {:.1} ms, batched {:.1} ms -> speedup {:.2}x \
         ({:.1} Mcycles/s batched), bit-identical: {}",
        report.sequential_wall_ms,
        report.batched_wall_ms,
        report.speedup(),
        report.batched_mcycles_per_s(),
        report.bit_identical
    );

    let mut failures: Vec<String> = Vec::new();
    if !report.bit_identical {
        failures.push("batched results are not bit-identical to sequential runs".to_string());
    }
    if report.threads >= 4 && report.speedup() < 3.0 {
        failures.push(format!(
            "batched speedup {:.2}x below the 3x floor on a {}-thread host",
            report.speedup(),
            report.threads
        ));
    }

    let json = sim_perf_json(&report);
    let path = "BENCH_sim.json";
    std::fs::write(path, json).expect("write BENCH_sim.json");
    println!("wrote {path}");

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        if !no_fail {
            std::process::exit(1);
        }
        eprintln!("(--no-fail: reporting only)");
    }
}
