//! Simulator throughput smoke: run the BEEBS sweep on every execution
//! engine — the IR-walking reference interpreter, the decoded engine, the
//! threaded dispatcher, the tiered superblock engine — and on the
//! `BatchRunner` worker pool, print the comparison, and write the numbers
//! to `BENCH_sim.json` so simulator throughput can be tracked across
//! commits.
//!
//! Exits nonzero when an acceptance check fails:
//!
//! * every engine's results must be bit-identical to the reference
//!   interpreter's, and batched results bit-identical to sequential ones;
//! * the decoded engine must be at least 1.05× faster than the reference
//!   interpreter single-threaded (the PR-4 floor; with the tuned release
//!   profile its measured win is ~1.7×);
//! * the best engine must be at least 1.4× faster than the reference
//!   interpreter single-threaded.  The aspirational target for the tiered
//!   engines was 2×; the measured best (usually the threaded dispatcher,
//!   at 1.7–1.9× on the single-core bench host) falls short because
//!   per-op semantic work — the bounds-checked register file, the memory
//!   model, and per-bucket energy accounting, all under
//!   `forbid(unsafe_code)` — dominates ~85% of runtime, so even zero-cost
//!   dispatch caps the win well below 2×.  The blocking floor is set at
//!   1.4× to stay noise-tolerant while still catching regressions to the
//!   old ~1.27× dispatch floor;
//! * the superblock tier must actually engage on the sweep (superblocks
//!   built and iterations retired inside them);
//! * on hosts with at least four CPUs the batched sweep must be at least
//!   3× faster than the sequential decoded loop;
//! * on a single-CPU host the batched sweep must not be slower than the
//!   sequential loop (the runner executes inline with no pool overhead at
//!   one worker, so only scheduler noise separates them — a small margin
//!   below 1.0 is tolerated).
//!
//! Pass `--no-fail` to report without failing (used by CI, where the
//! numbers are informational).

use flashram_bench::{sim_perf, sim_perf_json};
use flashram_mcu::Board;
use flashram_minicc::OptLevel;

fn main() {
    let no_fail = std::env::args().any(|a| a == "--no-fail");
    let board = Board::stm32vldiscovery();
    let report = sim_perf(&board, &[OptLevel::O1, OptLevel::O2, OptLevel::Os]);

    // Per-kernel engine table: Mcycles/s on each engine, best-of-five.
    print!("{:<16} {:>5} {:>12}", "benchmark", "level", "cycles");
    for e in &report.engines {
        print!(" {:>11}", format!("{}", e.engine));
    }
    println!();
    for row in &report.rows {
        print!("{:<16} {:>5} {:>12}", row.benchmark, row.level, row.cycles);
        for e in 0..report.engines.len() {
            print!(" {:>11.1}", row.engine_mcycles_per_s(e));
        }
        println!();
    }

    println!(
        "{} programs, {:.1} Mcycles total, {} worker thread(s)",
        report.rows.len(),
        report.total_cycles as f64 / 1e6,
        report.threads
    );
    for (i, e) in report.engines.iter().enumerate() {
        println!(
            "{:<11} {:>8.1} ms  {:>8.1} Mcycles/s  {:>6.2}x vs reference  bit-identical: {}",
            format!("{}", e.engine),
            e.wall_ms,
            report.engine_mcycles_per_s(i),
            report.engine_speedup(i),
            e.bit_identical
        );
    }
    let t = &report.tier;
    println!(
        "tier: {} hot heads, {} superblocks built ({} rejected), \
         {} entries, {} iterations, {} ops in superblocks vs {} interpreted",
        t.hot_heads,
        t.superblocks_built,
        t.superblocks_rejected,
        t.superblock_entries,
        t.superblock_iterations,
        t.superblock_ops,
        t.interpreted_ops
    );
    let (best, best_speedup) = report.best_engine();
    println!(
        "best engine: {} at {:.2}x over the reference interpreter",
        report.engines[best].engine, best_speedup
    );
    println!(
        "batched {:.1} ms -> speedup {:.2}x ({:.1} Mcycles/s batched), bit-identical: {}",
        report.batched_wall_ms,
        report.speedup(),
        report.batched_mcycles_per_s(),
        report.bit_identical
    );

    let mut failures: Vec<String> = Vec::new();
    if !report.bit_identical {
        for e in &report.engines {
            if !e.bit_identical {
                failures.push(format!(
                    "{} results are not bit-identical to the reference interpreter",
                    e.engine
                ));
            }
        }
        if report.engines.iter().all(|e| e.bit_identical) {
            failures.push("batched results are not bit-identical to sequential ones".to_string());
        }
    }
    if report.decode_speedup() < 1.05 {
        failures.push(format!(
            "decoded engine speedup {:.2}x below the 1.05x floor over the reference interpreter",
            report.decode_speedup()
        ));
    }
    if best_speedup < 1.4 {
        failures.push(format!(
            "best engine ({}) speedup {:.2}x below the 1.4x dispatch floor \
             (aspirational target 2x; see module doc for the measured ceiling)",
            report.engines[best].engine, best_speedup
        ));
    }
    if t.superblocks_built == 0 || t.superblock_iterations == 0 {
        failures.push("superblock tier never engaged on the BEEBS sweep".to_string());
    }
    if report.threads >= 4 && report.speedup() < 3.0 {
        failures.push(format!(
            "batched speedup {:.2}x below the 3x floor on a {}-thread host",
            report.speedup(),
            report.threads
        ));
    }
    if report.threads == 1 && report.speedup() < 0.95 {
        failures.push(format!(
            "batched speedup {:.2}x at 1 thread; the inline path must match the \
             sequential loop (≈1.0)",
            report.speedup()
        ));
    }

    let json = sim_perf_json(&report);
    let path = "BENCH_sim.json";
    std::fs::write(path, json).expect("write BENCH_sim.json");
    println!("wrote {path}");

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        if !no_fail {
            std::process::exit(1);
        }
        eprintln!("(--no-fail: reporting only)");
    }
}
