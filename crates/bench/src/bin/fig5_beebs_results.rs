//! Regenerates Figure 5: per-benchmark percentage change in energy and
//! execution time at O2 and Os, with both the static frequency estimate and
//! actual (profiled) frequencies.

use flashram_bench::{beebs_sweep, figure5_averages_text};
use flashram_mcu::Board;
use flashram_minicc::OptLevel;

fn main() {
    let board = Board::stm32vldiscovery();
    let results = beebs_sweep(&board, &[OptLevel::O2, OptLevel::Os], 1.5);
    println!("Figure 5 — optimization results on the benchmark suite (percent change vs baseline)");
    println!(
        "{:<16} {:>5} {:>10} {:>10} {:>10} {:>14} {:>8}",
        "benchmark", "level", "energy %", "time %", "power %", "energy%(prof)", "blocks"
    );
    for r in &results {
        println!(
            "{:<16} {:>5} {:>10.1} {:>10.1} {:>10.1} {:>14.1} {:>8}",
            r.benchmark,
            r.level.to_string(),
            r.energy_change_pct(),
            r.time_change_pct(),
            r.power_change_pct(),
            r.profiled_energy_change_pct(),
            r.blocks_in_ram
        );
    }
    let best_energy = results
        .iter()
        .min_by(|a, b| a.energy_change_pct().total_cmp(&b.energy_change_pct()))
        .unwrap();
    let best_power = results
        .iter()
        .min_by(|a, b| a.power_change_pct().total_cmp(&b.power_change_pct()))
        .unwrap();
    println!(
        "\nlargest energy reduction: {:.1}% ({} at {})",
        -best_energy.energy_change_pct(),
        best_energy.benchmark,
        best_energy.level
    );
    println!(
        "largest power reduction:  {:.1}% ({} at {})",
        -best_power.power_change_pct(),
        best_power.benchmark,
        best_power.level
    );
    println!();
    print!("{}", figure5_averages_text(&results));
}
