//! The paper's future-work experiment: what happens when the optimization is
//! moved into the linker and can see *all* emitted code, including the
//! statically linked library routines it currently has to treat as opaque?
//!
//! The paper predicts that the library-bound benchmarks (`cubic`,
//! `float_matmult`) would then improve as well.  This binary runs both
//! variants on the library-heavy and the library-free benchmarks and prints
//! the comparison.

use flashram_bench::linker_mode_comparison;
use flashram_mcu::Board;
use flashram_minicc::OptLevel;

fn main() {
    let board = Board::stm32vldiscovery();
    let names = ["cubic", "float_matmult", "int_matmult", "fdct", "crc32"];
    let rows = linker_mode_comparison(&board, &names, OptLevel::O2, 1.5);

    println!("Future work — application-only vs whole-program (linker-level) placement at O2");
    println!(
        "{:<16} {:>14} {:>14} {:>14} {:>14} {:>16}",
        "benchmark",
        "energy% (app)",
        "energy% (whole)",
        "power% (app)",
        "power% (whole)",
        "extra RAM blocks"
    );
    for r in &rows {
        println!(
            "{:<16} {:>14.1} {:>14.1} {:>14.1} {:>14.1} {:>16}",
            r.benchmark,
            r.app_only_energy_pct,
            r.whole_program_energy_pct,
            r.app_only_power_pct,
            r.whole_program_power_pct,
            r.extra_blocks_in_ram,
        );
    }
    println!();
    println!("negative numbers are savings; the whole-program column should pull ahead on the");
    println!("library-bound benchmarks (cubic, float_matmult), which is exactly the improvement");
    println!("the paper's future-work section predicts for a linker-level implementation.");
}
