//! Regenerates the Section 6 headline averages: the mean change in energy,
//! power and execution time across all benchmarks and optimization levels
//! (the paper reports −7.7 % energy, −21.9 % power, +19.5 % time).

use flashram_bench::{averages, beebs_sweep};
use flashram_mcu::Board;
use flashram_minicc::OptLevel;

fn main() {
    let board = Board::stm32vldiscovery();
    let results = beebs_sweep(&board, &OptLevel::ALL, 1.5);
    println!("Section 6 — per-benchmark results across all optimization levels");
    println!(
        "{:<16} {:>5} {:>10} {:>10} {:>10}",
        "benchmark", "level", "energy %", "time %", "power %"
    );
    for r in &results {
        println!(
            "{:<16} {:>5} {:>10.1} {:>10.1} {:>10.1}",
            r.benchmark,
            r.level.to_string(),
            r.energy_change_pct(),
            r.time_change_pct(),
            r.power_change_pct()
        );
    }
    let avg = averages(&results);
    println!("\naverages over {} runs:", results.len());
    println!("  energy change: {:+.1}%   (paper: -7.7%)", avg.energy_pct);
    println!("  power change:  {:+.1}%   (paper: -21.9%)", avg.power_pct);
    println!("  time change:   {:+.1}%   (paper: +19.5%)", avg.time_pct);
}
