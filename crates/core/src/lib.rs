//! Energy-aware flash-to-RAM basic-block placement.
//!
//! This crate implements the primary contribution of Pallister, Eder and
//! Hollis, *Optimizing the flash-RAM energy trade-off in deeply embedded
//! systems* (CGO 2015): a post-compilation optimization that statically
//! moves carefully selected basic blocks from flash into the spare RAM of a
//! deeply embedded SoC, because executing from RAM draws significantly less
//! power than executing from flash.
//!
//! The pipeline mirrors the paper:
//!
//! 1. [`params`] extracts, for every basic block, its size `S_b`, cycle
//!    count `C_b`, execution frequency `F_b` (statically estimated from loop
//!    depth or measured by profiling), instrumentation costs `K_b`/`T_b` and
//!    RAM-contention penalty `L_b`;
//! 2. [`model`] builds the Section 4 integer linear program whose objective
//!    is total energy and whose constraints bound RAM usage (`R_spare`) and
//!    execution-time growth (`X_limit`);
//! 3. the solver from `flashram-ilp` picks the optimal block set `R`;
//! 4. [`transform`] relocates those blocks to the RAM-loaded section and
//!    rewrites every flash↔RAM crossing branch into the long-range indirect
//!    forms of Figure 4;
//! 5. [`case_study`] evaluates the result in the Section 7 periodic-sensing
//!    scenario, where lower power plus longer runtime still extends battery
//!    life.
//!
//! The constraint-space exploration behind Figure 6 has a dedicated
//! subsystem: [`frontier`] builds the model once per `(program, board,
//! scope)` in a [`PlacementSession`], re-solves sweep points by moving only
//! the budget rows' right-hand sides (chaining warm-started dual-simplex
//! roots), and enumerates the exact energy/RAM Pareto staircase.
//!
//! # Example
//!
//! ```
//! use flashram_core::{RamOptimizer, OptimizerConfig};
//! use flashram_minicc::{compile_program, OptLevel, SourceUnit};
//! use flashram_mcu::Board;
//!
//! let program = compile_program(
//!     &[SourceUnit::application(
//!         "int main() { int s = 0; for (int i = 0; i < 500; i++) { s += i; } return s; }",
//!     )],
//!     OptLevel::O2,
//! )?;
//! let board = Board::stm32vldiscovery();
//! let placement = RamOptimizer::new().optimize(&program, &board).unwrap();
//! let before = board.run(&program).unwrap();
//! let after = board.run(&placement.program).unwrap();
//! assert_eq!(before.return_value, after.return_value);
//! assert!(after.avg_power_mw <= before.avg_power_mw);
//! # Ok::<(), flashram_minicc::CompileError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod case_study;
pub mod frontier;
pub mod model;
pub mod optimizer;
pub mod params;
pub mod report;
pub mod transform;

pub use case_study::{measure_case_study, period_sweep, CaseStudyMeasurement};
pub use frontier::{
    device_dominant_pareto, DegradedPoint, DeviceFrontier, DeviceMatrix, DevicePoint, Frontier,
    PlacementSession, PointResolution, SweepPoint, SweepStats, ValidatedPoint,
};
pub use model::{evaluate_placement, ModelConfig, PlacementEstimate, PlacementModel};
pub use optimizer::{OptimizeError, OptimizerConfig, Placement, RamOptimizer, Solver};
pub use params::{
    extract_params, extract_params_for_timing, extract_params_scoped, BlockParams, FrequencySource,
    PlacementScope, ProgramParams,
};
pub use report::{BlockReport, FunctionReport, PlacementReport};
pub use transform::{
    apply_placement, apply_placement_scoped, instrumented_blocks, relocated_code_bytes,
};
