//! The code transformation (Section 5).
//!
//! Once the solver has chosen the set `R` of blocks to live in RAM, the
//! transformation (1) retargets those blocks to the RAM-loaded section so
//! the startup code will copy them there, and (2) rewrites the terminator of
//! every block that has a successor in the other memory into the long-range
//! indirect form of Figure 4.  Nothing else about the code changes, which is
//! why the optimization is safe to run at the very end of compilation.

use std::collections::BTreeSet;

use flashram_ir::{BlockRef, MachineProgram, Section};

use crate::params::PlacementScope;

/// Apply a placement to a program, returning the transformed copy.
///
/// Blocks of library functions are never moved even if listed (defensive
/// guard mirroring the paper's limitation).  Use [`apply_placement_scoped`]
/// with [`PlacementScope::WholeProgram`] for the linker-level variant that
/// may relocate library code as well.
pub fn apply_placement(program: &MachineProgram, in_ram: &[BlockRef]) -> MachineProgram {
    apply_placement_scoped(program, in_ram, PlacementScope::ApplicationOnly)
}

/// Apply a placement under an explicit [`PlacementScope`].
///
/// With [`PlacementScope::ApplicationOnly`] any listed library block is
/// silently ignored; with [`PlacementScope::WholeProgram`] every listed block
/// is relocated.
pub fn apply_placement_scoped(
    program: &MachineProgram,
    in_ram: &[BlockRef],
    scope: PlacementScope,
) -> MachineProgram {
    let mut out = program.clone();
    let ram_set: BTreeSet<BlockRef> = in_ram
        .iter()
        .copied()
        .filter(|r| {
            scope == PlacementScope::WholeProgram || !program.functions[r.func.index()].is_library
        })
        .collect();

    // 1. Retarget sections.
    for r in program.block_refs() {
        let section = if ram_set.contains(&r) {
            Section::Ram
        } else {
            Section::Flash
        };
        out.block_mut(r).section = section;
    }

    // 2. Instrument blocks whose successors live in the other memory.
    for r in program.block_refs() {
        let my_section = out.block(r).section;
        let needs_instr = out
            .block(r)
            .term
            .successors()
            .iter()
            .any(|s| out.functions[r.func.index()].blocks[s.index()].section != my_section);
        if needs_instr {
            let block = out.block_mut(r);
            block.term = block.term.clone().into_indirect();
        }
    }
    out
}

/// The set of blocks whose terminators were instrumented by
/// [`apply_placement`] (the paper's set `I`), derived from a transformed
/// program.
pub fn instrumented_blocks(program: &MachineProgram) -> Vec<BlockRef> {
    program
        .block_refs()
        .into_iter()
        .filter(|r| program.block(*r).term.is_indirect())
        .collect()
}

/// Bytes of RAM consumed by relocated code in a transformed program.
pub fn relocated_code_bytes(program: &MachineProgram) -> u32 {
    program.ram_code_size()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashram_minicc::{compile_program, OptLevel, SourceUnit};

    const SRC: &str = "
        int work(int n) {
            int s = 0;
            for (int i = 0; i < n; i++) { s += i; }
            return s;
        }
        int main() { return work(100); }
    ";

    fn program() -> MachineProgram {
        compile_program(&[SourceUnit::application(SRC)], OptLevel::O1).unwrap()
    }

    #[test]
    fn placement_moves_blocks_and_instruments_edges() {
        let prog = program();
        let work = prog.function_index("work").unwrap();
        // Move one mid-function block (the loop body region) into RAM.
        let candidates = prog.optimizable_block_refs();
        let target = candidates
            .iter()
            .find(|r| r.func == work && r.block.index() == 1)
            .copied()
            .unwrap_or(candidates[0]);
        let out = apply_placement(&prog, &[target]);
        assert_eq!(out.block(target).section, Section::Ram);
        let instrumented = instrumented_blocks(&out);
        assert!(
            !instrumented.is_empty(),
            "an isolated RAM block must force instrumentation somewhere"
        );
        assert!(relocated_code_bytes(&out) >= out.block(target).size_bytes());
        // The original program is untouched.
        assert_eq!(prog.ram_code_size(), 0);
    }

    #[test]
    fn empty_placement_changes_nothing() {
        let prog = program();
        let out = apply_placement(&prog, &[]);
        assert_eq!(out, prog);
        assert!(instrumented_blocks(&out).is_empty());
    }

    #[test]
    fn whole_function_in_ram_needs_no_internal_instrumentation() {
        let prog = program();
        let work = prog.function_index("work").unwrap();
        let all_work: Vec<BlockRef> = prog
            .optimizable_block_refs()
            .into_iter()
            .filter(|r| r.func == work)
            .collect();
        let out = apply_placement(&prog, &all_work);
        // Every block of `work` is in RAM, so only blocks with successors in
        // other functions (there are none — calls are not successors) need
        // instrumentation; internal edges must remain direct.
        for r in &all_work {
            let block = out.block(*r);
            assert_eq!(block.section, Section::Ram);
            assert!(
                !block.term.is_indirect(),
                "block {r} should not be instrumented when its whole function moved"
            );
        }
    }

    #[test]
    fn library_blocks_are_never_moved() {
        let lib = "int helper(int x) { return x * 2; }";
        let app = "int main() { return helper(21); }";
        let prog = compile_program(
            &[SourceUnit::library(lib), SourceUnit::application(app)],
            OptLevel::O1,
        )
        .unwrap();
        let helper = prog.function_index("helper").unwrap();
        let helper_blocks: Vec<BlockRef> = prog
            .block_refs()
            .into_iter()
            .filter(|r| r.func == helper)
            .collect();
        let out = apply_placement(&prog, &helper_blocks);
        for r in helper_blocks {
            assert_eq!(out.block(r).section, Section::Flash);
        }
    }
}
