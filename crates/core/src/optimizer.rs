//! The end-to-end optimization pipeline.
//!
//! [`RamOptimizer`] glues the pieces together exactly as the paper's
//! prototype does: extract the per-block parameters from the compiled
//! program, build the ILP, solve it, and rewrite the code.  The optimizer
//! can also run with simpler selection policies (greedy, or none) so the
//! evaluation can compare against baselines, and with either the static
//! frequency estimate or a measured profile (Figure 5).

use flashram_ilp::{BranchBoundStats, GreedySolver, SolveError};

use flashram_ir::{BlockRef, MachineProgram};
use flashram_mcu::Board;

use crate::frontier::{PlacementSession, PointResolution};
use crate::model::{evaluate_placement, ModelConfig, PlacementEstimate, PlacementModel};
use crate::params::{extract_params_for_timing, FrequencySource, PlacementScope, ProgramParams};
use crate::transform::apply_placement_scoped;

/// Which selection algorithm chooses the blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Solver {
    /// The paper's approach: branch-and-bound ILP over the Section 4 model.
    #[default]
    Ilp,
    /// A greedy knapsack-style heuristic baseline.
    Greedy,
    /// No relocation at all (the measurement baseline).
    None,
}

/// Configuration of the optimization pass.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizerConfig {
    /// Maximum execution-time growth (`X_limit`, Section 4.1).
    pub x_limit: f64,
    /// RAM available for code, in bytes.  `None` derives it from the board:
    /// whatever the program's data, stack reserve and existing RAM code
    /// leave free.
    pub r_spare: Option<u32>,
    /// Source of the block-frequency parameter `F_b`.
    pub frequency: FrequencySource,
    /// Selection algorithm.
    pub solver: Solver,
    /// Whether library code may be relocated too (the paper's future-work
    /// linker-level mode).
    pub scope: PlacementScope,
    /// Branch-and-bound node budget override for the ILP solver (`None`
    /// uses the solver default).  When the budget runs out before any
    /// integer solution is found, the optimizer falls back to the greedy
    /// heuristic instead of failing.
    pub max_ilp_nodes: Option<usize>,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            x_limit: 1.5,
            r_spare: None,
            frequency: FrequencySource::default(),
            solver: Solver::Ilp,
            scope: PlacementScope::ApplicationOnly,
            max_ilp_nodes: None,
        }
    }
}

/// Errors from the optimization pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum OptimizeError {
    /// The program does not fit the board even before optimization.
    DoesNotFit(String),
    /// The ILP solver failed (infeasible or invalid models indicate a bug;
    /// budget exhaustion is handled internally by falling back to the
    /// greedy heuristic, so it only surfaces here if the fallback fails too).
    Solver(SolveError),
}

impl std::fmt::Display for OptimizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OptimizeError::DoesNotFit(w) => write!(f, "{w}"),
            OptimizeError::Solver(e) => write!(f, "placement solver failed: {e}"),
        }
    }
}

impl std::error::Error for OptimizeError {}

impl From<SolveError> for OptimizeError {
    fn from(e: SolveError) -> Self {
        OptimizeError::Solver(e)
    }
}

/// The outcome of one optimization run.
#[derive(Debug, Clone)]
pub struct Placement {
    /// The transformed program (selected blocks in the RAM section, crossing
    /// terminators rewritten).
    pub program: MachineProgram,
    /// The blocks placed in RAM.
    pub selected: Vec<BlockRef>,
    /// The extracted model parameters (useful for reporting and plots).
    pub params: ProgramParams,
    /// Model-based estimate of the chosen placement.
    pub predicted: PlacementEstimate,
    /// Model-based estimate of the all-in-flash baseline.
    pub predicted_base: PlacementEstimate,
    /// The RAM budget that was actually used for the model.
    pub r_spare: u32,
    /// The model configuration (power coefficients, `X_limit`).
    pub model_config: ModelConfig,
    /// Whether the selection came from a heuristic rather than a proven
    /// optimum: true for the greedy solver, for the ILP path when the node
    /// budget ran out and the optimizer fell back to greedy, and for an ILP
    /// incumbent returned under an exhausted budget or with LP-iteration-
    /// limited subtrees skipped.
    pub heuristic: bool,
    /// Branch-and-bound statistics of the ILP solve (`None` for the
    /// greedy/none solvers).  For the greedy *fallback* after budget
    /// exhaustion these are the stats of the failed ILP attempt — the
    /// effort actually spent before degrading, not zeros.
    pub solver_stats: Option<BranchBoundStats>,
}

impl Placement {
    /// Predicted relative energy (optimized / baseline) from the cost model.
    pub fn predicted_energy_ratio(&self) -> f64 {
        if self.predicted_base.energy == 0.0 {
            1.0
        } else {
            self.predicted.energy / self.predicted_base.energy
        }
    }

    /// Predicted relative execution time from the cost model.
    pub fn predicted_time_ratio(&self) -> f64 {
        if self.predicted_base.cycles == 0.0 {
            1.0
        } else {
            self.predicted.cycles / self.predicted_base.cycles
        }
    }
}

/// The flash-to-RAM basic-block placement optimizer.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RamOptimizer {
    /// Pass configuration.
    pub config: OptimizerConfig,
}

impl RamOptimizer {
    /// An optimizer with default configuration.
    pub fn new() -> RamOptimizer {
        RamOptimizer::default()
    }

    /// An optimizer with the given configuration.
    pub fn with_config(config: OptimizerConfig) -> RamOptimizer {
        RamOptimizer { config }
    }

    /// Open a [`PlacementSession`] for `program` on `board` with this
    /// optimizer's configuration: the frontier-sweep entry point when more
    /// than one `(R_spare, X_limit)` point is wanted (model built once,
    /// sweep points chained through warm-started roots).
    ///
    /// # Errors
    ///
    /// See [`PlacementSession::new`].
    pub fn session(
        &self,
        program: &MachineProgram,
        board: &Board,
    ) -> Result<PlacementSession, OptimizeError> {
        PlacementSession::new(program, board, &self.config)
    }

    /// Derive the model coefficients for a given board.
    pub fn model_config_for(&self, board: &Board, r_spare: u32) -> ModelConfig {
        let (e_flash, e_ram) = board.power.model_coefficients();
        ModelConfig {
            x_limit: self.config.x_limit,
            r_spare,
            e_flash,
            e_ram,
        }
    }

    /// Run the optimization against a program that will execute on `board`.
    ///
    /// # Errors
    ///
    /// Returns [`OptimizeError::DoesNotFit`] when the unoptimized program
    /// already exceeds the board's memories, or a solver error.
    pub fn optimize(
        &self,
        program: &MachineProgram,
        board: &Board,
    ) -> Result<Placement, OptimizeError> {
        let spare = match self.config.r_spare {
            Some(s) => s,
            None => board
                .spare_ram(program)
                .map_err(|e| OptimizeError::DoesNotFit(e.to_string()))?,
        };
        let params = extract_params_for_timing(
            program,
            &self.config.frequency,
            self.config.scope,
            &board.timing,
        );
        let model_config = self.model_config_for(board, spare);

        type Outcome = (ProgramParams, Vec<BlockRef>, bool, Option<BranchBoundStats>);
        let (params, selected, heuristic, solver_stats): Outcome = match self.config.solver {
            Solver::None => (params, Vec::new(), false, None),
            Solver::Ilp => {
                // A one-point placement session: `optimize` is the
                // degenerate sweep, so it shares the frontier engine's
                // solve path — including the degradation to the greedy
                // heuristic when the node budget (or a wall-clock limit)
                // runs out before any integer solution exists.  The
                // session owns the params while solving and hands them
                // back afterwards.
                let mut session = PlacementSession::from_params(params, &model_config);
                if let Some(n) = self.config.max_ilp_nodes {
                    session.solver.max_nodes = n;
                }
                let solved = session.solve_point_degraded(spare, self.config.x_limit)?;
                (
                    session.into_params(),
                    solved.point.selected,
                    solved.resolution != PointResolution::Exact,
                    Some(solved.point.stats),
                )
            }
            Solver::Greedy => {
                let model = PlacementModel::build(&params, &model_config);
                let solution = GreedySolver { allow_unset: false }.solve(&model.problem)?;
                let selected = model.selected_blocks(&solution);
                (params, selected, true, None)
            }
        };

        let predicted = evaluate_placement(&params, &selected, &model_config);
        let predicted_base = evaluate_placement(&params, &[], &model_config);
        let program = apply_placement_scoped(program, &selected, self.config.scope);
        Ok(Placement {
            program,
            selected,
            params,
            predicted,
            predicted_base,
            r_spare: spare,
            model_config,
            heuristic,
            solver_stats,
        })
    }

    /// Convenience wrapper that first profiles the program on the board and
    /// then optimizes using the measured block frequencies (the "actual
    /// frequency" variant of Figure 5).
    ///
    /// # Errors
    ///
    /// Propagates simulation and solver errors.
    pub fn optimize_with_profile(
        &self,
        program: &MachineProgram,
        board: &Board,
    ) -> Result<Placement, OptimizeError> {
        let run = board
            .run(program)
            .map_err(|e| OptimizeError::DoesNotFit(format!("profiling run failed: {e}")))?;
        let mut with_profile = self.clone();
        with_profile.config.frequency = FrequencySource::Profiled(run.profile);
        with_profile.optimize(program, board)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashram_mcu::Board;
    use flashram_minicc::{compile_program, OptLevel, SourceUnit};

    const HOT_LOOP: &str = "
        int data[64];
        int main() {
            int s = 0;
            for (int i = 0; i < 64; i++) { data[i] = i * 3; }
            for (int rep = 0; rep < 40; rep++) {
                for (int i = 0; i < 64; i++) { s += data[i] * rep; }
            }
            return s;
        }
    ";

    fn program() -> MachineProgram {
        compile_program(&[SourceUnit::application(HOT_LOOP)], OptLevel::O2).unwrap()
    }

    #[test]
    fn optimization_reduces_energy_and_power_in_simulation() {
        let board = Board::stm32vldiscovery();
        let prog = program();
        let base = board.run(&prog).unwrap();
        let placement = RamOptimizer::new().optimize(&prog, &board).unwrap();
        assert!(!placement.selected.is_empty());
        let opt = board.run(&placement.program).unwrap();
        assert_eq!(
            base.return_value, opt.return_value,
            "semantics must be preserved"
        );
        assert!(
            opt.energy_mj < base.energy_mj,
            "energy should drop: {} -> {}",
            base.energy_mj,
            opt.energy_mj
        );
        assert!(opt.avg_power_mw < base.avg_power_mw);
        assert!(opt.time_s >= base.time_s, "RAM execution is never faster");
        // The model's predicted direction matches the measurement.
        assert!(placement.predicted_energy_ratio() < 1.0);
        assert!(placement.predicted_time_ratio() >= 1.0);
    }

    #[test]
    fn time_bound_is_respected_in_simulation() {
        let board = Board::stm32vldiscovery();
        let prog = program();
        let base = board.run(&prog).unwrap();
        for x_limit in [1.05, 1.2, 1.5] {
            let optimizer = RamOptimizer::with_config(OptimizerConfig {
                x_limit,
                ..OptimizerConfig::default()
            });
            let placement = optimizer.optimize(&prog, &board).unwrap();
            let opt = board.run(&placement.program).unwrap();
            let ratio = opt.time_s / base.time_s;
            assert!(
                ratio <= x_limit * 1.10 + 0.02,
                "time grew by {ratio:.3} with X_limit {x_limit}"
            );
        }
    }

    #[test]
    fn none_solver_is_identity() {
        let board = Board::stm32vldiscovery();
        let prog = program();
        let optimizer = RamOptimizer::with_config(OptimizerConfig {
            solver: Solver::None,
            ..OptimizerConfig::default()
        });
        let placement = optimizer.optimize(&prog, &board).unwrap();
        assert!(placement.selected.is_empty());
        assert_eq!(placement.program, prog);
        assert!((placement.predicted_energy_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn greedy_baseline_never_beats_the_ilp_model() {
        let board = Board::stm32vldiscovery();
        let prog = program();
        let ilp = RamOptimizer::new().optimize(&prog, &board).unwrap();
        let greedy = RamOptimizer::with_config(OptimizerConfig {
            solver: Solver::Greedy,
            ..OptimizerConfig::default()
        })
        .optimize(&prog, &board)
        .unwrap();
        assert!(ilp.predicted.energy <= greedy.predicted.energy + 1e-6);
    }

    #[test]
    fn profile_guided_optimization_also_preserves_semantics() {
        let board = Board::stm32vldiscovery();
        let prog = program();
        let base = board.run(&prog).unwrap();
        let placement = RamOptimizer::new()
            .optimize_with_profile(&prog, &board)
            .unwrap();
        let opt = board.run(&placement.program).unwrap();
        assert_eq!(base.return_value, opt.return_value);
        assert!(opt.avg_power_mw < base.avg_power_mw);
    }

    #[test]
    fn ilp_solver_reports_optimal_with_stats() {
        let board = Board::stm32vldiscovery();
        let prog = program();
        let placement = RamOptimizer::new().optimize(&prog, &board).unwrap();
        assert!(!placement.heuristic, "a full ILP solve is not a heuristic");
        let stats = placement.solver_stats.expect("ILP runs record stats");
        assert!(stats.nodes_explored >= 1);
        assert!(!stats.budget_exhausted);
    }

    #[test]
    fn exhausted_node_budget_falls_back_to_greedy() {
        // Regression: `optimize` used to propagate BudgetExhausted as a hard
        // error even though the greedy solver documents itself as the
        // fallback for exactly this case.
        let board = Board::stm32vldiscovery();
        let prog = program();
        let placement = RamOptimizer::with_config(OptimizerConfig {
            max_ilp_nodes: Some(0),
            ..OptimizerConfig::default()
        })
        .optimize(&prog, &board)
        .expect("budget exhaustion must not be a hard error");
        assert!(placement.heuristic, "the fallback result is heuristic");
        let stats = placement
            .solver_stats
            .expect("the failed ILP attempt's stats are reported truthfully");
        assert!(stats.budget_exhausted, "a zero-node budget is exhausted");
        assert_eq!(stats.nodes_explored, 0);
        // The fallback placement must still be safe to run.
        let opt = board.run(&placement.program).unwrap();
        let base = board.run(&prog).unwrap();
        assert_eq!(base.return_value, opt.return_value);
    }

    #[test]
    fn greedy_solver_is_flagged_heuristic() {
        let board = Board::stm32vldiscovery();
        let prog = program();
        let placement = RamOptimizer::with_config(OptimizerConfig {
            solver: Solver::Greedy,
            ..OptimizerConfig::default()
        })
        .optimize(&prog, &board)
        .unwrap();
        assert!(placement.heuristic);
        assert!(placement.solver_stats.is_none());
    }

    #[test]
    fn explicit_tiny_ram_budget_limits_selection() {
        let board = Board::stm32vldiscovery();
        let prog = program();
        let placement = RamOptimizer::with_config(OptimizerConfig {
            r_spare: Some(16),
            ..OptimizerConfig::default()
        })
        .optimize(&prog, &board)
        .unwrap();
        let used: u32 = placement
            .selected
            .iter()
            .map(|r| placement.program.block(*r).size_bytes())
            .sum();
        assert!(used <= 16, "selected {used} bytes with a 16-byte budget");
    }
}
