//! The Section 7 periodic-sensing case study.
//!
//! A device wakes every `T` seconds, runs a computation (the *active*
//! region), and sleeps at quiescent power for the rest of the period.  The
//! paper shows that the placement optimization helps this workload twice
//! over: the active region consumes less energy, *and* even when it does not
//! (because the code merely got slower at lower power), the shorter time
//! spent at sleep power still reduces the per-period energy — extending
//! battery life by up to 32 %.

use flashram_ir::MachineProgram;
use flashram_mcu::{Board, RunError, SleepScenario};

/// Measured active-region characteristics before and after optimization,
/// plus the derived `k_e`/`k_t` factors of Equation 11.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CaseStudyMeasurement {
    /// Baseline active energy `E_0` in millijoules.
    pub base_energy_mj: f64,
    /// Baseline active time `T_A` in seconds.
    pub base_time_s: f64,
    /// Optimized active energy in millijoules.
    pub opt_energy_mj: f64,
    /// Optimized active time in seconds.
    pub opt_time_s: f64,
}

impl CaseStudyMeasurement {
    /// Energy scale factor `k_e` of the optimization.
    pub fn k_e(&self) -> f64 {
        if self.base_energy_mj == 0.0 {
            1.0
        } else {
            self.opt_energy_mj / self.base_energy_mj
        }
    }

    /// Time scale factor `k_t` of the optimization.
    pub fn k_t(&self) -> f64 {
        if self.base_time_s == 0.0 {
            1.0
        } else {
            self.opt_time_s / self.base_time_s
        }
    }

    /// Per-period energies `(E, E')` for a given period (Equations 10/11).
    pub fn period_energies_mj(&self, scenario: &SleepScenario) -> (f64, f64) {
        (
            scenario.total_energy_mj(self.base_energy_mj, self.base_time_s),
            scenario.total_energy_mj(self.opt_energy_mj, self.opt_time_s),
        )
    }

    /// Energy saved per period (Equation 12).
    pub fn energy_saved_mj(&self, scenario: &SleepScenario) -> f64 {
        let (before, after) = self.period_energies_mj(scenario);
        before - after
    }

    /// Optimized per-period energy as a percentage of the baseline, the
    /// quantity plotted in Figure 9.
    pub fn energy_percent(&self, scenario: &SleepScenario) -> f64 {
        let (before, after) = self.period_energies_mj(scenario);
        if before == 0.0 {
            100.0
        } else {
            100.0 * after / before
        }
    }

    /// Battery-life extension factor for the given period.
    pub fn battery_life_extension(&self, scenario: &SleepScenario) -> f64 {
        scenario.battery_life_extension(
            self.base_energy_mj,
            self.base_time_s,
            self.opt_energy_mj,
            self.opt_time_s,
        )
    }
}

/// Measure the active region of `base` and `optimized` on `board` and
/// package the results for the case-study model.
///
/// # Errors
///
/// Propagates simulation errors from either run.
pub fn measure_case_study(
    board: &Board,
    base: &MachineProgram,
    optimized: &MachineProgram,
) -> Result<CaseStudyMeasurement, RunError> {
    let b = board.run(base)?;
    let o = board.run(optimized)?;
    Ok(CaseStudyMeasurement {
        base_energy_mj: b.energy_mj,
        base_time_s: b.time_s,
        opt_energy_mj: o.energy_mj,
        opt_time_s: o.time_s,
    })
}

/// Sweep the period `T` over multiples of the active time and report the
/// Figure 9 series (period in seconds, optimized energy as % of baseline).
pub fn period_sweep(
    measurement: &CaseStudyMeasurement,
    multiples: &[f64],
    sleep_power_mw: f64,
) -> Vec<(f64, f64)> {
    multiples
        .iter()
        .map(|m| {
            let period = measurement.base_time_s * m;
            let scenario = SleepScenario {
                period_s: period,
                sleep_power_mw,
            };
            (period, measurement.energy_percent(&scenario))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's fdct numbers (Section 7, Equation 13).
    fn paper_fdct() -> CaseStudyMeasurement {
        CaseStudyMeasurement {
            base_energy_mj: 16.9,
            base_time_s: 1.18,
            opt_energy_mj: 16.9 * 0.825,
            opt_time_s: 1.18 * 1.33,
        }
    }

    #[test]
    fn k_factors_match_the_paper() {
        let m = paper_fdct();
        assert!((m.k_e() - 0.825).abs() < 1e-9);
        assert!((m.k_t() - 1.33).abs() < 1e-9);
    }

    #[test]
    fn energy_saved_matches_equation_13() {
        let m = paper_fdct();
        let scenario = SleepScenario {
            period_s: 10.0,
            sleep_power_mw: 3.5,
        };
        let saved = m.energy_saved_mj(&scenario);
        assert!(
            (saved - 4.32).abs() < 0.05,
            "expected ≈4.32 mJ, got {saved}"
        );
    }

    #[test]
    fn same_energy_longer_time_still_saves_overall_energy() {
        // Figure 8: the active region consumes the same energy but runs
        // longer; the period energy still drops because less time is spent
        // at sleep power... wait, it drops because *more* of the period is
        // covered by the (same-energy) active region and less by sleep.
        let m = CaseStudyMeasurement {
            base_energy_mj: 50.0e-3,
            base_time_s: 5.0e-3,
            opt_energy_mj: 50.0e-3,
            opt_time_s: 10.0e-3,
        };
        let scenario = SleepScenario {
            period_s: 15.0e-3,
            sleep_power_mw: 1.0,
        };
        let (before, after) = m.period_energies_mj(&scenario);
        assert!(
            after < before,
            "Figure 8 effect missing: {before} vs {after}"
        );
        assert!(m.energy_saved_mj(&scenario) > 0.0);
    }

    #[test]
    fn savings_shrink_as_the_period_grows() {
        let m = paper_fdct();
        // Monotonicity only holds once the *optimized* active region fits in
        // the period (k_t = 1.33 here); below that the device never sleeps in
        // the optimized configuration and the percentage dips until T
        // reaches k_t·T_A, so the sweep starts above 1.33.
        let sweep = period_sweep(&m, &[1.4, 2.0, 4.0, 8.0, 16.0], 3.5);
        assert_eq!(sweep.len(), 5);
        for pair in sweep.windows(2) {
            assert!(
                pair[1].1 >= pair[0].1 - 1e-9,
                "energy percentage must rise with the period: {sweep:?}"
            );
        }
        // All points show a saving, and the shortest period the biggest one.
        assert!(sweep[0].1 < 90.0);
        assert!(sweep.iter().all(|(_, pct)| *pct < 100.0));
    }

    #[test]
    fn battery_life_extension_peaks_at_short_periods() {
        let m = paper_fdct();
        let short = m.battery_life_extension(&SleepScenario::with_period(m.base_time_s * 1.4));
        let long = m.battery_life_extension(&SleepScenario::with_period(m.base_time_s * 20.0));
        assert!(short > long);
        assert!(
            short > 1.15,
            "short-period extension should approach the paper's 32 %: {short}"
        );
        assert!(long > 1.0);
    }
}
