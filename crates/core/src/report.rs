//! Human-readable reporting of a placement decision.
//!
//! The paper's prototype prints which basic blocks were chosen for RAM and
//! what the model expects the move to cost and save; firmware engineers need
//! the same visibility to trust a pass that rewrites their binary layout.
//! [`PlacementReport`] gathers that information from a [`Placement`] and
//! renders it as a plain-text table (via [`std::fmt::Display`]).

use std::collections::BTreeMap;
use std::fmt;

use flashram_ir::{BlockRef, Section};

use crate::optimizer::Placement;
use crate::transform::{instrumented_blocks, relocated_code_bytes};

/// One row of the report: a basic block and how the placement treats it.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockReport {
    /// The block.
    pub block: BlockRef,
    /// Name of the function that owns the block.
    pub function: String,
    /// Where the block ends up.
    pub section: Section,
    /// Whether the transformation rewrote the block's terminator into the
    /// long-range indirect form.
    pub instrumented: bool,
    /// `S_b`: block size in bytes.
    pub size_bytes: u32,
    /// `C_b`: cycles per execution.
    pub cycles: u64,
    /// `F_b`: the frequency the model used.
    pub frequency: u64,
    /// The block's share of the model's baseline weighted cycles, in percent.
    pub weight_pct: f64,
}

/// A per-function summary line.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionReport {
    /// Function name.
    pub function: String,
    /// Number of candidate blocks in the function.
    pub blocks: usize,
    /// Number of those placed in RAM.
    pub blocks_in_ram: usize,
    /// Bytes of the function's code placed in RAM.
    pub ram_bytes: u32,
}

/// A structured report of one placement decision.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementReport {
    /// Per-block rows, hottest first.
    pub blocks: Vec<BlockReport>,
    /// Per-function summaries, in program order.
    pub functions: Vec<FunctionReport>,
    /// Total bytes of code relocated to RAM.
    pub ram_code_bytes: u32,
    /// The RAM budget the model was given.
    pub r_spare: u32,
    /// Number of instrumented (rewritten) terminators.
    pub instrumented_blocks: usize,
    /// Model-predicted energy ratio (optimized / baseline).
    pub predicted_energy_ratio: f64,
    /// Model-predicted execution-time ratio (optimized / baseline).
    pub predicted_time_ratio: f64,
}

impl PlacementReport {
    /// Build a report from a finished [`Placement`].
    pub fn from_placement(placement: &Placement) -> PlacementReport {
        let program = &placement.program;
        let instrumented = instrumented_blocks(program);
        let base_weight: f64 = placement.params.base_weighted_cycles().max(1.0);

        let mut blocks: Vec<BlockReport> = placement
            .params
            .blocks
            .iter()
            .map(|(r, p)| BlockReport {
                block: *r,
                function: program.functions[r.func.index()].name.clone(),
                section: program.block(*r).section,
                instrumented: instrumented.contains(r),
                size_bytes: p.size_bytes,
                cycles: p.cycles,
                frequency: p.frequency,
                weight_pct: 100.0 * (p.cycles as f64 * p.frequency as f64) / base_weight,
            })
            .collect();
        blocks.sort_by(|a, b| b.weight_pct.total_cmp(&a.weight_pct));

        let mut per_function: BTreeMap<String, FunctionReport> = BTreeMap::new();
        for row in &blocks {
            let entry =
                per_function
                    .entry(row.function.clone())
                    .or_insert_with(|| FunctionReport {
                        function: row.function.clone(),
                        blocks: 0,
                        blocks_in_ram: 0,
                        ram_bytes: 0,
                    });
            entry.blocks += 1;
            if row.section == Section::Ram {
                entry.blocks_in_ram += 1;
                entry.ram_bytes += row.size_bytes;
            }
        }

        PlacementReport {
            blocks,
            functions: per_function.into_values().collect(),
            ram_code_bytes: relocated_code_bytes(program),
            r_spare: placement.r_spare,
            instrumented_blocks: instrumented.len(),
            predicted_energy_ratio: placement.predicted_energy_ratio(),
            predicted_time_ratio: placement.predicted_time_ratio(),
        }
    }

    /// The rows that were placed in RAM, hottest first.
    pub fn ram_blocks(&self) -> impl Iterator<Item = &BlockReport> {
        self.blocks.iter().filter(|b| b.section == Section::Ram)
    }
}

impl fmt::Display for PlacementReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "placement: {} of {} blocks in RAM ({} / {} bytes), {} instrumented terminators",
            self.ram_blocks().count(),
            self.blocks.len(),
            self.ram_code_bytes,
            self.r_spare,
            self.instrumented_blocks,
        )?;
        writeln!(
            f,
            "model prediction: energy x{:.3}, time x{:.3}",
            self.predicted_energy_ratio, self.predicted_time_ratio
        )?;
        writeln!(f)?;
        writeln!(
            f,
            "{:<20} {:>8} {:>6} {:>8} {:>10} {:>8} {:>7} {:>6}",
            "function", "block", "sect", "bytes", "cycles", "freq", "weight", "instr"
        )?;
        for row in &self.blocks {
            writeln!(
                f,
                "{:<20} {:>8} {:>6} {:>8} {:>10} {:>8} {:>6.1}% {:>6}",
                row.function,
                row.block.to_string(),
                match row.section {
                    Section::Ram => "ram",
                    Section::Flash => "flash",
                },
                row.size_bytes,
                row.cycles,
                row.frequency,
                row.weight_pct,
                if row.instrumented { "yes" } else { "" },
            )?;
        }
        writeln!(f)?;
        writeln!(
            f,
            "{:<20} {:>8} {:>8} {:>10}",
            "function", "blocks", "in ram", "ram bytes"
        )?;
        for func in &self.functions {
            writeln!(
                f,
                "{:<20} {:>8} {:>8} {:>10}",
                func.function, func.blocks, func.blocks_in_ram, func.ram_bytes
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::RamOptimizer;
    use flashram_mcu::Board;
    use flashram_minicc::{compile_program, OptLevel, SourceUnit};

    const SRC: &str = "
        int data[48];
        int main() {
            int s = 0;
            for (int i = 0; i < 48; i++) { data[i] = i * 5 + 1; }
            for (int rep = 0; rep < 30; rep++) {
                for (int i = 0; i < 48; i++) { s += data[i] ^ rep; }
            }
            return s;
        }
    ";

    fn placement() -> Placement {
        let prog = compile_program(&[SourceUnit::application(SRC)], OptLevel::O2).unwrap();
        RamOptimizer::new()
            .optimize(&prog, &Board::stm32vldiscovery())
            .unwrap()
    }

    #[test]
    fn report_counts_match_the_placement() {
        let p = placement();
        let report = PlacementReport::from_placement(&p);
        assert_eq!(report.blocks.len(), p.params.blocks.len());
        assert_eq!(report.ram_blocks().count(), p.selected.len());
        assert_eq!(
            report.ram_code_bytes,
            crate::transform::relocated_code_bytes(&p.program)
        );
        assert!(report.predicted_energy_ratio <= 1.0);
        assert!(report.predicted_time_ratio >= 1.0);
        // Per-function summaries add up to the totals.
        let total_in_ram: usize = report.functions.iter().map(|f| f.blocks_in_ram).sum();
        assert_eq!(total_in_ram, p.selected.len());
    }

    #[test]
    fn rows_are_sorted_hottest_first_and_weights_sum_to_one() {
        let report = PlacementReport::from_placement(&placement());
        for pair in report.blocks.windows(2) {
            assert!(pair[0].weight_pct >= pair[1].weight_pct);
        }
        let total: f64 = report.blocks.iter().map(|b| b.weight_pct).sum();
        assert!((total - 100.0).abs() < 1e-6, "weights sum to {total}%");
    }

    #[test]
    fn display_output_mentions_every_function() {
        let p = placement();
        let text = PlacementReport::from_placement(&p).to_string();
        assert!(text.contains("placement:"));
        assert!(text.contains("main"));
        assert!(text.contains("model prediction"));
    }
}
