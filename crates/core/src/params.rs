//! Extraction of the per-basic-block model parameters (Section 4.1).
//!
//! For every candidate block `b` the model needs its size `S_b`, cycle count
//! `C_b`, execution frequency `F_b`, instrumentation costs `K_b`/`T_b`, the
//! RAM-contention penalty `L_b` and its successor set `Succ(b)`.  All of
//! these are derived from the machine-level program; `F_b` can come either
//! from the loop-depth-based static estimate or from a profile collected by
//! the simulator (Figure 5 of the paper compares the two).

use std::collections::BTreeMap;

use flashram_ir::{BlockId, BlockRef, MachineProgram, ProfileData};
use flashram_isa::{Inst, TermKind, TimingModel, CORTEX_M3_TIMING};

/// Which functions' blocks are candidates for relocation.
///
/// The paper's prototype runs before linking, so statically linked library
/// code (soft-float routines, compiler intrinsics) is opaque to it —
/// [`PlacementScope::ApplicationOnly`].  Its future-work section proposes
/// moving the pass into the linker so that every emitted block is visible;
/// [`PlacementScope::WholeProgram`] implements that extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PlacementScope {
    /// Only blocks of application translation units are candidates (the
    /// paper's prototype, and the default).
    #[default]
    ApplicationOnly,
    /// Blocks of library functions are candidates too (the paper's proposed
    /// linker-level implementation).
    WholeProgram,
}

/// Where the execution-frequency parameter `F_b` comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum FrequencySource {
    /// Static estimate from loop depth: `F_b = iterations_per_loop ^ depth`.
    Static {
        /// Assumed iterations of each loop level (the paper notes a rough
        /// estimate is good enough; 16 is the default).
        iterations_per_loop: u64,
    },
    /// Measured per-block execution counts from a profiling run.
    Profiled(ProfileData),
}

impl Default for FrequencySource {
    fn default() -> Self {
        FrequencySource::Static {
            iterations_per_loop: 16,
        }
    }
}

/// The Section 4.1 parameters of one basic block.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockParams {
    /// `S_b`: size of the block in bytes.
    pub size_bytes: u32,
    /// `C_b`: cycles to execute the block once (body plus its terminator).
    pub cycles: u64,
    /// `F_b`: estimated or measured execution count.
    pub frequency: u64,
    /// `K_b`: extra bytes if the block must be instrumented.
    pub instr_bytes: u32,
    /// `T_b`: extra cycles per execution if the block is instrumented.
    pub instr_cycles: u64,
    /// `L_b`: extra cycles per execution when the block runs from RAM
    /// (memory-bus contention on its loads and stores).
    pub ram_extra_cycles: u64,
    /// `W_b`: extra cycles per execution when the block runs from flash
    /// (wait-state stalls on instruction fetches and pipeline refills).
    /// Zero on zero-wait-state parts such as the STM32F100.
    pub flash_extra_cycles: u64,
    /// `Succ(b)`: successor blocks within the same function.
    pub successors: Vec<BlockId>,
    /// Number of memory operations (used for reporting).
    pub memory_ops: u32,
}

impl BlockParams {
    /// The net change in cycles per execution when the block moves from
    /// flash to RAM: it gains the RAM contention `L_b` but sheds the flash
    /// wait-state stalls `W_b` already folded into `C_b`.  Negative on
    /// wait-state parts whose blocks stall more on fetch than they contend
    /// on data — moving such blocks to RAM saves both time and energy.
    pub fn ram_delta_cycles(&self) -> f64 {
        self.ram_extra_cycles as f64 - self.flash_extra_cycles as f64
    }
}

/// Parameters for every optimizable block of a program.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProgramParams {
    /// Per-block parameters, keyed by block reference.
    pub blocks: BTreeMap<BlockRef, BlockParams>,
}

impl ProgramParams {
    /// Total estimated base execution cycles `Σ C_b · F_b` (all code in
    /// flash, no instrumentation).
    pub fn base_weighted_cycles(&self) -> f64 {
        self.blocks
            .values()
            .map(|p| p.cycles as f64 * p.frequency as f64)
            .sum()
    }

    /// The candidate block references, in a stable order.
    pub fn block_refs(&self) -> Vec<BlockRef> {
        self.blocks.keys().copied().collect()
    }

    /// Look up one block's parameters.
    pub fn get(&self, block: BlockRef) -> Option<&BlockParams> {
        self.blocks.get(&block)
    }
}

/// Extract the model parameters for every block of every non-library
/// function of `program` (the paper's application-only scope).
pub fn extract_params(program: &MachineProgram, frequency: &FrequencySource) -> ProgramParams {
    extract_params_scoped(program, frequency, PlacementScope::ApplicationOnly)
}

/// Extract the model parameters for every candidate block of `program`,
/// where `scope` decides whether library functions are candidates.
pub fn extract_params_scoped(
    program: &MachineProgram,
    frequency: &FrequencySource,
    scope: PlacementScope,
) -> ProgramParams {
    extract_params_for_timing(program, frequency, scope, &CORTEX_M3_TIMING)
}

/// Extract the model parameters against an explicit device timing model, so
/// that per-device contention and flash wait-state coefficients flow into
/// the cost model.  `C_b` is the all-in-flash cycle count (base cycles plus
/// the wait-state overhead `W_b`); moving a block to RAM trades `W_b` for
/// the contention penalty `L_b` (see [`BlockParams::ram_delta_cycles`]).
pub fn extract_params_for_timing(
    program: &MachineProgram,
    frequency: &FrequencySource,
    scope: PlacementScope,
    timing: &TimingModel,
) -> ProgramParams {
    let mut blocks = BTreeMap::new();
    for (fi, func) in program.functions.iter().enumerate() {
        if func.is_library && scope == PlacementScope::ApplicationOnly {
            continue;
        }
        let cfg = func.cfg();
        let loops = cfg.loop_info();
        for (bi, block) in func.blocks.iter().enumerate() {
            let r = BlockRef::new(fi, bi);
            let freq = match frequency {
                FrequencySource::Static {
                    iterations_per_loop,
                } => {
                    let depth = loops.depth(bi).min(6);
                    iterations_per_loop.saturating_pow(depth).max(1)
                }
                FrequencySource::Profiled(profile) => profile.block_count(r),
            };
            let instr = block.term.instrumentation_cost();
            let ram_extra = u64::from(block.load_count()) * timing.ram_load_contention_cycles
                + u64::from(block.store_count()) * timing.ram_store_contention_cycles;
            // Wait-state overhead of one flash execution: every instruction
            // pays the fetch penalty, calls and the (taken) terminator pay
            // the pipeline-refill penalty too.
            let kind = block.term.kind();
            let transfers = u64::from(kind != TermKind::FallThrough);
            let calls = block
                .insts
                .iter()
                .filter(|i| matches!(i, Inst::Bl { .. }))
                .count() as u64;
            let flash_extra = timing.flash_instr_penalty_cycles()
                * (block.insts.len() as u64 + transfers)
                + timing.flash_refill_penalty_cycles() * (calls + transfers);
            blocks.insert(
                r,
                BlockParams {
                    size_bytes: block.size_bytes(),
                    cycles: block.body_cycles() + block.term.taken_cycles() + flash_extra,
                    frequency: freq,
                    instr_bytes: instr.extra_bytes,
                    instr_cycles: instr.extra_cycles,
                    ram_extra_cycles: ram_extra,
                    flash_extra_cycles: flash_extra,
                    successors: block.term.successors().into_iter().copied().collect(),
                    memory_ops: block.load_count() + block.store_count(),
                },
            );
        }
    }
    ProgramParams { blocks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashram_minicc::{compile_program, OptLevel, SourceUnit};

    const LOOPY: &str = "
        int work(int n) {
            int s = 0;
            for (int i = 0; i < n; i++) {
                for (int j = 0; j < n; j++) { s += i * j; }
            }
            return s;
        }
        int main() { return work(10); }
    ";

    fn program() -> MachineProgram {
        compile_program(&[SourceUnit::application(LOOPY)], OptLevel::O1).unwrap()
    }

    #[test]
    fn static_frequencies_grow_with_loop_depth() {
        let prog = program();
        let params = extract_params(&prog, &FrequencySource::default());
        let freqs: Vec<u64> = params.blocks.values().map(|p| p.frequency).collect();
        let max = *freqs.iter().max().unwrap();
        let min = *freqs.iter().min().unwrap();
        assert_eq!(min, 1, "straight-line blocks get frequency 1");
        assert_eq!(max, 16 * 16, "depth-2 blocks get 16^2");
    }

    #[test]
    fn profiled_frequencies_use_the_profile() {
        let prog = program();
        let mut profile = ProfileData::new();
        let some_block = prog.optimizable_block_refs()[0];
        for _ in 0..7 {
            profile.record_block(some_block);
        }
        let params = extract_params(&prog, &FrequencySource::Profiled(profile));
        assert_eq!(params.get(some_block).unwrap().frequency, 7);
    }

    #[test]
    fn parameters_reflect_block_contents() {
        let prog = program();
        let params = extract_params(&prog, &FrequencySource::default());
        for (r, p) in &params.blocks {
            let block = prog.block(*r);
            assert_eq!(p.size_bytes, block.size_bytes());
            assert!(p.cycles >= block.body_cycles());
            assert_eq!(p.successors.len(), block.term.successors().len());
            let instr = block.term.instrumentation_cost();
            assert_eq!(p.instr_bytes, instr.extra_bytes);
            assert_eq!(p.instr_cycles, instr.extra_cycles);
        }
        assert!(params.base_weighted_cycles() > 0.0);
    }

    #[test]
    fn library_functions_are_excluded() {
        let lib = "int helper(int x) { return x + 1; }";
        let app = "int main() { return helper(2); }";
        let prog = compile_program(
            &[SourceUnit::library(lib), SourceUnit::application(app)],
            OptLevel::O1,
        )
        .unwrap();
        let params = extract_params(&prog, &FrequencySource::default());
        let helper = prog.function_index("helper").unwrap();
        assert!(params.blocks.keys().all(|r| r.func != helper));
    }
}
