//! The frontier sweep engine: incremental, warm-started enumeration of the
//! flash/RAM energy trade-off curve.
//!
//! The paper's headline artifact is a *sweep*: Figure 6 relaxes the RAM
//! budget `R_spare` (and separately the time bound `X_limit`) and plots the
//! solver's choice at every grid point.  Solving each point cold wastes the
//! structure the sweep has by construction — adjacent points share every
//! row, column and objective coefficient of the placement ILP and differ
//! only in the right-hand sides of the two budget rows.
//!
//! [`PlacementSession`] exploits that structure end to end:
//!
//! * the model parameters are extracted and the ILP is built **once** per
//!   `(program, board, scope)`, then retargeted in place with
//!   [`PlacementModel::set_budgets`] for every sweep point;
//! * each point's root relaxation is **warm-started** from the previous
//!   point's solved basis via the dual simplex
//!   ([`BranchBound::solve_chained`]) — the same 3–13× per-node pivot saving
//!   branch-and-bound already gets from parent-to-child warm starts, applied
//!   *across* sweep points.  The solver's search-quality machinery
//!   (best-bound node selection, cover cuts, presolve) composes with the
//!   chain: cuts and presolve fixings are derived per point against the
//!   current budgets and live on a solve-local problem copy, so the chained
//!   root state the session carries always matches the session model's row
//!   layout and the seeded incumbent prunes best-bound queue entries before
//!   their LPs are ever solved;
//! * [`PlacementSession::enumerate_frontier`] goes beyond grid sweeps and
//!   computes the **exact Pareto staircase**: every distinct optimal
//!   placement between a zero budget and `R_spare`, each annotated with the
//!   minimum RAM budget at which it becomes optimal.
//!
//! The enumeration needs no a-priori grid.  If the optimum at budget `B`
//! charges `u ≤ B` bytes to the Eq. 7 row, that same placement stays both
//! feasible and optimal for every budget in `[u, B]` (optimal energy is
//! non-increasing in the budget), so the next distinct frontier point must
//! lie below `u` — the search descends to `u − 1` and re-solves, touching
//! each staircase step exactly once.  Solver tie-breaks can surface two
//! placements with equal energy at different RAM budgets; the dedup pass
//! keeps the cheaper-RAM one (the other is dominated), which makes the
//! returned frontier *strictly* monotone: energy strictly decreasing, RAM
//! strictly increasing.
//!
//! Frontier points are model predictions; [`Frontier::validate`] fans the
//! actual placements over a [`BatchRunner`] worker pool and simulates each
//! one, returning measured energies alongside the predictions.

use flashram_device::DeviceDescriptor;
use flashram_ilp::{BranchBound, BranchBoundStats, GreedySolver, LpState, Solution, SolveError};
use flashram_ir::{BlockRef, MachineProgram};
use flashram_mcu::{BatchRunner, Board, RunError, RunResult};

use crate::model::{evaluate_placement, ModelConfig, PlacementEstimate, PlacementModel};
use crate::optimizer::{OptimizeError, OptimizerConfig};
use crate::params::{extract_params_for_timing, PlacementScope, ProgramParams};
use crate::transform::apply_placement_scoped;

/// Relative tolerance under which two sweep objectives count as a tie (the
/// same scale the branch-and-bound pruning margin uses, so a "distinct"
/// frontier step is one the solver itself could have told apart).
const OBJECTIVE_TIE_TOL: f64 = 1e-6;

/// One solved point of a constraint sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The RAM budget the point was solved under.
    pub r_spare: u32,
    /// The execution-time bound the point was solved under.
    pub x_limit: f64,
    /// The blocks the optimal placement moves to RAM.
    pub selected: Vec<BlockRef>,
    /// Model estimate of the placement (energy, cycles, RAM bytes).
    pub predicted: PlacementEstimate,
    /// The ILP objective value (model energy units).
    pub objective: f64,
    /// RAM the Eq. 7 budget row charges the solution for — block bytes plus
    /// instrumentation bytes of every instrumented block.  This is the
    /// smallest budget at which this placement is feasible, i.e. the
    /// staircase breakpoint the frontier enumeration descends to.
    pub model_ram_used: u32,
    /// Branch-and-bound statistics of this point's solve.
    pub stats: BranchBoundStats,
    /// Whether the root relaxation was chained (dual-simplex warm start from
    /// the previous point) rather than solved cold.
    pub chained: bool,
    /// Whether the solve ran to proven optimality (no node-budget
    /// exhaustion, no LP-iteration-limited subtree).
    pub proven: bool,
}

/// Cumulative solver effort across a session's sweep points, for the
/// warm-vs-cold accounting `solver_perf` records in `BENCH_solver.json`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Sweep points solved (successfully) so far.
    pub points_solved: usize,
    /// Points whose root relaxation was warm-started from the previous
    /// point's basis.
    pub chained_roots: usize,
    /// Branch-and-bound nodes explored across all points.
    pub nodes_explored: usize,
    /// Simplex pivots across all points (root re-entries and B&B nodes).
    pub lp_pivots: usize,
    /// Pivots spent on the points' root relaxations alone — the number the
    /// cross-point chaining shrinks (the per-node warm-start win inside
    /// each tree is already counted by `BranchBoundStats`).
    pub root_pivots: usize,
}

/// How a degraded point solve ([`PlacementSession::solve_point_degraded`])
/// arrived at its answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointResolution {
    /// The ILP ran to proven optimality.
    Exact,
    /// The ILP returned its best incumbent under an exhausted node budget,
    /// an expired wall-clock limit, or LP-iteration-limited subtrees — a
    /// feasible placement, not a proven optimum.
    Incumbent,
    /// The ILP found no integer solution before its budget ran out and the
    /// greedy heuristic supplied the placement instead (the documented
    /// degradation path of [`crate::RamOptimizer`], shared here so the
    /// service layer degrades identically).
    FallbackGreedy,
}

/// A sweep point solved with degradation: the placement plus how it was
/// obtained.  [`SweepPoint::stats`] always reports the true ILP effort —
/// for [`PointResolution::FallbackGreedy`] they are the stats of the
/// *failed* ILP attempt (its `wall_ms`, `seeded` and `root_pivots` cover
/// the work actually done before the fallback), not zeros.
#[derive(Debug, Clone)]
pub struct DegradedPoint {
    /// The solved (or heuristically chosen) placement.
    pub point: SweepPoint,
    /// How the placement was obtained.
    pub resolution: PointResolution,
}

/// A placement-optimization session: the model parameters and the ILP are
/// built **once**, then every sweep point re-solves the same problem with
/// moved budget right-hand sides, chaining warm-started roots.
///
/// Construct with [`PlacementSession::new`] (from a program and board) or
/// [`PlacementSession::from_params`] (from already-extracted parameters);
/// then call [`solve_point`](PlacementSession::solve_point),
/// [`sweep_ram`](PlacementSession::sweep_ram),
/// [`sweep_time`](PlacementSession::sweep_time) or
/// [`enumerate_frontier`](PlacementSession::enumerate_frontier).
#[derive(Debug, Clone)]
pub struct PlacementSession {
    params: ProgramParams,
    model: PlacementModel,
    /// The branch-and-bound solver configuration used for every point.
    /// Mutable so callers can cap `max_nodes` or disable warm starts (the
    /// latter also disables root chaining, for cold-baseline measurements).
    pub solver: BranchBound,
    /// The reference RAM budget: the board's spare RAM for program-backed
    /// sessions, the config's `r_spare` for parameter-backed ones.
    spare_ram: u32,
    root: Option<LpState>,
    last_solution: Option<Solution>,
    stats: SweepStats,
}

impl PlacementSession {
    /// Open a session for `program` on `board`: extract the model
    /// parameters and build the placement ILP once, honoring the
    /// optimizer configuration's scope, frequency source, budgets and node
    /// cap.
    ///
    /// # Errors
    ///
    /// [`OptimizeError::DoesNotFit`] when the program already exceeds the
    /// board's memories.
    pub fn new(
        program: &MachineProgram,
        board: &Board,
        config: &OptimizerConfig,
    ) -> Result<PlacementSession, OptimizeError> {
        let spare = match config.r_spare {
            Some(s) => s,
            None => board
                .spare_ram(program)
                .map_err(|e| OptimizeError::DoesNotFit(e.to_string()))?,
        };
        let params =
            extract_params_for_timing(program, &config.frequency, config.scope, &board.timing);
        let (e_flash, e_ram) = board.power.model_coefficients();
        let model_config = ModelConfig {
            x_limit: config.x_limit,
            r_spare: spare,
            e_flash,
            e_ram,
        };
        let mut session = PlacementSession::from_params(params, &model_config);
        if let Some(n) = config.max_ilp_nodes {
            session.solver.max_nodes = n;
        }
        Ok(session)
    }

    /// Open a session from already-extracted parameters and a model
    /// configuration (`config.r_spare` becomes the reference budget).
    pub fn from_params(params: ProgramParams, config: &ModelConfig) -> PlacementSession {
        let model = PlacementModel::build(&params, config);
        PlacementSession {
            params,
            model,
            solver: BranchBound::new(),
            spare_ram: config.r_spare,
            root: None,
            last_solution: None,
            stats: SweepStats::default(),
        }
    }

    /// The extracted per-block model parameters.
    pub fn params(&self) -> &ProgramParams {
        &self.params
    }

    /// Consume the session and hand back the parameters it was built from
    /// (for callers that only needed a one-point solve and want to keep the
    /// params without cloning them).
    pub fn into_params(self) -> ProgramParams {
        self.params
    }

    /// The placement model (rebuilt never; retargeted per sweep point).
    pub fn model(&self) -> &PlacementModel {
        &self.model
    }

    /// The session's reference RAM budget (see [`PlacementSession::new`]).
    pub fn spare_ram(&self) -> u32 {
        self.spare_ram
    }

    /// Cumulative solver effort over this session's solved points.
    pub fn stats(&self) -> SweepStats {
        self.stats
    }

    /// The model estimate of the all-in-flash baseline.
    pub fn baseline(&self) -> PlacementEstimate {
        evaluate_placement(&self.params, &[], &self.model.config)
    }

    /// Forget the chained root and seeded incumbent so the next point
    /// solves cold (used by the cold-baseline measurements in
    /// `solver_perf`).
    pub fn reset_chain(&mut self) {
        self.root = None;
        self.last_solution = None;
    }

    /// Solve one `(R_spare, X_limit)` point, chaining the root relaxation
    /// from the previous solved point when possible.
    ///
    /// # Errors
    ///
    /// [`SolveError::Infeasible`] marks a genuinely infeasible point (e.g.
    /// `x_limit < 1`); other variants are solver failures.  The chained
    /// root state survives a failed point, so the sweep continues from the
    /// last good basis.
    pub fn solve_point(&mut self, r_spare: u32, x_limit: f64) -> Result<SweepPoint, SolveError> {
        self.solve_point_raw(r_spare, x_limit).map_err(|(e, _)| e)
    }

    /// [`PlacementSession::solve_point`], but a failed solve also reports
    /// the branch-and-bound effort spent before the failure.
    fn solve_point_raw(
        &mut self,
        r_spare: u32,
        x_limit: f64,
    ) -> Result<SweepPoint, (SolveError, Box<BranchBoundStats>)> {
        #[cfg(feature = "fault-injection")]
        if flashram_ilp::fault::should_fire(flashram_ilp::fault::FaultSite::CorePointError) {
            return Err((
                SolveError::InvalidModel(format!(
                    "{} point resolve failed",
                    flashram_ilp::fault::INJECTED_MARKER
                )),
                Box::new(BranchBoundStats {
                    injected: true,
                    ..BranchBoundStats::default()
                }),
            ));
        }
        self.model.set_budgets(r_spare, x_limit);
        // The previous point's optimum seeds the incumbent whenever it is
        // still feasible (always, when a budget relaxes): the search then
        // starts with a proven bound and only explores what the moved
        // right-hand sides improved.
        let run = self.solver.solve_chained_stats(
            &self.model.problem,
            self.root.as_ref(),
            self.last_solution.as_ref(),
        )?;
        let selected = self.model.selected_blocks(&run.solution);
        let predicted = evaluate_placement(&self.params, &selected, &self.model.config);
        // The budget row's coefficients are integers, so the rounded LHS is
        // exact; clamp tolerance drift into the solved budget.
        let model_ram_used =
            (self.model.ram_used(&run.solution).round().max(0.0) as u32).min(r_spare);
        self.stats.points_solved += 1;
        if run.chained {
            self.stats.chained_roots += 1;
        }
        self.stats.nodes_explored += run.stats.nodes_explored;
        self.stats.lp_pivots += run.stats.lp_pivots;
        self.stats.root_pivots += run.stats.root_pivots;
        if run.root_state.is_some() {
            self.root = run.root_state;
        }
        self.last_solution = Some(run.solution.clone());
        Ok(SweepPoint {
            r_spare,
            x_limit,
            selected,
            predicted,
            objective: run.solution.objective,
            model_ram_used,
            stats: run.stats,
            chained: run.chained,
            proven: !run.stats.budget_exhausted
                && run.stats.lp_iteration_limited == 0
                && !run.stats.time_limit_hit,
        })
    }

    /// Solve one point with the documented degradation path: when the ILP
    /// finds no integer solution within its budgets
    /// ([`SolveError::BudgetExhausted`] — node cap or wall-clock limit),
    /// fall back to the greedy heuristic on the same model instead of
    /// failing.  The returned point's [`SweepPoint::stats`] stay truthful
    /// in every case: for the fallback they are the failed ILP attempt's
    /// stats (wall time, seeding, root pivots actually spent), and
    /// [`DegradedPoint::resolution`] says how the answer was produced.
    ///
    /// The warm-start chain is untouched by a degraded point (the greedy
    /// solution would poison the seeded-incumbent invariant), so a later
    /// exact point continues from the last good basis.
    ///
    /// # Errors
    ///
    /// [`SolveError::Infeasible`] and other non-budget failures propagate;
    /// a greedy failure after budget exhaustion also propagates.
    pub fn solve_point_degraded(
        &mut self,
        r_spare: u32,
        x_limit: f64,
    ) -> Result<DegradedPoint, SolveError> {
        match self.solve_point_raw(r_spare, x_limit) {
            Ok(point) => {
                let resolution = if point.proven {
                    PointResolution::Exact
                } else {
                    PointResolution::Incumbent
                };
                Ok(DegradedPoint { point, resolution })
            }
            Err((SolveError::BudgetExhausted(_), attempt)) => {
                // `solve_point_raw` already retargeted the budget rows, so
                // the greedy heuristic sees exactly the budgets the ILP
                // gave up on.
                let solution = GreedySolver { allow_unset: false }.solve(&self.model.problem)?;
                let selected = self.model.selected_blocks(&solution);
                let predicted = evaluate_placement(&self.params, &selected, &self.model.config);
                let model_ram_used =
                    (self.model.ram_used(&solution).round().max(0.0) as u32).min(r_spare);
                self.stats.points_solved += 1;
                self.stats.nodes_explored += attempt.nodes_explored;
                self.stats.lp_pivots += attempt.lp_pivots;
                self.stats.root_pivots += attempt.root_pivots;
                Ok(DegradedPoint {
                    point: SweepPoint {
                        r_spare,
                        x_limit,
                        selected,
                        predicted,
                        objective: solution.objective,
                        model_ram_used,
                        stats: *attempt,
                        chained: false,
                        proven: false,
                    },
                    resolution: PointResolution::FallbackGreedy,
                })
            }
            Err((e, _)) => Err(e),
        }
    }

    /// Solve every budget of `budgets` (ascending or descending — chaining
    /// works either way) under a fixed time bound.  A per-point `Err` marks
    /// that point infeasible or failed without aborting the sweep.
    pub fn sweep_ram(
        &mut self,
        budgets: &[u32],
        x_limit: f64,
    ) -> Vec<(u32, Result<SweepPoint, SolveError>)> {
        budgets
            .iter()
            .map(|&b| (b, self.solve_point(b, x_limit)))
            .collect()
    }

    /// Solve every time bound of `x_limits` under a fixed RAM budget.
    pub fn sweep_time(
        &mut self,
        x_limits: &[f64],
        r_spare: u32,
    ) -> Vec<(f64, Result<SweepPoint, SolveError>)> {
        x_limits
            .iter()
            .map(|&x| (x, self.solve_point(r_spare, x)))
            .collect()
    }

    /// Enumerate the **exact Pareto staircase** of the energy/RAM trade-off
    /// under a fixed time bound: every distinct optimal placement for
    /// budgets in `[0, max_budget]`, ascending by RAM use, each carrying the
    /// minimum budget at which it becomes optimal
    /// ([`SweepPoint::model_ram_used`]).
    ///
    /// The descent solves one ILP per staircase step (each warm-started from
    /// the previous step), not one per grid point — see the module docs for
    /// why that is exact.
    ///
    /// # Errors
    ///
    /// Any point failing to solve aborts the enumeration with that error
    /// (`x_limit < 1` surfaces as [`SolveError::Infeasible`]).
    pub fn enumerate_frontier(
        &mut self,
        x_limit: f64,
        max_budget: u32,
    ) -> Result<Frontier, SolveError> {
        let mut raw: Vec<SweepPoint> = Vec::new();
        let mut exact = true;
        let mut budget = max_budget;
        loop {
            let point = self.solve_point(budget, x_limit)?;
            exact &= point.proven;
            let used = point.model_ram_used;
            raw.push(point);
            if used == 0 {
                break;
            }
            // Every budget in [used, budget] shares this optimum; the next
            // distinct step lies strictly below the breakpoint.
            budget = used - 1;
        }
        // Ascending by RAM use; drop dominated tie placements (equal energy
        // at a higher budget — a tie-break artifact, not a frontier step).
        raw.reverse();
        let mut points: Vec<SweepPoint> = Vec::new();
        let mut dropped_dominated = 0usize;
        for point in raw {
            if let Some(kept) = points.last() {
                let margin = OBJECTIVE_TIE_TOL * kept.objective.abs().max(1.0);
                if point.objective >= kept.objective - margin {
                    dropped_dominated += 1;
                    continue;
                }
            }
            points.push(point);
        }
        Ok(Frontier {
            points,
            baseline: self.baseline(),
            x_limit,
            exact,
            dropped_dominated,
        })
    }
}

/// The exact energy/RAM Pareto staircase of one placement model under a
/// fixed time bound (see [`PlacementSession::enumerate_frontier`]).
#[derive(Debug, Clone)]
pub struct Frontier {
    /// The staircase steps, ascending by [`SweepPoint::model_ram_used`]
    /// with strictly decreasing [`SweepPoint::objective`].  The first step
    /// is the best placement needing no extra RAM (usually the empty one).
    pub points: Vec<SweepPoint>,
    /// The all-in-flash baseline estimate.
    pub baseline: PlacementEstimate,
    /// The time bound the frontier was enumerated under.
    pub x_limit: f64,
    /// Whether every step was solved to proven optimality; `false` means a
    /// node budget or LP iteration limit truncated some solve and the
    /// staircase may be an over-approximation.
    pub exact: bool,
    /// Tie placements dropped because an equal-energy step already existed
    /// at a smaller RAM budget (solver tie-break artifacts).
    pub dropped_dominated: usize,
}

/// One frontier step validated by simulation.
#[derive(Debug, Clone)]
pub struct ValidatedPoint {
    /// The staircase breakpoint (minimum budget) of the step.
    pub min_ram_bytes: u32,
    /// The model's energy prediction (objective units).
    pub predicted_energy: f64,
    /// The simulation outcome of the transformed program.
    pub measured: Result<RunResult, RunError>,
}

impl Frontier {
    /// Validate the frontier by simulation: apply each step's placement to
    /// `program`, fan the transformed programs over a [`BatchRunner`]
    /// worker pool on clones of `board`, and pair each prediction with the
    /// measured run.
    ///
    /// `scope` must match the scope the session's parameters were extracted
    /// with, so the transform relocates exactly the selected blocks.
    pub fn validate(
        &self,
        board: &Board,
        program: &MachineProgram,
        scope: PlacementScope,
    ) -> Vec<ValidatedPoint> {
        let runner = BatchRunner::new(board.clone());
        runner.map(&self.points, |board, point| {
            let transformed = apply_placement_scoped(program, &point.selected, scope);
            ValidatedPoint {
                min_ram_bytes: point.model_ram_used,
                predicted_energy: point.objective,
                measured: board.run(&transformed),
            }
        })
    }
}

/// One device's enumerated frontier within a cross-device sweep
/// (see [`DeviceMatrix::enumerate`]).
#[derive(Debug, Clone)]
pub struct DeviceFrontier {
    /// The device-database key the frontier was enumerated for.
    pub device: &'static str,
    /// The part's human-readable name.
    pub name: &'static str,
    /// Seconds per core cycle at the device's default operating point —
    /// the factor that converts model objectives (mW·cycles) into
    /// millijoules comparable across devices.
    pub cycle_time_s: f64,
    /// The spare RAM the program leaves on this device, in bytes (the
    /// budget ceiling of the enumeration).
    pub spare_ram: u32,
    /// The device's exact Pareto staircase, in model units.
    pub frontier: Frontier,
    /// Solver effort spent enumerating this device's staircase.
    pub stats: SweepStats,
}

impl DeviceFrontier {
    /// Predicted energy of one staircase step in millijoules: the ILP
    /// objective is `Σ mW·cycles`, so scaling by the cycle period yields
    /// `mW·s = mJ` — a unit that is comparable across clock frequencies.
    pub fn energy_mj(&self, point: &SweepPoint) -> f64 {
        point.objective * self.cycle_time_s
    }

    /// The device's energy-optimal step (the last staircase step).
    pub fn best(&self) -> Option<&SweepPoint> {
        self.frontier.points.last()
    }
}

/// One step of the device-dominant cross-device Pareto set: the device to
/// pick at a given RAM budget, and what it costs.
#[derive(Debug, Clone, PartialEq)]
pub struct DevicePoint {
    /// The device-database key of the winning device.
    pub device: &'static str,
    /// Minimum RAM budget (bytes) at which this step becomes available.
    pub min_ram_bytes: u32,
    /// Predicted energy in millijoules (cross-device comparable).
    pub energy_mj: f64,
    /// The step's raw model objective on its own device (mW·cycles).
    pub objective: f64,
}

/// The outcome of a cross-device frontier enumeration: every device's own
/// staircase plus the merged device-dominant Pareto set.
#[derive(Debug, Clone)]
pub struct DeviceMatrix {
    /// Per-device frontiers, in the order the devices were given.
    pub frontiers: Vec<DeviceFrontier>,
    /// Devices that could not be enumerated (program does not fit, solver
    /// failure), with the reason.
    pub skipped: Vec<(&'static str, OptimizeError)>,
    /// The merged Pareto set over `(RAM budget, energy in mJ)` pairs from
    /// every device: ascending in RAM, strictly decreasing in energy, each
    /// step tagged with the device that provides it.
    pub pareto: Vec<DevicePoint>,
}

impl DeviceMatrix {
    /// Enumerate the exact energy/RAM frontier of `program` on every device
    /// in `devices`, fanning the per-device enumerations over `runner`'s
    /// worker pool.  Each device gets its own [`Board`], model parameters
    /// and ILP (per-device wait states, contention, energy tables and
    /// memory sizes all flow in); `config` supplies the shared scope,
    /// frequency source, time bound and node cap.  The runner's own board
    /// is ignored — it only provides the threads.
    pub fn enumerate(
        program: &MachineProgram,
        devices: &[&'static DeviceDescriptor],
        config: &OptimizerConfig,
        runner: &BatchRunner,
    ) -> DeviceMatrix {
        let results = runner.map(devices, |_, desc| {
            let board = Board::new(desc);
            let mut session = PlacementSession::new(program, &board, config)?;
            let spare = session.spare_ram();
            let frontier = session
                .enumerate_frontier(config.x_limit, spare)
                .map_err(OptimizeError::Solver)?;
            Ok(DeviceFrontier {
                device: desc.key,
                name: desc.name,
                cycle_time_s: board.timing.cycle_time_s(),
                spare_ram: spare,
                frontier,
                stats: session.stats(),
            })
        });
        let mut frontiers = Vec::new();
        let mut skipped = Vec::new();
        for (desc, result) in devices.iter().zip(results) {
            match result {
                Ok(f) => frontiers.push(f),
                Err(e) => skipped.push((desc.key, e)),
            }
        }
        let pareto = device_dominant_pareto(&frontiers);
        DeviceMatrix {
            frontiers,
            skipped,
            pareto,
        }
    }
}

/// Merge per-device staircases into the device-dominant Pareto set: among
/// all `(RAM budget, energy)` steps of all devices, keep those not
/// dominated by any step with both smaller-or-equal RAM and lower energy.
pub fn device_dominant_pareto(frontiers: &[DeviceFrontier]) -> Vec<DevicePoint> {
    let mut all: Vec<DevicePoint> = frontiers
        .iter()
        .flat_map(|df| {
            df.frontier.points.iter().map(|p| DevicePoint {
                device: df.device,
                min_ram_bytes: p.model_ram_used,
                energy_mj: df.energy_mj(p),
                objective: p.objective,
            })
        })
        .collect();
    // Ascending RAM, then ascending energy; a later point survives only if
    // it strictly improves on the best energy seen at smaller budgets.
    all.sort_by(|a, b| {
        a.min_ram_bytes
            .cmp(&b.min_ram_bytes)
            .then(a.energy_mj.total_cmp(&b.energy_mj))
            .then(a.device.cmp(b.device))
    });
    let mut pareto: Vec<DevicePoint> = Vec::new();
    for p in all {
        match pareto.last() {
            Some(kept) => {
                let margin = OBJECTIVE_TIE_TOL * kept.energy_mj.abs().max(1.0);
                if p.energy_mj < kept.energy_mj - margin {
                    pareto.push(p);
                }
            }
            None => pareto.push(p),
        }
    }
    pareto
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::FrequencySource;
    use flashram_minicc::{compile_program, OptLevel, SourceUnit};

    const SRC: &str = "
        int work(int n) {
            int s = 0;
            for (int i = 0; i < n; i++) {
                if (i % 3 == 0) { s += i * 2; } else { s -= i; }
            }
            return s;
        }
        int main() { return work(50); }
    ";

    fn session() -> PlacementSession {
        let prog = compile_program(&[SourceUnit::application(SRC)], OptLevel::O1).unwrap();
        let params = crate::params::extract_params(&prog, &FrequencySource::default());
        PlacementSession::from_params(params, &ModelConfig::default())
    }

    #[test]
    fn chained_sweep_matches_cold_solves() {
        let mut warm = session();
        let budgets = [2048u32, 512, 128, 64, 16, 0];
        let warm_points = warm.sweep_ram(&budgets, 1.5);
        let mut cold = session();
        cold.solver.warm_start = false;
        for ((b, w), (_, c)) in warm_points.iter().zip(cold.sweep_ram(&budgets, 1.5)) {
            let (w, c) = (w.as_ref().expect("feasible"), c.expect("feasible"));
            assert!(
                (w.objective - c.objective).abs() <= 1e-6 * c.objective.abs().max(1.0),
                "budget {b}: warm {} vs cold {}",
                w.objective,
                c.objective
            );
        }
        assert_eq!(warm.stats().points_solved, budgets.len());
        assert_eq!(warm.stats().chained_roots, budgets.len() - 1);
        assert_eq!(cold.stats().chained_roots, 0);
    }

    #[test]
    fn frontier_is_a_strict_staircase() {
        let mut s = session();
        let spare = 4096u32;
        let frontier = s.enumerate_frontier(1.5, spare).expect("enumerable");
        assert!(frontier.exact);
        assert!(!frontier.points.is_empty());
        assert_eq!(
            frontier.points[0].model_ram_used, 0,
            "the staircase starts at the zero-budget optimum"
        );
        for w in frontier.points.windows(2) {
            assert!(
                w[0].model_ram_used < w[1].model_ram_used,
                "RAM must strictly increase"
            );
            assert!(
                w[0].objective > w[1].objective,
                "energy must strictly decrease"
            );
        }
        // Every step matches a cold solve at exactly its breakpoint budget.
        for point in &frontier.points {
            let mut cold = session();
            cold.solver.warm_start = false;
            let c = cold
                .solve_point(point.model_ram_used, 1.5)
                .expect("feasible");
            assert!(
                (point.objective - c.objective).abs() <= 1e-6 * c.objective.abs().max(1.0),
                "breakpoint {}: frontier {} vs cold {}",
                point.model_ram_used,
                point.objective,
                c.objective
            );
        }
    }

    #[test]
    fn frontier_covers_the_grid_sweep() {
        // The staircase must reproduce every grid point's optimum: the
        // grid solve at budget B equals the highest step with breakpoint ≤ B.
        let mut s = session();
        let frontier = s.enumerate_frontier(1.5, 2048).expect("enumerable");
        let mut grid = session();
        for (b, point) in grid.sweep_ram(&[0, 16, 32, 64, 96, 200, 512, 2048], 1.5) {
            let point = point.expect("feasible");
            let step = frontier
                .points
                .iter()
                .rev()
                .find(|p| p.model_ram_used <= b)
                .expect("staircase starts at zero");
            assert!(
                (point.objective - step.objective).abs() <= 1e-6 * step.objective.abs().max(1.0),
                "budget {b}: grid {} vs staircase {}",
                point.objective,
                step.objective
            );
        }
    }

    #[test]
    fn infeasible_time_bound_is_reported_not_fatal() {
        let mut s = session();
        let out = s.sweep_time(&[0.5, 1.0, 1.5], 2048);
        assert!(matches!(out[0].1, Err(SolveError::Infeasible)));
        assert!(out[1].1.is_ok());
        assert!(out[2].1.is_ok());
        // The chain survived the infeasible point.
        let relaxed = out[2].1.as_ref().unwrap();
        assert!(relaxed.chained);
    }

    #[test]
    fn degraded_point_is_exact_when_the_budget_suffices() {
        let mut degraded = session();
        let solved = degraded.solve_point_degraded(256, 1.5).expect("feasible");
        assert_eq!(solved.resolution, PointResolution::Exact);
        assert!(solved.point.proven);
        let mut plain = session();
        let reference = plain.solve_point(256, 1.5).expect("feasible");
        assert_eq!(solved.point.objective, reference.objective);
        assert_eq!(solved.point.selected, reference.selected);
    }

    #[test]
    fn degraded_point_falls_back_to_greedy_with_truthful_stats() {
        let mut s = session();
        s.solver.max_nodes = 0;
        let solved = s.solve_point_degraded(256, 1.5).expect("greedy fallback");
        assert_eq!(solved.resolution, PointResolution::FallbackGreedy);
        assert!(!solved.point.proven);
        assert!(!solved.point.chained);
        // The stats describe the failed ILP attempt, not the greedy pass.
        assert!(solved.point.stats.budget_exhausted);
        assert_eq!(solved.point.stats.nodes_explored, 0);
        assert!(solved.point.model_ram_used <= 256);
        // The chain is untouched by a degraded point: restoring the node
        // budget yields an exact, unchained (cold-root) solve.
        s.solver.max_nodes = usize::MAX;
        let next = s.solve_point_degraded(256, 1.5).expect("feasible");
        assert_eq!(next.resolution, PointResolution::Exact);
        assert!(!next.point.chained);
    }

    #[test]
    fn device_matrix_spans_the_database() {
        let prog = compile_program(&[SourceUnit::application(SRC)], OptLevel::O1).unwrap();
        let runner = BatchRunner::new(Board::stm32vldiscovery());
        let config = OptimizerConfig::default();
        let devices = flashram_device::DEVICE_DB.all();
        let matrix = DeviceMatrix::enumerate(&prog, devices, &config, &runner);
        assert!(matrix.skipped.is_empty(), "every db part fits the program");
        assert_eq!(matrix.frontiers.len(), devices.len());
        for df in &matrix.frontiers {
            assert!(
                !df.frontier.points.is_empty(),
                "{}: staircase must have at least the zero-RAM step",
                df.device
            );
            assert!(df.cycle_time_s > 0.0);
        }
        // The merged Pareto set is a strictly monotone staircase.
        assert!(!matrix.pareto.is_empty());
        for w in matrix.pareto.windows(2) {
            assert!(w[0].min_ram_bytes < w[1].min_ram_bytes);
            assert!(w[0].energy_mj > w[1].energy_mj);
        }
        // The low-power part draws a fraction of the others' power at a
        // third of the clock, so it must supply the lowest-energy step.
        let best = matrix.pareto.last().unwrap();
        assert_eq!(best.device, "stm32l151");
    }

    #[test]
    fn wait_states_make_ram_placement_cheaper_in_the_model() {
        // On the 84 MHz / 2-wait-state part a flash block stalls on every
        // fetch, so the model's RAM-move delta must be strictly better than
        // on the zero-wait reference part for the same program.
        let prog = compile_program(&[SourceUnit::application(SRC)], OptLevel::O1).unwrap();
        let f100 = Board::new(flashram_device::DEVICE_DB.get("stm32f100").unwrap());
        let f401 = Board::new(flashram_device::DEVICE_DB.get("stm32f401").unwrap());
        let p_f100 = crate::params::extract_params_for_timing(
            &prog,
            &FrequencySource::default(),
            PlacementScope::ApplicationOnly,
            &f100.timing,
        );
        let p_f401 = crate::params::extract_params_for_timing(
            &prog,
            &FrequencySource::default(),
            PlacementScope::ApplicationOnly,
            &f401.timing,
        );
        let mut stalled = 0usize;
        for (r, a) in &p_f100.blocks {
            let b = &p_f401.blocks[r];
            assert_eq!(a.flash_extra_cycles, 0, "zero-wait part never stalls");
            // With the prefetch buffer enabled only control transfers
            // stall, so a fall-through block may legitimately pay nothing —
            // but no block ever pays less than on the zero-wait part.
            assert!(b.ram_delta_cycles() <= a.ram_delta_cycles());
            assert_eq!(b.cycles, a.cycles + b.flash_extra_cycles);
            if b.flash_extra_cycles > 0 {
                assert!(b.ram_delta_cycles() < a.ram_delta_cycles());
                stalled += 1;
            }
        }
        assert!(
            stalled > 0,
            "branching blocks must pay refill stalls on the wait-state part"
        );
    }
}
