//! The ILP formulation of the placement problem (Section 4.3).
//!
//! For every candidate block `b` the model has a binary variable `r_b`
//! (block placed in RAM), a binary `i_b` (block needs its terminator
//! rewritten to a long-range form) and a linearization variable
//! `z_b = r_b · i_b`.  The objective is the total energy
//!
//! ```text
//! Σ_b F_b · (C_b + T_b·i_b + L_b·r_b) · M(b)     with M(b) = E_flash or E_ram,
//! ```
//!
//! expanded and linearized; the constraints are the RAM budget (Eq. 7) and
//! the execution-time bound (Eq. 9), plus the edge constraints that force
//! `i_b` to 1 whenever `b` and one of its successors sit in different
//! memories (Eq. 5).

use std::collections::BTreeMap;

use flashram_ilp::{
    BranchBound, BranchBoundStats, Cmp, LinearExpr, Problem, Sense, Solution, SolveError, Var,
};
use flashram_ir::BlockRef;

use crate::params::ProgramParams;

/// Model coefficients and constraints supplied by the developer and the
/// hardware characterization (Section 4.1's `X_limit`, `R_spare`, `E_flash`
/// and `E_ram`).
#[derive(Debug, Clone, PartialEq)]
pub struct ModelConfig {
    /// Maximum allowed execution-time growth factor (1.1 = at most 10 % slower).
    pub x_limit: f64,
    /// Bytes of RAM available for relocated code.
    pub r_spare: u32,
    /// Energy (average power) coefficient for code executing from flash.
    pub e_flash: f64,
    /// Energy (average power) coefficient for code executing from RAM.
    pub e_ram: f64,
}

impl Default for ModelConfig {
    fn default() -> Self {
        // The power coefficients default to the Figure 1 calibration of the
        // simulator's power model.
        ModelConfig {
            x_limit: 1.5,
            r_spare: 2048,
            e_flash: 15.45,
            e_ram: 9.05,
        }
    }
}

/// The variables associated with one block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockVars {
    /// `r_b`: 1 when the block is placed in RAM.
    pub in_ram: Var,
    /// `i_b`: 1 when the block's terminator must be instrumented.
    pub instrumented: Var,
    /// `z_b = r_b · i_b`.
    pub both: Var,
}

/// The built ILP together with its variable map.
///
/// The two developer knobs — the RAM budget `R_spare` (Eq. 7) and the
/// execution-time bound `X_limit` (Eq. 9) — live purely in the right-hand
/// sides of their rows, so a built model can be retargeted to a new budget
/// pair in place with [`PlacementModel::set_budgets`] instead of being
/// rebuilt.  That is what makes frontier sweeps incremental: the rows,
/// columns and objective never change across sweep points, and the solver
/// chains warm-started re-solves through the moved right-hand sides (see
/// [`crate::frontier`]).
#[derive(Debug, Clone)]
pub struct PlacementModel {
    /// The 0-1 linear program (minimization).
    pub problem: Problem,
    /// Per-block variables.
    pub vars: BTreeMap<BlockRef, BlockVars>,
    /// The configuration the model was built with (kept in sync by
    /// [`PlacementModel::set_budgets`]).
    pub config: ModelConfig,
    /// Row index of the RAM-budget constraint (Eq. 7); its right-hand side
    /// is `config.r_spare`.
    pub ram_row: usize,
    /// Row index of the execution-time constraint (Eq. 9); its right-hand
    /// side is `config.x_limit × base_cycles`.
    pub time_row: usize,
    /// The all-in-flash weighted cycle count `Σ F_b·C_b` the time bound is
    /// relative to.
    pub base_cycles: f64,
}

impl PlacementModel {
    /// Build the ILP from extracted block parameters.
    pub fn build(params: &ProgramParams, config: &ModelConfig) -> PlacementModel {
        let mut problem = Problem::new(Sense::Minimize);
        let mut vars: BTreeMap<BlockRef, BlockVars> = BTreeMap::new();

        for r in params.block_refs() {
            let in_ram = problem.add_binary(format!("r_{r}"));
            let instrumented = problem.add_binary(format!("i_{r}"));
            let both = problem.add_binary(format!("z_{r}"));
            vars.insert(
                r,
                BlockVars {
                    in_ram,
                    instrumented,
                    both,
                },
            );
        }

        // Objective (energy) and the time expression for Eq. 9.
        let mut objective = LinearExpr::new();
        let mut time_expr = LinearExpr::new();
        let mut base_cycles = 0.0f64;
        let delta = config.e_ram - config.e_flash;
        for (r, p) in &params.blocks {
            let v = vars[r];
            let f = p.frequency as f64;
            let c = p.cycles as f64;
            let t = p.instr_cycles as f64;
            // D_b = L_b − W_b: moving to RAM adds contention but sheds the
            // flash wait-state stalls folded into C_b.  On zero-wait parts
            // D_b = L_b exactly, bit-for-bit.
            let d = p.ram_delta_cycles();
            // Energy: F·[C·Ef + (C·Δ + D·Er)·r + T·Ef·i + T·Δ·z]
            objective.add_constant(f * c * config.e_flash);
            objective.add_term(v.in_ram, f * (c * delta + d * config.e_ram));
            objective.add_term(v.instrumented, f * t * config.e_flash);
            objective.add_term(v.both, f * t * delta);
            // Time: F·(C + T·i + D·r)
            base_cycles += f * c;
            time_expr.add_constant(f * c);
            time_expr.add_term(v.instrumented, f * t);
            time_expr.add_term(v.in_ram, f * d);
        }
        problem.set_objective(objective);

        // Eq. 5: instrumentation is forced when a block and a successor are
        // in different memories: i_b ≥ r_b − r_s and i_b ≥ r_s − r_b.
        for (r, p) in &params.blocks {
            let v = vars[r];
            for succ in &p.successors {
                let succ_ref = BlockRef {
                    func: r.func,
                    block: *succ,
                };
                let Some(sv) = vars.get(&succ_ref) else {
                    continue;
                };
                if succ_ref == *r {
                    continue;
                }
                // i_b - r_b + r_s ≥ 0
                problem.add_constraint(
                    LinearExpr::from_terms([
                        (v.instrumented, 1.0),
                        (v.in_ram, -1.0),
                        (sv.in_ram, 1.0),
                    ]),
                    Cmp::Ge,
                    0.0,
                );
                // i_b + r_b - r_s ≥ 0
                problem.add_constraint(
                    LinearExpr::from_terms([
                        (v.instrumented, 1.0),
                        (v.in_ram, 1.0),
                        (sv.in_ram, -1.0),
                    ]),
                    Cmp::Ge,
                    0.0,
                );
            }
            // Linearization of z = r·i:  z ≤ r, z ≤ i, z ≥ r + i − 1.
            problem.add_constraint(
                LinearExpr::from_terms([(v.both, 1.0), (v.in_ram, -1.0)]),
                Cmp::Le,
                0.0,
            );
            problem.add_constraint(
                LinearExpr::from_terms([(v.both, 1.0), (v.instrumented, -1.0)]),
                Cmp::Le,
                0.0,
            );
            problem.add_constraint(
                LinearExpr::from_terms([(v.both, 1.0), (v.in_ram, -1.0), (v.instrumented, -1.0)]),
                Cmp::Ge,
                -1.0,
            );
        }

        // Eq. 7: RAM budget.
        let mut ram_expr = LinearExpr::new();
        for (r, p) in &params.blocks {
            let v = vars[r];
            ram_expr.add_term(v.in_ram, p.size_bytes as f64);
            ram_expr.add_term(v.instrumented, p.instr_bytes as f64);
        }
        let ram_row = problem.num_constraints();
        problem.add_constraint(ram_expr, Cmp::Le, config.r_spare as f64);

        // Eq. 9: execution-time bound.  `time_expr` carries the constant
        // `Σ F_b·C_b`, which `add_constraint` folds into the stored
        // right-hand side — `set_budgets` must fold it the same way.
        let time_row = problem.num_constraints();
        problem.add_constraint(time_expr, Cmp::Le, config.x_limit * base_cycles);

        PlacementModel {
            problem,
            vars,
            config: config.clone(),
            ram_row,
            time_row,
            base_cycles,
        }
    }

    /// Retarget the model to a new `(R_spare, X_limit)` pair **in place**:
    /// only the right-hand sides of the two budget rows move, every other
    /// row, column and objective coefficient is untouched.  A solver state
    /// chained from before the call therefore stays structurally valid and
    /// can be re-entered with the dual simplex
    /// ([`flashram_ilp::BranchBound::solve_chained`]).
    pub fn set_budgets(&mut self, r_spare: u32, x_limit: f64) {
        // The time expression's constant part (the all-in-flash cycles) was
        // folded into the stored rhs at build time; replicate that fold.
        self.problem
            .set_rhs(self.ram_row, r_spare as f64)
            .expect("RAM-budget row exists");
        self.problem
            .set_rhs(self.time_row, x_limit * self.base_cycles - self.base_cycles)
            .expect("time-bound row exists");
        self.config.r_spare = r_spare;
        self.config.x_limit = x_limit;
    }

    /// The RAM the model charges a solution for: the left-hand side of the
    /// Eq. 7 budget row (block bytes plus instrumentation bytes of every
    /// instrumented block).  This is the budget below which the solution
    /// becomes infeasible — the breakpoint the frontier enumeration descends
    /// to.
    pub fn ram_used(&self, solution: &Solution) -> f64 {
        self.problem.constraints()[self.ram_row]
            .expr
            .evaluate(&solution.values)
    }

    /// Solve the placement ILP with a default warm-started branch-and-bound
    /// solver, returning the solution and the search statistics.
    ///
    /// # Errors
    ///
    /// See [`BranchBound::solve`].
    pub fn solve(&self) -> Result<(Solution, BranchBoundStats), SolveError> {
        self.solve_with(&BranchBound::new())
    }

    /// Solve the placement ILP with a caller-configured solver.
    ///
    /// # Errors
    ///
    /// See [`BranchBound::solve`].
    pub fn solve_with(
        &self,
        solver: &BranchBound,
    ) -> Result<(Solution, BranchBoundStats), SolveError> {
        solver.solve_with_stats(&self.problem)
    }

    /// The set of blocks a solution places in RAM.
    pub fn selected_blocks(&self, solution: &Solution) -> Vec<BlockRef> {
        self.vars
            .iter()
            .filter(|(_, v)| solution.is_set(v.in_ram))
            .map(|(r, _)| *r)
            .collect()
    }
}

/// Model-based estimate of a placement's energy, execution time and RAM use,
/// in the same units the objective uses.  This is what the Figure 6
/// trade-off-space plots are built from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacementEstimate {
    /// Objective-units energy (power-coefficient × cycles).
    pub energy: f64,
    /// Weighted cycles `Σ F_b (C_b + overheads)`.
    pub cycles: f64,
    /// Bytes of RAM used by the relocated blocks and their instrumentation.
    pub ram_bytes: u32,
}

/// Evaluate an arbitrary placement (the set of blocks in RAM) under the
/// cost model, deriving the instrumentation set from Eq. 5.
pub fn evaluate_placement(
    params: &ProgramParams,
    in_ram: &[BlockRef],
    config: &ModelConfig,
) -> PlacementEstimate {
    use std::collections::BTreeSet;
    let ram_set: BTreeSet<BlockRef> = in_ram.iter().copied().collect();
    let mut energy = 0.0;
    let mut cycles = 0.0;
    let mut ram_bytes = 0u32;
    for (r, p) in &params.blocks {
        let in_ram = ram_set.contains(r);
        let needs_instr = p.successors.iter().any(|s| {
            let sr = BlockRef {
                func: r.func,
                block: *s,
            };
            params.blocks.contains_key(&sr) && ram_set.contains(&sr) != in_ram
        });
        let m = if in_ram { config.e_ram } else { config.e_flash };
        let t = if needs_instr {
            p.instr_cycles as f64
        } else {
            0.0
        };
        let d = if in_ram { p.ram_delta_cycles() } else { 0.0 };
        let f = p.frequency as f64;
        let c = p.cycles as f64 + t + d;
        energy += f * c * m;
        cycles += f * c;
        if in_ram {
            ram_bytes += p.size_bytes;
        }
        if needs_instr {
            ram_bytes += if in_ram { p.instr_bytes } else { 0 };
        }
    }
    PlacementEstimate {
        energy,
        cycles,
        ram_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{extract_params, FrequencySource};
    use flashram_ilp::BranchBound;
    use flashram_minicc::{compile_program, OptLevel, SourceUnit};

    const SRC: &str = "
        int work(int n) {
            int s = 0;
            for (int i = 0; i < n; i++) {
                if (i % 3 == 0) { s += i * 2; } else { s -= i; }
            }
            return s;
        }
        int main() { return work(50); }
    ";

    fn params() -> ProgramParams {
        let prog = compile_program(&[SourceUnit::application(SRC)], OptLevel::O1).unwrap();
        extract_params(&prog, &FrequencySource::default())
    }

    #[test]
    fn model_has_three_vars_per_block() {
        let p = params();
        let model = PlacementModel::build(&p, &ModelConfig::default());
        assert_eq!(model.problem.num_vars(), 3 * p.blocks.len());
        assert!(model.problem.num_constraints() >= p.blocks.len() * 3 + 2);
        assert!(model.problem.check().is_ok());
    }

    #[test]
    fn solving_moves_hot_blocks_into_ram() {
        let p = params();
        let model = PlacementModel::build(&p, &ModelConfig::default());
        let sol = BranchBound::new().solve(&model.problem).expect("solvable");
        let selected = model.selected_blocks(&sol);
        assert!(
            !selected.is_empty(),
            "with generous budgets the solver should use RAM"
        );
        // The hottest block must be selected.
        let hottest = p
            .blocks
            .iter()
            .max_by_key(|(_, bp)| bp.frequency * bp.cycles)
            .map(|(r, _)| *r)
            .unwrap();
        assert!(selected.contains(&hottest));
    }

    #[test]
    fn zero_ram_budget_selects_nothing() {
        let p = params();
        let config = ModelConfig {
            r_spare: 0,
            ..ModelConfig::default()
        };
        let model = PlacementModel::build(&p, &config);
        let sol = BranchBound::new().solve(&model.problem).expect("solvable");
        assert!(model.selected_blocks(&sol).is_empty());
    }

    #[test]
    fn tight_time_limit_blocks_expensive_instrumentation() {
        let p = params();
        let relaxed = {
            let model = PlacementModel::build(
                &p,
                &ModelConfig {
                    x_limit: 2.0,
                    ..Default::default()
                },
            );
            let sol = BranchBound::new().solve(&model.problem).unwrap();
            evaluate_placement(&p, &model.selected_blocks(&sol), &model.config)
        };
        let tight = {
            let model = PlacementModel::build(
                &p,
                &ModelConfig {
                    x_limit: 1.0,
                    ..Default::default()
                },
            );
            let sol = BranchBound::new().solve(&model.problem).unwrap();
            evaluate_placement(&p, &model.selected_blocks(&sol), &model.config)
        };
        let base = evaluate_placement(&p, &[], &ModelConfig::default());
        // The tight bound must respect the base cycle count; the relaxed one
        // may exceed it but must save at least as much energy.
        assert!(tight.cycles <= base.cycles * 1.0 + 1e-6);
        assert!(relaxed.energy <= tight.energy + 1e-6);
    }

    #[test]
    fn evaluate_placement_matches_objective_on_solver_solution() {
        let p = params();
        let config = ModelConfig::default();
        let model = PlacementModel::build(&p, &config);
        let sol = BranchBound::new().solve(&model.problem).unwrap();
        let est = evaluate_placement(&p, &model.selected_blocks(&sol), &config);
        assert!(
            (est.energy - sol.objective).abs() <= 1e-6 * sol.objective.abs().max(1.0),
            "hand evaluation {} differs from ILP objective {}",
            est.energy,
            sol.objective
        );
    }

    #[test]
    fn placement_lp_has_no_bound_rows_and_no_artificials() {
        // The bounded-variable simplex keeps binary bounds and branch
        // fixings out of the tableau: one row per model constraint, no
        // artificial columns — the acceptance shape for the placement LPs.
        let p = params();
        let model = PlacementModel::build(&p, &ModelConfig::default());
        let solver = flashram_ilp::SimplexSolver::new();
        let root = solver.solve_tracked(&model.problem, &[]);
        let state = root.state.expect("relaxation solves");
        assert_eq!(state.num_rows(), model.problem.num_constraints());
        assert_eq!(state.num_artificials(), 0);

        // Branch fixings are applied to the warm-start state as degenerate
        // bounds and re-solved with the dual simplex — still no extra rows
        // and no artificial columns.
        let v = model.vars.values().next().expect("has blocks").in_ram;
        let fixed = solver.resolve_with_fixings(&model.problem, &state, &[(v, 1.0)]);
        let fstate = fixed.state.expect("fixed relaxation solves");
        assert_eq!(fstate.num_rows(), model.problem.num_constraints());
        assert_eq!(fstate.num_artificials(), 0);
    }

    #[test]
    fn warm_and_cold_branch_and_bound_agree_on_the_placement_model() {
        let p = params();
        let model = PlacementModel::build(&p, &ModelConfig::default());
        let (warm_sol, warm) = model.solve().expect("warm solve");
        let cold_solver = BranchBound {
            warm_start: false,
            ..BranchBound::default()
        };
        let (cold_sol, cold) = model.solve_with(&cold_solver).expect("cold solve");
        assert!(
            (warm_sol.objective - cold_sol.objective).abs()
                <= 1e-6 * cold_sol.objective.abs().max(1.0),
            "warm {} vs cold {}",
            warm_sol.objective,
            cold_sol.objective
        );
        assert_eq!(cold.warm_solves, 0);
        if warm.warm_solves > 0 {
            let per_warm = warm.warm_pivots as f64 / warm.warm_solves as f64;
            let per_cold = cold.cold_pivots as f64 / cold.cold_solves as f64;
            assert!(
                per_warm < per_cold,
                "warm-started nodes must pivot less: {per_warm:.2} vs {per_cold:.2}"
            );
        }
    }

    #[test]
    fn set_budgets_matches_a_rebuilt_model_exactly() {
        // In-place retargeting must be indistinguishable from a rebuild:
        // identical rows, coefficients and (bitwise) right-hand sides, so a
        // chained solver state stays valid across the mutation.
        let p = params();
        let mut model = PlacementModel::build(&p, &ModelConfig::default());
        for (r_spare, x_limit) in [(64u32, 1.1), (4096, 2.0), (0, 1.0), (2048, 1.5)] {
            model.set_budgets(r_spare, x_limit);
            let rebuilt = PlacementModel::build(
                &p,
                &ModelConfig {
                    r_spare,
                    x_limit,
                    ..ModelConfig::default()
                },
            );
            assert_eq!(model.problem, rebuilt.problem);
            assert_eq!(model.config, rebuilt.config);
        }
    }

    #[test]
    fn ram_used_reads_the_budget_row() {
        let p = params();
        let model = PlacementModel::build(&p, &ModelConfig::default());
        let sol = BranchBound::new().solve(&model.problem).unwrap();
        let used = model.ram_used(&sol);
        assert!(used >= 0.0 && used <= model.config.r_spare as f64 + 1e-6);
        // The budget row charges block bytes plus instrumentation bytes of
        // every instrumented block (RAM- and flash-side alike), so it is at
        // least the relocated bytes the estimate reports.
        let est = evaluate_placement(&p, &model.selected_blocks(&sol), &model.config);
        assert!(used + 1e-6 >= est.ram_bytes as f64);
    }

    #[test]
    fn ram_constraint_is_respected() {
        let p = params();
        let config = ModelConfig {
            r_spare: 64,
            ..ModelConfig::default()
        };
        let model = PlacementModel::build(&p, &config);
        let sol = BranchBound::new().solve(&model.problem).unwrap();
        let est = evaluate_placement(&p, &model.selected_blocks(&sol), &config);
        assert!(
            est.ram_bytes <= 64,
            "placement uses {} bytes",
            est.ram_bytes
        );
    }
}
