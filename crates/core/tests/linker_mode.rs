//! Tests for the whole-program ("linker level") placement scope — the
//! paper's future-work extension in which the pass can also relocate
//! statically linked library code.

use flashram_beebs::Benchmark;
use flashram_core::{
    apply_placement_scoped, extract_params_scoped, FrequencySource, OptimizerConfig,
    PlacementScope, RamOptimizer,
};
use flashram_ir::Section;
use flashram_mcu::Board;
use flashram_minicc::{compile_program, OptLevel, SourceUnit};

const LIBRARY: &str = "
    int lib_scale(int x, int k) {
        int acc = 0;
        for (int i = 0; i < k; i++) { acc += x; }
        return acc;
    }
";

const APPLICATION: &str = "
    int main() {
        int s = 0;
        for (int rep = 0; rep < 60; rep++) { s += lib_scale(rep, 9); }
        return s;
    }
";

fn library_bound_program() -> flashram_ir::MachineProgram {
    compile_program(
        &[
            SourceUnit::library(LIBRARY),
            SourceUnit::application(APPLICATION),
        ],
        OptLevel::Os,
    )
    .unwrap()
}

#[test]
fn whole_program_scope_extracts_library_blocks_too() {
    let prog = library_bound_program();
    let lib_func = prog.function_index("lib_scale").unwrap();
    let app_only = extract_params_scoped(
        &prog,
        &FrequencySource::default(),
        PlacementScope::ApplicationOnly,
    );
    let whole = extract_params_scoped(
        &prog,
        &FrequencySource::default(),
        PlacementScope::WholeProgram,
    );
    assert!(app_only.blocks.keys().all(|r| r.func != lib_func));
    assert!(whole.blocks.keys().any(|r| r.func == lib_func));
    assert!(whole.blocks.len() > app_only.blocks.len());
}

#[test]
fn whole_program_scope_may_move_library_blocks() {
    let prog = library_bound_program();
    let lib_func = prog.function_index("lib_scale").unwrap();
    let lib_blocks: Vec<_> = prog
        .block_refs()
        .into_iter()
        .filter(|r| r.func == lib_func)
        .collect();

    // Application-only transform refuses to move them.
    let guarded = apply_placement_scoped(&prog, &lib_blocks, PlacementScope::ApplicationOnly);
    assert!(guarded
        .block_refs()
        .iter()
        .all(|r| guarded.block(*r).section == Section::Flash));

    // Whole-program transform does move them.
    let moved = apply_placement_scoped(&prog, &lib_blocks, PlacementScope::WholeProgram);
    for r in &lib_blocks {
        assert_eq!(moved.block(*r).section, Section::Ram);
    }

    // And the relocated program still computes the same thing.
    let board = Board::stm32vldiscovery();
    let before = board.run(&prog).unwrap();
    let after = board.run(&moved).unwrap();
    assert_eq!(before.return_value, after.return_value);
    assert!(after.avg_power_mw < before.avg_power_mw);
}

#[test]
fn whole_program_optimizer_beats_application_only_on_library_bound_code() {
    let board = Board::stm32vldiscovery();
    let prog = library_bound_program();
    let before = board.run(&prog).unwrap();

    let app_only = RamOptimizer::new().optimize(&prog, &board).unwrap();
    let whole = RamOptimizer::with_config(OptimizerConfig {
        scope: PlacementScope::WholeProgram,
        ..OptimizerConfig::default()
    })
    .optimize(&prog, &board)
    .unwrap();

    let app_run = board.run(&app_only.program).unwrap();
    let whole_run = board.run(&whole.program).unwrap();
    assert_eq!(before.return_value, app_run.return_value);
    assert_eq!(before.return_value, whole_run.return_value);

    // The library loop dominates this program, so whole-program placement
    // must save strictly more energy than the application-only pass.
    assert!(
        whole_run.energy_mj < app_run.energy_mj,
        "whole-program: {} mJ, application-only: {} mJ",
        whole_run.energy_mj,
        app_run.energy_mj
    );
    assert!(whole_run.avg_power_mw < before.avg_power_mw);
}

#[test]
fn whole_program_scope_helps_the_library_bound_beebs_kernels() {
    let board = Board::stm32vldiscovery();
    let bench = Benchmark::by_name("cubic").unwrap();
    let prog = bench.compile_cached(OptLevel::O2).unwrap();
    let before = board.run(&prog).unwrap();

    let app_only = RamOptimizer::new().optimize(&prog, &board).unwrap();
    let whole = RamOptimizer::with_config(OptimizerConfig {
        scope: PlacementScope::WholeProgram,
        ..OptimizerConfig::default()
    })
    .optimize(&prog, &board)
    .unwrap();

    let app_run = board.run(&app_only.program).unwrap();
    let whole_run = board.run(&whole.program).unwrap();
    assert_eq!(before.return_value, whole_run.return_value);

    // cubic spends most of its time in the soft-float library, so the
    // linker-level pass should find meaningfully more savings.
    let app_saving = before.energy_mj - app_run.energy_mj;
    let whole_saving = before.energy_mj - whole_run.energy_mj;
    assert!(
        whole_saving > app_saving,
        "whole-program saving {whole_saving} mJ should exceed application-only {app_saving} mJ"
    );
    assert!(whole.selected.len() > app_only.selected.len());
}

#[test]
fn default_scope_is_application_only_and_unchanged() {
    let config = OptimizerConfig::default();
    assert_eq!(config.scope, PlacementScope::ApplicationOnly);
}
