//! Property tests for the frontier sweep engine on randomly generated
//! placement parameters: the enumerated frontier must be a strict Pareto
//! staircase, grid sweeps must be monotone in the relaxed budget, and
//! warm-started chained solves must agree with cold per-point solves.

use std::collections::BTreeMap;

use flashram_core::{frontier::PlacementSession, BlockParams, ModelConfig, ProgramParams};
use flashram_ir::{BlockId, BlockRef, FuncId};
use flashram_mcu::Board;
use proptest::prelude::*;

/// Build a one-function `ProgramParams` from per-block raw numbers.  The
/// successor structure is a chain with a back edge from the last block to
/// the first, which exercises the Eq. 5 instrumentation coupling.
fn params_from(raw: &[(u32, u64, u64, u32, u64, u64)]) -> ProgramParams {
    params_with_wait_states(raw, &[])
}

/// Like [`params_from`], but block `i` additionally carries the flash
/// wait-state overhead `waits[i]` (folded into `C_b`, as the extractor
/// does), so RAM moves can have negative cycle deltas.
fn params_with_wait_states(raw: &[(u32, u64, u64, u32, u64, u64)], waits: &[u64]) -> ProgramParams {
    let n = raw.len() as u32;
    let mut blocks = BTreeMap::new();
    for (i, &(size_bytes, cycles, frequency, instr_bytes, instr_cycles, ram_extra)) in
        raw.iter().enumerate()
    {
        let flash_extra = waits.get(i).copied().unwrap_or(0);
        let i = i as u32;
        let mut successors = Vec::new();
        if i + 1 < n {
            successors.push(BlockId(i + 1));
        } else if n > 1 {
            successors.push(BlockId(0));
        }
        blocks.insert(
            BlockRef {
                func: FuncId(0),
                block: BlockId(i),
            },
            BlockParams {
                size_bytes,
                cycles: cycles + flash_extra,
                frequency,
                instr_bytes,
                instr_cycles,
                ram_extra_cycles: ram_extra,
                flash_extra_cycles: flash_extra,
                successors,
                memory_ops: 0,
            },
        );
    }
    ProgramParams { blocks }
}

fn block_strategy() -> impl Strategy<Value = (u32, u64, u64, u32, u64, u64)> {
    (
        2u32..80,   // S_b
        1u64..60,   // C_b
        1u64..2000, // F_b
        0u32..10,   // K_b
        0u64..8,    // T_b
        0u64..5,    // L_b
    )
}

fn config() -> ModelConfig {
    ModelConfig {
        x_limit: 4.0,
        r_spare: 512,
        ..ModelConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Relaxing the RAM budget never hurts the model energy, and the exact
    /// frontier is a strict staircase covering the grid sweep.
    #[test]
    fn frontier_is_monotone_and_covers_grid_sweeps(
        raw in proptest::collection::vec(block_strategy(), 2..9),
    ) {
        let params = params_from(&raw);
        let total_bytes: u32 = params.blocks.values().map(|p| p.size_bytes).sum();
        let max_budget = total_bytes + 64;

        let mut session = PlacementSession::from_params(params, &config());
        let frontier = session.enumerate_frontier(4.0, max_budget).expect("enumerable");
        prop_assert!(frontier.exact);
        prop_assert!(!frontier.points.is_empty());
        prop_assert_eq!(frontier.points[0].model_ram_used, 0);
        // Strict staircase: RAM increases, energy decreases.
        for w in frontier.points.windows(2) {
            prop_assert!(w[0].model_ram_used < w[1].model_ram_used);
            prop_assert!(w[0].objective > w[1].objective);
        }

        // A chained ascending grid sweep is monotone: energy non-increasing
        // and model RAM use non-decreasing in objective terms as the budget
        // relaxes, and each grid point matches its staircase step.
        let budgets: Vec<u32> = (0..=8).map(|i| i * max_budget / 8).collect();
        let mut prev_energy = f64::INFINITY;
        for (b, point) in session.sweep_ram(&budgets, 4.0) {
            let point = point.expect("feasible");
            prop_assert!(
                point.objective <= prev_energy + 1e-9 * prev_energy.abs().max(1.0),
                "budget {} worsened the energy: {} after {}",
                b,
                point.objective,
                prev_energy
            );
            prev_energy = point.objective;
            let step = frontier
                .points
                .iter()
                .rev()
                .find(|p| p.model_ram_used <= b)
                .expect("staircase starts at zero");
            prop_assert!(
                (point.objective - step.objective).abs()
                    <= 1e-6 * step.objective.abs().max(1.0),
                "budget {}: grid {} vs staircase {}",
                b,
                point.objective,
                step.objective
            );
        }
    }

    /// Per-device frontiers are strict Pareto staircases for every entry of
    /// the device database, including wait-state parts whose blocks carry a
    /// flash overhead `W_b` (so RAM moves can shed cycles, not just gain
    /// contention): random parameters, random per-block wait-state
    /// overheads, each device's own energy coefficients.
    #[test]
    fn per_device_frontiers_are_strict_staircases(
        raw in proptest::collection::vec(block_strategy(), 2..8),
        waits in proptest::collection::vec(0u64..12, 8),
        device_index in 0usize..3,
    ) {
        let desc = flashram_device::DEVICE_DB.all()[device_index];
        let params = params_with_wait_states(&raw, &waits);
        let total_bytes: u32 = params.blocks.values().map(|p| p.size_bytes).sum();
        let max_budget = total_bytes + 64;
        let (e_flash, e_ram) = Board::new(desc).power.model_coefficients();
        let device_config = ModelConfig { e_flash, e_ram, ..config() };

        let mut session = PlacementSession::from_params(params, &device_config);
        let frontier = session.enumerate_frontier(4.0, max_budget).expect("enumerable");
        prop_assert!(frontier.exact, "{}: truncated solve", desc.key);
        prop_assert!(!frontier.points.is_empty());
        prop_assert_eq!(frontier.points[0].model_ram_used, 0);
        for w in frontier.points.windows(2) {
            prop_assert!(
                w[0].model_ram_used < w[1].model_ram_used,
                "{}: RAM must strictly increase", desc.key
            );
            prop_assert!(
                w[0].objective > w[1].objective,
                "{}: energy must strictly decrease", desc.key
            );
        }
    }

    /// Chained warm-started sweeps are objective-identical to cold
    /// per-point solves, in both sweep directions and along both axes.
    #[test]
    fn chained_sweeps_match_cold_solves(
        raw in proptest::collection::vec(block_strategy(), 2..8),
        ascending in any::<bool>(),
    ) {
        let params = params_from(&raw);
        let total_bytes: u32 = params.blocks.values().map(|p| p.size_bytes).sum();
        let mut budgets: Vec<u32> =
            vec![0, total_bytes / 4, total_bytes / 2, total_bytes + 32];
        if !ascending {
            budgets.reverse();
        }
        let x_limits = [1.0, 1.1, 1.6, 3.0];

        let mut warm = PlacementSession::from_params(params.clone(), &config());
        let mut points: Vec<(u32, f64)> =
            budgets.iter().map(|&b| (b, 2.0)).collect();
        points.extend(x_limits.iter().map(|&x| (total_bytes, x)));

        for (r_spare, x_limit) in points {
            let w = warm.solve_point(r_spare, x_limit).expect("feasible");
            let mut cold = PlacementSession::from_params(params.clone(), &config());
            cold.solver.warm_start = false;
            let c = cold.solve_point(r_spare, x_limit).expect("feasible");
            prop_assert!(
                (w.objective - c.objective).abs() <= 1e-6 * c.objective.abs().max(1.0),
                "({}, {}): warm {} vs cold {}",
                r_spare,
                x_limit,
                w.objective,
                c.objective
            );
        }
    }
}
