//! Typed identifiers used across the IRs.

use std::fmt;

/// Index of a function within a module or machine program.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FuncId(pub u32);

/// Index of a basic block within its function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

/// A virtual register of the mid-level IR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VReg(pub u32);

impl FuncId {
    /// The function index as a `usize`, for indexing into function vectors.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl BlockId {
    /// The block index as a `usize`, for indexing into block vectors.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl VReg {
    /// The register number as a `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn{}", self.0)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_index() {
        assert_eq!(FuncId(3).to_string(), "fn3");
        assert_eq!(BlockId(7).to_string(), "bb7");
        assert_eq!(VReg(12).to_string(), "%12");
        assert_eq!(BlockId(7).index(), 7);
        assert_eq!(FuncId(3).index(), 3);
        assert_eq!(VReg(12).index(), 12);
    }

    #[test]
    fn ordering_follows_numbers() {
        assert!(BlockId(1) < BlockId(2));
        assert!(VReg(0) < VReg(10));
    }
}
