//! Intermediate representations and control-flow analyses.
//!
//! Two program representations live here:
//!
//! * the **mid-level IR** ([`mir`]): a simple three-address, virtual-register
//!   form produced by the `flashram-minicc` front end and consumed by its
//!   optimization passes and code generator, and
//! * the **machine-level program** ([`mach`]): functions made of basic blocks
//!   of `flashram-isa` instructions with explicit terminators, section
//!   assignments and layout metadata.  This is what the flash/RAM placement
//!   optimizer in `flashram-core` analyses and transforms, and what the
//!   `flashram-mcu` simulator executes.
//!
//! Shared control-flow machinery — successor/predecessor maps, reverse
//! post-order, dominators, natural-loop detection and loop depth — lives in
//! [`mod@cfg`] and works on any function shape that can enumerate block
//! successors.  Loop depth is the basis of the paper's *static* estimate of
//! the block execution frequency `F_b`; profiled frequencies are captured in
//! [`profile`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cfg;
pub mod ids;
pub mod mach;
pub mod mir;
pub mod profile;

pub use cfg::{Cfg, LoopInfo};
pub use ids::{BlockId, FuncId, VReg};
pub use mach::{BlockRef, GlobalData, MachineBlock, MachineFunction, MachineProgram, Section};
pub use mir::{
    BinOp, CmpOp, FuncRef, Global, GlobalInit, IrBlock, IrFunction, IrInst, IrModule, IrTerm,
    StackSlot, Value,
};
pub use profile::ProfileData;
