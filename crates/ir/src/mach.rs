//! The machine-level program representation.
//!
//! This is the form the flash/RAM placement optimization actually operates
//! on: functions are sequences of basic blocks of `flashram-isa`
//! instructions, each ending in an explicit [`Terminator`], each carrying its
//! own **section assignment** (flash or RAM).  The `flashram-mcu` simulator
//! executes this representation directly, and the linker/layout stage in
//! `flashram-core` assigns concrete addresses from the section assignments.

use std::collections::BTreeMap;
use std::fmt;

use flashram_isa::{Inst, Terminator};

use crate::cfg::Cfg;
use crate::ids::{BlockId, FuncId};

/// The memory a piece of code or data is placed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Section {
    /// Execute-in-place flash (the default for code and read-only data).
    #[default]
    Flash,
    /// On-chip SRAM (volatile data, and code relocated by the optimizer).
    Ram,
}

impl fmt::Display for Section {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Section::Flash => write!(f, "flash"),
            Section::Ram => write!(f, "ram"),
        }
    }
}

/// A reference to one basic block of one function of a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockRef {
    /// The function.
    pub func: FuncId,
    /// The block within that function.
    pub block: BlockId,
}

impl BlockRef {
    /// Convenience constructor from raw indices.
    pub fn new(func: usize, block: usize) -> BlockRef {
        BlockRef {
            func: FuncId(func as u32),
            block: BlockId(block as u32),
        }
    }
}

impl fmt::Display for BlockRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.func, self.block)
    }
}

/// A machine-level basic block.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MachineBlock {
    /// Straight-line instructions.
    pub insts: Vec<Inst>,
    /// The control transfer ending the block.
    pub term: Terminator<BlockId>,
    /// The memory this block is placed in.
    pub section: Section,
}

impl MachineBlock {
    /// A new block in flash with the given body and terminator.
    pub fn new(insts: Vec<Inst>, term: Terminator<BlockId>) -> MachineBlock {
        MachineBlock {
            insts,
            term,
            section: Section::Flash,
        }
    }

    /// Size of the block in bytes, terminator included (the paper's `S_b`
    /// when the block is un-instrumented).
    pub fn size_bytes(&self) -> u32 {
        self.insts.iter().map(Inst::size_bytes).sum::<u32>() + self.term.size_bytes()
    }

    /// Base cycles to execute the block body (excluding the terminator and
    /// any memory-contention stalls) — the bulk of the paper's `C_b`.
    pub fn body_cycles(&self) -> u64 {
        self.insts.iter().map(Inst::base_cycles).sum()
    }

    /// Number of load instructions in the block (drives the paper's `L_b`
    /// RAM-contention parameter).
    pub fn load_count(&self) -> u32 {
        self.insts.iter().filter(|i| i.is_load()).count() as u32
    }

    /// Number of store instructions in the block.
    pub fn store_count(&self) -> u32 {
        self.insts.iter().filter(|i| i.is_store()).count() as u32
    }

    /// Number of calls made from the block.
    pub fn call_count(&self) -> u32 {
        self.insts.iter().filter(|i| i.is_call()).count() as u32
    }
}

/// A machine-level function.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MachineFunction {
    /// Function name.
    pub name: String,
    /// Basic blocks; `BlockId(0)` is the entry.
    pub blocks: Vec<MachineBlock>,
    /// Bytes of stack frame the prologue reserves (locals + spills).
    pub frame_size: u32,
    /// Number of parameters (passed in `r0..r3`).
    pub num_params: usize,
    /// Library code (statically linked support routines): the optimizer must
    /// not relocate blocks of such functions — this models the paper's
    /// limitation that library and intrinsic code is invisible to the pass.
    pub is_library: bool,
}

impl MachineFunction {
    /// The entry block.
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Size of the function's code in bytes.
    pub fn size_bytes(&self) -> u32 {
        self.blocks.iter().map(MachineBlock::size_bytes).sum()
    }

    /// Build the control-flow graph of the function.
    pub fn cfg(&self) -> Cfg {
        let succs = self
            .blocks
            .iter()
            .map(|b| b.term.successors().iter().map(|s| s.index()).collect())
            .collect();
        Cfg::new(self.blocks.len(), 0, succs)
    }

    /// The block ids in this function.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        (0..self.blocks.len() as u32).map(BlockId)
    }
}

/// A data object of the program (global variable or constant table).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GlobalData {
    /// Name.
    pub name: String,
    /// Initial byte image.
    pub bytes: Vec<u8>,
    /// Whether the program may write to it.  Mutable globals live in RAM
    /// (copied there at startup by the runtime); immutable ones stay in
    /// flash as read-only data.
    pub mutable: bool,
}

impl GlobalData {
    /// Size in bytes.
    pub fn size(&self) -> u32 {
        self.bytes.len() as u32
    }

    /// The section this global is placed in.
    pub fn section(&self) -> Section {
        if self.mutable {
            Section::Ram
        } else {
            Section::Flash
        }
    }
}

/// A complete linked program: functions plus data, ready for layout,
/// optimization and simulation.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct MachineProgram {
    /// Functions; `Inst::Bl { callee }` indices refer into this vector.
    pub functions: Vec<MachineFunction>,
    /// Data objects; `SymbolId` values refer into this vector.
    pub globals: Vec<GlobalData>,
    /// Index of the program entry function (conventionally `main`).
    pub entry: FuncId,
}

impl MachineProgram {
    /// A stable 64-bit fingerprint of the program's full contents —
    /// functions, instructions, terminators, section assignments, globals
    /// and entry point.  Computed with FNV-1a over the [`Hash`] encoding,
    /// so it is identical for equal programs across runs and processes
    /// (unlike `DefaultHasher`, which is randomly keyed per process).
    ///
    /// This is the cache key the placement service layer uses for
    /// `(program, board, scope)` session lookup.  It is a fingerprint, not
    /// a cryptographic digest: collisions are improbable but possible, so
    /// collision-safe consumers must still compare programs on hit.
    pub fn content_fingerprint(&self) -> u64 {
        use std::hash::{Hash as _, Hasher as _};
        /// FNV-1a with the standard 64-bit offset basis and prime.
        struct Fnv1a(u64);
        impl std::hash::Hasher for Fnv1a {
            fn finish(&self) -> u64 {
                self.0
            }
            fn write(&mut self, bytes: &[u8]) {
                for &b in bytes {
                    self.0 ^= u64::from(b);
                    self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
                }
            }
        }
        let mut h = Fnv1a(0xcbf2_9ce4_8422_2325);
        self.hash(&mut h);
        h.finish()
    }

    /// Find a function index by name.
    pub fn function_index(&self, name: &str) -> Option<FuncId> {
        self.functions
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(i as u32))
    }

    /// Find a function by name.
    pub fn function(&self, name: &str) -> Option<&MachineFunction> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Access a block by reference.
    ///
    /// # Panics
    ///
    /// Panics if the reference is out of range.
    pub fn block(&self, r: BlockRef) -> &MachineBlock {
        &self.functions[r.func.index()].blocks[r.block.index()]
    }

    /// Mutable access to a block by reference.
    ///
    /// # Panics
    ///
    /// Panics if the reference is out of range.
    pub fn block_mut(&mut self, r: BlockRef) -> &mut MachineBlock {
        &mut self.functions[r.func.index()].blocks[r.block.index()]
    }

    /// Iterate over every block reference in the program.
    pub fn block_refs(&self) -> Vec<BlockRef> {
        let mut refs = Vec::new();
        for (fi, f) in self.functions.iter().enumerate() {
            for bi in 0..f.blocks.len() {
                refs.push(BlockRef::new(fi, bi));
            }
        }
        refs
    }

    /// Block references of non-library functions only (the blocks the
    /// optimizer is allowed to consider).
    pub fn optimizable_block_refs(&self) -> Vec<BlockRef> {
        let mut refs = Vec::new();
        for (fi, f) in self.functions.iter().enumerate() {
            if f.is_library {
                continue;
            }
            for bi in 0..f.blocks.len() {
                refs.push(BlockRef::new(fi, bi));
            }
        }
        refs
    }

    /// Total code size in bytes.
    pub fn code_size(&self) -> u32 {
        self.functions.iter().map(MachineFunction::size_bytes).sum()
    }

    /// Total bytes of code currently assigned to RAM.
    pub fn ram_code_size(&self) -> u32 {
        self.functions
            .iter()
            .flat_map(|f| f.blocks.iter())
            .filter(|b| b.section == Section::Ram)
            .map(MachineBlock::size_bytes)
            .sum()
    }

    /// Total bytes of mutable data (placed in RAM at startup).
    pub fn ram_data_size(&self) -> u32 {
        self.globals
            .iter()
            .filter(|g| g.mutable)
            .map(GlobalData::size)
            .sum()
    }

    /// Total bytes of read-only data (kept in flash).
    pub fn rodata_size(&self) -> u32 {
        self.globals
            .iter()
            .filter(|g| !g.mutable)
            .map(GlobalData::size)
            .sum()
    }

    /// Per-function block counts, useful for reporting.
    pub fn block_counts(&self) -> BTreeMap<String, usize> {
        self.functions
            .iter()
            .map(|f| (f.name.clone(), f.blocks.len()))
            .collect()
    }

    /// Check structural invariants: the entry function exists, every
    /// terminator target is in range, and every call refers to an existing
    /// function.  Returns a list of human-readable problems (empty when the
    /// program is well formed).
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        if self.entry.index() >= self.functions.len() {
            problems.push(format!(
                "entry function {} out of range ({} functions)",
                self.entry,
                self.functions.len()
            ));
        }
        for (fi, f) in self.functions.iter().enumerate() {
            if f.blocks.is_empty() {
                problems.push(format!("function {} has no blocks", f.name));
            }
            for (bi, b) in f.blocks.iter().enumerate() {
                for succ in b.term.successors() {
                    if succ.index() >= f.blocks.len() {
                        problems.push(format!(
                            "{}:{} branches to out-of-range block {}",
                            f.name, bi, succ
                        ));
                    }
                }
                for inst in &b.insts {
                    if let Inst::Bl { callee } = inst {
                        if *callee as usize >= self.functions.len() {
                            problems.push(format!(
                                "{}:{} calls out-of-range function {}",
                                f.name, bi, callee
                            ));
                        }
                    }
                    if let Inst::LdrLit {
                        value: flashram_isa::inst::LitValue::Symbol(s),
                        ..
                    } = inst
                    {
                        if s.0 as usize >= self.globals.len() {
                            problems.push(format!(
                                "{}:{} refers to out-of-range symbol {}",
                                f.name, bi, s
                            ));
                        }
                    }
                }
            }
            let _ = fi;
        }
        problems
    }
}

impl fmt::Display for MachineProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (fi, func) in self.functions.iter().enumerate() {
            writeln!(
                f,
                "; fn{fi} {} ({} bytes{})",
                func.name,
                func.size_bytes(),
                if func.is_library { ", library" } else { "" }
            )?;
            writeln!(f, "{}:", func.name)?;
            for (bi, b) in func.blocks.iter().enumerate() {
                writeln!(f, ".bb{bi}:  ; section {}", b.section)?;
                for inst in &b.insts {
                    writeln!(f, "    {inst}")?;
                }
                writeln!(f, "    {}", b.term)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashram_isa::{Cond, MemWidth, Reg};

    fn simple_block(term: Terminator<BlockId>) -> MachineBlock {
        MachineBlock::new(
            vec![
                Inst::MovImm {
                    rd: Reg::R0,
                    imm: 1,
                },
                Inst::Load {
                    rd: Reg::R1,
                    base: Reg::Sp,
                    offset: 0,
                    width: MemWidth::Word,
                },
                Inst::AddReg {
                    rd: Reg::R0,
                    rn: Reg::R0,
                    rm: Reg::R1,
                },
            ],
            term,
        )
    }

    fn two_block_function() -> MachineFunction {
        MachineFunction {
            name: "f".into(),
            blocks: vec![
                simple_block(Terminator::CondBranch {
                    cond: Cond::Ne,
                    target: BlockId(1),
                    fallthrough: BlockId(1),
                }),
                MachineBlock::new(vec![], Terminator::Return),
            ],
            frame_size: 8,
            num_params: 0,
            is_library: false,
        }
    }

    #[test]
    fn block_metrics() {
        let b = simple_block(Terminator::Return);
        // mov(2) + ldr sp-rel(2) + add(2) + bx lr(2)
        assert_eq!(b.size_bytes(), 8);
        // 1 + 2 + 1
        assert_eq!(b.body_cycles(), 4);
        assert_eq!(b.load_count(), 1);
        assert_eq!(b.store_count(), 0);
    }

    #[test]
    fn program_sizes_and_sections() {
        let mut prog = MachineProgram {
            functions: vec![two_block_function()],
            globals: vec![
                GlobalData {
                    name: "buf".into(),
                    bytes: vec![0; 64],
                    mutable: true,
                },
                GlobalData {
                    name: "table".into(),
                    bytes: vec![1; 32],
                    mutable: false,
                },
            ],
            entry: FuncId(0),
        };
        assert_eq!(prog.ram_data_size(), 64);
        assert_eq!(prog.rodata_size(), 32);
        assert_eq!(prog.ram_code_size(), 0);
        let r = BlockRef::new(0, 0);
        prog.block_mut(r).section = Section::Ram;
        assert_eq!(prog.ram_code_size(), prog.block(r).size_bytes());
        assert_eq!(prog.globals[0].section(), Section::Ram);
        assert_eq!(prog.globals[1].section(), Section::Flash);
    }

    #[test]
    fn fingerprint_is_stable_and_content_sensitive() {
        let prog = MachineProgram {
            functions: vec![two_block_function()],
            globals: vec![GlobalData {
                name: "buf".into(),
                bytes: vec![0; 8],
                mutable: true,
            }],
            entry: FuncId(0),
        };
        // Same contents → same fingerprint (including across clones).
        assert_eq!(
            prog.content_fingerprint(),
            prog.clone().content_fingerprint()
        );
        // Known value: the FNV-1a encoding must not drift silently across
        // refactors, or every persisted cache key would go stale.
        assert_ne!(prog.content_fingerprint(), 0);

        // Any content change — an instruction, a section bit, a global
        // byte — moves the fingerprint.
        let mut changed = prog.clone();
        changed.functions[0].blocks[0].section = Section::Ram;
        assert_ne!(prog.content_fingerprint(), changed.content_fingerprint());
        let mut changed = prog.clone();
        changed.globals[0].bytes[3] = 7;
        assert_ne!(prog.content_fingerprint(), changed.content_fingerprint());
        let mut changed = prog.clone();
        changed.functions[0].blocks[0].insts.pop();
        assert_ne!(prog.content_fingerprint(), changed.content_fingerprint());
    }

    #[test]
    fn validation_catches_bad_references() {
        let mut f = two_block_function();
        f.blocks[1].term = Terminator::Branch { target: BlockId(9) };
        f.blocks[0].insts.push(Inst::Bl { callee: 5 });
        let prog = MachineProgram {
            functions: vec![f],
            globals: vec![],
            entry: FuncId(0),
        };
        let problems = prog.validate();
        assert_eq!(problems.len(), 2, "{problems:?}");
        assert!(problems.iter().any(|p| p.contains("out-of-range block")));
        assert!(problems.iter().any(|p| p.contains("out-of-range function")));
    }

    #[test]
    fn well_formed_program_validates_cleanly() {
        let prog = MachineProgram {
            functions: vec![two_block_function()],
            globals: vec![],
            entry: FuncId(0),
        };
        assert!(prog.validate().is_empty());
    }

    #[test]
    fn block_refs_enumerate_every_block() {
        let prog = MachineProgram {
            functions: vec![two_block_function(), two_block_function()],
            globals: vec![],
            entry: FuncId(0),
        };
        assert_eq!(prog.block_refs().len(), 4);
        assert_eq!(prog.optimizable_block_refs().len(), 4);
    }

    #[test]
    fn library_functions_are_not_optimizable() {
        let mut lib = two_block_function();
        lib.is_library = true;
        let prog = MachineProgram {
            functions: vec![two_block_function(), lib],
            globals: vec![],
            entry: FuncId(0),
        };
        assert_eq!(prog.block_refs().len(), 4);
        assert_eq!(prog.optimizable_block_refs().len(), 2);
        assert!(prog
            .optimizable_block_refs()
            .iter()
            .all(|r| r.func == FuncId(0)));
    }

    #[test]
    fn function_cfg_matches_terminators() {
        let f = two_block_function();
        let cfg = f.cfg();
        assert_eq!(cfg.succs(0), &[1, 1]);
        assert!(cfg.succs(1).is_empty());
    }

    #[test]
    fn display_contains_function_and_block_labels() {
        let prog = MachineProgram {
            functions: vec![two_block_function()],
            globals: vec![],
            entry: FuncId(0),
        };
        let text = prog.to_string();
        assert!(text.contains("f:"));
        assert!(text.contains(".bb0:"));
        assert!(text.contains("bx lr"));
    }
}
