//! Control-flow graph analyses shared by the compiler and the optimizer.
//!
//! The flash/RAM placement model needs, per basic block, a set of successors
//! (`Succ(b)` in the paper) and a static estimate of the execution frequency
//! `F_b`.  The paper derives the estimate from the block's **loop depth**;
//! this module provides the supporting machinery: predecessor maps, reverse
//! post-order, iterative dominators, back-edge detection, natural loops and a
//! per-block loop-depth map.

use std::collections::BTreeSet;

/// A control-flow graph over blocks `0..num_blocks`, described purely by its
/// successor lists.
///
/// # Example
///
/// ```
/// use flashram_ir::Cfg;
///
/// // 0 -> 1 -> 2 -> 1 (loop), 2 -> 3 (exit)
/// let cfg = Cfg::new(4, 0, vec![vec![1], vec![2], vec![1, 3], vec![]]);
/// let loops = cfg.loop_info();
/// assert_eq!(loops.depth(1), 1);
/// assert_eq!(loops.depth(3), 0);
/// ```
#[derive(Debug, Clone)]
pub struct Cfg {
    entry: usize,
    succs: Vec<Vec<usize>>,
    preds: Vec<Vec<usize>>,
}

impl Cfg {
    /// Build a CFG from successor lists.
    ///
    /// # Panics
    ///
    /// Panics if `entry` or any successor index is out of range.
    pub fn new(num_blocks: usize, entry: usize, succs: Vec<Vec<usize>>) -> Cfg {
        assert_eq!(succs.len(), num_blocks, "one successor list per block");
        assert!(entry < num_blocks.max(1), "entry block out of range");
        let mut preds = vec![Vec::new(); num_blocks];
        for (b, ss) in succs.iter().enumerate() {
            for &s in ss {
                assert!(s < num_blocks, "successor {s} of block {b} out of range");
                preds[s].push(b);
            }
        }
        Cfg {
            entry,
            succs,
            preds,
        }
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// Whether the graph has no blocks.
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// The entry block.
    pub fn entry(&self) -> usize {
        self.entry
    }

    /// Successors of a block.
    pub fn succs(&self, block: usize) -> &[usize] {
        &self.succs[block]
    }

    /// Predecessors of a block.
    pub fn preds(&self, block: usize) -> &[usize] {
        &self.preds[block]
    }

    /// Blocks in reverse post-order from the entry.  Unreachable blocks are
    /// appended afterwards in index order so every block appears exactly once.
    pub fn reverse_post_order(&self) -> Vec<usize> {
        let n = self.len();
        if n == 0 {
            return Vec::new();
        }
        let mut visited = vec![false; n];
        let mut post = Vec::with_capacity(n);
        // Iterative DFS computing post-order.
        let mut stack: Vec<(usize, usize)> = vec![(self.entry, 0)];
        visited[self.entry] = true;
        while let Some(&mut (block, ref mut idx)) = stack.last_mut() {
            if *idx < self.succs[block].len() {
                let next = self.succs[block][*idx];
                *idx += 1;
                if !visited[next] {
                    visited[next] = true;
                    stack.push((next, 0));
                }
            } else {
                post.push(block);
                stack.pop();
            }
        }
        post.reverse();
        post.extend((0..n).filter(|&b| !visited[b]));
        post
    }

    /// Immediate dominators, computed with the Cooper–Harvey–Kennedy
    /// iterative algorithm.  The entry dominates itself; unreachable blocks
    /// have themselves as immediate dominator.
    pub fn immediate_dominators(&self) -> Vec<usize> {
        let n = self.len();
        if n == 0 {
            return Vec::new();
        }
        let rpo = self.reverse_post_order();
        let mut rpo_index = vec![usize::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_index[b] = i;
        }
        let mut idom = vec![usize::MAX; n];
        idom[self.entry] = self.entry;
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &rpo {
                if b == self.entry {
                    continue;
                }
                let mut new_idom = usize::MAX;
                for &p in &self.preds[b] {
                    if idom[p] == usize::MAX {
                        continue;
                    }
                    new_idom = if new_idom == usize::MAX {
                        p
                    } else {
                        intersect(&idom, &rpo_index, p, new_idom)
                    };
                }
                if new_idom != usize::MAX && idom[b] != new_idom {
                    idom[b] = new_idom;
                    changed = true;
                }
            }
        }
        for (b, d) in idom.iter_mut().enumerate() {
            if *d == usize::MAX {
                *d = b;
            }
        }
        idom
    }

    /// Whether `a` dominates `b` (reflexively).
    pub fn dominates(&self, a: usize, b: usize, idom: &[usize]) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            let next = idom[cur];
            if next == cur {
                return cur == a;
            }
            cur = next;
        }
    }

    /// Blocks reachable from the entry.
    fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.len()];
        if self.is_empty() {
            return seen;
        }
        let mut stack = vec![self.entry];
        seen[self.entry] = true;
        while let Some(b) = stack.pop() {
            for &s in &self.succs[b] {
                if !seen[s] {
                    seen[s] = true;
                    stack.push(s);
                }
            }
        }
        seen
    }

    /// Back edges `(tail, head)` where `head` dominates `tail`.  Only edges
    /// between entry-reachable blocks qualify: an unreachable block is its
    /// own immediate dominator by convention, which would otherwise turn
    /// every unreachable self-edge into a spurious back edge.
    pub fn back_edges(&self) -> Vec<(usize, usize)> {
        self.back_edges_in(&self.reachable())
    }

    fn back_edges_in(&self, live: &[bool]) -> Vec<(usize, usize)> {
        let idom = self.immediate_dominators();
        let mut edges = Vec::new();
        for (b, succs) in self.succs.iter().enumerate() {
            if !live[b] {
                continue;
            }
            for &s in succs {
                if self.dominates(s, b, &idom) {
                    edges.push((b, s));
                }
            }
        }
        edges
    }

    /// Natural-loop and loop-depth information.
    pub fn loop_info(&self) -> LoopInfo {
        let live = self.reachable();
        let mut loops: Vec<NaturalLoop> = Vec::new();
        for (tail, head) in self.back_edges_in(&live) {
            let mut body: BTreeSet<usize> = BTreeSet::new();
            body.insert(head);
            let mut stack = vec![tail];
            while let Some(b) = stack.pop() {
                // The predecessor walk must stay inside the reachable
                // subgraph: an unreachable predecessor can "reach" the back
                // edge but is not dominated by the header, so it is not part
                // of the natural loop.
                if live[b] && body.insert(b) {
                    for &p in &self.preds[b] {
                        stack.push(p);
                    }
                }
            }
            loops.push(NaturalLoop { header: head, body });
        }
        // Merge loops that share a header (multiple back edges to one header).
        loops.sort_by_key(|l| l.header);
        let mut merged: Vec<NaturalLoop> = Vec::new();
        for l in loops {
            match merged.last_mut() {
                Some(last) if last.header == l.header => {
                    last.body.extend(l.body);
                }
                _ => merged.push(l),
            }
        }
        let mut depth = vec![0u32; self.len()];
        for l in &merged {
            for &b in &l.body {
                depth[b] += 1;
            }
        }
        LoopInfo {
            loops: merged,
            depth,
        }
    }
}

fn intersect(idom: &[usize], rpo_index: &[usize], mut a: usize, mut b: usize) -> usize {
    while a != b {
        while rpo_index[a] > rpo_index[b] {
            a = idom[a];
        }
        while rpo_index[b] > rpo_index[a] {
            b = idom[b];
        }
    }
    a
}

/// A natural loop: a header block plus the set of blocks that can reach the
/// back edge without leaving the loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaturalLoop {
    /// Loop header (target of the back edge, dominates the body).
    pub header: usize,
    /// All blocks in the loop, including the header.
    pub body: BTreeSet<usize>,
}

/// Loop nesting information for a function.
#[derive(Debug, Clone, Default)]
pub struct LoopInfo {
    /// The natural loops found, one per distinct header.
    pub loops: Vec<NaturalLoop>,
    depth: Vec<u32>,
}

impl LoopInfo {
    /// Loop-nesting depth of a block (0 = not in any loop).
    pub fn depth(&self, block: usize) -> u32 {
        self.depth.get(block).copied().unwrap_or(0)
    }

    /// The maximum loop depth in the function.
    pub fn max_depth(&self) -> u32 {
        self.depth.iter().copied().max().unwrap_or(0)
    }

    /// Number of natural loops.
    pub fn loop_count(&self) -> usize {
        self.loops.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Diamond: 0 -> {1,2} -> 3
    fn diamond() -> Cfg {
        Cfg::new(4, 0, vec![vec![1, 2], vec![3], vec![3], vec![]])
    }

    /// Simple loop: 0 -> 1 -> 2 -> {1, 3}
    fn single_loop() -> Cfg {
        Cfg::new(4, 0, vec![vec![1], vec![2], vec![1, 3], vec![]])
    }

    /// Nested loop:
    /// 0 -> 1 ; 1 -> 2 ; 2 -> 3 ; 3 -> {2, 4} ; 4 -> {1, 5} ; 5
    fn nested_loop() -> Cfg {
        Cfg::new(
            6,
            0,
            vec![vec![1], vec![2], vec![3], vec![2, 4], vec![1, 5], vec![]],
        )
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_all_blocks() {
        for cfg in [diamond(), single_loop(), nested_loop()] {
            let rpo = cfg.reverse_post_order();
            assert_eq!(rpo[0], cfg.entry());
            let mut sorted = rpo.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..cfg.len()).collect::<Vec<_>>());
        }
    }

    #[test]
    fn rpo_places_unreachable_blocks_last() {
        let cfg = Cfg::new(3, 0, vec![vec![1], vec![], vec![1]]);
        let rpo = cfg.reverse_post_order();
        assert_eq!(rpo, vec![0, 1, 2]);
    }

    #[test]
    fn dominators_of_diamond() {
        let cfg = diamond();
        let idom = cfg.immediate_dominators();
        assert_eq!(idom[0], 0);
        assert_eq!(idom[1], 0);
        assert_eq!(idom[2], 0);
        assert_eq!(idom[3], 0);
        assert!(cfg.dominates(0, 3, &idom));
        assert!(!cfg.dominates(1, 3, &idom));
    }

    #[test]
    fn dominators_of_chain() {
        let cfg = Cfg::new(3, 0, vec![vec![1], vec![2], vec![]]);
        let idom = cfg.immediate_dominators();
        assert_eq!(idom, vec![0, 0, 1]);
        assert!(cfg.dominates(1, 2, &idom));
        assert!(cfg.dominates(2, 2, &idom));
        assert!(!cfg.dominates(2, 1, &idom));
    }

    #[test]
    fn back_edge_and_loop_detection() {
        let cfg = single_loop();
        assert_eq!(cfg.back_edges(), vec![(2, 1)]);
        let info = cfg.loop_info();
        assert_eq!(info.loop_count(), 1);
        assert_eq!(info.loops[0].header, 1);
        assert_eq!(info.loops[0].body, BTreeSet::from([1, 2]));
        assert_eq!(info.depth(0), 0);
        assert_eq!(info.depth(1), 1);
        assert_eq!(info.depth(2), 1);
        assert_eq!(info.depth(3), 0);
    }

    #[test]
    fn nested_loops_have_depth_two() {
        let cfg = nested_loop();
        let info = cfg.loop_info();
        assert_eq!(info.loop_count(), 2);
        assert_eq!(info.depth(2), 2);
        assert_eq!(info.depth(3), 2);
        assert_eq!(info.depth(1), 1);
        assert_eq!(info.depth(4), 1);
        assert_eq!(info.depth(0), 0);
        assert_eq!(info.depth(5), 0);
        assert_eq!(info.max_depth(), 2);
    }

    #[test]
    fn multiple_back_edges_to_one_header_merge() {
        // 0 -> 1; 1 -> {2, 3}; 2 -> 1; 3 -> {1, 4}
        let cfg = Cfg::new(5, 0, vec![vec![1], vec![2, 3], vec![1], vec![1, 4], vec![]]);
        let info = cfg.loop_info();
        assert_eq!(info.loop_count(), 1);
        assert_eq!(info.loops[0].body, BTreeSet::from([1, 2, 3]));
        assert_eq!(info.depth(2), 1);
        assert_eq!(info.depth(3), 1);
    }

    #[test]
    fn preds_are_inverse_of_succs() {
        let cfg = nested_loop();
        for b in 0..cfg.len() {
            for &s in cfg.succs(b) {
                assert!(cfg.preds(s).contains(&b));
            }
            for &p in cfg.preds(b) {
                assert!(cfg.succs(p).contains(&b));
            }
        }
    }

    #[test]
    #[should_panic(expected = "successor")]
    fn out_of_range_successor_panics() {
        let _ = Cfg::new(2, 0, vec![vec![5], vec![]]);
    }

    #[test]
    fn empty_cfg_is_fine() {
        let cfg = Cfg::new(0, 0, vec![]);
        assert!(cfg.is_empty());
        assert!(cfg.reverse_post_order().is_empty());
        assert!(cfg.immediate_dominators().is_empty());
    }
}
