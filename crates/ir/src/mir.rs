//! The mid-level, three-address intermediate representation.
//!
//! `flashram-minicc` lowers its typed AST into this form, runs its
//! optimization passes over it, and then generates Thumb-2-like machine code
//! from it.  Values are virtual registers or constants; scalar locals are
//! promoted to virtual registers during lowering while arrays and
//! address-taken locals live in explicit stack slots.

use std::fmt;

use flashram_isa::MemWidth;

use crate::cfg::Cfg;
use crate::ids::{BlockId, VReg};

/// An operand: a virtual register or an immediate constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Value {
    /// A virtual register.
    Reg(VReg),
    /// A 32-bit constant.
    Const(i32),
}

impl Value {
    /// The constant value, if this is a constant.
    pub fn as_const(self) -> Option<i32> {
        match self {
            Value::Const(c) => Some(c),
            Value::Reg(_) => None,
        }
    }

    /// The virtual register, if this is a register.
    pub fn as_reg(self) -> Option<VReg> {
        match self {
            Value::Reg(r) => Some(r),
            Value::Const(_) => None,
        }
    }
}

impl From<VReg> for Value {
    fn from(r: VReg) -> Value {
        Value::Reg(r)
    }
}

impl From<i32> for Value {
    fn from(c: i32) -> Value {
        Value::Const(c)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Reg(r) => write!(f, "{r}"),
            Value::Const(c) => write!(f, "{c}"),
        }
    }
}

/// Binary arithmetic and bitwise operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Signed division (0 on division by zero, matching the Cortex-M3's
    /// default divide-by-zero behaviour of returning zero).
    Div,
    /// Unsigned division.
    Udiv,
    /// Signed remainder.
    Rem,
    /// Unsigned remainder.
    Urem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive or.
    Xor,
    /// Logical shift left.
    Shl,
    /// Logical shift right.
    Lshr,
    /// Arithmetic shift right.
    Ashr,
}

impl BinOp {
    /// Constant-fold the operation, mirroring the target's semantics
    /// (wrapping arithmetic, shift amounts masked to 0–31, division by zero
    /// yields zero).
    pub fn eval(self, lhs: i32, rhs: i32) -> i32 {
        match self {
            BinOp::Add => lhs.wrapping_add(rhs),
            BinOp::Sub => lhs.wrapping_sub(rhs),
            BinOp::Mul => lhs.wrapping_mul(rhs),
            BinOp::Div => {
                if rhs == 0 {
                    0
                } else {
                    lhs.wrapping_div(rhs)
                }
            }
            BinOp::Udiv => {
                if rhs == 0 {
                    0
                } else {
                    ((lhs as u32) / (rhs as u32)) as i32
                }
            }
            BinOp::Rem => {
                if rhs == 0 {
                    0
                } else {
                    lhs.wrapping_rem(rhs)
                }
            }
            BinOp::Urem => {
                if rhs == 0 {
                    0
                } else {
                    ((lhs as u32) % (rhs as u32)) as i32
                }
            }
            BinOp::And => lhs & rhs,
            BinOp::Or => lhs | rhs,
            BinOp::Xor => lhs ^ rhs,
            BinOp::Shl => lhs.wrapping_shl(rhs as u32 & 31),
            BinOp::Lshr => ((lhs as u32).wrapping_shr(rhs as u32 & 31)) as i32,
            BinOp::Ashr => lhs.wrapping_shr(rhs as u32 & 31),
        }
    }

    /// Whether the operation is commutative.
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor
        )
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "sdiv",
            BinOp::Udiv => "udiv",
            BinOp::Rem => "srem",
            BinOp::Urem => "urem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Lshr => "lshr",
            BinOp::Ashr => "ashr",
        };
        write!(f, "{s}")
    }
}

/// Comparison operations (signed and unsigned).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less than.
    Slt,
    /// Signed less than or equal.
    Sle,
    /// Signed greater than.
    Sgt,
    /// Signed greater than or equal.
    Sge,
    /// Unsigned less than.
    Ult,
    /// Unsigned less than or equal.
    Ule,
    /// Unsigned greater than.
    Ugt,
    /// Unsigned greater than or equal.
    Uge,
}

impl CmpOp {
    /// Evaluate the comparison on constants.
    pub fn eval(self, lhs: i32, rhs: i32) -> bool {
        let (ul, ur) = (lhs as u32, rhs as u32);
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
            CmpOp::Slt => lhs < rhs,
            CmpOp::Sle => lhs <= rhs,
            CmpOp::Sgt => lhs > rhs,
            CmpOp::Sge => lhs >= rhs,
            CmpOp::Ult => ul < ur,
            CmpOp::Ule => ul <= ur,
            CmpOp::Ugt => ul > ur,
            CmpOp::Uge => ul >= ur,
        }
    }

    /// The negated comparison.
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Slt => CmpOp::Sge,
            CmpOp::Sle => CmpOp::Sgt,
            CmpOp::Sgt => CmpOp::Sle,
            CmpOp::Sge => CmpOp::Slt,
            CmpOp::Ult => CmpOp::Uge,
            CmpOp::Ule => CmpOp::Ugt,
            CmpOp::Ugt => CmpOp::Ule,
            CmpOp::Uge => CmpOp::Ult,
        }
    }

    /// The comparison with its operands swapped.
    pub fn swap_operands(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Slt => CmpOp::Sgt,
            CmpOp::Sle => CmpOp::Sge,
            CmpOp::Sgt => CmpOp::Slt,
            CmpOp::Sge => CmpOp::Sle,
            CmpOp::Ult => CmpOp::Ugt,
            CmpOp::Ule => CmpOp::Uge,
            CmpOp::Ugt => CmpOp::Ult,
            CmpOp::Uge => CmpOp::Ule,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Slt => "slt",
            CmpOp::Sle => "sle",
            CmpOp::Sgt => "sgt",
            CmpOp::Sge => "sge",
            CmpOp::Ult => "ult",
            CmpOp::Ule => "ule",
            CmpOp::Ugt => "ugt",
            CmpOp::Uge => "uge",
        };
        write!(f, "{s}")
    }
}

/// Reference to a callee, by name; resolved to a function index when the
/// module is assembled into a machine program.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FuncRef(pub String);

impl fmt::Display for FuncRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// A mid-level IR instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrInst {
    /// `dst = op lhs, rhs`
    Bin {
        /// Operation.
        op: BinOp,
        /// Destination register.
        dst: VReg,
        /// Left operand.
        lhs: Value,
        /// Right operand.
        rhs: Value,
    },
    /// `dst = (lhs op rhs) ? 1 : 0`
    Cmp {
        /// Comparison.
        op: CmpOp,
        /// Destination register (receives 0 or 1).
        dst: VReg,
        /// Left operand.
        lhs: Value,
        /// Right operand.
        rhs: Value,
    },
    /// `dst = src`
    Copy {
        /// Destination register.
        dst: VReg,
        /// Source operand.
        src: Value,
    },
    /// `dst = -src`
    Neg {
        /// Destination register.
        dst: VReg,
        /// Source operand.
        src: Value,
    },
    /// `dst = ~src`
    Not {
        /// Destination register.
        dst: VReg,
        /// Source operand.
        src: Value,
    },
    /// `dst = &slot` — address of a stack slot.
    FrameAddr {
        /// Destination register.
        dst: VReg,
        /// Stack-slot index within the function.
        slot: usize,
    },
    /// `dst = &global` — address of a module global.
    GlobalAddr {
        /// Destination register.
        dst: VReg,
        /// Global index within the module.
        global: usize,
    },
    /// `dst = *(addr + offset)`
    Load {
        /// Destination register.
        dst: VReg,
        /// Base address.
        addr: Value,
        /// Constant byte offset.
        offset: i32,
        /// Access width.
        width: MemWidth,
    },
    /// `*(addr + offset) = src`
    Store {
        /// Value stored.
        src: Value,
        /// Base address.
        addr: Value,
        /// Constant byte offset.
        offset: i32,
        /// Access width.
        width: MemWidth,
    },
    /// `dst = callee(args...)`
    Call {
        /// Destination register for the return value, if used.
        dst: Option<VReg>,
        /// Callee.
        callee: FuncRef,
        /// Arguments (at most four are supported, matching the AAPCS
        /// register-argument convention the code generator implements).
        args: Vec<Value>,
    },
}

impl IrInst {
    /// The register defined by this instruction, if any.
    pub fn dst(&self) -> Option<VReg> {
        match self {
            IrInst::Bin { dst, .. }
            | IrInst::Cmp { dst, .. }
            | IrInst::Copy { dst, .. }
            | IrInst::Neg { dst, .. }
            | IrInst::Not { dst, .. }
            | IrInst::FrameAddr { dst, .. }
            | IrInst::GlobalAddr { dst, .. }
            | IrInst::Load { dst, .. } => Some(*dst),
            IrInst::Store { .. } => None,
            IrInst::Call { dst, .. } => *dst,
        }
    }

    /// The values read by this instruction.
    pub fn uses(&self) -> Vec<Value> {
        match self {
            IrInst::Bin { lhs, rhs, .. } | IrInst::Cmp { lhs, rhs, .. } => vec![*lhs, *rhs],
            IrInst::Copy { src, .. } | IrInst::Neg { src, .. } | IrInst::Not { src, .. } => {
                vec![*src]
            }
            IrInst::FrameAddr { .. } | IrInst::GlobalAddr { .. } => vec![],
            IrInst::Load { addr, .. } => vec![*addr],
            IrInst::Store { src, addr, .. } => vec![*src, *addr],
            IrInst::Call { args, .. } => args.clone(),
        }
    }

    /// Mutable references to every value operand, for use-rewriting passes.
    pub fn uses_mut(&mut self) -> Vec<&mut Value> {
        match self {
            IrInst::Bin { lhs, rhs, .. } | IrInst::Cmp { lhs, rhs, .. } => vec![lhs, rhs],
            IrInst::Copy { src, .. } | IrInst::Neg { src, .. } | IrInst::Not { src, .. } => {
                vec![src]
            }
            IrInst::FrameAddr { .. } | IrInst::GlobalAddr { .. } => vec![],
            IrInst::Load { addr, .. } => vec![addr],
            IrInst::Store { src, addr, .. } => vec![src, addr],
            IrInst::Call { args, .. } => args.iter_mut().collect(),
        }
    }

    /// Whether the instruction has a side effect beyond writing `dst`
    /// (memory writes and calls), and so must not be removed by dead-code
    /// elimination even when its result is unused.
    pub fn has_side_effects(&self) -> bool {
        matches!(self, IrInst::Store { .. } | IrInst::Call { .. })
    }
}

impl fmt::Display for IrInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = |width: &MemWidth| match width {
            MemWidth::Byte => "i8",
            MemWidth::Half => "i16",
            MemWidth::Word => "i32",
        };
        match self {
            IrInst::Bin { op, dst, lhs, rhs } => write!(f, "{dst} = {op} {lhs}, {rhs}"),
            IrInst::Cmp { op, dst, lhs, rhs } => write!(f, "{dst} = cmp.{op} {lhs}, {rhs}"),
            IrInst::Copy { dst, src } => write!(f, "{dst} = {src}"),
            IrInst::Neg { dst, src } => write!(f, "{dst} = neg {src}"),
            IrInst::Not { dst, src } => write!(f, "{dst} = not {src}"),
            IrInst::FrameAddr { dst, slot } => write!(f, "{dst} = frameaddr slot{slot}"),
            IrInst::GlobalAddr { dst, global } => write!(f, "{dst} = globaladdr g{global}"),
            IrInst::Load {
                dst,
                addr,
                offset,
                width,
            } => {
                write!(f, "{dst} = load.{} [{addr} + {offset}]", w(width))
            }
            IrInst::Store {
                src,
                addr,
                offset,
                width,
            } => {
                write!(f, "store.{} {src}, [{addr} + {offset}]", w(width))
            }
            IrInst::Call {
                dst: Some(d),
                callee,
                args,
            } => {
                write!(f, "{d} = call {callee}({})", join(args))
            }
            IrInst::Call {
                dst: None,
                callee,
                args,
            } => {
                write!(f, "call {callee}({})", join(args))
            }
        }
    }
}

fn join(vals: &[Value]) -> String {
    vals.iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

/// A block terminator in the mid-level IR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrTerm {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way conditional branch on a comparison.
    Branch {
        /// Comparison.
        op: CmpOp,
        /// Left operand.
        lhs: Value,
        /// Right operand.
        rhs: Value,
        /// Successor when the comparison holds.
        then_block: BlockId,
        /// Successor when it does not.
        else_block: BlockId,
    },
    /// Return, with an optional value.
    Ret(Option<Value>),
}

impl IrTerm {
    /// Successor blocks.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            IrTerm::Jump(t) => vec![*t],
            IrTerm::Branch {
                then_block,
                else_block,
                ..
            } => vec![*then_block, *else_block],
            IrTerm::Ret(_) => vec![],
        }
    }

    /// The values read by the terminator.
    pub fn uses(&self) -> Vec<Value> {
        match self {
            IrTerm::Jump(_) => vec![],
            IrTerm::Branch { lhs, rhs, .. } => vec![*lhs, *rhs],
            IrTerm::Ret(Some(v)) => vec![*v],
            IrTerm::Ret(None) => vec![],
        }
    }

    /// Mutable references to the values read by the terminator.
    pub fn uses_mut(&mut self) -> Vec<&mut Value> {
        match self {
            IrTerm::Jump(_) => vec![],
            IrTerm::Branch { lhs, rhs, .. } => vec![lhs, rhs],
            IrTerm::Ret(Some(v)) => vec![v],
            IrTerm::Ret(None) => vec![],
        }
    }
}

impl fmt::Display for IrTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrTerm::Jump(t) => write!(f, "jump {t}"),
            IrTerm::Branch {
                op,
                lhs,
                rhs,
                then_block,
                else_block,
            } => {
                write!(f, "br.{op} {lhs}, {rhs} ? {then_block} : {else_block}")
            }
            IrTerm::Ret(Some(v)) => write!(f, "ret {v}"),
            IrTerm::Ret(None) => write!(f, "ret"),
        }
    }
}

/// A basic block of the mid-level IR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IrBlock {
    /// Straight-line instructions.
    pub insts: Vec<IrInst>,
    /// Control transfer at the end of the block.
    pub term: IrTerm,
}

impl IrBlock {
    /// An empty block ending in a plain return (useful as a placeholder
    /// during construction).
    pub fn new() -> IrBlock {
        IrBlock {
            insts: Vec::new(),
            term: IrTerm::Ret(None),
        }
    }
}

impl Default for IrBlock {
    fn default() -> Self {
        IrBlock::new()
    }
}

/// A stack slot (array or address-taken local) of a function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StackSlot {
    /// Source-level name, for diagnostics.
    pub name: String,
    /// Size in bytes.
    pub size: u32,
}

/// A function in the mid-level IR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IrFunction {
    /// Function name.
    pub name: String,
    /// Number of parameters; parameters occupy `VReg(0)..VReg(num_params)`.
    pub num_params: usize,
    /// Total number of virtual registers allocated so far.
    pub vreg_count: u32,
    /// Stack slots for arrays and address-taken locals.
    pub slots: Vec<StackSlot>,
    /// Basic blocks; `BlockId(0)` is the entry.
    pub blocks: Vec<IrBlock>,
    /// Whether the function returns a value.
    pub returns_value: bool,
    /// Marked library code: statically linked support routines the placement
    /// optimizer is not allowed to see (the paper's soft-float/intrinsic
    /// limitation).
    pub is_library: bool,
}

impl IrFunction {
    /// Create an empty function with the given name and parameter count.
    pub fn new(name: impl Into<String>, num_params: usize) -> IrFunction {
        IrFunction {
            name: name.into(),
            num_params,
            vreg_count: num_params as u32,
            slots: Vec::new(),
            blocks: vec![IrBlock::new()],
            returns_value: false,
            is_library: false,
        }
    }

    /// The entry block.
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Allocate a fresh virtual register.
    pub fn new_vreg(&mut self) -> VReg {
        let r = VReg(self.vreg_count);
        self.vreg_count += 1;
        r
    }

    /// Append an empty block and return its id.
    pub fn new_block(&mut self) -> BlockId {
        self.blocks.push(IrBlock::new());
        BlockId(self.blocks.len() as u32 - 1)
    }

    /// The parameter registers.
    pub fn params(&self) -> Vec<VReg> {
        (0..self.num_params as u32).map(VReg).collect()
    }

    /// Build the control-flow graph of the function.
    pub fn cfg(&self) -> Cfg {
        let succs = self
            .blocks
            .iter()
            .map(|b| b.term.successors().iter().map(|s| s.index()).collect())
            .collect();
        Cfg::new(self.blocks.len(), 0, succs)
    }

    /// Total number of IR instructions (excluding terminators).
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }
}

impl fmt::Display for IrFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "func @{}({} params) {{", self.name, self.num_params)?;
        for (i, b) in self.blocks.iter().enumerate() {
            writeln!(f, "bb{i}:")?;
            for inst in &b.insts {
                writeln!(f, "    {inst}")?;
            }
            writeln!(f, "    {}", b.term)?;
        }
        write!(f, "}}")
    }
}

/// Initializer of a module global.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GlobalInit {
    /// 32-bit words.
    Words(Vec<i32>),
    /// Raw bytes.
    Bytes(Vec<u8>),
    /// Zero-initialized region of the given size in bytes.
    Zero(u32),
}

impl GlobalInit {
    /// Size of the global in bytes.
    pub fn size(&self) -> u32 {
        match self {
            GlobalInit::Words(w) => 4 * w.len() as u32,
            GlobalInit::Bytes(b) => b.len() as u32,
            GlobalInit::Zero(n) => *n,
        }
    }

    /// The initial byte image (little-endian for words).
    pub fn to_bytes(&self) -> Vec<u8> {
        match self {
            GlobalInit::Words(w) => w.iter().flat_map(|x| x.to_le_bytes()).collect(),
            GlobalInit::Bytes(b) => b.clone(),
            GlobalInit::Zero(n) => vec![0; *n as usize],
        }
    }
}

/// A module-level global variable or constant table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Global {
    /// Name.
    pub name: String,
    /// Initial contents.
    pub init: GlobalInit,
    /// Whether the program may write it (placed in RAM) or not (kept in
    /// flash as read-only data).
    pub mutable: bool,
}

/// A translation unit: functions plus globals.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IrModule {
    /// Functions, in definition order.
    pub functions: Vec<IrFunction>,
    /// Globals, in definition order.
    pub globals: Vec<Global>,
}

impl IrModule {
    /// A new, empty module.
    pub fn new() -> IrModule {
        IrModule::default()
    }

    /// Find a function by name.
    pub fn function(&self, name: &str) -> Option<&IrFunction> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Find a function index by name.
    pub fn function_index(&self, name: &str) -> Option<usize> {
        self.functions.iter().position(|f| f.name == name)
    }

    /// Find a global index by name.
    pub fn global_index(&self, name: &str) -> Option<usize> {
        self.globals.iter().position(|g| g.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_eval_matches_wrapping_semantics() {
        assert_eq!(BinOp::Add.eval(i32::MAX, 1), i32::MIN);
        assert_eq!(BinOp::Sub.eval(i32::MIN, 1), i32::MAX);
        assert_eq!(BinOp::Mul.eval(1 << 20, 1 << 20), 0);
        assert_eq!(BinOp::Div.eval(7, 2), 3);
        assert_eq!(BinOp::Div.eval(7, 0), 0);
        assert_eq!(BinOp::Udiv.eval(-2, 2), ((u32::MAX / 2) as i32));
        assert_eq!(BinOp::Shl.eval(1, 33), 2, "shift amounts are masked");
        assert_eq!(BinOp::Ashr.eval(-8, 1), -4);
        assert_eq!(BinOp::Lshr.eval(-8, 1), ((-8i32 as u32) >> 1) as i32);
    }

    #[test]
    fn cmp_negate_is_involutive_and_complements() {
        let pairs = [(0, 0), (1, 2), (-3, 7), (i32::MIN, i32::MAX)];
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Slt,
            CmpOp::Sle,
            CmpOp::Sgt,
            CmpOp::Sge,
            CmpOp::Ult,
            CmpOp::Ule,
            CmpOp::Ugt,
            CmpOp::Uge,
        ] {
            assert_eq!(op.negate().negate(), op);
            for (a, b) in pairs {
                assert_ne!(op.eval(a, b), op.negate().eval(a, b), "{op} {a} {b}");
                assert_eq!(op.eval(a, b), op.swap_operands().eval(b, a), "{op} {a} {b}");
            }
        }
    }

    #[test]
    fn inst_def_use_accounting() {
        let i = IrInst::Bin {
            op: BinOp::Add,
            dst: VReg(5),
            lhs: Value::Reg(VReg(1)),
            rhs: Value::Const(3),
        };
        assert_eq!(i.dst(), Some(VReg(5)));
        assert_eq!(i.uses(), vec![Value::Reg(VReg(1)), Value::Const(3)]);
        assert!(!i.has_side_effects());

        let s = IrInst::Store {
            src: Value::Reg(VReg(2)),
            addr: Value::Reg(VReg(3)),
            offset: 4,
            width: MemWidth::Word,
        };
        assert_eq!(s.dst(), None);
        assert!(s.has_side_effects());

        let c = IrInst::Call {
            dst: Some(VReg(9)),
            callee: FuncRef("f".into()),
            args: vec![Value::Const(1), Value::Reg(VReg(0))],
        };
        assert_eq!(c.dst(), Some(VReg(9)));
        assert_eq!(c.uses().len(), 2);
        assert!(c.has_side_effects());
    }

    #[test]
    fn uses_mut_allows_rewriting() {
        let mut i = IrInst::Bin {
            op: BinOp::Add,
            dst: VReg(5),
            lhs: Value::Reg(VReg(1)),
            rhs: Value::Reg(VReg(1)),
        };
        for u in i.uses_mut() {
            if *u == Value::Reg(VReg(1)) {
                *u = Value::Const(42);
            }
        }
        assert_eq!(i.uses(), vec![Value::Const(42), Value::Const(42)]);
    }

    #[test]
    fn function_construction_and_cfg() {
        let mut f = IrFunction::new("fn", 2);
        assert_eq!(f.params(), vec![VReg(0), VReg(1)]);
        let r = f.new_vreg();
        assert_eq!(r, VReg(2));
        let b1 = f.new_block();
        let b2 = f.new_block();
        f.blocks[0].term = IrTerm::Branch {
            op: CmpOp::Slt,
            lhs: Value::Reg(VReg(0)),
            rhs: Value::Reg(VReg(1)),
            then_block: b1,
            else_block: b2,
        };
        f.blocks[b1.index()].term = IrTerm::Jump(b2);
        f.blocks[b2.index()].term = IrTerm::Ret(Some(Value::Reg(VReg(0))));
        let cfg = f.cfg();
        assert_eq!(cfg.succs(0), &[1, 2]);
        assert_eq!(cfg.succs(1), &[2]);
        assert!(cfg.succs(2).is_empty());
        assert_eq!(cfg.preds(2), &[0, 1]);
    }

    #[test]
    fn global_init_sizes_and_bytes() {
        let words = GlobalInit::Words(vec![1, -1]);
        assert_eq!(words.size(), 8);
        assert_eq!(words.to_bytes(), vec![1, 0, 0, 0, 255, 255, 255, 255]);
        let zero = GlobalInit::Zero(12);
        assert_eq!(zero.size(), 12);
        assert_eq!(zero.to_bytes(), vec![0; 12]);
        let bytes = GlobalInit::Bytes(vec![9, 8, 7]);
        assert_eq!(bytes.size(), 3);
    }

    #[test]
    fn module_lookup() {
        let mut m = IrModule::new();
        m.functions.push(IrFunction::new("main", 0));
        m.functions.push(IrFunction::new("helper", 1));
        m.globals.push(Global {
            name: "table".into(),
            init: GlobalInit::Zero(16),
            mutable: true,
        });
        assert_eq!(m.function_index("helper"), Some(1));
        assert_eq!(m.function_index("absent"), None);
        assert_eq!(m.global_index("table"), Some(0));
        assert!(m.function("main").is_some());
    }

    #[test]
    fn display_round_trips_key_tokens() {
        let i = IrInst::Load {
            dst: VReg(3),
            addr: Value::Reg(VReg(1)),
            offset: 8,
            width: MemWidth::Word,
        };
        let s = i.to_string();
        assert!(s.contains("load.i32"));
        assert!(s.contains("%3"));
        let t = IrTerm::Branch {
            op: CmpOp::Slt,
            lhs: Value::Reg(VReg(0)),
            rhs: Value::Const(64),
            then_block: BlockId(1),
            else_block: BlockId(2),
        };
        assert!(t.to_string().contains("br.slt"));
    }
}
