//! Execution profiles: per-block execution counts.
//!
//! The paper's `F_b` parameter (how many times each basic block executes)
//! can either be estimated statically from loop depth or measured by
//! profiling.  The simulator in `flashram-mcu` produces a [`ProfileData`]
//! while running a program; Figure 5 of the paper compares optimization
//! results obtained with estimated and with actual frequencies.

use std::collections::BTreeMap;

use crate::ids::FuncId;
use crate::mach::BlockRef;

/// Per-block execution counts collected from a program run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfileData {
    counts: BTreeMap<BlockRef, u64>,
    calls: BTreeMap<FuncId, u64>,
}

impl ProfileData {
    /// An empty profile.
    pub fn new() -> ProfileData {
        ProfileData::default()
    }

    /// Record one execution of a block.
    pub fn record_block(&mut self, block: BlockRef) {
        *self.counts.entry(block).or_insert(0) += 1;
    }

    /// Record one call of a function.
    pub fn record_call(&mut self, func: FuncId) {
        *self.calls.entry(func).or_insert(0) += 1;
    }

    /// Record `count` executions of a block at once.
    ///
    /// This is the bulk form of [`ProfileData::record_block`], used by the
    /// simulator to fold flat per-block accumulators into a profile after a
    /// run instead of updating the map on every block entry.  A zero count
    /// leaves the profile untouched (no entry is created), so folding a
    /// sparse accumulator produces a profile identical to one built
    /// incrementally.
    pub fn add_block_count(&mut self, block: BlockRef, count: u64) {
        if count > 0 {
            *self.counts.entry(block).or_insert(0) += count;
        }
    }

    /// Record `count` calls of a function at once (bulk form of
    /// [`ProfileData::record_call`]; zero counts create no entry).
    pub fn add_call_count(&mut self, func: FuncId, count: u64) {
        if count > 0 {
            *self.calls.entry(func).or_insert(0) += count;
        }
    }

    /// The number of times a block executed.
    pub fn block_count(&self, block: BlockRef) -> u64 {
        self.counts.get(&block).copied().unwrap_or(0)
    }

    /// The number of times a function was called.
    pub fn call_count(&self, func: FuncId) -> u64 {
        self.calls.get(&func).copied().unwrap_or(0)
    }

    /// Iterate over `(block, count)` pairs, in block order.
    pub fn iter(&self) -> impl Iterator<Item = (BlockRef, u64)> + '_ {
        self.counts.iter().map(|(b, c)| (*b, *c))
    }

    /// Total block executions recorded.
    pub fn total_block_executions(&self) -> u64 {
        self.counts.values().sum()
    }

    /// The hottest block and its count, if any block executed.
    pub fn hottest_block(&self) -> Option<(BlockRef, u64)> {
        self.counts
            .iter()
            .max_by_key(|(_, c)| **c)
            .map(|(b, c)| (*b, *c))
    }

    /// Merge another profile into this one (summing counts), e.g. to combine
    /// multiple runs.
    pub fn merge(&mut self, other: &ProfileData) {
        for (b, c) in &other.counts {
            *self.counts.entry(*b).or_insert(0) += c;
        }
        for (f, c) in &other.calls {
            *self.calls.entry(*f).or_insert(0) += c;
        }
    }

    /// Number of distinct blocks that executed at least once.
    pub fn blocks_executed(&self) -> usize {
        self.counts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_and_lookup() {
        let mut p = ProfileData::new();
        let b0 = BlockRef::new(0, 0);
        let b1 = BlockRef::new(0, 1);
        for _ in 0..5 {
            p.record_block(b0);
        }
        p.record_block(b1);
        p.record_call(FuncId(0));
        assert_eq!(p.block_count(b0), 5);
        assert_eq!(p.block_count(b1), 1);
        assert_eq!(p.block_count(BlockRef::new(1, 0)), 0);
        assert_eq!(p.call_count(FuncId(0)), 1);
        assert_eq!(p.call_count(FuncId(9)), 0);
        assert_eq!(p.total_block_executions(), 6);
        assert_eq!(p.blocks_executed(), 2);
        assert_eq!(p.hottest_block(), Some((b0, 5)));
    }

    #[test]
    fn merge_sums_counts() {
        let b = BlockRef::new(2, 3);
        let mut p1 = ProfileData::new();
        let mut p2 = ProfileData::new();
        p1.record_block(b);
        p2.record_block(b);
        p2.record_block(b);
        p1.merge(&p2);
        assert_eq!(p1.block_count(b), 3);
    }

    #[test]
    fn empty_profile_has_no_hottest_block() {
        let p = ProfileData::new();
        assert_eq!(p.hottest_block(), None);
        assert_eq!(p.total_block_executions(), 0);
    }
}
