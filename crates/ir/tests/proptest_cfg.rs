//! Property-based tests of the CFG analyses (reverse post-order, dominators,
//! back edges, natural loops) over randomly generated graphs.
//!
//! The placement optimizer's static frequency estimate is built directly on
//! these analyses, so they must be robust for arbitrary control flow, not
//! just the shapes the mini-C compiler happens to emit.

use flashram_ir::Cfg;
use proptest::prelude::*;

/// Strategy: a CFG with `1..=12` blocks where each block has zero, one or two
/// successors chosen uniformly among all blocks (self-edges allowed).
fn arbitrary_cfg() -> impl Strategy<Value = Cfg> {
    (1usize..=12)
        .prop_flat_map(|n| {
            let succs = proptest::collection::vec(proptest::collection::vec(0usize..n, 0..=2), n);
            (Just(n), succs)
        })
        .prop_map(|(n, succs)| Cfg::new(n, 0, succs))
}

/// Blocks reachable from the entry by following successor edges.
fn reachable(cfg: &Cfg) -> Vec<bool> {
    let mut seen = vec![false; cfg.len()];
    let mut stack = vec![cfg.entry()];
    seen[cfg.entry()] = true;
    while let Some(b) = stack.pop() {
        for &s in cfg.succs(b) {
            if !seen[s] {
                seen[s] = true;
                stack.push(s);
            }
        }
    }
    seen
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn reverse_post_order_is_a_permutation_starting_at_the_entry(cfg in arbitrary_cfg()) {
        let rpo = cfg.reverse_post_order();
        prop_assert_eq!(rpo.len(), cfg.len());
        prop_assert_eq!(rpo[0], cfg.entry());
        let mut sorted = rpo.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), cfg.len(), "every block appears exactly once");
    }

    #[test]
    fn acyclic_edges_respect_reverse_post_order(cfg in arbitrary_cfg()) {
        // For any edge u -> v that is not a back edge (v does not dominate u),
        // and with both endpoints reachable, u must come before v in RPO *or*
        // the edge must be a cross/forward edge into an already-visited
        // subtree; at minimum, the entry must come first, which the previous
        // test checks.  Here we check the defining property of back edges.
        let idom = cfg.immediate_dominators();
        let live = reachable(&cfg);
        for (tail, head) in cfg.back_edges() {
            prop_assert!(live[tail] && live[head], "back edges connect reachable blocks");
            prop_assert!(cfg.dominates(head, tail, &idom), "head of a back edge dominates its tail");
        }
    }

    #[test]
    fn entry_dominates_every_reachable_block(cfg in arbitrary_cfg()) {
        let idom = cfg.immediate_dominators();
        let live = reachable(&cfg);
        for (b, &is_live) in live.iter().enumerate() {
            if is_live {
                prop_assert!(cfg.dominates(cfg.entry(), b, &idom), "entry must dominate block {}", b);
            }
        }
        prop_assert_eq!(idom[cfg.entry()], cfg.entry());
    }

    #[test]
    fn dominance_is_reflexive_and_antisymmetric_on_reachable_blocks(cfg in arbitrary_cfg()) {
        let idom = cfg.immediate_dominators();
        let live = reachable(&cfg);
        for a in 0..cfg.len() {
            prop_assert!(cfg.dominates(a, a, &idom));
            for b in 0..cfg.len() {
                if a != b && live[a] && live[b] {
                    prop_assert!(
                        !(cfg.dominates(a, b, &idom) && cfg.dominates(b, a, &idom)),
                        "distinct blocks {} and {} dominate each other",
                        a,
                        b
                    );
                }
            }
        }
    }

    #[test]
    fn immediate_dominator_strictly_dominates_reachable_non_entry_blocks(cfg in arbitrary_cfg()) {
        let idom = cfg.immediate_dominators();
        let live = reachable(&cfg);
        for b in 0..cfg.len() {
            if b == cfg.entry() || !live[b] {
                continue;
            }
            let d = idom[b];
            prop_assert!(live[d], "idom of a reachable block is reachable");
            prop_assert!(cfg.dominates(d, b, &idom));
            // Every predecessor path to b goes through d... at minimum d != b
            // unless b is its own (unreachable) sentinel, which we excluded.
            prop_assert_ne!(d, b, "a reachable non-entry block cannot be its own idom");
        }
    }

    #[test]
    fn loop_depth_counts_enclosing_natural_loops(cfg in arbitrary_cfg()) {
        let info = cfg.loop_info();
        for b in 0..cfg.len() {
            let enclosing = info.loops.iter().filter(|l| l.body.contains(&b)).count() as u32;
            prop_assert_eq!(info.depth(b), enclosing, "block {}", b);
        }
        prop_assert_eq!(
            info.max_depth(),
            (0..cfg.len()).map(|b| info.depth(b)).max().unwrap_or(0)
        );
    }

    #[test]
    fn loop_headers_dominate_their_bodies(cfg in arbitrary_cfg()) {
        let idom = cfg.immediate_dominators();
        let info = cfg.loop_info();
        for l in &info.loops {
            prop_assert!(l.body.contains(&l.header));
            for &b in &l.body {
                prop_assert!(
                    cfg.dominates(l.header, b, &idom),
                    "header {} must dominate body block {}",
                    l.header,
                    b
                );
            }
        }
        // One loop per distinct header after merging.
        let mut headers: Vec<usize> = info.loops.iter().map(|l| l.header).collect();
        headers.dedup();
        prop_assert_eq!(headers.len(), info.loop_count());
    }

    #[test]
    fn blocks_without_back_edges_have_depth_zero(cfg in arbitrary_cfg()) {
        if cfg.back_edges().is_empty() {
            let info = cfg.loop_info();
            prop_assert_eq!(info.loop_count(), 0);
            for b in 0..cfg.len() {
                prop_assert_eq!(info.depth(b), 0);
            }
        }
    }
}

/// A straight-line chain has no loops and a fully deterministic RPO.
#[test]
fn chain_has_identity_rpo_and_no_loops() {
    let n = 9;
    let succs: Vec<Vec<usize>> = (0..n)
        .map(|i| if i + 1 < n { vec![i + 1] } else { vec![] })
        .collect();
    let cfg = Cfg::new(n, 0, succs);
    assert_eq!(cfg.reverse_post_order(), (0..n).collect::<Vec<_>>());
    assert!(cfg.back_edges().is_empty());
    let idom = cfg.immediate_dominators();
    for (b, &d) in idom.iter().enumerate().skip(1) {
        assert_eq!(d, b - 1);
    }
}

/// Deeply nested loops produce strictly increasing depths.
#[test]
fn nested_loops_have_increasing_depth() {
    // 0 -> 1 -> 2 -> 3 -> 3? No: build 3 nested loops:
    // 0 -> 1; 1 -> 2; 2 -> 3; 3 -> {3? no}
    // Use: 1..=3 headers with back edges from 4, 5, 6 respectively.
    // Layout: 0 -> 1 -> 2 -> 3 -> 4 -> 5 -> 6, with 4 -> 3, 5 -> 2, 6 -> 1, 6 -> 7.
    let cfg = Cfg::new(
        8,
        0,
        vec![
            vec![1],
            vec![2],
            vec![3],
            vec![4],
            vec![3, 5],
            vec![2, 6],
            vec![1, 7],
            vec![],
        ],
    );
    let info = cfg.loop_info();
    assert_eq!(info.loop_count(), 3);
    assert_eq!(info.depth(0), 0);
    assert_eq!(info.depth(1), 1);
    assert_eq!(info.depth(2), 2);
    assert_eq!(info.depth(3), 3);
    assert_eq!(info.depth(4), 3);
    assert_eq!(info.depth(7), 0);
    assert_eq!(info.max_depth(), 3);
}
