//! Property-based tests of the terminator cost model (the Figure 4 table)
//! and the direct → indirect rewriting used by the placement transformation.

use flashram_isa::{Cond, InstrumentationCost, Reg, TermKind, Terminator};
use proptest::prelude::*;

fn arbitrary_cond() -> impl Strategy<Value = Cond> {
    prop_oneof![
        Just(Cond::Eq),
        Just(Cond::Ne),
        Just(Cond::Lt),
        Just(Cond::Le),
        Just(Cond::Gt),
        Just(Cond::Ge),
    ]
}

fn arbitrary_reg() -> impl Strategy<Value = Reg> {
    prop_oneof![
        Just(Reg::R0),
        Just(Reg::R1),
        Just(Reg::R2),
        Just(Reg::R3),
        Just(Reg::R4),
        Just(Reg::R5),
        Just(Reg::R6),
        Just(Reg::R7),
    ]
}

/// Any direct terminator over `u32` labels.
fn arbitrary_direct_terminator() -> impl Strategy<Value = Terminator<u32>> {
    prop_oneof![
        (0u32..64).prop_map(|target| Terminator::Branch { target }),
        (arbitrary_cond(), 0u32..64, 0u32..64).prop_map(|(cond, target, fallthrough)| {
            Terminator::CondBranch {
                cond,
                target,
                fallthrough,
            }
        }),
        (any::<bool>(), arbitrary_reg(), 0u32..64, 0u32..64).prop_map(
            |(nonzero, rn, target, fallthrough)| Terminator::CompareBranch {
                nonzero,
                rn,
                target,
                fallthrough,
            }
        ),
        (0u32..64).prop_map(|target| Terminator::FallThrough { target }),
        Just(Terminator::Return),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    #[test]
    fn indirect_rewriting_preserves_successors_and_is_idempotent(
        term in arbitrary_direct_terminator()
    ) {
        let before: Vec<u32> = term.successors().into_iter().copied().collect();
        let once = term.clone().into_indirect();
        let after: Vec<u32> = once.successors().into_iter().copied().collect();
        prop_assert_eq!(before, after, "rewriting must not change the control-flow edges");
        prop_assert_eq!(once.clone().into_indirect(), once.clone(), "rewriting twice changes nothing");
        if !matches!(term, Terminator::Return) {
            prop_assert!(once.is_indirect());
        }
    }

    #[test]
    fn instrumentation_cost_is_exactly_the_direct_to_indirect_delta(
        term in arbitrary_direct_terminator()
    ) {
        let cost = term.instrumentation_cost();
        let indirect = term.clone().into_indirect();
        prop_assert_eq!(cost.extra_bytes, indirect.size_bytes() - term.size_bytes());
        prop_assert_eq!(cost.extra_cycles, indirect.taken_cycles() - term.taken_cycles());
        // Instrumented forms never cost anything further.
        prop_assert_eq!(indirect.instrumentation_cost(), InstrumentationCost::default());
    }

    #[test]
    fn indirect_forms_are_never_smaller_or_faster(term in arbitrary_direct_terminator()) {
        let indirect = term.clone().into_indirect();
        prop_assert!(indirect.size_bytes() >= term.size_bytes());
        prop_assert!(indirect.taken_cycles() >= term.taken_cycles());
        prop_assert!(indirect.not_taken_cycles() >= term.not_taken_cycles());
    }

    #[test]
    fn kind_round_trips_through_the_rewrite(term in arbitrary_direct_terminator()) {
        let kind = term.kind();
        let indirect_kind = term.into_indirect().kind();
        prop_assert_eq!(indirect_kind, kind.indirect_form());
        // Sizes and cycles are functions of the kind alone.
        prop_assert_eq!(kind.indirect_form().size_bytes(), indirect_kind.size_bytes());
        prop_assert_eq!(kind.indirect_form().taken_cycles(), indirect_kind.taken_cycles());
    }

    #[test]
    fn two_way_terminators_keep_both_edges(
        cond in arbitrary_cond(),
        target in 0u32..64,
        fallthrough in 0u32..64,
    ) {
        let term = Terminator::CondBranch { cond, target, fallthrough };
        prop_assert_eq!(term.successors(), vec![&target, &fallthrough]);
        let ind = term.into_indirect();
        prop_assert_eq!(ind.successors(), vec![&target, &fallthrough]);
        // Not-taken is cheaper than taken for the direct form, equal for the
        // indirect form (which always performs the full indirect transfer).
        let direct = Terminator::<u32>::CondBranch { cond, target, fallthrough };
        prop_assert!(direct.not_taken_cycles() < direct.taken_cycles());
        prop_assert_eq!(ind.not_taken_cycles(), ind.taken_cycles());
    }

    #[test]
    fn map_label_commutes_with_into_indirect(
        term in arbitrary_direct_terminator(),
        offset in 0u32..1000,
    ) {
        let a = term.clone().map_label(|l| l + offset).into_indirect();
        let b = term.map_label(|l| l + offset).into_indirect();
        prop_assert_eq!(a, b);
    }
}

/// The Figure 4 rows, spelled out once more as a table-driven test so that a
/// regression in any single entry is reported by name.
#[test]
fn figure4_costs_are_exact() {
    let rows = [
        (TermKind::Uncond, 2, 3, TermKind::IndirectUncond, 4, 4),
        (TermKind::Cond, 2, 3, TermKind::IndirectCond, 8, 7),
        (
            TermKind::ShortCond,
            2,
            3,
            TermKind::IndirectShortCond,
            10,
            8,
        ),
        (
            TermKind::FallThrough,
            0,
            0,
            TermKind::IndirectFallThrough,
            4,
            4,
        ),
    ];
    for (kind, bytes, cycles, ind, ind_bytes, ind_cycles) in rows {
        assert_eq!(kind.size_bytes(), bytes, "{kind:?} bytes");
        assert_eq!(kind.taken_cycles(), cycles, "{kind:?} cycles");
        assert_eq!(kind.indirect_form(), ind, "{kind:?} indirect form");
        assert_eq!(ind.size_bytes(), ind_bytes, "{ind:?} bytes");
        assert_eq!(ind.taken_cycles(), ind_cycles, "{ind:?} cycles");
        let cost = kind.instrumentation_cost();
        assert_eq!(cost.extra_bytes, ind_bytes - bytes, "{kind:?} K_b");
        assert_eq!(cost.extra_cycles, ind_cycles - cycles, "{kind:?} T_b");
    }
}
